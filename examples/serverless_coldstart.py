#!/usr/bin/env python3
"""Serverless cold starts: the introduction's motivating scenario.

Measures boot-to-first-response for a redis 'function' across every system
that can run it -- the metric that decides whether a platform can afford to
cold-start a guest per invocation (paper Sections 1-2: unikernels boot in
5-10 ms; Firecracker exists because VMs could not).

Run: ``python examples/serverless_coldstart.py``
"""

from repro.workloads.coldstart import run_cold_starts


def main() -> None:
    results = run_cold_starts()
    print(f"{'system':<22} {'boot ms':>8} {'init ms':>8} "
          f"{'1st req ms':>11} {'total ms':>9}")
    for result in sorted(results.values(), key=lambda r: r.total_ms):
        print(f"{result.system:<22} {result.boot_ms:>8.1f} "
              f"{result.app_init_ms:>8.1f} {result.first_request_ms:>11.3f} "
              f"{result.total_ms:>9.1f}")

    lupine = results["lupine-nokml"]
    microvm = results["microvm"]
    print(f"\nlupine cold-starts {microvm.total_ms / lupine.total_ms:.1f}x "
          "faster than the microVM baseline, in the same ballpark as the "
          "reference unikernels -- without giving up Linux.")


if __name__ == "__main__":
    main()
