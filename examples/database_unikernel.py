#!/usr/bin/env python3
"""A database in unikernel clothing: postgres on Lupine.

postgres is the paper's example of an application that does *not* fit the
unikernel mold (five processes, System V IPC, fork per connection) -- every
comparator unikernel rejects or crashes on it, while Lupine just re-enables
the 'multi-process' config options and runs it (Sections 4.1 and 5).

This example builds a slimmed postgres unikernel via the automated
trace->manifest pipeline, shows the kernel knows about SysV IPC, boots it,
forks backends, and runs a pgbench-style TPC-B load -- then demonstrates the
flip side: the same workload fails with a clean ENOSYS on a redis-shaped
kernel.

Run: ``python examples/database_unikernel.py``
"""

from repro.apps.registry import get_app
from repro.core.lupine import LupineBuilder
from repro.core.manifest import derive_options
from repro.core.tracing import manifest_from_app_trace, trace_app_run
from repro.core.variants import Variant
from repro.rootfs.slim import slim_container
from repro.rootfs.container import container_for_app
from repro.syscall.dispatch import SyscallNotImplemented
from repro.workloads.pgbench import PgBench
from repro.workloads.server import LinuxServerStack


def main() -> None:
    postgres = get_app("postgres")

    print("== 1. trace-driven manifest (the paper's future-work path) ==")
    trace = trace_app_run(postgres)
    manifest = manifest_from_app_trace(postgres)
    options = derive_options(manifest)
    print(f"   traced {len(trace)} syscalls "
          f"({len(trace.distinct_syscalls)} distinct), "
          f"facilities: {', '.join(trace.facilities)}")
    print(f"   derived options: {', '.join(sorted(options))}")
    assert options == postgres.required_options

    print("\n== 2. slimmed container ==")
    container = container_for_app(postgres)
    slimmed, report = slim_container(container, manifest)
    print(f"   {report.original_files} files -> {report.kept_files} "
          f"({report.size_reduction:.0%} smaller)")

    print("\n== 3. build + boot ==")
    unikernel = LupineBuilder(variant=Variant.LUPINE, slim=True).build_for_app(
        postgres, manifest=manifest
    )
    print(f"   kernel {unikernel.kernel_image_mb:.2f} MB, "
          f"rootfs {unikernel.rootfs_size_mb:.2f} MB, "
          f"min memory {unikernel.min_memory_mb()} MB")
    guest = unikernel.boot()
    print(f"   booted in {guest.boot_report.total_ms:.1f} ms; "
          f"success: {guest.ran_successfully}")

    print("\n== 4. multi-process behaviour ==")
    backends = [guest.fork_app() for _ in range(4)]
    print(f"   forked {len(backends)} backends: "
          f"pids {[task.pid for task in backends]}")

    print("\n== 5. pgbench (TPC-B-ish) ==")
    stack = LinuxServerStack(
        engine=unikernel.build.syscall_engine(),
        netpath=unikernel.build.network_path(),
    )
    PgBench.check_kernel(stack.engine)
    tps = PgBench(transactions=300).tps(stack)
    print(f"   {tps:,.0f} transactions/s on lupine[postgres]")

    print("\n== 6. and on a redis-shaped kernel? ==")
    redis_unikernel = LupineBuilder(variant=Variant.LUPINE).build_for_app(
        get_app("redis")
    )
    try:
        PgBench.check_kernel(redis_unikernel.build.syscall_engine())
    except SyscallNotImplemented as error:
        print(f"   clean failure, no crash: {error}")


if __name__ == "__main__":
    main()
