#!/usr/bin/env python3
"""Head-to-head: Lupine vs microVM vs OSv, HermiTux and Rumprun.

Regenerates the evaluation's headline comparison across all four unikernel
dimensions -- image size (Figure 6), boot time (Figure 7), memory footprint
(Figure 8) and syscall latency (Figure 9) -- and prints the normalized
application throughput table (Table 4).

Run: ``python examples/unikernel_comparison.py``
"""

from repro.experiments import (
    fig6_image_size,
    fig7_boot_time,
    fig8_memory,
    fig9_syscalls,
    table4_apps,
)
from repro.metrics.reporting import render_figure, render_table


def main() -> None:
    for module in (fig6_image_size, fig7_boot_time, fig8_memory,
                   fig9_syscalls):
        print(render_figure(module.figure()))
        print()
    print(render_table(table4_apps.table()))

    results = fig6_image_size.run()
    lupine_fraction = results["lupine"] / results["microvm"]
    print(f"\nheadline: lupine kernel is {lupine_fraction:.0%} of microVM's "
          "image and beats at least one reference unikernel on every "
          "dimension above.")


if __name__ == "__main__":
    main()
