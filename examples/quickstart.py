#!/usr/bin/env python3
"""Quickstart: build a Lupine unikernel for redis and measure it.

Walks the whole Figure 2 pipeline through the public API:

1. pull the redis container image and generate its manifest,
2. specialize a Linux 4.0 kernel (lupine-base + redis's 10 options) and
   apply KML,
3. build the ext2 rootfs with a generated startup script,
4. boot on Firecracker and check the success criterion,
5. measure image size, boot time, memory footprint and redis-benchmark
   throughput against the microVM baseline.

Run: ``python examples/quickstart.py``
"""

from repro.apps.registry import get_app
from repro.core.lupine import LupineBuilder
from repro.core.variants import Variant, build_microvm
from repro.workloads.redis import RedisBenchmark
from repro.workloads.server import LinuxServerStack


def main() -> None:
    redis = get_app("redis")
    print(f"== application: {redis.name} ({redis.description}) ==")
    print(f"   requires {redis.option_count} options atop lupine-base: "
          f"{', '.join(sorted(redis.required_options))}")

    # 1-3. Build the unikernel (container -> manifest -> kernel + rootfs).
    builder = LupineBuilder(variant=Variant.LUPINE)
    unikernel = builder.build_for_app(redis)
    print("\n== build ==")
    print(f"   kernel : {unikernel.kernel_image_mb:.2f} MB "
          f"({len(unikernel.build.config.enabled)} options, KML on)")
    print(f"   rootfs : {unikernel.rootfs_size_mb:.2f} MB ext2, "
          f"{unikernel.rootfs.inode_count} inodes")
    print("   startup script:")
    for line in unikernel.init_script.splitlines():
        print(f"     {line}")

    # 4. Boot it.
    guest = unikernel.boot()
    print("\n== boot ==")
    print("   " + guest.boot_report.breakdown().replace("\n", "\n   "))
    print(f"   success criterion met: {guest.ran_successfully}")

    # 5. Measure.
    print("\n== measurements ==")
    print(f"   memory footprint: {unikernel.min_memory_mb()} MB")

    microvm = build_microvm()
    benchmark = RedisBenchmark()
    lupine_stack = LinuxServerStack(
        engine=unikernel.build.syscall_engine(),
        netpath=unikernel.build.network_path(),
    )
    microvm_stack = LinuxServerStack(
        engine=microvm.syscall_engine(), netpath=microvm.network_path()
    )
    lupine_get = benchmark.get_rps(lupine_stack)
    microvm_get = benchmark.get_rps(microvm_stack)
    print(f"   redis GET: lupine {lupine_get:,.0f} req/s vs "
          f"microVM {microvm_get:,.0f} req/s "
          f"({lupine_get / microvm_get:.2f}x)")


if __name__ == "__main__":
    main()
