#!/usr/bin/env python3
"""Configuration diversity across the top-20 cloud applications (Section 4.1).

Derives an application manifest for every top-20 Docker Hub app, maps it to
a kernel configuration, and reproduces the paper's findings: per-app option
counts (Table 3), the flattening union curve (Figure 5), and the
lupine-general kernel that runs all of them with only 19 extra options.

Run: ``python examples/config_diversity.py``
"""

from repro.apps.registry import (
    top20_in_popularity_order,
    total_downloads_billions,
)
from repro.core.manifest import derive_options, generate_manifest
from repro.core.specialization import (
    app_config,
    lupine_general_config,
    verify_general_covers_top20,
)
from repro.core.variants import build_microvm
from repro.kbuild.builder import KernelBuilder


def main() -> None:
    print(f"top-20 apps account for {total_downloads_billions():.1f} B "
          "downloads (83% of all Docker Hub pulls in the paper)\n")

    union = set()
    print(f"{'app':<15} {'options':>7}  {'union':>5}  derived via manifest")
    for app in top20_in_popularity_order():
        manifest = generate_manifest(app)
        options = derive_options(manifest)
        union |= options
        assert options == app.required_options, (
            "manifest derivation must match the hand-derived config"
        )
        print(f"{app.name:<15} {len(options):>7}  {len(union):>5}  "
              f"{', '.join(sorted(options)[:4])}"
              f"{'...' if len(options) > 4 else ''}")

    print(f"\nunion of all app requirements: {len(union)} options "
          "(the paper's 19)")
    assert verify_general_covers_top20()

    # Build lupine-general and three app-specific kernels; compare sizes.
    microvm_mb = build_microvm().image.size_mb
    general = lupine_general_config()
    general_mb = KernelBuilder().build(general).size_mb
    print(f"\nlupine-general: {len(general.enabled)} options, "
          f"{general_mb:.2f} MB ({general_mb / microvm_mb:.0%} of microVM)")
    for name in ("nginx", "redis", "hello-world"):
        app = next(a for a in top20_in_popularity_order() if a.name == name)
        config = app_config(app)
        size_mb = KernelBuilder().build(config).size_mb
        print(f"lupine-{name:<12}: {len(config.enabled):>3} options, "
              f"{size_mb:.2f} MB ({size_mb / microvm_mb:.0%} of microVM)")


if __name__ == "__main__":
    main()
