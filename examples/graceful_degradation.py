#!/usr/bin/env python3
"""Graceful degradation beyond the unikernel envelope (Section 5).

Unikernels crash when an application forks; Lupine keeps running.  This
example pushes one Lupine guest and the three comparator unikernels outside
the single-process, single-CPU envelope and reports what happens:

1. fork: postgres (a multi-process app) on each system,
2. background control processes: syscall latency stays flat,
3. SMP support on one CPU: bounded overhead instead of a crash.

Run: ``python examples/graceful_degradation.py``
"""

from repro.apps.registry import get_app
from repro.core.lupine import LupineBuilder
from repro.core.variants import Variant
from repro.unikernels import (
    AppNotSupported,
    HermiTux,
    OSv,
    Rumprun,
    UnikernelCrash,
)
from repro.workloads.control_procs import run_with_control_processes
from repro.workloads.smp_stress import smp_overhead


def main() -> None:
    postgres = get_app("postgres")
    redis = get_app("redis")

    print("== 1. fork() ==")
    for unikernel in (HermiTux(), OSv(), Rumprun()):
        try:
            instance = unikernel.run_app(postgres)
            instance.fork()
            outcome = "ran?!"
        except AppNotSupported as error:
            outcome = f"cannot even start: {error}"
        except UnikernelCrash as error:
            outcome = f"CRASH: {error}"
        print(f"   {unikernel.name:<10} {outcome}")

    # Lupine: postgres needs CONFIG_SYSVIPC (a 'multi-process' option the
    # unikernel domain excludes) -- re-enable it and everything works.
    lupine = LupineBuilder(variant=Variant.LUPINE).build_for_app(postgres)
    assert "SYSVIPC" in lupine.build.config
    guest = lupine.boot()
    child = guest.fork_app()
    print(f"   {'lupine':<10} fork OK -> child pid {child.pid}; "
          f"guest still running: {guest.ran_successfully}")

    print("\n== 2. background control processes (Figure 11) ==")
    build = LupineBuilder(variant=Variant.LUPINE).build_for_app(redis).build
    print("   control procs   null us")
    baseline = None
    for count in (1, 16, 256, 1024):
        result = run_with_control_processes(build.syscall_engine(), count)
        null_us = result.latencies_us["null"]
        baseline = baseline or null_us
        print(f"   {count:>13}   {null_us:.4f}  "
              f"({(null_us / baseline - 1) * 100:+.1f}%)")

    print("\n== 3. SMP support on one processor (Section 5) ==")
    for workload, workers, bound in (
        ("sem_posix", 256, 3), ("futex", 256, 8), ("make-j", 64, 3)
    ):
        overhead = smp_overhead(workload, workers) * 100
        print(f"   {workload:<10} {workers:>4} workers: {overhead:5.2f}% "
              f"overhead (paper bound: {bound}%)")


if __name__ == "__main__":
    main()
