"""Tests for the kernel orchestration policies."""

import pytest

from repro.apps.registry import TOP20_APPS, get_app
from repro.core.orchestrator import Fleet, KernelOrchestrator, KernelPolicy


def _apps(*names):
    return [get_app(name) for name in names]


class TestPolicies:
    def test_per_app_builds_one_kernel_each(self):
        orchestrator = KernelOrchestrator(policy=KernelPolicy.PER_APP)
        fleet = orchestrator.deploy(_apps("redis", "nginx", "memcached"))
        assert fleet.distinct_kernels == 3

    def test_general_shares_one_kernel(self):
        orchestrator = KernelOrchestrator(policy=KernelPolicy.GENERAL)
        fleet = orchestrator.deploy(_apps("redis", "nginx", "memcached"))
        assert fleet.distinct_kernels == 1

    def test_hybrid_splits_by_popularity(self):
        orchestrator = KernelOrchestrator(
            policy=KernelPolicy.HYBRID, hybrid_downloads_threshold=1.0
        )
        fleet = orchestrator.deploy(_apps("redis", "haproxy"))  # 1.2 vs 0.4
        assert fleet.distinct_kernels == 2
        redis_kernel = fleet.guests["redis"].build
        haproxy_kernel = fleet.guests["haproxy"].build
        assert not redis_kernel.variant.general
        assert haproxy_kernel.variant.general

    def test_cache_prevents_rebuilds(self):
        orchestrator = KernelOrchestrator(policy=KernelPolicy.PER_APP)
        orchestrator.unikernel_for(get_app("redis"))
        orchestrator.unikernel_for(get_app("redis"))
        assert orchestrator.build_count == 1

    def test_identical_configs_share_a_kernel(self):
        import dataclasses

        redis = get_app("redis")
        clone = dataclasses.replace(redis, name="redis-clone")
        orchestrator = KernelOrchestrator(policy=KernelPolicy.PER_APP)
        fleet = orchestrator.deploy([redis, clone])
        # Same required options and syscalls -> same config fingerprint,
        # so PER_APP still materializes only one kernel.
        assert orchestrator.build_count == 1
        assert fleet.distinct_kernels == 1
        assert (
            fleet.guests["redis"].build.fingerprint
            == fleet.guests["redis-clone"].build.fingerprint
        )

    def test_cache_key_is_config_fingerprint(self):
        from repro.core.variants import variant_fingerprint

        orchestrator = KernelOrchestrator(policy=KernelPolicy.PER_APP)
        redis = get_app("redis")
        expected = variant_fingerprint(orchestrator._variant_for(redis), redis)
        assert orchestrator._cache_key(redis) == expected

    def test_nokml_flag_respected(self):
        orchestrator = KernelOrchestrator(
            policy=KernelPolicy.PER_APP, kml=False
        )
        unikernel = orchestrator.unikernel_for(get_app("redis"))
        assert not unikernel.build.kml
        assert "PARAVIRT" in unikernel.build.config


class TestFleet:
    def test_general_fleet_smaller_total_image_budget(self):
        apps = _apps("redis", "nginx", "postgres", "memcached", "haproxy")
        per_app = KernelOrchestrator(policy=KernelPolicy.PER_APP).deploy(apps)
        general = KernelOrchestrator(policy=KernelPolicy.GENERAL).deploy(apps)
        assert general.total_kernel_mb < per_app.total_kernel_mb

    def test_boot_all(self):
        fleet = KernelOrchestrator(policy=KernelPolicy.GENERAL).deploy(
            _apps("redis", "nginx")
        )
        boots = fleet.boot_all()
        assert set(boots) == {"redis", "nginx"}
        assert all(ms > 0 for ms in boots.values())

    def test_empty_fleet(self):
        fleet = Fleet()
        assert fleet.distinct_kernels == 0
        assert fleet.total_kernel_mb == 0


class TestCoverage:
    def test_general_covers_all_top20(self):
        orchestrator = KernelOrchestrator(policy=KernelPolicy.GENERAL)
        assert orchestrator.coverage_gaps(list(TOP20_APPS)) == []

    def test_per_app_never_has_gaps(self):
        orchestrator = KernelOrchestrator(policy=KernelPolicy.PER_APP)
        assert orchestrator.coverage_gaps(list(TOP20_APPS)) == []

    def test_gap_detected_for_exotic_app(self):
        from repro.apps.app import Application

        exotic = Application(
            name="exotic",
            description="needs fanotify",
            downloads_billions=0.01,
            required_options=frozenset({"FANOTIFY", "EPOLL"}),
            syscalls=frozenset({"read", "fanotify_init", "epoll_wait"}),
            entrypoint=("/usr/bin/exotic",),
        )
        orchestrator = KernelOrchestrator(policy=KernelPolicy.GENERAL)
        gaps = orchestrator.coverage_gaps([exotic])
        assert ("exotic", "FANOTIFY") in gaps
        assert ("exotic", "EPOLL") not in gaps  # EPOLL is in the union
