"""Tests for the TCP state machine and conntrack table."""

import pytest

from repro.netstack.path import NetworkPath
from repro.netstack.tcp import (
    ConntrackTable,
    TcpError,
    TcpStack,
    TcpState,
    stack_for_config,
)


def _stack(options=("INET",), **kwargs):
    return stack_for_config(options, **kwargs)


class TestHandshake:
    def test_three_way_handshake(self):
        stack = _stack()
        stack.listen(80)
        connection = stack.on_syn(80, "10.0.0.1", 43210)
        assert connection.state is TcpState.SYN_RECEIVED
        stack.on_ack(connection)
        assert connection.established
        assert stack.connection_count(TcpState.ESTABLISHED) == 1

    def test_syn_to_closed_port_refused(self):
        stack = _stack()
        with pytest.raises(TcpError, match="refused"):
            stack.on_syn(80, "10.0.0.1", 43210)

    def test_duplicate_listen_rejected(self):
        stack = _stack()
        stack.listen(80)
        with pytest.raises(TcpError):
            stack.listen(80)

    def test_ack_requires_syn_rcvd(self):
        stack = _stack()
        stack.listen(80)
        connection = stack.accept_connection(80, "10.0.0.1", 1)
        with pytest.raises(TcpError):
            stack.on_ack(connection)

    def test_backlog_overflow_sheds_syns(self):
        """The OSv 'drops connections' failure mode."""
        stack = _stack(backlog=2)
        stack.listen(80)
        half_open = [stack.on_syn(80, "10.0.0.1", port)
                     for port in range(1, 4)]
        assert half_open[0] is not None and half_open[1] is not None
        assert half_open[2] is None
        assert stack.syns_dropped == 1

    def test_completing_handshake_frees_backlog(self):
        stack = _stack(backlog=1)
        stack.listen(80)
        first = stack.on_syn(80, "10.0.0.1", 1)
        stack.on_ack(first)
        second = stack.on_syn(80, "10.0.0.1", 2)
        assert second is not None


class TestDataAndTeardown:
    def _established(self, stack):
        stack.listen(80)
        return stack.accept_connection(80, "10.0.0.1", 999)

    def test_segments_counted(self):
        stack = _stack()
        connection = self._established(stack)
        stack.receive_segment(connection, 512)
        stack.send_segment(connection, 6144)
        assert connection.segments_in == 1
        assert connection.segments_out == 1

    def test_data_requires_established(self):
        stack = _stack()
        stack.listen(80)
        connection = stack.on_syn(80, "10.0.0.1", 1)
        with pytest.raises(TcpError, match="ESTABLISHED"):
            stack.send_segment(connection)

    def test_active_close_goes_time_wait(self):
        stack = _stack()
        connection = self._established(stack)
        stack.close(connection)
        assert connection.state is TcpState.TIME_WAIT
        assert stack.connection_count(TcpState.TIME_WAIT) == 1
        assert stack.reap_time_wait() == 1
        assert stack.connection_count() == 0

    def test_passive_close_reaps_immediately(self):
        stack = _stack()
        connection = self._established(stack)
        stack.on_fin(connection)
        assert connection.state is TcpState.CLOSED
        assert stack.connection_count() == 0


class TestCosts:
    def test_time_advances_per_packet(self):
        stack = _stack()
        stack.listen(80)
        connection = stack.accept_connection(80, "10.0.0.1", 1)
        after_handshake = stack.clock_ns
        assert after_handshake > 0
        stack.send_segment(connection, 1024)
        assert stack.clock_ns > after_handshake

    def test_hooked_kernel_connection_costs_more(self, microvm):
        lean = _stack()
        heavy = stack_for_config(microvm.enabled)
        for stack in (lean, heavy):
            stack.listen(80)
            stack.accept_connection(80, "10.0.0.1", 1)
        assert heavy.clock_ns > lean.clock_ns


class TestConntrack:
    def test_only_built_with_nf_conntrack(self, microvm):
        assert _stack().conntrack is None
        assert stack_for_config(microvm.enabled).conntrack is not None

    def test_entries_follow_connection_lifecycle(self, microvm):
        stack = stack_for_config(microvm.enabled)
        stack.listen(80)
        connection = stack.accept_connection(80, "10.0.0.1", 1)
        assert connection.key in stack.conntrack
        assert stack.conntrack.lookup(connection.key) is TcpState.ESTABLISHED
        stack.on_fin(connection)
        assert connection.key not in stack.conntrack

    def test_lru_eviction(self):
        table = ConntrackTable(max_entries=2)
        table.track_new((80, "a", 1))
        table.track_new((80, "b", 2))
        table.lookup((80, "a", 1))  # refresh a
        table.track_new((80, "c", 3))  # evicts b
        assert (80, "a", 1) in table
        assert (80, "b", 2) not in table
        assert table.evictions == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ConntrackTable(max_entries=0)

    def test_data_path_does_lookups(self, microvm):
        stack = stack_for_config(microvm.enabled)
        stack.listen(80)
        connection = stack.accept_connection(80, "10.0.0.1", 1)
        before = stack.conntrack.lookups
        stack.receive_segment(connection)
        stack.send_segment(connection)
        assert stack.conntrack.lookups == before + 2


from hypothesis import given, settings, strategies as st


class TestTcpProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from(
        ["syn", "ack", "data", "close", "fin", "reap"]),
        min_size=1, max_size=60))
    def test_invariants_under_random_traffic(self, operations):
        """Connection counts and conntrack size stay consistent."""
        stack = stack_for_config(
            ["INET", "NETFILTER", "NF_CONNTRACK"], backlog=4,
            conntrack_entries=8,
        )
        stack.listen(80)
        half_open = []
        established = []
        peer_port = 0
        for operation in operations:
            if operation == "syn":
                peer_port += 1
                connection = stack.on_syn(80, "peer", peer_port)
                if connection is not None:
                    half_open.append(connection)
            elif operation == "ack" and half_open:
                established.append(stack.on_ack(half_open.pop()))
            elif operation == "data" and established:
                stack.receive_segment(established[0], 128)
            elif operation == "close" and established:
                stack.close(established.pop())
            elif operation == "fin" and established:
                stack.on_fin(established.pop())
            elif operation == "reap":
                stack.reap_time_wait()
            # Invariants:
            assert len(stack.conntrack) <= stack.conntrack.max_entries
            assert (stack.connection_count(TcpState.ESTABLISHED)
                    == len(established))
            assert stack.clock_ns >= 0
        # Drain everything; nothing may leak.
        for connection in established:
            stack.close(connection)
        stack.reap_time_wait()
        assert stack.connection_count(TcpState.ESTABLISHED) == 0


class TestTimeWaitVirtualTime:
    """2MSL expiry is driven by the virtual clock, not manual reaping."""

    def _time_wait_connection(self, stack):
        stack.listen(80)
        connection = stack.on_ack(stack.on_syn(80, "10.0.0.1", 43210))
        stack.close(connection)
        return connection

    def test_time_wait_expires_off_the_clock_without_reap(self):
        from repro.netstack.tcp import TIME_WAIT_2MSL_NS

        stack = _stack()
        connection = self._time_wait_connection(stack)
        assert connection.state is TcpState.TIME_WAIT
        # No reap_time_wait() anywhere: advancing simulated time past
        # 2MSL fires the armed deadline and closes the connection.
        stack.clock.advance(TIME_WAIT_2MSL_NS + 1.0)
        assert connection.state is TcpState.CLOSED
        assert stack.connection_count(TcpState.TIME_WAIT) == 0
        assert stack.time_wait_expired == 1

    def test_time_wait_survives_until_the_deadline(self):
        from repro.netstack.tcp import TIME_WAIT_2MSL_NS

        stack = _stack()
        connection = self._time_wait_connection(stack)
        stack.clock.advance(TIME_WAIT_2MSL_NS / 2)
        assert connection.state is TcpState.TIME_WAIT

    def test_explicit_reap_still_works_and_cancels_the_timer(self):
        from repro.netstack.tcp import TIME_WAIT_2MSL_NS

        stack = _stack()
        connection = self._time_wait_connection(stack)
        assert stack.reap_time_wait() == 1
        assert connection.state is TcpState.CLOSED
        # The armed deadline must not double-fire later.
        stack.clock.advance(2 * TIME_WAIT_2MSL_NS)
        assert stack.time_wait_expired == 1

    def test_cancelled_2msl_timers_do_not_leak_in_clock_heap(self):
        """Connection churn must not grow the clock heap without bound.

        Every close() arms a 2MSL deadline; every reap cancels it.  The
        cancelled entries used to sit in the heap until their far-future
        deadline came due -- a memory leak proportional to connection
        churn.  Compaction now keeps the heap near the live-event count.
        """
        from repro.simcore.clock import VirtualClock

        clock = VirtualClock()
        stack = _stack(clock=clock)
        stack.listen(80)
        for port in range(1024, 1024 + 400):
            connection = stack.on_ack(stack.on_syn(80, "10.0.0.1", port))
            stack.close(connection)
            stack.reap_time_wait()  # cancels the armed 2MSL deadline
        assert clock.pending_events == 0
        assert len(clock._events) <= 2 * VirtualClock.COMPACT_MIN_EVENTS

    def test_guest_clock_drives_expiry(self):
        """A stack bound to a guest clock expires off that guest's time."""
        from repro.netstack.tcp import TIME_WAIT_2MSL_NS
        from repro.simcore import VirtualClock

        clock = VirtualClock()
        stack = _stack(clock=clock)
        connection = self._time_wait_connection(stack)
        clock.advance(TIME_WAIT_2MSL_NS + 1.0)
        assert connection.state is TcpState.CLOSED
