"""Capture every experiment's ``run()`` output as canonical JSON.

This is the producer behind ``tests/golden/experiments_golden.json`` and
the replay half of ``tests/test_golden_parity.py``: it executes all
registered experiments in registry (paper) order and serializes the
results through the harness codec, deterministically
(``sort_keys=True``).

Every float fold over ``frozenset`` config options now iterates in
sorted order (boot costs, image sizes, footprints, attack surface), so
the document is byte-identical under **any** ``PYTHONHASHSEED`` -- two
runs, and critically the pre- and post-refactor trees, produce the same
bytes without pinning the interpreter's hash seed.

Usage::

    python tests/golden/capture_golden.py [OUTPUT]

With no OUTPUT the document is written to stdout.
"""

from __future__ import annotations

import json
import os
import sys


def capture() -> str:
    from repro.harness import codec
    from repro.harness.registry import all_experiments

    results = {}
    for name, experiment in all_experiments().items():
        results[name] = codec.encode(experiment.run())
    return json.dumps(results, sort_keys=True, indent=1)


def main() -> int:
    document = capture()
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
    else:
        sys.stdout.write(document + "\n")
    return 0


if __name__ == "__main__":
    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    sys.path.insert(0, os.path.join(repo_root, "src"))
    raise SystemExit(main())
