"""Capture every experiment's ``run()`` output as canonical JSON.

This is the producer behind ``tests/golden/experiments_golden.json`` and
the replay half of ``tests/test_golden_parity.py``: it executes all
registered experiments in registry (paper) order and serializes the
results through the harness codec, deterministically
(``sort_keys=True``).

It must run in a fresh interpreter with ``PYTHONHASHSEED=0``: several
models fold floats over ``frozenset`` iteration (e.g. summing per-option
boot costs), so the exact last-ulp bits of the outputs depend on string
hash ordering.  With the hash seed pinned, two runs -- and, critically,
the pre- and post-refactor trees -- produce byte-identical documents.

Usage::

    PYTHONHASHSEED=0 python tests/golden/capture_golden.py [OUTPUT]

With no OUTPUT the document is written to stdout.
"""

from __future__ import annotations

import json
import os
import sys


def capture() -> str:
    from repro.harness import codec
    from repro.harness.registry import all_experiments

    results = {}
    for name, experiment in all_experiments().items():
        results[name] = codec.encode(experiment.run())
    return json.dumps(results, sort_keys=True, indent=1)


def main() -> int:
    if os.environ.get("PYTHONHASHSEED") != "0":
        print(
            "capture_golden.py requires PYTHONHASHSEED=0 "
            "(set-iteration order feeds float folds)",
            file=sys.stderr,
        )
        return 2
    document = capture()
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
    else:
        sys.stdout.write(document + "\n")
    return 0


if __name__ == "__main__":
    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    sys.path.insert(0, os.path.join(repo_root, "src"))
    raise SystemExit(main())
