"""Tests for the traffic-driven serving layer (``repro.traffic``).

Covers the seeded arrival generators (shape, determinism, the
clock-agreement property), the warm-pool policies, the router's
dispatch/queue/cold-boot behaviour, the end-to-end determinism contract
of :func:`~repro.traffic.serve.run_serving` (same spec, byte-identical
manifest digest, under both preset policies), the closed-loop
``Fleet.serve`` sequential-vs-global-loop parity property, the
``traffic.arrival`` fault site, and the ``bench-serve`` acceptance
checker against the committed baseline.
"""

import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import (
    FIXED_POOL,
    SCALE_TO_ZERO,
    ArrivalSource,
    ServeSpec,
    WarmPoolPolicy,
    bursty_trace,
    curated_apps,
    diurnal_trace,
    named_policy,
    poisson_trace,
    policy_names,
    run_serving,
    zipf_app_mix,
)
from repro.traffic.arrivals import arrival_times_ns
from repro.traffic.serve import percentile_ns

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: A small, fast serving scenario: one full diurnal cycle with a deep
#: trough, enough for cold boots and retirement churn in well under a
#: second of host time.
SMALL_TRACE = diurnal_trace(requests=400, mean_rps=500, period_s=1.6,
                            amplitude=1.0)


class TestArrivalGenerators:
    @pytest.mark.parametrize("trace", [
        poisson_trace(requests=200, mean_rps=1000),
        diurnal_trace(requests=200, mean_rps=1000, period_s=2.0,
                      amplitude=0.9),
        bursty_trace(requests=200, on_rps=2000, off_rps=100),
    ])
    def test_traces_emit_ordered_count_exact_times(self, trace):
        times = list(arrival_times_ns(trace, seed=7))
        assert len(times) == 200
        assert times == sorted(times)
        assert all(t > 0.0 for t in times)

    def test_same_seed_same_trace(self):
        spec = diurnal_trace(requests=100, mean_rps=500, period_s=1.0)
        assert (list(arrival_times_ns(spec, seed=3))
                == list(arrival_times_ns(spec, seed=3)))

    def test_different_seeds_differ(self):
        spec = poisson_trace(requests=50, mean_rps=500)
        assert (list(arrival_times_ns(spec, seed=1))
                != list(arrival_times_ns(spec, seed=2)))

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            diurnal_trace(requests=10, mean_rps=100, amplitude=1.5)
        with pytest.raises(ValueError):
            bursty_trace(requests=10, on_rps=100, off_rps=200)
        with pytest.raises(ValueError):
            list(arrival_times_ns(
                poisson_trace(requests=10, mean_rps=0.0), seed=0
            ))

    def test_zipf_mix_is_seeded_and_skewed(self):
        spec = poisson_trace(requests=1, mean_rps=1.0, zipf_s=1.1)
        apps = ["redis", "memcached", "nginx"]
        mix = zipf_app_mix(apps, spec, seed=11)
        draws = [next(mix) for _ in range(600)]
        rerun = zipf_app_mix(apps, spec, seed=11)
        assert draws == [next(rerun) for _ in range(600)]
        counts = {app: draws.count(app) for app in apps}
        # Rank 0 carries the largest Zipf weight.
        assert counts["redis"] > counts["nginx"]
        with pytest.raises(ValueError):
            next(zipf_app_mix([], spec, seed=0))

    def test_curated_apps_are_popularity_ranked_serving_profiles(self):
        from repro.apps.registry import top20_in_popularity_order

        apps = curated_apps()
        assert apps  # the Zipf mix needs at least one profile
        ranked = [app.name for app in top20_in_popularity_order()]
        assert apps == [name for name in ranked if name in apps]


class TestArrivalSourceClockAgreement:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000),
           kind=st.sampled_from(["poisson", "diurnal", "bursty"]))
    def test_next_deadline_agrees_with_next_arrival(self, seed, kind):
        """The property the router relies on: after arming, the arrivals
        clock's next deadline IS the next arrival instant."""
        from repro.simcore.clock import VirtualClock

        trace = {
            "poisson": poisson_trace(requests=20, mean_rps=2000),
            "diurnal": diurnal_trace(requests=20, mean_rps=2000,
                                     period_s=0.5, amplitude=1.0),
            "bursty": bursty_trace(requests=20, on_rps=4000, off_rps=100,
                                   on_s=0.01, off_s=0.04),
        }[kind]
        clock = VirtualClock()
        source = ArrivalSource(trace, seed, clock, ["redis", "nginx"])
        delivered = []
        while True:
            deadline = source.arm_next()
            if deadline is None:
                assert source.next_arrival_ns is None
                break
            assert source.next_arrival_ns == deadline
            assert clock.next_deadline_ns() == deadline
            clock.advance_to(deadline)
            arrival = source.take()
            assert arrival.arrival_ns == deadline
            delivered.append(arrival)
        assert len(delivered) == 20
        assert [a.index for a in delivered] == list(range(20))
        instants = [a.arrival_ns for a in delivered]
        assert instants == sorted(instants)


class TestWarmPoolPolicy:
    def test_presets_are_named(self):
        assert named_policy("scale-to-zero") is SCALE_TO_ZERO
        assert named_policy("fixed-pool") is FIXED_POOL
        assert policy_names() == ["fixed-pool", "scale-to-zero"]
        with pytest.raises(ValueError, match="unknown warm-pool policy"):
            named_policy("nope")

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmPoolPolicy(name="bad", idle_timeout_s=0.0)
        with pytest.raises(ValueError):
            WarmPoolPolicy(name="bad", min_warm=-1)
        with pytest.raises(ValueError):
            WarmPoolPolicy(name="bad", max_per_app=0)

    def test_overrides_and_timeout_ns(self):
        policy = SCALE_TO_ZERO.with_overrides(idle_timeout_s=2.0,
                                              max_total=5)
        assert policy.idle_timeout_ns == 2e9
        assert policy.max_total == 5
        assert policy.name == SCALE_TO_ZERO.name
        assert FIXED_POOL.idle_timeout_ns is None
        assert SCALE_TO_ZERO.to_manifest()["pre_warm"] == 0


class TestServingDeterminism:
    @pytest.mark.parametrize("policy", [SCALE_TO_ZERO, FIXED_POOL],
                             ids=lambda p: p.name)
    def test_same_spec_byte_identical_manifest(self, policy):
        """The acceptance contract: same seed => byte-identical digest,
        asserted across both warm-pool policy presets."""
        spec = ServeSpec(trace=SMALL_TRACE, policy=policy, seed=42)
        first = run_serving(spec)
        second = run_serving(spec)
        assert first.manifest() == second.manifest()
        assert first.manifest_digest == second.manifest_digest
        assert first.served == SMALL_TRACE.requests

    def test_scale_to_zero_surfaces_cold_boots_in_the_tail(self):
        report = run_serving(
            ServeSpec(trace=SMALL_TRACE, policy=SCALE_TO_ZERO, seed=42)
        )
        assert report.cold_start_fraction > 0.0
        assert report.guests_spawned == report.cold_starts > 0
        latency = report.latency_ms
        assert 0.0 < latency["p50"] <= latency["p99"] <= latency["p999"]
        # A cold boot costs ~70 virtual ms (Fig 7); the warm path is
        # microseconds.  The max must carry the boot.
        assert latency["max"] > 50.0

    def test_prewarmed_pool_absorbs_cold_starts(self):
        cold = run_serving(
            ServeSpec(trace=SMALL_TRACE, policy=SCALE_TO_ZERO, seed=42)
        )
        warm = run_serving(
            ServeSpec(trace=SMALL_TRACE, policy=FIXED_POOL, seed=42)
        )
        assert warm.cold_start_fraction < cold.cold_start_fraction
        assert warm.latency_ms["p999"] <= cold.latency_ms["p999"]
        # Keepalive is paid in guest-seconds, not latency.
        assert warm.guest_seconds > 0.0

    def test_different_policies_still_serve_identical_traffic(self):
        """The trace is open-loop: policy changes the serving side only,
        never which requests arrive (seed-determined)."""
        cold = run_serving(
            ServeSpec(trace=SMALL_TRACE, policy=SCALE_TO_ZERO, seed=7)
        )
        warm = run_serving(
            ServeSpec(trace=SMALL_TRACE, policy=FIXED_POOL, seed=7)
        )
        assert cold.served == warm.served == SMALL_TRACE.requests
        assert cold.dropped == warm.dropped == 0

    def test_manifest_shape(self):
        from repro.traffic.serve import SERVE_SCHEMA_VERSION

        report = run_serving(
            ServeSpec(trace=SMALL_TRACE, policy=SCALE_TO_ZERO, seed=1)
        )
        manifest = report.manifest()
        assert manifest["schema_version"] == SERVE_SCHEMA_VERSION == 2
        assert manifest["trace"]["kind"] == "diurnal"
        assert manifest["policy"]["name"] == "scale-to-zero"
        assert set(manifest["latency_ms"]) == {
            "p50", "p99", "p999", "max", "mean"
        }
        assert manifest["guests"]["spawned"] == report.guests_spawned
        for app, entry in manifest["per_app"].items():
            assert set(entry) == {"requests", "cold_starts", "spawned"}
        # Schema v2: the resilience knobs and the availability section.
        assert manifest["resilience"]["retry_budget"] == 2
        availability = manifest["availability"]
        assert set(availability) == {
            "arrivals", "completed", "dropped", "failed", "shed",
            "error_rate", "shed_rate", "failed_reasons", "shed_reasons",
            "retries", "restarts", "guest_crashes", "guest_hangs",
            "boot_failures", "watchdog_kills", "quarantines",
            "breaker_opens", "goodput_rps",
        }
        assert availability["arrivals"] == SMALL_TRACE.requests
        # Zero-fault run: no availability events at all.
        assert availability["failed"] == availability["shed"] == 0
        assert availability["retries"] == availability["restarts"] == 0
        assert manifest["guests"]["failed"] == 0
        assert availability["goodput_rps"] > 0.0
        # Conservation, as written into the manifest itself.
        assert availability["arrivals"] == (
            manifest["served"] + availability["failed"]
            + availability["shed"] + manifest["dropped"]
        )
        # Execution counters stay outside the manifest.
        assert "eventcore" not in json.dumps(manifest)
        assert report.eventcore_stats is not None


class TestRouterQueueing:
    def test_capacity_queueing_drains_in_order(self):
        """With capacity 1, arrivals during the 70 ms cold boot queue
        FIFO and drain through the single worker."""
        from repro.core.orchestrator import KernelOrchestrator
        from repro.simcore.eventcore import EventCore
        from repro.traffic.router import Router
        from repro.traffic.serve import _arrivals_program

        trace = poisson_trace(requests=30, mean_rps=2000)
        policy = WarmPoolPolicy(name="tiny", idle_timeout_s=None,
                                max_per_app=1, max_total=1)
        core = EventCore()
        router = Router(core=core, orchestrator=KernelOrchestrator(),
                        policy=policy, apps=["redis"])
        source = ArrivalSource(trace, 5, core.clock_for("arrivals"),
                               ["redis"])
        core.spawn("arrivals", _arrivals_program(source, router))
        core.run()
        router.finalize()
        core.run()
        assert len(router.samples) == 30
        assert router.spawned == 1
        assert router.queued > 0
        assert router.queue_high_water >= 1
        # Served in arrival order: the backlog is FIFO.
        assert [s.index for s in router.samples] == list(range(30))
        # Queued requests' latency includes their wait.
        assert router.samples[0].cold
        assert router.samples[1].latency_ns < router.samples[0].latency_ns


class TestArrivalFaultSite:
    def test_injected_fault_drops_the_arrival(self):
        from repro.faults import FaultPlane, activated

        spec = ServeSpec(trace=SMALL_TRACE, policy=FIXED_POOL, seed=9)
        plane = FaultPlane(seed=1)
        plane.configure("traffic.arrival", nth_calls=(3, 10),
                        max_injections=2)
        with activated(plane):
            report = run_serving(spec)
        assert report.dropped == 2
        assert report.served == SMALL_TRACE.requests - 2
        assert plane.injected == 2

    def test_fault_drop_is_deterministic(self):
        from repro.faults import FaultPlane, activated

        spec = ServeSpec(trace=SMALL_TRACE, policy=SCALE_TO_ZERO, seed=9)
        digests = []
        for _ in range(2):
            plane = FaultPlane(seed=1)
            plane.configure("traffic.arrival", nth_calls=(5,),
                            max_injections=1)
            with activated(plane):
                digests.append(run_serving(spec).manifest_digest)
        assert digests[0] == digests[1]


class TestFleetServeParity:
    @settings(max_examples=8, deadline=None)
    @given(count=st.integers(1, 5), seed=st.integers(0, 99),
           requests=st.integers(1, 6))
    def test_global_loop_serves_identical_latency_samples(
        self, count, seed, requests
    ):
        """Closed-loop serving property: the global event loop produces
        bit-identical per-request latency samples to sequential runs."""
        from repro.core.orchestrator import Fleet

        sequential = Fleet.serve(count, seed=seed,
                                 requests_per_guest=requests)
        interleaved = Fleet.serve(count, seed=seed,
                                  requests_per_guest=requests,
                                  global_loop=True)
        assert (sequential.all_samples_ns == interleaved.all_samples_ns)
        assert sequential.manifest() == interleaved.manifest()
        assert (sequential.manifest_digest
                == interleaved.manifest_digest)
        assert len(sequential.all_samples_ns) == count * requests


class TestPercentiles:
    def test_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile_ns(samples, 0.50) == 5.0
        assert percentile_ns(samples, 0.99) == 10.0
        assert percentile_ns(samples, 0.001) == 1.0
        assert percentile_ns([], 0.5) == 0.0
        assert percentile_ns([42.0], 0.999) == 42.0


class TestBenchServe:
    def test_committed_baseline_passes_the_checker(self):
        from repro.traffic.bench import check_result

        baseline = REPO_ROOT / "benchmarks" / "baseline" / "BENCH_serve.json"
        result = json.loads(baseline.read_text(encoding="utf-8"))
        assert check_result(result) == []

    def test_checker_flags_nondeterminism_and_low_churn(self):
        from repro.traffic.bench import check_result

        baseline = REPO_ROOT / "benchmarks" / "baseline" / "BENCH_serve.json"
        result = json.loads(baseline.read_text(encoding="utf-8"))
        result["digests"][
            "serve.manifest_digest48.serve_scale_to_zero.rerun"
        ] = "0" * 12
        result["gauges"]["serve.guests_spawned.serve_scale_to_zero"] = 12.0
        failures = check_result(result)
        assert any("not deterministic" in f for f in failures)
        assert any("1000" in f for f in failures)

    def test_checker_flags_missing_tail_buyback(self):
        from repro.traffic.bench import check_result

        baseline = REPO_ROOT / "benchmarks" / "baseline" / "BENCH_serve.json"
        result = json.loads(baseline.read_text(encoding="utf-8"))
        result["gauges"]["serve.latency_p999_ms.serve_fixed_pool"] = (
            result["gauges"]["serve.latency_p999_ms.serve_scale_to_zero"]
        )
        failures = check_result(result)
        assert any("buy the tail back" in f for f in failures)
