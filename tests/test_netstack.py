"""Tests for the network path cost model."""

import pytest

from repro.netstack.path import NetworkPath, PACKET_HOOK_NS


class TestConstruction:
    def test_requires_inet(self):
        with pytest.raises(ValueError, match="INET"):
            NetworkPath.for_options(["NET", "UNIX"])

    def test_lean_path_has_no_hooks(self):
        path = NetworkPath.for_options(["INET"])
        assert path.hook_ns == 0

    def test_microvm_path_pays_for_every_hook(self, microvm):
        path = NetworkPath.for_options(microvm.enabled)
        assert path.hook_ns == pytest.approx(sum(PACKET_HOOK_NS.values()))


class TestCosts:
    def test_hooked_path_slower(self, microvm):
        lean = NetworkPath.for_options(["INET"])
        heavy = NetworkPath.for_options(microvm.enabled)
        assert heavy.packet_ns() > lean.packet_ns()

    def test_payload_copy_is_config_independent(self, microvm):
        lean = NetworkPath.for_options(["INET"])
        heavy = NetworkPath.for_options(microvm.enabled)
        lean_delta = lean.packet_ns(4096) - lean.packet_ns(0)
        heavy_delta = heavy.packet_ns(4096) - heavy.packet_ns(0)
        assert lean_delta == pytest.approx(heavy_delta)

    def test_connection_packets_at_least_steady_state(self, microvm):
        path = NetworkPath.for_options(microvm.enabled)
        assert path.connection_packet_ns() >= path.packet_ns() - 1e-9

    def test_round_trip(self):
        path = NetworkPath.for_options(["INET"])
        assert path.round_trip_ns(2) == pytest.approx(4 * path.packet_ns())

    def test_size_optimization_slows_stack(self):
        fast = NetworkPath.for_options(["INET"])
        small = NetworkPath.for_options(["INET"], size_optimized=True)
        assert small.packet_ns() > fast.packet_ns()
