"""Tests for the dmesg-style boot console."""

import pytest

from repro.boot.bootsim import BootSimulator
from repro.boot.console import dmesg, render_console


@pytest.fixture
def simulator():
    return BootSimulator(monitor_setup_ms=8.0)


class TestConsoleContent:
    def test_paravirt_kernel_logs_kvm_clock(self, simulator, nokml_build):
        text = dmesg(nokml_build.image, simulator.boot(nokml_build.image))
        assert "kvm-clock" in text
        assert "PIT calibration" not in text

    def test_kml_kernel_logs_slow_calibration_and_ring0(self, simulator,
                                                        lupine_build):
        text = dmesg(lupine_build.image, simulator.boot(lupine_build.image))
        assert "PIT calibration" in text
        assert "ring 0" in text

    def test_microvm_logs_its_subsystems(self, simulator, microvm_build):
        text = dmesg(microvm_build.image, simulator.boot(microvm_build.image))
        for marker in ("PCI: Probing", "ACPI", "SELinux", "audit",
                       "nf_conntrack", "smp: Bringing up"):
            assert marker in text

    def test_lupine_omits_removed_subsystems(self, simulator, nokml_build):
        text = dmesg(nokml_build.image, simulator.boot(nokml_build.image))
        for marker in ("PCI: Probing", "SELinux", "audit", "nf_conntrack"):
            assert marker not in text
        assert "Hierarchical RCU implementation (UP)" in text

    def test_boot_complete_is_final_line(self, simulator, nokml_build):
        lines = render_console(
            nokml_build.image, simulator.boot(nokml_build.image)
        )
        assert "boot complete" in lines[-1].text

    def test_rootfs_mount_logged(self, simulator, nokml_build):
        text = dmesg(nokml_build.image, simulator.boot(nokml_build.image))
        assert "EXT2-fs" in text


class TestTimestamps:
    def test_monotone_nondecreasing(self, simulator, microvm_build):
        lines = render_console(
            microvm_build.image, simulator.boot(microvm_build.image)
        )
        stamps = [line.timestamp_ms for line in lines]
        assert stamps == sorted(stamps)

    def test_last_stamp_within_total(self, simulator, microvm_build):
        report = simulator.boot(microvm_build.image)
        lines = render_console(microvm_build.image, report)
        assert lines[-1].timestamp_ms <= report.total_ms

    def test_rendering_format(self, simulator, nokml_build):
        line = render_console(
            nokml_build.image, simulator.boot(nokml_build.image)
        )[0]
        assert str(line).startswith("[")
