"""Tests for the extension workloads: memcached and pgbench."""

import pytest

from repro.apps.registry import get_app
from repro.core.variants import Variant, build_variant
from repro.syscall.dispatch import SyscallNotImplemented
from repro.workloads.memcached import MemtierBenchmark
from repro.workloads.pgbench import PgBench
from repro.workloads.server import LinuxServerStack


def _stack(build):
    return LinuxServerStack(
        engine=build.syscall_engine(), netpath=build.network_path()
    )


@pytest.fixture(scope="module")
def memcached_build():
    return build_variant(Variant.LUPINE, get_app("memcached"))


@pytest.fixture(scope="module")
def postgres_build():
    return build_variant(Variant.LUPINE, get_app("postgres"))


class TestMemcached:
    def test_runs_on_memcached_kernel(self, memcached_build):
        bench = MemtierBenchmark(500)
        rps = bench.get_rps(_stack(memcached_build))
        assert rps > 100_000  # light requests, lean kernel

    def test_needs_eventfd(self, postgres_build):
        """postgres's kernel lacks EVENTFD -> memcached cannot run there."""
        bench = MemtierBenchmark(10)
        with pytest.raises(SyscallNotImplemented, match="EVENTFD"):
            bench.get_rps(_stack(postgres_build))

    def test_set_slower_than_get(self, memcached_build):
        bench = MemtierBenchmark(500)
        get = bench.get_rps(_stack(memcached_build))
        set_ = bench.set_rps(_stack(memcached_build))
        assert set_ < get

    def test_beats_microvm(self, memcached_build, microvm_build):
        bench = MemtierBenchmark(500)
        lupine = bench.get_rps(_stack(memcached_build))
        baseline = bench.get_rps(_stack(microvm_build))
        assert 1.1 <= lupine / baseline <= 1.35


class TestPgBench:
    def test_runs_on_postgres_kernel(self, postgres_build):
        PgBench.check_kernel(postgres_build.syscall_engine())
        tps = PgBench(transactions=200).tps(_stack(postgres_build))
        assert 1_000 < tps < 100_000  # fdatasync-bound

    def test_rejected_on_redis_kernel(self):
        """redis's kernel has no SYSVIPC -> pgbench fails with ENOSYS."""
        redis_build = build_variant(Variant.LUPINE, get_app("redis"))
        with pytest.raises(SyscallNotImplemented, match="SYSVIPC"):
            PgBench.check_kernel(redis_build.syscall_engine())

    def test_rejected_on_base_kernel(self, lupine_build):
        with pytest.raises(SyscallNotImplemented):
            PgBench.check_kernel(lupine_build.syscall_engine())

    def test_much_slower_than_redis_workloads(self, postgres_build):
        """TPC-B transactions are fdatasync-bound, orders below redis GET."""
        tps = PgBench(transactions=200).tps(_stack(postgres_build))
        assert tps < 50_000

    def test_connection_churn_charged(self, postgres_build):
        stack = _stack(postgres_build)
        before = stack.engine.per_syscall_counts.get("fork", 0)
        PgBench(transactions=50, connections=7).tps(stack)
        assert stack.engine.per_syscall_counts["fork"] == before + 7
