"""Tests for the SMP model."""

import pytest

from repro.sched.smp import SmpModel


class TestConstruction:
    def test_up_kernel_single_cpu_only(self):
        with pytest.raises(ValueError):
            SmpModel(smp_enabled=False, cpus=2)

    def test_needs_a_cpu(self):
        with pytest.raises(ValueError):
            SmpModel(smp_enabled=True, cpus=0)


class TestCosts:
    def test_up_kernel_has_no_lock_cost(self):
        up = SmpModel(smp_enabled=False)
        assert up.lock_pair_ns() == 0
        assert up.switch_overhead_ns() == 0
        assert up.futex_overhead_ns() == 0

    def test_smp_kernel_pays_even_on_one_cpu(self):
        """The Section 5 worst case: SMP build, single processor."""
        smp = SmpModel(smp_enabled=True, cpus=1)
        assert smp.lock_pair_ns() > 0
        assert smp.switch_overhead_ns() > 0
        assert smp.futex_overhead_ns() > 0


class TestParallelSpeedup:
    def test_single_cpu_no_speedup(self):
        assert SmpModel(True, cpus=1).parallel_speedup(8) == 1.0

    def test_two_cpus_nearly_double(self):
        """Section 5: one-CPU builds take 'almost twice as long'."""
        speedup = SmpModel(True, cpus=2).parallel_speedup(2)
        assert 1.7 <= speedup <= 2.0

    def test_speedup_capped_by_jobs(self):
        model = SmpModel(True, cpus=8)
        assert model.parallel_speedup(1) == 1.0

    def test_speedup_monotone_in_cpus(self):
        speedups = [
            SmpModel(True, cpus=n).parallel_speedup(16) for n in (1, 2, 4, 8)
        ]
        assert speedups == sorted(speedups)

    def test_sublinear(self):
        assert SmpModel(True, cpus=8).parallel_speedup(8) < 8

    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            SmpModel(True, cpus=2).parallel_speedup(0)
