"""Tests for the simcore time authority and unified guest runtime."""

import threading

import pytest

from repro.core.variants import Variant
from repro.simcore import (
    ClockError,
    Guest,
    GuestLifecycleError,
    GuestSpec,
    GuestState,
    VirtualClock,
    current_clock,
    default_clock,
    guest_for_app,
    microvm_guest,
    use_clock,
    variant_guest,
)


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now_ns == 0.0

    def test_advance_is_exact_single_addition(self):
        # The accumulator contract: advance(ns) lands on exactly
        # now + ns, one float addition -- no event-dispatch detours.
        clock = VirtualClock()
        clock.advance(0.1)
        clock.advance(0.2)
        assert clock.now_ns == 0.1 + 0.2  # bit-exact, not approx

    def test_advance_to_lands_exactly_on_target(self):
        clock = VirtualClock()
        clock.advance(1.0)
        clock.advance_to(1e9 + 0.25)
        assert clock.now_ns == 1e9 + 0.25

    def test_negative_advance_rejected(self):
        with pytest.raises(ClockError):
            VirtualClock().advance(-1.0)

    def test_advance_to_past_rejected(self):
        clock = VirtualClock()
        clock.advance(100.0)
        with pytest.raises(ClockError):
            clock.advance_to(50.0)

    def test_jump_to_moves_backward_without_dispatch(self):
        clock = VirtualClock()
        fired = []
        clock.call_after(10.0, lambda: fired.append("x"))
        clock.advance(5.0)
        clock.jump_to(0.0)  # legacy reset-style rebase
        assert clock.now_ns == 0.0
        assert not fired
        clock.advance(20.0)  # deadline at absolute 10.0 still armed
        assert fired == ["x"]

    def test_ms_view(self):
        clock = VirtualClock()
        clock.advance_ms(1.5)
        assert clock.now_ms == pytest.approx(1.5)

    def test_events_fire_in_deadline_order(self):
        clock = VirtualClock()
        order = []
        clock.call_after(30.0, lambda: order.append("c"))
        clock.call_after(10.0, lambda: order.append("a"))
        clock.call_after(20.0, lambda: order.append("b"))
        clock.advance(40.0)
        assert order == ["a", "b", "c"]

    def test_event_sees_its_own_deadline_as_now(self):
        clock = VirtualClock()
        seen = []
        clock.call_after(25.0, lambda: seen.append(clock.now_ns))
        clock.advance(100.0)
        assert seen == [25.0]

    def test_cancelled_event_does_not_fire(self):
        clock = VirtualClock()
        fired = []
        event = clock.call_after(10.0, lambda: fired.append("x"))
        event.cancel()
        clock.advance(20.0)
        assert not fired

    def test_cancel_before_fire_returns_true_once(self):
        clock = VirtualClock()
        event = clock.call_after(10.0, lambda: None)
        assert event.cancel() is True
        assert event.cancel() is False  # already cancelled

    def test_cancel_after_fire_returns_false(self):
        # The event-lifecycle bug: _run_to never marked popped events, so
        # cancel() after dispatch claimed to have prevented a callback
        # that had already run.
        clock = VirtualClock()
        fired = []
        event = clock.call_after(10.0, lambda: fired.append("x"))
        clock.advance(20.0)
        assert fired == ["x"]
        assert event.fired is True
        assert event.cancel() is False

    def test_cancel_inside_own_callback_returns_false(self):
        clock = VirtualClock()
        results = []
        event = clock.call_after(
            10.0, lambda: results.append(event.cancel())
        )
        clock.advance(20.0)
        assert results == [False]

    def test_fired_event_without_callback_reports_fired(self):
        clock = VirtualClock()
        event = clock.call_after(5.0)  # pure deadline, no callback
        clock.advance(10.0)
        assert event.fired is True
        assert event.cancel() is False

    def test_cancelled_events_compacted_out_of_heap(self):
        # Cancelled 2MSL-style timers must not accumulate until their
        # distant deadlines: once more than half of a non-trivial queue
        # is cancelled, the heap is compacted asyncio-style.
        clock = VirtualClock()
        events = [clock.call_after(60e9 + i) for i in range(1000)]
        for event in events[:-1]:
            event.cancel()
        assert clock.pending_events == 1
        assert len(clock._events) < VirtualClock.COMPACT_MIN_EVENTS

    def test_heap_bounded_under_cancel_heavy_churn(self):
        clock = VirtualClock()
        for _ in range(50):
            batch = [clock.call_after(60e9) for _ in range(100)]
            for event in batch:
                event.cancel()
            clock.advance(1.0)
            assert len(clock._events) <= 2 * VirtualClock.COMPACT_MIN_EVENTS

    def test_next_deadline_skips_cancelled(self):
        clock = VirtualClock()
        first = clock.call_after(10.0)
        clock.call_after(25.0)
        assert clock.next_deadline_ns() == 10.0
        first.cancel()
        assert clock.next_deadline_ns() == 25.0

    def test_event_in_the_past_rejected(self):
        clock = VirtualClock()
        clock.advance(100.0)
        with pytest.raises(ClockError):
            clock.call_at(50.0, lambda: None)

    def test_callbacks_may_schedule_followups(self):
        clock = VirtualClock()
        fired = []
        clock.call_after(
            10.0,
            lambda: clock.call_after(10.0, lambda: fired.append(clock.now_ns)),
        )
        clock.advance(30.0)
        assert fired == [20.0]

    def test_reset_clears_time_and_events(self):
        clock = VirtualClock()
        fired = []
        clock.call_after(10.0, lambda: fired.append("x"))
        clock.advance(5.0)
        clock.reset()
        assert clock.now_ns == 0.0
        clock.advance(20.0)
        assert not fired

    def test_listeners_observe_targets(self):
        clock = VirtualClock()
        seen = []
        clock.add_listener(seen.append)
        clock.advance(10.0)
        clock.advance(5.0)
        assert seen == [10.0, 15.0]
        clock.remove_listener(seen.append)
        clock.advance(1.0)
        assert len(seen) == 2

    def test_listeners_notified_on_backward_jump(self):
        # The desync bug: backward jump_to mutated _now_ns silently, so a
        # bound TimerWheel kept a stale tick base after the legacy
        # `clock_ns = 0.0` reset idiom.
        clock = VirtualClock()
        seen = []
        clock.add_listener(seen.append)
        clock.advance(10.0)
        clock.jump_to(3.0)
        assert seen == [10.0, 3.0]

    def test_listeners_notified_on_reset(self):
        clock = VirtualClock()
        seen = []
        clock.add_listener(seen.append)
        clock.advance(10.0)
        clock.reset()
        assert seen == [10.0, 0.0]

    def test_listener_notification_across_all_moves(self):
        clock = VirtualClock()
        seen = []
        clock.add_listener(seen.append)
        clock.advance(5.0)          # forward
        clock.advance_to(9.0)       # forward absolute
        clock.jump_to(12.0)         # forward jump
        clock.jump_to(4.0)          # backward rebase
        clock.reset()               # rebase to zero
        assert seen == [5.0, 9.0, 12.0, 4.0, 0.0]

    def test_timer_wheel_rebases_after_backward_jump(self):
        from repro.sched.timers import TimerWheel

        clock = VirtualClock()
        wheel = TimerWheel(hz=250).bind_clock(clock)  # 4 ms ticks
        clock.advance(10 * wheel.tick_ns)
        assert wheel.current_tick == 10
        clock.jump_to(0.0)  # legacy engine.clock_ns = 0.0 reset idiom
        assert wheel.current_tick == 10  # ticks cannot un-fire
        # The wheel must tick again immediately, not only after the
        # clock re-crosses its old high-water mark.
        clock.advance(3 * wheel.tick_ns)
        assert wheel.current_tick == 13

    def test_timer_wheel_rebases_after_reset(self):
        from repro.sched.timers import TimerWheel

        clock = VirtualClock()
        wheel = TimerWheel(hz=250).bind_clock(clock)
        clock.advance(5 * wheel.tick_ns)
        clock.reset()
        clock.advance(2 * wheel.tick_ns)
        assert wheel.current_tick == 7


class TestClockContext:
    def test_default_clock_is_process_wide(self):
        assert current_clock() is default_clock()

    def test_use_clock_scopes_the_active_clock(self):
        mine = VirtualClock()
        with use_clock(mine):
            assert current_clock() is mine
            inner = VirtualClock()
            with use_clock(inner):
                assert current_clock() is inner
            assert current_clock() is mine
        assert current_clock() is not mine

    def test_use_clock_is_thread_local(self):
        mine = VirtualClock()
        observed = []
        with use_clock(mine):
            thread = threading.Thread(
                target=lambda: observed.append(current_clock())
            )
            thread.start()
            thread.join()
        assert observed[0] is not mine

    def test_tracer_sim_is_a_view_over_the_active_clock(self):
        from repro.observe import TRACER

        mine = VirtualClock()
        with use_clock(mine):
            mine.advance_ms(7.0)
            assert TRACER.sim.now_ms == pytest.approx(7.0)


class TestGuestLifecycle:
    def test_build_binds_every_layer_to_the_guest_clock(self):
        guest = variant_guest(Variant.LUPINE_NOKML, app="redis")
        assert guest.state is GuestState.BUILT
        assert guest.engine.clock is guest.clock
        assert guest.scheduler.clock is guest.clock
        assert guest.tcp.clock is guest.clock

    def test_boot_advances_only_this_guests_clock(self):
        before = default_clock().now_ns
        guest = variant_guest(Variant.LUPINE_NOKML, app="redis")
        report = guest.boot()
        assert guest.state is GuestState.BOOTED
        assert report.total_ms > 0
        assert guest.clock.now_ms == pytest.approx(report.total_ms)
        assert default_clock().now_ns == before

    def test_serve_runs_on_the_guest_clock(self):
        from repro.workloads.redis import REDIS_GET

        guest = variant_guest(Variant.LUPINE_NOKML, app="redis")
        rate = guest.serve(REDIS_GET, 50)
        assert rate > 0
        assert guest.requests_served == 50
        assert guest.uptime_ns == guest.engine.clock_ns

    def test_lifecycle_order_enforced(self):
        guest = Guest(GuestSpec(name="g"))
        with pytest.raises(GuestLifecycleError):
            guest.boot()
        guest.build()
        with pytest.raises(GuestLifecycleError):
            guest.build()
        guest.shutdown()
        with pytest.raises(GuestLifecycleError):
            guest.serve(None, 1)

    def test_full_image_guest_is_monitor_checked(self):
        from repro.observe import METRICS

        counter = METRICS.counter("vmm.guest_checks")
        before = counter.value
        guest = guest_for_app(Variant.LUPINE_NOKML, "redis")
        guest.boot()
        assert counter.value == before + 1
        assert guest.unikernel is not None
        assert guest.boot_report.system == guest.kernel.config.name

    def test_kernel_only_guest_is_not_monitor_checked(self):
        from repro.observe import METRICS

        counter = METRICS.counter("vmm.guest_checks")
        before = counter.value
        microvm_guest().boot()
        assert counter.value == before

    def test_hello_world_guest_has_no_network(self):
        guest = variant_guest(Variant.LUPINE_NOKML)  # bare hello-world
        assert guest.netpath is None
        with pytest.raises(GuestLifecycleError):
            guest.server_stack

    def test_full_image_requires_an_app(self):
        with pytest.raises(GuestLifecycleError):
            Guest(GuestSpec(
                name="g", variant=Variant.LUPINE_NOKML, full_image=True
            )).build()

    def test_two_guests_have_independent_timelines(self):
        from repro.workloads.redis import REDIS_GET

        first = variant_guest(Variant.LUPINE_NOKML, app="redis")
        second = variant_guest(Variant.LUPINE_NOKML, app="redis")
        first.serve(REDIS_GET, 10)
        assert first.clock.now_ns > 0
        assert second.clock.now_ns == 0.0

    def test_timer_wheel_follows_the_guest_clock(self):
        guest = variant_guest(Variant.LUPINE_NOKML, app="redis")
        wheel = guest.timer_wheel()
        baseline = wheel.current_tick
        guest.clock.advance_ms(3 * wheel.tick_ns / 1e6)
        assert wheel.current_tick == baseline + 3


class TestFleetSimulate:
    def test_same_seed_identical_manifest(self):
        from repro.core.orchestrator import Fleet, KernelPolicy

        first = Fleet.simulate(40, policy=KernelPolicy.GENERAL, seed=11)
        second = Fleet.simulate(40, policy=KernelPolicy.GENERAL, seed=11)
        assert first.manifest() == second.manifest()
        assert first.manifest_digest == second.manifest_digest

    def test_different_seed_different_mix(self):
        from repro.core.orchestrator import Fleet, KernelPolicy

        first = Fleet.simulate(40, policy=KernelPolicy.GENERAL, seed=11)
        second = Fleet.simulate(40, policy=KernelPolicy.GENERAL, seed=12)
        assert first.manifest_digest != second.manifest_digest

    def test_general_policy_shares_one_kernel(self):
        from repro.core.orchestrator import Fleet, KernelPolicy

        simulation = Fleet.simulate(30, policy=KernelPolicy.GENERAL, seed=5)
        assert simulation.distinct_kernels == 1

    def test_per_app_policy_diversifies_kernels(self):
        from repro.core.orchestrator import Fleet, KernelPolicy

        simulation = Fleet.simulate(60, policy=KernelPolicy.PER_APP, seed=5)
        assert simulation.distinct_kernels > 1

    def test_guests_boot_and_serve(self):
        from repro.core.orchestrator import Fleet, KernelPolicy

        simulation = Fleet.simulate(30, policy=KernelPolicy.GENERAL, seed=3)
        assert len(simulation.entries) == 30
        assert all(entry.boot_ms > 0 for entry in simulation.entries)
        served = [e for e in simulation.entries if e.requests]
        assert served, "the app mix should include serving workloads"
        assert all(entry.rps > 0 for entry in served)
        assert all(
            entry.uptime_ns > 0 for entry in simulation.entries
        )  # boot advanced every guest's own clock

    def test_empty_fleet_is_well_formed_but_negative_rejected(self):
        from repro.core.orchestrator import Fleet

        # Zero guests is a valid (empty) fleet with a defined manifest;
        # only negative sizes are rejected.  The full empty-manifest
        # shape is pinned in tests/test_eventcore.py.
        assert Fleet.simulate(0).manifest()["guests"] == []
        with pytest.raises(ValueError):
            Fleet.simulate(-1)
