"""Tests for the boot simulator."""

import pytest

from repro.boot.bootsim import BootSimulator
from repro.boot.phases import BootPhase, RootfsKind


@pytest.fixture
def simulator():
    return BootSimulator(monitor_setup_ms=8.0)


class TestPhases:
    def test_all_phases_present(self, simulator, nokml_build):
        report = simulator.boot(nokml_build.image)
        for phase in BootPhase:
            assert phase in report.phases_ms

    def test_total_is_sum(self, simulator, nokml_build):
        report = simulator.boot(nokml_build.image)
        assert report.total_ms == pytest.approx(
            sum(report.phases_ms.values())
        )

    def test_breakdown_renders(self, simulator, nokml_build):
        text = simulator.boot(nokml_build.image).breakdown()
        assert "clock-calibration" in text
        assert "ms" in text


class TestParavirt:
    def test_paravirt_dominates_calibration(self, simulator, nokml_build,
                                            lupine_build):
        with_pv = simulator.boot(nokml_build.image)
        without_pv = simulator.boot(lupine_build.image)
        assert with_pv.phase_ms(BootPhase.CLOCK_CALIBRATION) < 3
        assert without_pv.phase_ms(BootPhase.CLOCK_CALIBRATION) > 45

    def test_kml_boots_slower_than_nokml(self, simulator, nokml_build,
                                         lupine_build):
        """Section 4.3: without PARAVIRT boot jumps to ~71 ms."""
        kml = simulator.boot(lupine_build.image).total_ms
        nokml = simulator.boot(nokml_build.image).total_ms
        assert kml > 2 * nokml


class TestConfigurationEffects:
    def test_microvm_boots_slower_than_lupine(self, simulator, microvm_build,
                                              nokml_build):
        microvm = simulator.boot(microvm_build.image).total_ms
        lupine = simulator.boot(nokml_build.image).total_ms
        assert lupine < 0.5 * microvm  # paper: 59% faster

    def test_paper_absolute_ranges(self, simulator, microvm_build,
                                   nokml_build):
        assert 50 <= simulator.boot(microvm_build.image).total_ms <= 62
        assert 19 <= simulator.boot(nokml_build.image).total_ms <= 26

    def test_general_costs_about_2ms_extra(self, simulator, nokml_build,
                                           general_build):
        # lupine-general-nokml needs its PARAVIRT sibling for a fair diff
        from repro.core.variants import Variant, build_variant

        general_nokml = build_variant(Variant.LUPINE_GENERAL_NOKML)
        delta = (
            simulator.boot(general_nokml.image).total_ms
            - simulator.boot(nokml_build.image).total_ms
        )
        assert 0.5 <= delta <= 3.5  # paper: ~2 ms

    def test_initcalls_scale_with_options(self, simulator, microvm_build,
                                          nokml_build):
        big = simulator.boot(microvm_build.image)
        small = simulator.boot(nokml_build.image)
        assert big.phase_ms(BootPhase.INITCALLS) > (
            3 * small.phase_ms(BootPhase.INITCALLS)
        )


class TestRootfsKinds:
    def test_zfs_is_an_order_of_magnitude_worse(self):
        """Section 4.3: OSv's zfs vs read-only filesystem, 10x."""
        assert RootfsKind.ZFS.mount_ms / RootfsKind.ROFS.mount_ms > 10

    def test_rootfs_choice_changes_total(self, simulator, nokml_build):
        ext2 = simulator.boot(nokml_build.image, rootfs=RootfsKind.EXT2)
        zfs = simulator.boot(nokml_build.image, rootfs=RootfsKind.ZFS)
        assert zfs.total_ms - ext2.total_ms == pytest.approx(
            RootfsKind.ZFS.mount_ms - RootfsKind.EXT2.mount_ms
        )

    def test_system_label(self, simulator, nokml_build):
        report = simulator.boot(nokml_build.image, system="mylabel")
        assert report.system == "mylabel"
