"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_apps_lists_twenty(self, capsys):
        assert main(["apps"]) == 0
        output = capsys.readouterr().out
        assert "nginx" in output and "elasticsearch" in output
        assert len(output.strip().splitlines()) == 21  # header + 20

    def test_build(self, capsys):
        assert main(["build", "redis"]) == 0
        output = capsys.readouterr().out
        assert "kernel image" in output
        assert "rootfs" in output

    def test_build_variant_flag(self, capsys):
        assert main(["build", "redis", "--variant", "lupine-nokml"]) == 0
        assert "kml=no" in capsys.readouterr().out

    def test_boot_succeeds(self, capsys):
        assert main(["boot", "nginx"]) == 0
        output = capsys.readouterr().out
        assert "clock-calibration" in output
        assert "nginx: ready" in output

    def test_config(self, capsys):
        assert main(["config", "redis"]) == 0
        output = capsys.readouterr().out
        assert "+ CONFIG_EPOLL" in output

    def test_config_full_fragment(self, capsys):
        assert main(["config", "hello-world", "--full"]) == 0
        assert "CONFIG_PRINTK=y" in capsys.readouterr().out

    def test_unknown_app_errors(self):
        with pytest.raises(KeyError):
            main(["build", "doom"])

    def test_experiment_table(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "FUTEX" in capsys.readouterr().out

    def test_experiment_figure(self, capsys):
        assert main(["experiment", "fig5"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestExtendedCli:
    def test_trace(self, capsys):
        assert main(["trace", "redis"]) == 0
        output = capsys.readouterr().out
        assert "derived options:" in output
        assert "INET" in output

    def test_trace_counts(self, capsys):
        assert main(["trace", "nginx", "--counts"]) == 0
        output = capsys.readouterr().out
        assert "openat" in output

    def test_footprint(self, capsys):
        assert main(["footprint", "redis"]) == 0
        output = capsys.readouterr().out
        assert "MB minimum" in output

    def test_lmbench(self, capsys):
        assert main(["lmbench"]) == 0
        assert "null call" in capsys.readouterr().out

    def test_dmesg(self, capsys):
        assert main(["dmesg", "redis"]) == 0
        output = capsys.readouterr().out
        assert "boot complete" in output
        assert "ring 0" in output  # default variant is KML

    def test_selfcheck_passes(self, capsys):
        assert main(["selfcheck"]) == 0
        output = capsys.readouterr().out
        assert "FAIL" not in output
        assert output.count("[ok ]") == 9


class TestRunAll:
    def test_run_all_subset(self, capsys, tmp_path):
        assert main(
            ["run-all", "--only", "fig5,table3", "--jobs", "2",
             "--output-dir", str(tmp_path)]
        ) == 0
        output = capsys.readouterr().out
        assert "fig5" in output and "table3" in output
        assert "result cache" in output
        assert "kernel builds" in output
        assert (tmp_path / "run_manifest.json").exists()
        assert (tmp_path / "fig5.txt").exists()
        assert (tmp_path / "fig5.dat").exists()

    def test_run_all_unknown_experiment(self, capsys, tmp_path):
        assert main(
            ["run-all", "--only", "fig99", "--output-dir", str(tmp_path)]
        ) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_all_emits_observability_artifacts(self, capsys, tmp_path):
        assert main(
            ["run-all", "--only", "fig5", "--output-dir", str(tmp_path)]
        ) == 0
        assert (tmp_path / "trace.json").exists()
        assert (tmp_path / "metrics.json").exists()
        output = capsys.readouterr().out
        assert "trace" in output and "metrics" in output

    def test_run_all_shows_status_column(self, capsys, tmp_path):
        assert main(
            ["run-all", "--only", "fig5", "--output-dir", str(tmp_path)]
        ) == 0
        output = capsys.readouterr().out
        assert "status" in output and "ok" in output

    def test_run_all_failure_summary_and_nonzero_exit(self, capsys,
                                                      tmp_path):
        from repro import faults
        from repro.faults import FaultPlane

        plane = FaultPlane(seed=0)
        plane.one_shot("experiment.run", transient=False, scope="fig5")
        try:
            with faults.activated(plane):
                code = main(
                    ["run-all", "--only", "fig5,table3", "--cold",
                     "--output-dir", str(tmp_path)]
                )
        finally:
            faults.deactivate()
        assert code == 1
        captured = capsys.readouterr()
        assert "FAILURES" in captured.err
        assert "[failed] fig5" in captured.err
        # The healthy experiment and the manifest still landed.
        assert (tmp_path / "table3.txt").exists()
        assert (tmp_path / "run_manifest.json").exists()


class TestChaosCli:
    def test_chaos_subset_invariants_hold(self, capsys, tmp_path):
        assert main(
            ["chaos", "--seed", "5", "--only", "fig4,fig5,table3",
             "--output-dir", str(tmp_path)]
        ) == 0
        output = capsys.readouterr().out
        assert "all hold" in output
        assert "VIOLATION" not in output
        for sub in ("run-a", "run-b"):
            assert (tmp_path / sub / "run_manifest.json").exists()
            assert (tmp_path / sub / "trace.json").exists()
            assert (tmp_path / sub / "metrics.json").exists()


class TestObservabilityCli:
    def test_trace_run_renders_report(self, capsys, tmp_path):
        assert main(
            ["run-all", "--only", "fig5,fig7", "--output-dir", str(tmp_path)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["trace", "--run", "--output-dir", str(tmp_path), "--top", "5"]
        ) == 0
        output = capsys.readouterr().out
        assert "self time" in output
        assert "phase breakdown" in output
        assert "fig7" in output

    def test_trace_without_app_defaults_to_run_report(self, capsys, tmp_path):
        main(["run-all", "--only", "fig5", "--output-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["trace", "--output-dir", str(tmp_path)]) == 0
        assert "phase breakdown" in capsys.readouterr().out

    def test_trace_run_without_artifacts_errors(self, capsys, tmp_path):
        assert main(["trace", "--run", "--output-dir", str(tmp_path)]) == 2
        assert "run-all" in capsys.readouterr().err

    def test_regress_identical_runs_pass(self, capsys, tmp_path):
        main(["run-all", "--only", "fig5", "--output-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["regress", str(tmp_path), str(tmp_path)]) == 0
        assert "0 regressed" in capsys.readouterr().out
