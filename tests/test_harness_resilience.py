"""Tests for harness failure containment, retries, and timeouts.

Covers the tentpole resilience invariants: one failing experiment never
aborts the run, transient faults are retried under the RetryPolicy,
hangs/deadlines become ``timed_out``, the schema-v2 manifest always
lands with a definite per-experiment status, and fault-free runs remain
byte-identical to the pre-fault-plane harness.
"""

import json

import pytest

from repro import faults
from repro.faults import FaultPlane
from repro.harness import Artifact, Experiment, run_experiments
from repro.harness.runner import RetryPolicy
from repro.observe import METRICS, TRACER

#: Cheap real experiments to run alongside synthetic failing ones.
FAST_IDS = ["fig4", "fig5", "table3"]


@pytest.fixture(autouse=True)
def _no_leaked_plane():
    faults.deactivate()
    yield
    faults.deactivate()


def _synthetic(name, calls, body=None):
    """A registry-free experiment recording its executions in *calls*."""

    def _run():
        calls.append(name)
        if body is not None:
            body()
        return {"value": len(calls)}

    return Experiment(
        name=name,
        run_fn=_run,
        artifact_fn=lambda: Artifact(text=f"{name}: ran {len(calls)} times"),
        fingerprint_fn=lambda: "ffff",
    )


def _counter(name):
    return METRICS.counter(name).value


class TestFailureContainment:
    def test_failing_experiment_isolated_under_jobs_4(self, tmp_path):
        calls = []

        def _boom():
            raise ValueError("experiment body exploded")

        experiments = [
            _synthetic("good-a", calls),
            _synthetic("bad", calls, body=_boom),
            _synthetic("good-b", calls),
        ]
        run = run_experiments(
            experiments=experiments, jobs=4,
            output_dir=tmp_path / "out", cache_dir=tmp_path / "cache",
        )
        # The healthy experiments' results and outputs all landed.
        assert list(run.results) == ["good-a", "good-b"]
        assert (tmp_path / "out" / "good_a.txt").exists()
        assert (tmp_path / "out" / "good_b.txt").exists()
        assert not (tmp_path / "out" / "bad.txt").exists()
        # The failure is a structured outcome, not an exception.
        assert not run.ok
        assert run.failures == {"bad": "ValueError: experiment body exploded"}
        entry = next(e for e in run.telemetry.experiments if e.name == "bad")
        assert entry.status == "failed"
        assert entry.attempts == 1  # ValueError is persistent: no retry
        # The manifest still landed, complete and schema-v2.
        manifest = json.loads(run.manifest_path.read_text())
        assert manifest["schema_version"] == 2
        assert manifest["failures"] == 1
        statuses = {e["name"]: e["status"] for e in manifest["experiments"]}
        assert statuses == {"good-a": "ok", "bad": "failed", "good-b": "ok"}
        assert (tmp_path / "out" / "trace.json").exists()
        assert (tmp_path / "out" / "metrics.json").exists()

    def test_manifest_written_when_everything_fails(self, tmp_path):
        def _boom():
            raise RuntimeError("nope")

        run = run_experiments(
            experiments=[_synthetic("bad", [], body=_boom)], jobs=1,
            output_dir=tmp_path / "out", cache_dir=tmp_path / "cache",
        )
        assert run.results == {}
        manifest = json.loads(run.manifest_path.read_text())
        assert manifest["experiments"][0]["status"] == "failed"
        assert manifest["experiments"][0]["error"] == "RuntimeError: nope"

    def test_failed_status_span_attrs_only_on_abnormal(self, tmp_path):
        mark = TRACER.mark()
        run_experiments(
            experiments=[_synthetic("fine", [])], jobs=1,
            write_outputs=False, use_result_cache=False,
        )
        spans = [r for r in TRACER.records_since(mark)
                 if r.name == "experiment:fine"]
        assert spans and "status" not in spans[0].attrs
        assert "attempts" not in spans[0].attrs


class TestRetries:
    def test_transient_fault_retried_to_success(self, tmp_path):
        calls = []
        plane = FaultPlane(seed=0)
        plane.one_shot("experiment.run")
        retries_before = _counter("harness.retries")
        with faults.activated(plane):
            run = run_experiments(
                experiments=[_synthetic("flaky", calls)], jobs=1,
                output_dir=tmp_path / "out", cache_dir=tmp_path / "cache",
            )
        # The fault fires on entering the site, before the body: the body
        # itself ran once, on the successful second attempt.
        assert calls == ["flaky"]
        entry = run.telemetry.experiments[0]
        assert entry.status == "ok"
        assert entry.attempts == 2
        assert entry.error is None
        assert run.results["flaky"] == {"value": 1}
        assert _counter("harness.retries") == retries_before + 1

    def test_transient_exhaustion_ends_failed(self, tmp_path):
        plane = FaultPlane(seed=0)
        plane.configure("experiment.run", nth_calls=(1, 2, 3))
        failures_before = _counter("harness.failures")
        with faults.activated(plane):
            run = run_experiments(
                experiments=[_synthetic("doomed", [])], jobs=1,
                write_outputs=False, use_result_cache=False,
                retry_policy=RetryPolicy(max_attempts=3),
            )
        entry = run.telemetry.experiments[0]
        assert entry.status == "failed"
        assert entry.attempts == 3
        assert "injected fault" in entry.error
        assert _counter("harness.failures") == failures_before + 1

    def test_backoff_advances_simulated_clock(self, tmp_path):
        plane = FaultPlane(seed=0)
        plane.configure("experiment.run", nth_calls=(1, 2))
        sim_before = TRACER.sim.now_ms
        with faults.activated(plane):
            run_experiments(
                experiments=[_synthetic("flaky", [])], jobs=1,
                write_outputs=False, use_result_cache=False,
                retry_policy=RetryPolicy(max_attempts=3, backoff_ms=50.0),
            )
        # Two retries: 50 * 1 + 50 * 2 = 150 simulated ms, no host sleep.
        assert TRACER.sim.now_ms - sim_before == pytest.approx(150.0)


class TestTimeouts:
    def test_injected_hang_marks_timed_out(self, tmp_path):
        plane = FaultPlane(seed=0)
        plane.one_shot("experiment.run", kind="hang", hang_ms=180_000.0)
        timeouts_before = _counter("harness.timeouts")
        with faults.activated(plane):
            run = run_experiments(
                experiments=[_synthetic("hung", [])], jobs=1,
                output_dir=tmp_path / "out", cache_dir=tmp_path / "cache",
            )
        entry = run.telemetry.experiments[0]
        assert entry.status == "timed_out"
        assert entry.attempts == 1  # hangs are never retried
        assert "injected hang" in entry.error
        assert _counter("harness.timeouts") == timeouts_before + 1
        manifest = json.loads(run.manifest_path.read_text())
        assert manifest["experiments"][0]["status"] == "timed_out"

    def test_sim_deadline_marks_timed_out(self):
        def _slow_then_crash():
            TRACER.sim.advance(5_000.0)
            raise ValueError("ran too long")

        run = run_experiments(
            experiments=[_synthetic("runaway", [], body=_slow_then_crash)],
            jobs=1, write_outputs=False, use_result_cache=False,
            retry_policy=RetryPolicy(deadline_ms=1_000.0),
        )
        assert run.telemetry.experiments[0].status == "timed_out"


class TestCacheFaults:
    def test_corrupt_load_is_a_miss_and_reruns(self, tmp_path):
        calls = []
        kwargs = dict(
            jobs=1, write_outputs=False, cache_dir=tmp_path / "cache",
        )
        run_experiments(experiments=[_synthetic("exp", calls)], **kwargs)
        assert calls == ["exp"]

        plane = FaultPlane(seed=0)
        plane.one_shot("resultcache.load", kind="corrupt")
        with faults.activated(plane):
            warm = run_experiments(
                experiments=[_synthetic("exp", calls)], **kwargs
            )
        # The truncated entry parsed as a miss: re-ran and re-stored.
        assert calls == ["exp", "exp"]
        assert warm.telemetry.experiments[0].status == "ok"
        # The re-store healed the cache: the next run hits.
        final = run_experiments(experiments=[_synthetic("exp", calls)],
                                **kwargs)
        assert calls == ["exp", "exp"]
        assert final.telemetry.experiments[0].status == "cache_hit"

    def test_store_fault_retried_and_leaves_no_debris(self, tmp_path):
        calls = []
        plane = FaultPlane(seed=0)
        plane.one_shot("resultcache.store")
        with faults.activated(plane):
            run = run_experiments(
                experiments=[_synthetic("exp", calls)], jobs=1,
                write_outputs=False, cache_dir=tmp_path / "cache",
            )
        entry = run.telemetry.experiments[0]
        assert entry.status == "ok"
        assert entry.attempts == 2
        assert calls == ["exp", "exp"]
        # No truncated/temporary files survived the injected store failure.
        leftovers = sorted(p.name for p in (tmp_path / "cache").iterdir())
        assert leftovers == ["exp.json"]
        json.loads((tmp_path / "cache" / "exp.json").read_text())


class TestFaultFreeTransparency:
    def test_no_plane_runs_are_byte_identical(self, tmp_path):
        names = FAST_IDS
        first = run_experiments(
            names=names, jobs=1, force=True,
            output_dir=tmp_path / "a", cache_dir=tmp_path / "ca",
        )
        second = run_experiments(
            names=names, jobs=1, force=True,
            output_dir=tmp_path / "b", cache_dir=tmp_path / "cb",
        )
        for name in names:
            assert (
                first.output_paths[name].read_bytes()
                == second.output_paths[name].read_bytes()
            )
        assert first.ok and second.ok

    def test_clean_run_reports_zero_resilience_counters(self, tmp_path):
        run = run_experiments(
            names=["fig4"], jobs=1,
            output_dir=tmp_path / "out", cache_dir=tmp_path / "cache",
        )
        metrics = json.loads(run.metrics_path.read_text())
        # Pre-registered as explicit zeros so a baseline can pin them
        # (counters only grow within a process; assert presence).
        for name in ("harness.retries", "harness.failures",
                     "harness.timeouts", "harness.fingerprint_errors",
                     "faults.injected"):
            assert name in metrics["counters"]
