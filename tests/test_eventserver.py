"""Tests for the executed event-loop server, including model validation."""

import pytest

from repro.apps.registry import get_app
from repro.core.variants import Variant, build_microvm, build_variant
from repro.netstack.tcp import stack_for_config
from repro.workloads.eventserver import EventLoopServer
from repro.workloads.redis import REDIS_GET
from repro.workloads.server import LinuxServerStack


def _server(build, app_ns=4000.0):
    return EventLoopServer(
        engine=build.syscall_engine(),
        tcp=stack_for_config(build.config.enabled),
        app_ns_per_request=app_ns,
    )


@pytest.fixture(scope="module")
def redis_build():
    return build_variant(Variant.LUPINE, get_app("redis"))


class TestServing:
    def test_serves_requests(self, redis_build):
        server = _server(redis_build)
        fd = server.open_connection(peer_port=1000)
        for _ in range(5):
            server.send_request(fd)
        result = server.run_until_drained()
        assert result.requests_served == 5
        assert result.elapsed_ns > 0

    def test_multiple_connections(self, redis_build):
        server = _server(redis_build)
        fds = [server.open_connection(peer_port=1000 + i) for i in range(8)]
        for fd in fds:
            server.send_request(fd)
        result = server.run_until_drained()
        assert result.requests_served == 8

    def test_blocks_when_idle(self, redis_build):
        server = _server(redis_build)
        server.open_connection(peer_port=1000)
        result = server.run_until_drained()
        assert result.requests_served == 0

    def test_backlog_overflow_raises(self, redis_build):
        server = EventLoopServer(
            engine=redis_build.syscall_engine(),
            tcp=stack_for_config(redis_build.config.enabled, backlog=0),
            app_ns_per_request=4000.0,
        )
        with pytest.raises(RuntimeError, match="backlog"):
            server.open_connection(peer_port=1000)


class TestModelValidation:
    def test_executed_and_analytic_models_agree(self, redis_build):
        """The executed server validates the analytic request model."""
        server = _server(redis_build, app_ns=REDIS_GET.app_ns)
        fd = server.open_connection(peer_port=1000)
        requests = 200
        for _ in range(requests):
            server.send_request(fd)
        executed = server.run_until_drained(
            response_bytes=REDIS_GET.payload_bytes
        )
        analytic = LinuxServerStack(
            engine=redis_build.syscall_engine(),
            netpath=redis_build.network_path(),
        ).requests_per_second(REDIS_GET)
        ratio = executed.requests_per_second / analytic
        assert 0.5 <= ratio <= 2.0

    def test_microvm_slower_than_lupine_when_executed(self, redis_build):
        def rps(build):
            server = _server(build, app_ns=REDIS_GET.app_ns)
            fd = server.open_connection(peer_port=1000)
            for _ in range(100):
                server.send_request(fd)
            return server.run_until_drained().requests_per_second

        assert rps(redis_build) > rps(build_microvm())
