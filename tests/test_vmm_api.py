"""Tests for the Firecracker-style configuration API."""

import pytest

from repro.apps.registry import get_app
from repro.core.lupine import LupineBuilder
from repro.core.variants import Variant
from repro.vmm.api import (
    ApiError,
    BootSource,
    Drive,
    InstanceState,
    MachineConfig,
    MicrovmInstance,
    NetworkInterface,
    launch_lupine,
)


@pytest.fixture(scope="module")
def nginx_unikernel():
    return LupineBuilder(variant=Variant.LUPINE_NOKML).build_for_app(
        get_app("nginx")
    )


def _configured(unikernel):
    instance = MicrovmInstance()
    instance.put_boot_source(BootSource(kernel_image=unikernel.build.image))
    instance.put_drive(Drive("rootfs", True, False, 4.0))
    return instance


class TestMachineConfig:
    def test_validation(self):
        with pytest.raises(ApiError):
            MachineConfig(vcpu_count=0)
        with pytest.raises(ApiError):
            MachineConfig(mem_size_mib=0)

    def test_vcpu_cap_of_monitor(self):
        from repro.vmm.monitor import solo5_hvt

        instance = MicrovmInstance(monitor=solo5_hvt())
        with pytest.raises(ApiError, match="at most"):
            instance.put_machine_config(MachineConfig(vcpu_count=2))


class TestSequencing:
    def test_start_without_boot_source_rejected(self):
        instance = MicrovmInstance()
        instance.put_drive(Drive("rootfs", True, False, 4.0))
        with pytest.raises(ApiError, match="boot source"):
            instance.instance_start()

    def test_start_without_root_drive_rejected(self, nginx_unikernel):
        instance = MicrovmInstance()
        instance.put_boot_source(
            BootSource(kernel_image=nginx_unikernel.build.image)
        )
        with pytest.raises(ApiError, match="root device"):
            instance.instance_start()

    def test_double_root_drive_rejected(self, nginx_unikernel):
        instance = _configured(nginx_unikernel)
        with pytest.raises(ApiError, match="root device"):
            instance.put_drive(Drive("other", True, False, 1.0))

    def test_duplicate_ids_rejected(self, nginx_unikernel):
        instance = _configured(nginx_unikernel)
        with pytest.raises(ApiError, match="already exists"):
            instance.put_drive(Drive("rootfs", False, True, 1.0))
        instance.put_network_interface(NetworkInterface("eth0"))
        with pytest.raises(ApiError, match="already exists"):
            instance.put_network_interface(NetworkInterface("eth0"))

    def test_no_reconfiguration_after_start(self, nginx_unikernel):
        instance = _configured(nginx_unikernel)
        instance.instance_start()
        with pytest.raises(ApiError, match="immutable"):
            instance.put_machine_config(MachineConfig())
        with pytest.raises(ApiError, match="immutable"):
            instance.put_drive(Drive("extra", False, True, 1.0))

    def test_incompatible_kernel_rejected_at_boot_source(self, tree):
        from repro.kbuild.builder import KernelBuilder
        from repro.kconfig.database import base_option_names
        from repro.kconfig.resolver import Resolver
        from repro.vmm.monitor import MonitorError

        names = [n for n in base_option_names() if n != "VIRTIO_BLK"]
        config = Resolver(tree).resolve_names(names)
        image = KernelBuilder().build(config)
        instance = MicrovmInstance()
        with pytest.raises(MonitorError):
            instance.put_boot_source(BootSource(kernel_image=image))


class TestLifecycle:
    def test_start_pause_resume_stop(self, nginx_unikernel):
        instance = _configured(nginx_unikernel)
        report = instance.instance_start()
        assert instance.state is InstanceState.RUNNING
        assert report.total_ms > 0
        instance.pause()
        assert instance.state is InstanceState.PAUSED
        instance.resume()
        instance.stop()
        assert instance.state is InstanceState.STOPPED

    def test_invalid_transitions(self, nginx_unikernel):
        instance = _configured(nginx_unikernel)
        with pytest.raises(ApiError):
            instance.pause()
        with pytest.raises(ApiError):
            instance.resume()
        with pytest.raises(ApiError):
            instance.stop()


class TestLaunchHelper:
    def test_launch_lupine_full_sequence(self, nginx_unikernel):
        instance = launch_lupine(nginx_unikernel)
        assert instance.state is InstanceState.RUNNING
        assert instance.network_interfaces  # nginx needs networking
        assert instance.boot_report.total_ms > 0

    def test_launch_local_app_has_no_nic(self):
        unikernel = LupineBuilder(variant=Variant.LUPINE).build_for_app(
            get_app("hello-world")
        )
        instance = launch_lupine(unikernel)
        assert instance.network_interfaces == []
