"""Paper-shape tests: every experiment must reproduce the paper's findings.

These are the repository's acceptance tests: for each table/figure they
assert the qualitative shape (who wins, by roughly what factor, where
crossovers fall), not exact absolute numbers.
"""

import pytest

from repro.experiments import (
    fig3_config_options,
    fig4_breakdown,
    fig5_growth,
    fig6_image_size,
    fig7_boot_time,
    fig8_memory,
    fig9_syscalls,
    fig10_kml,
    fig11_control,
    fig12_ctxsw,
    sec5_smp,
    table1_syscall_options,
    table3_top20,
    table4_apps,
    table5_lmbench,
)


class TestFig3:
    def test_totals(self):
        results = fig3_config_options.run()
        assert sum(results["total"].values()) == 15953
        assert sum(results["microvm"].values()) == 833
        assert sum(results["lupine-base"].values()) == 283

    def test_drivers_dominate_total_but_not_microvm(self):
        results = fig3_config_options.run()
        assert results["total"]["drivers"] > 8000
        assert results["microvm"]["drivers"] < 200

    def test_series_nest(self):
        results = fig3_config_options.run()
        for directory in results["total"]:
            assert (results["lupine-base"].get(directory, 0)
                    <= results["microvm"].get(directory, 0)
                    <= results["total"][directory])

    def test_table_renders(self):
        from repro.metrics.reporting import render_table

        text = render_table(fig3_config_options.table())
        assert "drivers" in text and "TOTAL" in text


class TestFig4:
    def test_paper_arithmetic(self):
        results = fig4_breakdown.run()
        assert results["microvm"] == 833
        assert results["removed"] == 550
        assert (results["app"], results["mp"], results["hw"]) == (311, 89, 150)
        assert results["lupine-base"] == 283

    def test_subcategories_sum_to_categories(self):
        results = fig4_breakdown.run()
        subs = fig4_breakdown.subcategories()
        for category in ("app", "mp", "hw"):
            total = sum(v for k, v in subs.items()
                        if k.startswith(f"{category}:"))
            assert total == results[category]


class TestTable1:
    def test_twelve_rows(self):
        assert len(table1_syscall_options.run()) == 12

    def test_futex_row(self):
        rows = table1_syscall_options.run()
        assert set(rows["FUTEX"]) == {"futex", "set_robust_list",
                                      "get_robust_list"}


class TestTable3AndFig5:
    def test_counts_via_manifest_pipeline(self):
        counts = table3_top20.run()
        assert counts["nginx"] == 13
        assert counts["hello-world"] == 0
        assert sum(counts.values()) == sum(
            (13, 10, 13, 5, 10, 11, 9, 8, 10, 0, 13, 0, 0, 0, 12, 0, 9, 8,
             11, 12)
        )

    def test_growth_starts_13_ends_19(self):
        growth = fig5_growth.run()
        assert growth[0] == 13 and growth[-1] == 19
        # flattening: second half adds at most 2 options
        assert growth[-1] - growth[9] <= 2


class TestFig6:
    def test_lupine_fraction_of_microvm(self):
        results = fig6_image_size.run()
        fraction = results["lupine"] / results["microvm"]
        assert 0.24 <= fraction <= 0.31  # paper: 27%

    def test_tiny_smaller_than_lupine(self):
        results = fig6_image_size.run()
        assert results["lupine-tiny"] < results["lupine"]

    def test_general_below_osv_and_rump(self):
        """Section 4.2's ordering claim."""
        results = fig6_image_size.run()
        assert results["lupine-general"] < results["osv"]
        assert results["lupine-general"] < results["rump"]

    def test_hermitux_is_smallest(self):
        results = fig6_image_size.run()
        assert results["hermitux"] == min(results.values())

    def test_app_specific_band(self):
        fractions = fig6_image_size.app_specific_range()
        assert 0.24 <= min(fractions.values())
        assert max(fractions.values()) <= 0.34  # paper: 27-33%


class TestFig7:
    def test_lupine_vs_microvm(self):
        """Paper: 59% faster boot than microVM (23 vs 56 ms)."""
        results = fig7_boot_time.run()
        improvement = 1 - results["lupine-nokml"] / results["microvm"]
        assert 0.5 <= improvement <= 0.68

    def test_absolute_ballparks(self):
        results = fig7_boot_time.run()
        assert 50 <= results["microvm"] <= 62
        assert 19 <= results["lupine-nokml"] <= 26
        assert 64 <= results["lupine-kml-noparavirt"] <= 78  # paper: 71 ms

    def test_general_adds_about_2ms(self):
        results = fig7_boot_time.run()
        delta = results["lupine-nokml-general"] - results["lupine-nokml"]
        assert 0.5 <= delta <= 3.5

    def test_general_still_faster_than_hermitux_and_osv_zfs(self):
        results = fig7_boot_time.run()
        assert results["lupine-nokml-general"] < results["hermitux"]
        assert results["lupine-nokml-general"] < results["osv-zfs"]

    def test_osv_zfs_vs_rofs_10x_effect(self):
        results = fig7_boot_time.run()
        assert results["osv-zfs"] > 3 * results["osv-rofs"]

    def test_tiny_does_not_improve_boot(self):
        """Section 4.3: -tiny's 6% size cut does not speed up boot."""
        results = fig7_boot_time.run()
        assert results["lupine-nokml-tiny"] >= results["lupine-nokml"] - 1.0


class TestFig8:
    def test_microvm_vs_lupine(self):
        results = fig8_memory.run()
        assert 26 <= results["microvm"]["hello-world"] <= 32  # ~29
        assert 18 <= results["lupine"]["hello-world"] <= 24   # ~21

    def test_linux_systems_show_little_variation(self):
        """Section 4.4: 'the Linux-based approaches do not [vary]'."""
        for system in ("microvm", "lupine"):
            row = fig8_memory.run()[system]
            values = [v for v in row.values() if v is not None]
            assert max(values) - min(values) <= 3

    def test_lupine_beats_every_unikernel_on_redis(self):
        results = fig8_memory.run()
        lupine_redis = results["lupine"]["redis"]
        for system in ("hermitux", "osv", "rump"):
            assert results[system]["redis"] > lupine_redis

    def test_hermitux_nginx_absent(self):
        assert fig8_memory.run()["hermitux"]["nginx"] is None

    def test_unikernels_win_on_hello(self):
        results = fig8_memory.run()
        for system in ("hermitux", "rump", "osv"):
            assert results[system]["hello-world"] < (
                results["lupine"]["hello-world"]
            )


class TestFig9:
    def test_specialization_up_to_56_percent(self):
        improvement = fig9_syscalls.specialization_improvement()
        assert 0.50 <= improvement <= 0.60

    def test_kml_adds_about_40_percent_on_null(self):
        improvement = fig9_syscalls.kml_improvement()
        assert 0.35 <= improvement <= 0.45

    def test_general_equals_app_specific(self):
        """Section 4.5: no latency difference between lupine and general."""
        results = fig9_syscalls.run()
        for test in ("null", "read", "write"):
            assert results["lupine"][test] == pytest.approx(
                results["lupine-general"][test], rel=0.02
            )

    def test_osv_quirks(self):
        results = fig9_syscalls.run()
        assert results["osv"]["null"] < results["lupine"]["null"]
        assert results["osv"]["read"] > results["microvm"]["read"]

    def test_lupine_competitive_with_unikernels(self):
        results = fig9_syscalls.run()
        assert results["lupine"]["null"] <= 2.0 * results["hermitux"]["null"]


class TestFig10:
    def test_decay_shape(self):
        points = dict(fig10_kml.run())
        assert 0.35 <= points[0] <= 0.45
        assert points[160] < 0.05
        values = [v for _, v in sorted(fig10_kml.run())]
        assert values == sorted(values, reverse=True)


class TestTable4:
    PAPER = {
        "lupine": (1.21, 1.22, 1.33, 1.14),
        "lupine-general": (1.19, 1.20, 1.29, 1.15),
        "lupine-tiny": (1.15, 1.16, 1.23, 1.11),
        "lupine-nokml": (1.20, 1.21, 1.29, 1.16),
        "lupine-nokml-tiny": (1.13, 1.13, 1.21, 1.12),
        "hermitux": (0.66, 0.67, None, None),
        "osv": (0.87, 0.53, None, None),
        "rump": (0.99, 0.99, 1.25, 0.53),
    }

    @pytest.fixture(scope="class")
    def results(self):
        return table4_apps.run()

    @pytest.mark.parametrize("system", sorted(PAPER))
    def test_each_system_within_tolerance(self, results, system):
        columns = ("redis-get", "redis-set", "nginx-conn", "nginx-sess")
        for column, expected in zip(columns, self.PAPER[system]):
            measured = results[system][column]
            if expected is None:
                assert measured is None, (system, column)
            else:
                assert measured == pytest.approx(expected, abs=0.09), (
                    system, column
                )

    def test_lupine_beats_baseline_and_every_unikernel(self, results):
        for column in ("redis-get", "redis-set"):
            lupine = results["lupine"][column]
            assert lupine > 1.0
            for system in ("hermitux", "osv", "rump"):
                assert lupine > (results[system][column] or 0)

    def test_kml_contributes_at_most_a_few_points(self, results):
        """Section 4.6: KML adds at most ~4 percentage points."""
        for column in ("redis-get", "nginx-conn"):
            delta = results["lupine"][column] - results["lupine-nokml"][column]
            assert -0.01 <= delta <= 0.05

    def test_tiny_costs_up_to_10_points(self, results):
        for column in ("nginx-conn",):
            delta = results["lupine"][column] - results["lupine-tiny"][column]
            assert 0.01 <= delta <= 0.12


class TestFig11:
    def test_latency_flat_for_all_series(self):
        series = fig11_control.run()
        assert len(series) == 6
        for name, points in series.items():
            values = [v for _, v in points]
            assert max(values) - min(values) <= 0.02 * max(values), name

    def test_kml_below_nokml(self):
        series = fig11_control.run()
        for test in ("Null", "Read", "Write"):
            kml = series[f"KML {test}"][0][1]
            nokml = series[f"NOKML {test}"][0][1]
            assert kml < nokml


class TestFig12:
    def test_processes_not_slower_than_threads(self):
        assert fig12_ctxsw.max_process_penalty() <= 0.03  # paper: max 3%

    def test_four_series_present(self):
        assert set(fig12_ctxsw.run()) == {
            "KML Thread", "KML Process", "NOKML Thread", "NOKML Process"
        }


class TestSec5:
    def test_overheads_within_paper_bounds(self):
        results = sec5_smp.run()
        assert all(o <= 0.03 for _, o in results["sem_posix"])
        assert all(o <= 0.08 for _, o in results["futex"])
        assert all(o <= 0.03 for _, o in results["make-j"])

    def test_overheads_are_real(self):
        results = sec5_smp.run()
        assert any(o > 0.005 for _, o in results["futex"])

    def test_two_cpu_build_nearly_halves(self):
        assert 1.7 <= sec5_smp.dual_cpu_build_speedup() <= 2.0


class TestTable5:
    @pytest.fixture(scope="class")
    def reports(self):
        return table5_lmbench.run()

    def test_lupine_general_wins_latencies(self, reports):
        microvm = reports["microvm"]
        general = reports["lupine-general"]
        wins = sum(
            1
            for name in microvm.latencies_us
            if general.latencies_us[name] <= microvm.latencies_us[name] * 1.02
        )
        assert wins >= 0.9 * len(microvm.latencies_us)

    def test_bandwidths_not_worse(self, reports):
        microvm = reports["microvm"]
        general = reports["lupine-general"]
        for name in microvm.bandwidths_mb_s:
            assert general.bandwidths_mb_s[name] >= (
                0.95 * microvm.bandwidths_mb_s[name]
            )

    def test_ctx_switch_rows_favor_lupine(self, reports):
        microvm = reports["microvm"]
        general = reports["lupine-general"]
        assert general.latencies_us["2p/0K ctxsw"] < (
            microvm.latencies_us["2p/0K ctxsw"]
        )


class TestRenderers:
    def test_every_experiment_renders_nonempty(self):
        from repro.experiments import ALL_EXPERIMENTS
        from repro.metrics.reporting import render_figure, render_table

        for name, module in ALL_EXPERIMENTS.items():
            if hasattr(module, "table"):
                text = render_table(module.table())
            else:
                text = render_figure(module.figure())
            assert len(text.splitlines()) > 3, name
