"""Tests for the CPU cost model: entry mechanisms, KPTI, hooks, -Os."""

import pytest

from repro.syscall.cpu import (
    CpuCostModel,
    EntryMechanism,
    INT80_ENTRY_NS,
    KML_CALL_NS,
    KPTI_SWITCH_NS,
    SYSCALL_ENTRY_NS,
)


class TestEntryMechanisms:
    def test_kml_call_is_cheapest(self):
        assert KML_CALL_NS < SYSCALL_ENTRY_NS < INT80_ENTRY_NS

    def test_kml_does_not_cross_privilege(self):
        assert not EntryMechanism.KML_CALL.crosses_privilege
        assert EntryMechanism.SYSCALL.crosses_privilege
        assert EntryMechanism.INT80.crosses_privilege


class TestHooks:
    def test_no_options_no_hooks(self):
        model = CpuCostModel.for_options([])
        assert model.syscall_hook_ns == 0
        assert model.data_path_hook_ns == 0

    def test_microvm_options_add_hooks(self, microvm):
        model = CpuCostModel.for_options(microvm.enabled)
        assert model.syscall_hook_ns > 10
        assert model.data_path_hook_ns > 20

    def test_data_path_hooks_only_hit_data_syscalls(self, microvm):
        model = CpuCostModel.for_options(microvm.enabled)
        null = model.syscall_ns(2.0, data_path=False)
        write = model.syscall_ns(2.0, data_path=True)
        assert write - null == pytest.approx(model.data_path_hook_ns)


class TestKpti:
    def test_kpti_requires_option(self):
        with pytest.raises(ValueError):
            CpuCostModel.for_options([], kpti=True)

    def test_kpti_charges_two_switches(self):
        model = CpuCostModel.for_options(
            ["PAGE_TABLE_ISOLATION"], kpti=True
        )
        base = CpuCostModel.for_options([])
        delta = model.entry_exit_ns() - base.entry_exit_ns()
        assert delta == pytest.approx(2 * KPTI_SWITCH_NS)

    def test_kpti_gives_order_of_magnitude_null_slowdown(self):
        """Section 3.1.2: 10x syscall latency slowdown with KPTI."""
        base = CpuCostModel.for_options([])
        kpti = CpuCostModel.for_options(["PAGE_TABLE_ISOLATION"], kpti=True)
        null_base = base.syscall_ns(2.0, data_path=False)
        null_kpti = kpti.syscall_ns(2.0, data_path=False)
        assert 8.0 <= null_kpti / null_base <= 12.0

    def test_kml_entry_skips_kpti(self):
        model = CpuCostModel.for_options(
            ["PAGE_TABLE_ISOLATION"], entry=EntryMechanism.KML_CALL, kpti=True
        )
        assert model.entry_exit_ns() == pytest.approx(KML_CALL_NS)


class TestSizeOptimization:
    def test_os_slows_kernel_work_only(self):
        fast = CpuCostModel.for_options([])
        small = CpuCostModel.for_options([], size_optimized=True)
        assert small.kernel_work_factor > 1.0
        # entry cost is hardware, not compiled code
        assert small.entry_exit_ns() == fast.entry_exit_ns()
        assert small.syscall_ns(100, False) > fast.syscall_ns(100, False)


class TestContextSwitch:
    def test_process_switch_not_slower_than_thread(self):
        """The Figure 12 finding, at the cost-model level."""
        model = CpuCostModel.for_options([])
        thread = model.context_switch_ns(same_address_space=True)
        process = model.context_switch_ns(same_address_space=False)
        assert process <= thread * 1.03

    def test_kpti_penalizes_cross_space_switches(self):
        model = CpuCostModel.for_options(
            ["PAGE_TABLE_ISOLATION"], kpti=True
        )
        thread = model.context_switch_ns(same_address_space=True)
        process = model.context_switch_ns(same_address_space=False)
        assert process > thread

    def test_debug_options_inflate_switches(self, microvm):
        lean = CpuCostModel.for_options([])
        heavy = CpuCostModel.for_options(microvm.enabled)
        assert heavy.context_switch_ns(True) > lean.context_switch_ns(True)
