"""Integration: booted guests driving the real TCP stack and ELF loader."""

import pytest

from repro.apps.registry import get_app
from repro.core.lupine import LupineBuilder
from repro.core.variants import Variant, build_microvm
from repro.netstack.tcp import stack_for_config


@pytest.fixture(scope="module")
def nginx_guest():
    return LupineBuilder(variant=Variant.LUPINE).build_for_app(
        get_app("nginx")
    ).boot()


def _serve_connections(stack, count):
    """Accept, one request/response, close -- the nginx-conn lifecycle."""
    stack.listen(80)
    for index in range(count):
        connection = stack.accept_connection(80, "10.0.0.9", 1000 + index)
        stack.receive_segment(connection, 512)
        stack.send_segment(connection, 6144)
        stack.close(connection)
    stack.reap_time_wait()
    return stack.clock_ns


class TestGuestTcp:
    def test_guest_stack_matches_kernel_config(self, nginx_guest):
        stack = nginx_guest.tcp_stack()
        assert stack.conntrack is None  # lupine has no NF_CONNTRACK

    def test_lupine_serves_connections_cheaper_than_microvm(self,
                                                            nginx_guest):
        lupine_ns = _serve_connections(nginx_guest.tcp_stack(), 50)
        microvm_stack = stack_for_config(build_microvm().config.enabled)
        microvm_ns = _serve_connections(microvm_stack, 50)
        assert microvm_ns > lupine_ns
        # The same direction (and rough magnitude) as Table 4's nginx-conn.
        assert 1.1 <= microvm_ns / lupine_ns <= 2.0

    def test_microvm_conntrack_tracks_every_connection(self):
        stack = stack_for_config(build_microvm().config.enabled)
        _serve_connections(stack, 25)
        assert stack.conntrack.insertions == 25
        assert len(stack.conntrack) == 0  # all closed and reaped

    def test_no_leaked_connections(self, nginx_guest):
        stack = nginx_guest.tcp_stack()
        _serve_connections(stack, 10)
        assert stack.connection_count() == 0


class TestGuestExec:
    def test_exec_materializes_address_space(self, nginx_guest):
        loaded = nginx_guest.exec_address_space(memory_mb=64)
        assert loaded.binary.path == "/usr/sbin/nginx"
        assert loaded.interpreter_mapping is not None

    def test_resident_set_is_modest(self, nginx_guest):
        loaded = nginx_guest.exec_address_space(memory_mb=64)
        space_mapping = loaded.mapping("text")
        assert space_mapping.page_count > 0

    def test_bare_guest_cannot_exec(self):
        from repro.core.lupine import LupineGuest  # noqa: F401

        hello = LupineBuilder(variant=Variant.LUPINE).build_for_app(
            get_app("hello-world")
        ).boot()
        loaded = hello.exec_address_space(memory_mb=16)
        assert loaded.binary.file_kb < 100


class TestGuestBlockDevice:
    def test_block_device_sized_to_rootfs(self, nginx_guest):
        device = nginx_guest.block_device()
        assert device.capacity_mb > nginx_guest.unikernel.rootfs_size_mb

    def test_wal_pattern_is_fsync_bound(self, nginx_guest):
        from repro.block.pagecache import PageCache

        cache = PageCache(nginx_guest.block_device())
        write_total = sum(cache.write(index * 8.0, 8.0) for index in range(8))
        sync_total = cache.fsync()
        assert sync_total > write_total


class TestGuestTimers:
    def test_timer_wheel_uses_configured_hz(self, nginx_guest):
        wheel = nginx_guest.timer_wheel()
        assert wheel.hz == 250  # lupine-base selects HZ_250
        timer = wheel.arm_after_ns(8e6)  # 8 ms = 2 ticks at 250 Hz
        assert timer.expires_tick == 2
