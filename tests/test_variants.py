"""Tests for the Lupine variant builder (Table 2 / Section 4)."""

import pytest

from repro.apps.registry import get_app
from repro.core.variants import (
    TINY_DISABLED,
    TINY_ENABLED,
    Variant,
    build_microvm,
    build_variant,
)
from repro.kbuild.builder import BuildError, KernelBuilder
from repro.syscall.cpu import EntryMechanism


class TestVariantFlags:
    def test_kml_variants(self):
        assert Variant.LUPINE.kml
        assert Variant.LUPINE_GENERAL.kml
        assert not Variant.LUPINE_NOKML.kml

    def test_tiny_variants(self):
        assert Variant.LUPINE_TINY.tiny
        assert Variant.LUPINE_NOKML_TINY.tiny
        assert not Variant.LUPINE.tiny

    def test_nine_modified_options_for_tiny(self):
        """Footnote 8: '9 modified configuration options'."""
        assert len(TINY_DISABLED) + len(TINY_ENABLED) == 9


class TestKmlParavirtConflict:
    def test_kml_build_drops_paravirt(self, lupine_build):
        assert lupine_build.kml
        assert "PARAVIRT" not in lupine_build.config
        assert "KERNEL_MODE_LINUX" in lupine_build.config

    def test_nokml_build_keeps_paravirt(self, nokml_build):
        assert not nokml_build.kml
        assert "PARAVIRT" in nokml_build.config
        assert "KERNEL_MODE_LINUX" not in nokml_build.config

    def test_builder_rejects_kml_without_patch(self, lupine_base):
        with pytest.raises(BuildError, match="patch"):
            KernelBuilder().build(lupine_base, kml=True)

    def test_entry_mechanisms(self, lupine_build, nokml_build):
        assert lupine_build.entry_mechanism is EntryMechanism.KML_CALL
        assert nokml_build.entry_mechanism is EntryMechanism.SYSCALL


class TestImageSizes:
    def test_lupine_roughly_27_percent_of_microvm(self, microvm_build,
                                                  nokml_build):
        fraction = nokml_build.image.size_mb / microvm_build.image.size_mb
        assert 0.24 <= fraction <= 0.30  # paper: 27%

    def test_tiny_shrinks_about_6_percent(self, nokml_build):
        tiny = build_variant(Variant.LUPINE_NOKML_TINY)
        shrink = 1 - tiny.image.size_mb / nokml_build.image.size_mb
        assert 0.04 <= shrink <= 0.10  # paper: 6%

    def test_general_within_33_percent(self, microvm_build, general_build):
        fraction = general_build.image.size_mb / microvm_build.image.size_mb
        assert fraction <= 0.34  # paper: 27-33% band upper bound

    def test_app_specific_sizes_in_paper_band(self, microvm_build):
        """Section 4.2: app kernels are 27-33% of microVM's size."""
        for name in ("nginx", "redis", "postgres", "elasticsearch"):
            build = build_variant(Variant.LUPINE_NOKML, get_app(name))
            fraction = build.image.size_mb / microvm_build.image.size_mb
            assert 0.24 <= fraction <= 0.34, name

    def test_general_is_upper_bound_for_app_kernels(self, general_build):
        for name in ("nginx", "redis", "mariadb"):
            build = build_variant(Variant.LUPINE, get_app(name))
            assert build.image.size_mb <= general_build.image.size_mb + 0.01


class TestTinySemantics:
    def test_tiny_uses_os_optimization(self):
        tiny = build_variant(Variant.LUPINE_TINY)
        assert tiny.size_optimized
        assert "CC_OPTIMIZE_FOR_SIZE" in tiny.config
        assert "CC_OPTIMIZE_FOR_PERFORMANCE" not in tiny.config

    def test_tiny_disables_base_full(self):
        tiny = build_variant(Variant.LUPINE_TINY)
        assert "BASE_FULL" not in tiny.config
        assert "BASE_SMALL" in tiny.config


class TestGeneralVariant:
    def test_general_ignores_target(self, general_build):
        targeted = build_variant(Variant.LUPINE_GENERAL, get_app("redis"))
        assert targeted.config.enabled == general_build.config.enabled


class TestMicrovmBuild:
    def test_microvm_build(self, microvm_build):
        assert len(microvm_build.config.enabled) == 833
        assert microvm_build.entry_mechanism is EntryMechanism.SYSCALL
        assert not microvm_build.image.kml_enabled

    def test_engines_and_netpath_constructible(self, microvm_build):
        engine = microvm_build.syscall_engine()
        assert engine.supports("epoll_wait")
        assert microvm_build.network_path().hook_ns > 0


class TestBuilderValidation:
    def test_unbootable_config_rejected(self, tree):
        from repro.kconfig.resolver import Resolver

        config = Resolver(tree).resolve_names(["X86_64", "MMU"])
        with pytest.raises(BuildError, match="unbootable"):
            KernelBuilder().build(config)
