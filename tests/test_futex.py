"""Tests for futexes and POSIX semaphores."""

from repro.sched.futex import FutexTable, PosixSemaphore
from repro.sched.scheduler import Scheduler
from repro.sched.smp import SmpModel
from repro.sched.task import TaskState
from repro.syscall.cpu import CpuCostModel


def _setup(smp=False):
    scheduler = Scheduler(
        cost_model=CpuCostModel.for_options([]),
        smp=SmpModel(smp_enabled=smp, cpus=1),
    )
    return scheduler, FutexTable(scheduler)


class TestFutex:
    def test_wait_sleeps_on_expected_value(self):
        scheduler, futexes = _setup()
        task = scheduler.spawn("w")
        assert futexes.wait(task, 0x1000, expected=0)
        assert task.state is TaskState.SLEEPING
        assert futexes.waiters(0x1000) == 1

    def test_wait_eagain_when_value_changed(self):
        scheduler, futexes = _setup()
        task = scheduler.spawn("w")
        futexes.store(0x1000, 7)
        assert not futexes.wait(task, 0x1000, expected=0)
        assert task.state is not TaskState.SLEEPING

    def test_wake_fifo_order(self):
        scheduler, futexes = _setup()
        first = scheduler.spawn("first")
        second = scheduler.spawn("second")
        futexes.wait(first, 0x1000, 0)
        futexes.wait(second, 0x1000, 0)
        assert futexes.wake(0x1000, 1) == 1
        assert first.state is TaskState.READY
        assert second.state is TaskState.SLEEPING

    def test_wake_count_limits(self):
        scheduler, futexes = _setup()
        tasks = [scheduler.spawn(f"w{i}") for i in range(3)]
        for task in tasks:
            futexes.wait(task, 0x2000, 0)
        assert futexes.wake(0x2000, 2) == 2
        assert futexes.waiters(0x2000) == 1

    def test_wake_empty_queue(self):
        _, futexes = _setup()
        assert futexes.wake(0x3000) == 0

    def test_operations_charge_time(self):
        scheduler, futexes = _setup()
        task = scheduler.spawn("w")
        before = scheduler.clock_ns
        futexes.wait(task, 0x1000, 0)
        assert scheduler.clock_ns > before

    def test_smp_charges_more(self):
        def cost(smp):
            scheduler, futexes = _setup(smp)
            task = scheduler.spawn("w")
            before = scheduler.clock_ns
            futexes.wait(task, 0x1000, 0)
            return scheduler.clock_ns - before

        assert cost(True) > cost(False)

    def test_counters(self):
        scheduler, futexes = _setup()
        task = scheduler.spawn("w")
        futexes.wait(task, 0x1000, 0)
        futexes.wake(0x1000)
        assert futexes.wait_count == 1
        assert futexes.wake_count == 1


class TestPosixSemaphore:
    def test_initial_value(self):
        _, futexes = _setup()
        semaphore = PosixSemaphore(futexes, address=0x100, initial=3)
        assert semaphore.value == 3

    def test_uncontended_wait_decrements(self):
        scheduler, futexes = _setup()
        semaphore = PosixSemaphore(futexes, address=0x100, initial=1)
        task = scheduler.spawn("t")
        assert semaphore.wait(task)
        assert semaphore.value == 0
        assert task.state is not TaskState.SLEEPING

    def test_contended_wait_sleeps(self):
        scheduler, futexes = _setup()
        semaphore = PosixSemaphore(futexes, address=0x100, initial=0)
        task = scheduler.spawn("t")
        assert not semaphore.wait(task)
        assert task.state is TaskState.SLEEPING

    def test_post_wakes_waiter(self):
        scheduler, futexes = _setup()
        semaphore = PosixSemaphore(futexes, address=0x100, initial=0)
        task = scheduler.spawn("t")
        semaphore.wait(task)
        semaphore.post()
        assert task.state is TaskState.READY
        assert semaphore.try_consume_after_wake()
        assert semaphore.value == 0

    def test_post_without_waiters_accumulates(self):
        _, futexes = _setup()
        semaphore = PosixSemaphore(futexes, address=0x100, initial=0)
        semaphore.post()
        semaphore.post()
        assert semaphore.value == 2

    def test_try_consume_fails_on_zero(self):
        _, futexes = _setup()
        semaphore = PosixSemaphore(futexes, address=0x100, initial=0)
        assert not semaphore.try_consume_after_wake()
