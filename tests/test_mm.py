"""Tests for the memory substrate: paging, OOM, footprint search."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mm.address_space import (
    AddressSpace,
    OutOfMemoryError,
    PAGE_SIZE,
    PhysicalMemory,
)
from repro.mm.footprint import measure_min_memory_mb


def _space(memory_mb=16):
    physical = PhysicalMemory(total_bytes=memory_mb * 1024 * 1024)
    return AddressSpace(asid=1, physical=physical), physical


class TestPhysicalMemory:
    def test_page_accounting(self):
        physical = PhysicalMemory(total_bytes=1024 * 1024)
        assert physical.total_pages == 256
        physical.allocate_frame()
        assert physical.allocated_pages == 1
        assert physical.free_pages == 255

    def test_exhaustion(self):
        physical = PhysicalMemory(total_bytes=2 * PAGE_SIZE)
        physical.allocate_frame()
        physical.allocate_frame()
        with pytest.raises(OutOfMemoryError):
            physical.allocate_frame()

    def test_reserve_kb_rounds_up(self):
        physical = PhysicalMemory(total_bytes=1024 * 1024)
        physical.reserve_kb(5.0)  # 5 KiB -> 2 pages
        assert physical.allocated_pages == 2


class TestDemandPaging:
    def test_lazy_mapping_allocates_nothing(self):
        space, physical = _space()
        space.mmap(1024, name="app")
        assert physical.allocated_pages == 0
        assert space.resident_pages == 0

    def test_eager_mapping_allocates_now(self):
        space, physical = _space()
        space.mmap(64, name="stack", eager=True)
        assert physical.allocated_pages == 16

    def test_touch_faults_one_page(self):
        space, physical = _space()
        mapping = space.mmap(1024)
        space.touch(mapping, offset_kb=8)
        assert space.resident_pages == 1

    def test_touch_same_page_idempotent(self):
        space, physical = _space()
        mapping = space.mmap(64)
        first = space.touch(mapping, 0)
        second = space.touch(mapping, 1)  # same 4 KiB page
        assert first is second
        assert physical.allocated_pages == 1

    def test_touch_beyond_mapping_rejected(self):
        space, _ = _space()
        mapping = space.mmap(4)
        with pytest.raises(ValueError):
            space.touch(mapping, offset_kb=64)

    def test_touch_range(self):
        space, _ = _space()
        mapping = space.mmap(1024)
        assert space.touch_range(mapping, 100) == 25
        assert space.touch_range(mapping, 100) == 0  # already resident
        assert space.resident_kb == 100

    def test_touch_range_clamped_to_mapping(self):
        space, _ = _space()
        mapping = space.mmap(16)
        assert space.touch_range(mapping, 1024) == 4

    def test_oom_when_budget_exhausted(self):
        space, _ = _space(memory_mb=1)
        mapping = space.mmap(4096)
        with pytest.raises(OutOfMemoryError):
            space.touch_range(mapping, 4096)

    def test_binary_size_irrelevant_when_lazy(self):
        """The Figure 8 mechanism: huge binaries, tiny resident sets."""
        space, physical = _space()
        huge = space.mmap(300 * 1024, name="elasticsearch")  # 300 MB mapped
        space.touch_range(huge, 512)  # 512 KiB actually used
        assert physical.allocated_pages == 128

    def test_mapping_lookup(self):
        space, _ = _space()
        space.mmap(64, name="libc")
        assert space.find_mapping("libc") is not None
        assert space.find_mapping("ghost") is None
        assert space.mapped_kb >= 64


class TestFootprintSearch:
    def test_finds_exact_threshold(self):
        threshold = 37
        searched = measure_min_memory_mb(
            lambda mb: mb >= threshold, upper_mb=128
        )
        assert searched == threshold

    def test_threshold_at_bounds(self):
        assert measure_min_memory_mb(lambda mb: mb >= 1, upper_mb=64) == 1
        assert measure_min_memory_mb(lambda mb: mb >= 64, upper_mb=64) == 64

    def test_unbootable_guest_raises(self):
        with pytest.raises(OutOfMemoryError):
            measure_min_memory_mb(lambda mb: False, upper_mb=32)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=512))
    def test_search_matches_linear_scan(self, threshold):
        found = measure_min_memory_mb(
            lambda mb: mb >= threshold, upper_mb=512
        )
        assert found == threshold


class TestFootprintModel:
    def test_microvm_footprint_near_29mb(self, microvm_build):
        from repro.mm.footprint import FootprintModel

        model = FootprintModel(image=microvm_build.image)
        footprint = measure_min_memory_mb(model.try_boot)
        assert 26 <= footprint <= 32  # paper: ~29 MB

    def test_lupine_footprint_near_21mb(self, lupine_build):
        from repro.mm.footprint import FootprintModel

        model = FootprintModel(image=lupine_build.image)
        footprint = measure_min_memory_mb(model.try_boot)
        assert 18 <= footprint <= 24  # paper: ~21 MB

    def test_smaller_budget_than_requirement_fails(self, lupine_build):
        from repro.mm.footprint import FootprintModel

        model = FootprintModel(image=lupine_build.image)
        assert not model.try_boot(4)
        assert model.try_boot(256)
