"""Tests for trace-driven manifest generation."""

import pytest

from repro.apps.registry import TOP20_APPS, get_app
from repro.core.manifest import derive_options
from repro.core.tracing import (
    SyscallTracer,
    manifest_from_app_trace,
    trace_app_run,
)
from repro.syscall.dispatch import SyscallEngine, SyscallNotImplemented


class TestTracer:
    def test_records_in_order(self):
        engine = SyscallEngine.for_config(["EPOLL"])
        tracer = SyscallTracer(engine, "t")
        tracer.syscall("epoll_create1")
        tracer.syscall("epoll_wait")
        tracer.syscall("epoll_wait")
        assert tracer.trace.events == ["epoll_create1", "epoll_wait",
                                       "epoll_wait"]
        assert tracer.trace.counts["epoll_wait"] == 2
        assert len(tracer.trace) == 3

    def test_tracing_does_not_swallow_enosys(self):
        engine = SyscallEngine.for_config([])
        tracer = SyscallTracer(engine, "t")
        with pytest.raises(SyscallNotImplemented):
            tracer.syscall("futex")
        assert tracer.trace.events == []  # failed call not recorded

    def test_facilities_deduplicated(self):
        engine = SyscallEngine.for_config([])
        tracer = SyscallTracer(engine, "t")
        tracer.touch_facility("socket:inet")
        tracer.touch_facility("socket:inet")
        assert tracer.trace.facilities == ["socket:inet"]


class TestAppTraces:
    def test_trace_includes_startup_prefix(self):
        trace = trace_app_run(get_app("redis"))
        assert trace.events[0] == "execve"
        assert "arch_prctl" in trace.events

    def test_redis_trace_touches_sockets_and_proc(self):
        trace = trace_app_run(get_app("redis"))
        assert "socket:inet" in trace.facilities
        assert "mount:proc" in trace.facilities

    def test_postgres_trace_forks(self):
        trace = trace_app_run(get_app("postgres"))
        assert "fork" in trace.events

    def test_hello_world_trace_is_short_and_local(self):
        trace = trace_app_run(get_app("hello-world"))
        assert trace.facilities == []
        assert "socket" not in trace.distinct_syscalls

    @pytest.mark.parametrize("name", [a.name for a in TOP20_APPS])
    def test_traced_manifest_reproduces_table3_config(self, name):
        """The automated pipeline lands on the hand-derived options."""
        app = get_app(name)
        manifest = manifest_from_app_trace(app)
        assert derive_options(manifest) == app.required_options

    def test_traces_are_deterministic(self):
        one = trace_app_run(get_app("nginx"))
        two = trace_app_run(get_app("nginx"))
        assert one.events == two.events
        assert one.facilities == two.facilities
