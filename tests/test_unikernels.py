"""Tests for the comparator unikernel models."""

import pytest

from repro.apps.registry import get_app
from repro.unikernels import (
    AppNotSupported,
    HermiTux,
    OSv,
    Rumprun,
    UnikernelCrash,
)
from repro.workloads.nginx import NGINX_CONN, NGINX_SESS
from repro.workloads.redis import REDIS_GET, REDIS_SET


class TestCuratedLists:
    def test_hermitux_cannot_run_nginx(self):
        """Section 4.4: 'HermiTux cannot run nginx'."""
        with pytest.raises(AppNotSupported):
            HermiTux().run_app(get_app("nginx"))

    def test_osv_and_rump_run_the_three_eval_apps(self):
        for unikernel in (OSv(), Rumprun()):
            for name in ("hello-world", "redis", "nginx"):
                assert unikernel.can_run(get_app(name)), (
                    unikernel.name, name
                )

    def test_nothing_runs_postgres(self):
        postgres = get_app("postgres")
        for unikernel in (HermiTux(), OSv(), Rumprun()):
            with pytest.raises((AppNotSupported, UnikernelCrash)):
                unikernel.run_app(postgres)

    def test_arbitrary_top20_apps_rejected(self):
        for name in ("elasticsearch", "rabbitmq", "mongo"):
            with pytest.raises(AppNotSupported):
                OSv().run_app(get_app(name))


class TestCrashSemantics:
    def test_fork_crashes(self):
        instance = OSv().run_app(get_app("redis"))
        with pytest.raises(UnikernelCrash, match="fork"):
            instance.fork()

    def test_unimplemented_syscall_crashes(self):
        instance = Rumprun().run_app(get_app("redis"))
        with pytest.raises(UnikernelCrash):
            instance.syscall("kexec_load")


class TestQuirks:
    def test_osv_hardcoded_getppid(self):
        """Figure 9 discussion: OSv's getppid returns 0 with no indirection."""
        assert OSv().lmbench_us("null") < 0.005

    def test_osv_dev_zero_read_expensive(self):
        assert OSv().lmbench_us("read") > 0.15

    def test_osv_zfs_vs_rofs_boot(self):
        assert OSv("zfs").boot_report().total_ms > (
            3 * OSv("rofs").boot_report().total_ms
        )

    def test_osv_rejects_unknown_filesystem(self):
        with pytest.raises(ValueError):
            OSv("btrfs")

    def test_osv_drops_nginx_connections(self):
        assert OSv().request_ns(NGINX_CONN) == float("inf")

    def test_rump_images_include_static_app(self):
        rump = Rumprun()
        hello = rump.image_size_mb(get_app("hello-world"))
        redis = rump.image_size_mb(get_app("redis"))
        assert redis > hello + 1.5  # redis binary linked in

    def test_dynamic_unikernels_images_stay_small_across_apps(self):
        osv = OSv()
        hello = osv.image_size_mb(get_app("hello-world"))
        redis = osv.image_size_mb(get_app("redis"))
        assert redis - hello < 1.0

    def test_osv_nginx_footprint_equals_hello(self):
        """Footnote 10: OSv loads apps dynamically too."""
        osv = OSv()
        assert osv.min_memory_mb(get_app("nginx")) == (
            osv.min_memory_mb(get_app("hello-world"))
        )

    def test_unikernel_redis_footprints_exceed_lupine(self):
        for unikernel in (HermiTux(), OSv(), Rumprun()):
            assert unikernel.min_memory_mb(get_app("redis")) > 21


class TestMonitors:
    def test_monitor_assignment_matches_paper_table2(self):
        assert HermiTux().monitor.name == "uhyve"
        assert Rumprun().monitor.name == "solo5-hvt"
        assert OSv().monitor.name == "firecracker"


class TestRequestModel:
    def test_rump_handshake_discount_applies_to_conn_only(self):
        rump = Rumprun()
        conn_quirk = rump.workload_quirks["nginx-conn"]
        assert conn_quirk.handshake_factor < 1.0
        assert rump.request_ns(NGINX_SESS) > rump.request_ns(REDIS_GET)

    def test_osv_set_penalty(self):
        osv = OSv()
        assert osv.request_ns(REDIS_SET) > 1.5 * osv.request_ns(REDIS_GET)

    def test_requests_per_second_inverse(self):
        hermitux = HermiTux()
        rps = hermitux.requests_per_second(REDIS_GET)
        assert rps == pytest.approx(1e9 / hermitux.request_ns(REDIS_GET))

    def test_lmbench_unknown_test_raises(self):
        from repro.unikernels.base import UnikernelError

        with pytest.raises(UnikernelError):
            HermiTux().lmbench_us("stat")
