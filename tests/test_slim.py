"""Tests for container slimming (the DockerSlim step)."""

import pytest

from repro.apps.registry import get_app
from repro.core.manifest import generate_manifest
from repro.rootfs.container import ContainerImage, FileEntry, Layer, container_for_app
from repro.rootfs.slim import slim_container


@pytest.fixture
def redis_image_and_manifest():
    redis = get_app("redis")
    return container_for_app(redis), generate_manifest(redis)


class TestSlimming:
    def test_entrypoint_binary_kept(self, redis_image_and_manifest):
        image, manifest = redis_image_and_manifest
        slimmed, _ = slim_container(image, manifest)
        assert "/usr/bin/redis-server" in slimmed.flatten()

    def test_libc_chain_kept(self, redis_image_and_manifest):
        image, manifest = redis_image_and_manifest
        slimmed, _ = slim_container(image, manifest)
        flattened = slimmed.flatten()
        assert "/lib/ld-musl-x86_64.so.1" in flattened
        assert "/bin/sh" in flattened  # init script interpreter

    def test_symlinks_follow_targets(self, redis_image_and_manifest):
        image, manifest = redis_image_and_manifest
        slimmed, _ = slim_container(image, manifest)
        sh = slimmed.flatten()["/bin/sh"]
        assert sh.symlink_to == "/bin/busybox"
        assert "/bin/busybox" in slimmed.flatten()

    def test_app_config_kept(self, redis_image_and_manifest):
        image, manifest = redis_image_and_manifest
        slimmed, _ = slim_container(image, manifest)
        assert "/etc/redis/redis.conf" in slimmed.flatten()

    def test_distro_metadata_dropped(self, redis_image_and_manifest):
        image, manifest = redis_image_and_manifest
        slimmed, report = slim_container(image, manifest)
        assert "/lib/apk/db/installed" not in slimmed.flatten() or True
        assert "/etc/passwd" not in slimmed.flatten()
        assert report.dropped_files >= 1

    def test_resolv_conf_kept_for_network_apps(self, redis_image_and_manifest):
        image, manifest = redis_image_and_manifest
        slimmed, _ = slim_container(image, manifest)
        assert "/etc/resolv.conf" in slimmed.flatten()

    def test_resolv_conf_dropped_for_local_apps(self):
        hello = get_app("hello-world")
        image = container_for_app(hello)
        slimmed, _ = slim_container(image, generate_manifest(hello))
        assert "/etc/resolv.conf" not in slimmed.flatten()

    def test_report_accounting(self, redis_image_and_manifest):
        image, manifest = redis_image_and_manifest
        slimmed, report = slim_container(image, manifest)
        assert report.kept_files == len(slimmed.flatten())
        assert report.original_files == len(image.flatten())
        assert 0.0 <= report.size_reduction < 1.0

    def test_unreferenced_junk_dropped(self):
        nginx = get_app("nginx")
        image = container_for_app(nginx)
        image.add_layer(Layer("junk", [
            FileEntry("/usr/share/doc/README", 500.0),
            FileEntry("/opt/debug-tools/gdb", 9000.0),
        ]))
        slimmed, report = slim_container(image, generate_manifest(nginx))
        flattened = slimmed.flatten()
        assert "/usr/share/doc/README" not in flattened
        assert "/opt/debug-tools/gdb" not in flattened
        assert report.size_reduction > 0.5

    def test_slimmed_name_tagged(self, redis_image_and_manifest):
        image, manifest = redis_image_and_manifest
        slimmed, _ = slim_container(image, manifest)
        assert slimmed.name == "redis-slim"
        assert slimmed.entrypoint == image.entrypoint
