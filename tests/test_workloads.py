"""Tests for the workload layer (server stacks, benchmarks, stress suites)."""

import pytest

from repro.sched.smp import SmpModel
from repro.syscall.cpu import EntryMechanism
from repro.syscall.dispatch import SyscallEngine
from repro.workloads.control_procs import run_with_control_processes, sweep
from repro.workloads.nginx import ApacheBench, NGINX_CONN, NGINX_SESS
from repro.workloads.perf_messaging import run_messaging
from repro.workloads.redis import REDIS_GET, REDIS_SET, RedisBenchmark
from repro.workloads.server import LinuxServerStack, RequestProfile
from repro.workloads.smp_stress import (
    run_futex_stress,
    run_make_j,
    run_sem_posix_stress,
    smp_overhead,
)


def _stack(build):
    return LinuxServerStack(
        engine=build.syscall_engine(), netpath=build.network_path()
    )


@pytest.fixture(scope="module")
def redis_build():
    from repro.apps.registry import get_app
    from repro.core.variants import Variant, build_variant

    return build_variant(Variant.LUPINE, get_app("redis"))


class TestServerStack:
    def test_request_cost_composition(self, redis_build):
        stack = _stack(redis_build)
        profile = RequestProfile(
            name="x", syscalls=("read", "write"), app_ns=1000.0
        )
        expected = (
            stack.engine.latency_ns("read")
            + stack.engine.latency_ns("write")
            + 2 * stack.netpath.packet_ns(256)
            + 1000.0
        )
        assert stack.request_ns(profile) == pytest.approx(expected)

    def test_run_matches_static_estimate(self, redis_build):
        stack = _stack(redis_build)
        measured = stack.run(REDIS_GET, requests=500)
        estimated = stack.requests_per_second(REDIS_GET)
        assert measured == pytest.approx(estimated, rel=0.05)

    def test_gated_syscall_profile_fails_on_wrong_kernel(self, redis_build):
        from repro.syscall.dispatch import SyscallNotImplemented

        # nginx's AIO-using path cannot run on a redis-specialized kernel
        engine = redis_build.syscall_engine()
        stack = LinuxServerStack(
            engine=engine, netpath=redis_build.network_path()
        )
        aio_profile = RequestProfile(
            name="aio", syscalls=("io_submit",), app_ns=100.0
        )
        with pytest.raises(SyscallNotImplemented):
            stack.run(aio_profile, requests=1)


class TestRedisAndNginx:
    def test_lupine_beats_microvm_on_all_four(self, microvm_build):
        from repro.apps.registry import get_app
        from repro.core.variants import Variant, build_variant

        redis = build_variant(Variant.LUPINE, get_app("redis"))
        nginx = build_variant(Variant.LUPINE, get_app("nginx"))
        redis_bench, apache_bench = RedisBenchmark(500), ApacheBench(500)
        assert redis_bench.get_rps(_stack(redis)) > (
            redis_bench.get_rps(_stack(microvm_build))
        )
        assert apache_bench.conn_rps(_stack(nginx)) > (
            apache_bench.conn_rps(_stack(microvm_build))
        )

    def test_set_slower_than_get(self, microvm_build):
        bench = RedisBenchmark(500)
        stack = _stack(microvm_build)
        get = bench.get_rps(stack)
        stack = _stack(microvm_build)
        assert bench.set_rps(stack) < get

    def test_conn_much_slower_than_sess(self, microvm_build):
        bench = ApacheBench(500)
        conn = bench.conn_rps(_stack(microvm_build))
        sess = bench.sess_rps(_stack(microvm_build))
        assert conn < 0.7 * sess

    def test_profiles_shape(self):
        assert NGINX_CONN.handshake_packets == 3
        assert NGINX_SESS.handshake_packets == 0
        assert REDIS_SET.app_ns > REDIS_GET.app_ns


class TestPerfMessaging:
    def test_more_groups_more_total_time(self):
        def total(groups):
            engine = SyscallEngine.for_config(())
            return run_messaging(engine, groups, use_processes=False).total_ms

        assert total(4) > total(1)

    def test_message_count(self):
        engine = SyscallEngine.for_config(())
        result = run_messaging(engine, 2, use_processes=True, loops=3)
        assert result.messages == 3 * 2 * 10 * 10

    def test_processes_within_few_percent_of_threads(self):
        for groups in (1, 4, 16):
            thread = run_messaging(
                SyscallEngine.for_config(()), groups, use_processes=False
            )
            process = run_messaging(
                SyscallEngine.for_config(()), groups, use_processes=True
            )
            ratio = process.ms_per_batch / thread.ms_per_batch
            assert 0.93 <= ratio <= 1.04  # paper: -4% .. +3%

    def test_rejects_zero_groups(self):
        with pytest.raises(ValueError):
            run_messaging(SyscallEngine.for_config(()), 0, False)

    def test_kml_flag_detected(self):
        engine = SyscallEngine.for_config((), entry=EntryMechanism.KML_CALL)
        assert run_messaging(engine, 1, False).kml


class TestSmpStress:
    def test_futex_overhead_within_paper_bound(self):
        assert 0 < smp_overhead("futex", 64) <= 0.08

    def test_sem_overhead_within_paper_bound(self):
        assert 0 < smp_overhead("sem_posix", 64) <= 0.03

    def test_make_overhead_within_paper_bound(self):
        assert 0 < smp_overhead("make-j", 16) <= 0.03

    def test_stress_results_structured(self):
        result = run_futex_stress(4, smp_enabled=True)
        assert result.workload == "futex"
        assert result.elapsed_s > 0

    def test_sem_mostly_uncontended(self):
        result = run_sem_posix_stress(4, smp_enabled=False)
        assert result.elapsed_s > 0

    def test_make_j_scales_with_cpus(self):
        one = run_make_j(8, smp_enabled=True, cpus=1)
        four = run_make_j(8, smp_enabled=True, cpus=4)
        assert four.elapsed_s < one.elapsed_s

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            smp_overhead("fishing", 4)


class TestControlProcesses:
    def test_latency_flat_across_populations(self, lupine_build):
        """Figure 11: all points within one standard deviation."""
        results = [
            run_with_control_processes(lupine_build.syscall_engine(), count)
            for count in (1, 32, 1024)
        ]
        null_values = [r.latencies_us["null"] for r in results]
        spread = max(null_values) - min(null_values)
        assert spread <= 0.02 * max(null_values)

    def test_sweep_covers_powers_of_two(self, lupine_build):
        results = sweep(lupine_build.syscall_engine, max_power=4)
        assert [r.control_processes for r in results] == [1, 2, 4, 8, 16]
