"""Tests for the selfcheck library and the EXPERIMENTS.md generator."""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.selfcheck import ALL_CHECKS, all_passed, run_selfcheck


class TestSelfcheck:
    def test_all_checks_pass(self):
        results = run_selfcheck()
        assert all_passed(results)

    def test_every_check_reports_detail(self):
        for name, passed, detail in run_selfcheck():
            assert name and detail
            assert passed is True

    def test_check_count_matches_registry(self):
        assert len(run_selfcheck()) == len(ALL_CHECKS) == 9


class TestExperimentsGenerator:
    def test_generator_writes_markdown(self, tmp_path):
        repo_root = pathlib.Path(__file__).parent.parent
        script = repo_root / "tools" / "generate_experiments_md.py"
        env = dict(os.environ)
        completed = subprocess.run(
            [sys.executable, str(script)],
            cwd=tmp_path,
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert completed.returncode == 0, completed.stderr
        output = (tmp_path / "EXPERIMENTS.md").read_text()
        assert "paper-reported vs measured" in output
        assert "| Fig. 3 total options (Linux 4.0) | 15,953 | 15,953 |" in (
            output
        )
        assert "Table 4" in output
