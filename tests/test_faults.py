"""Tests for the deterministic fault-injection plane."""

import pytest

from repro import faults
from repro.faults import (
    FaultHang,
    FaultInjected,
    FaultPlane,
    FaultSpec,
    corrupt_text,
    fault_site,
)
from repro.observe import TRACER


@pytest.fixture(autouse=True)
def _no_leaked_plane():
    """Every test starts and ends with no plane installed."""
    faults.deactivate()
    yield
    faults.deactivate()


def _decisions(plane, site, calls, scope=None):
    """Which of *calls* sequential calls at *site* inject (1-based)."""
    fired = []
    ctx = faults.experiment_scope(scope) if scope else None
    if ctx is not None:
        ctx.__enter__()
    try:
        for call in range(1, calls + 1):
            if plane.decide(site) is not None:
                fired.append(call)
    finally:
        if ctx is not None:
            ctx.__exit__(None, None, None)
    return fired


class TestScheduling:
    def test_same_seed_same_decisions(self):
        first = FaultPlane(seed=42)
        first.configure("site", probability=0.3)
        second = FaultPlane(seed=42)
        second.configure("site", probability=0.3)
        assert _decisions(first, "site", 50) == _decisions(second, "site", 50)

    def test_different_seeds_differ(self):
        a = FaultPlane(seed=1)
        a.configure("site", probability=0.3)
        b = FaultPlane(seed=2)
        b.configure("site", probability=0.3)
        assert _decisions(a, "site", 100) != _decisions(b, "site", 100)

    def test_decision_independent_of_other_sites(self):
        # Interleaving draws at another site must not shift this site's
        # schedule: decisions are stateless in (seed, site, scope, call).
        plain = FaultPlane(seed=7)
        plain.configure("site", probability=0.3)
        expected = _decisions(plain, "site", 30)

        noisy = FaultPlane(seed=7)
        noisy.configure("site", probability=0.3)
        noisy.configure("other", probability=0.9)
        fired = []
        for call in range(1, 31):
            noisy.decide("other")
            if noisy.decide("site") is not None:
                fired.append(call)
        assert fired == expected

    def test_scopes_have_independent_call_counters(self):
        plane = FaultPlane(seed=3)
        plane.configure("site", nth_calls=(2,))
        assert _decisions(plane, "site", 3, scope="fig5") == [2]
        # A fresh scope restarts the per-site call index at 1.
        plane2 = FaultPlane(seed=3)
        plane2.configure("site", nth_calls=(2,))
        _decisions(plane2, "site", 3, scope="fig5")
        assert _decisions(plane2, "site", 3, scope="fig7") == [2]

    def test_nth_calls_exact(self):
        plane = FaultPlane(seed=0)
        plane.configure("site", nth_calls=(1, 4))
        assert _decisions(plane, "site", 6) == [1, 4]

    def test_one_shot_fires_once(self):
        plane = FaultPlane(seed=0)
        plane.one_shot("site")
        assert _decisions(plane, "site", 5) == [1]
        assert plane.injected == 1

    def test_max_injections_caps(self):
        plane = FaultPlane(seed=0)
        plane.configure("site", nth_calls=(1, 2, 3), max_injections=2)
        assert _decisions(plane, "site", 5) == [1, 2]

    def test_scope_restriction(self):
        plane = FaultPlane(seed=0)
        plane.configure("site", nth_calls=(1,), scope="fig7")
        assert _decisions(plane, "site", 2, scope="fig5") == []
        assert _decisions(plane, "site", 2, scope="fig7") == [1]

    def test_reset_counters_replays_schedule(self):
        plane = FaultPlane(seed=9)
        plane.configure("site", probability=0.4)
        first = _decisions(plane, "site", 20)
        plane.reset_counters()
        assert _decisions(plane, "site", 20) == first

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(site="s", kind="explode")
        with pytest.raises(ValueError):
            FaultSpec(site="s", probability=1.5)


class TestInjection:
    def test_fault_site_noop_without_plane(self):
        with fault_site("anything"):
            pass  # must not raise, draw RNG, or touch metrics

    def test_corrupt_text_passthrough_without_plane(self):
        assert corrupt_text("site", "payload") == "payload"

    def test_raise_kind_carries_site_and_transient(self):
        plane = FaultPlane(seed=0)
        plane.one_shot("site", message="boom")
        with faults.activated(plane):
            with pytest.raises(FaultInjected) as excinfo:
                with fault_site("site"):
                    pass
        assert excinfo.value.site == "site"
        assert excinfo.value.transient is True
        assert "boom" in str(excinfo.value)

    def test_persistent_raise(self):
        plane = FaultPlane(seed=0)
        plane.one_shot("site", transient=False)
        with faults.activated(plane):
            with pytest.raises(FaultInjected) as excinfo:
                with fault_site("site"):
                    pass
        assert excinfo.value.transient is False

    def test_custom_exception_type(self):
        from repro.vmm.monitor import MonitorError

        plane = FaultPlane(seed=0)
        plane.one_shot("site", exc=MonitorError, message="no driver")
        with faults.activated(plane):
            with pytest.raises(MonitorError, match="no driver"):
                with fault_site("site"):
                    pass

    def test_hang_advances_sim_clock(self):
        plane = FaultPlane(seed=0)
        plane.one_shot("site", kind="hang", hang_ms=500.0)
        before = TRACER.sim.now_ms
        with faults.activated(plane):
            with pytest.raises(FaultHang) as excinfo:
                with fault_site("site"):
                    pass
        assert TRACER.sim.now_ms == pytest.approx(before + 500.0)
        assert excinfo.value.transient is False
        assert excinfo.value.hang_ms == 500.0

    def test_corrupt_truncates_half(self):
        plane = FaultPlane(seed=0)
        plane.one_shot("site", kind="corrupt")
        with faults.activated(plane):
            assert corrupt_text("site", "0123456789") == "01234"
            # One-shot: the second call passes through untouched.
            assert corrupt_text("site", "0123456789") == "0123456789"

    def test_corrupt_spec_does_not_raise_at_fault_site(self):
        plane = FaultPlane(seed=0)
        plane.configure("site", nth_calls=(1,), kind="corrupt")
        with faults.activated(plane):
            with fault_site("site"):
                pass  # corrupt faults only affect corrupt_text consumers

    def test_injection_counts_metric_and_span(self):
        from repro.observe import METRICS

        plane = FaultPlane(seed=0)
        plane.one_shot("site")
        before = METRICS.counter("faults.injected").value
        mark = TRACER.mark()
        with faults.activated(plane):
            with pytest.raises(FaultInjected):
                with fault_site("site"):
                    pass
        assert METRICS.counter("faults.injected").value == before + 1
        spans = [r for r in TRACER.records_since(mark)
                 if r.name == "fault.injected"]
        assert len(spans) == 1
        assert spans[0].attrs["site"] == "site"
        assert spans[0].attrs["kind"] == "raise"

    def test_activated_restores_previous_state(self):
        plane = FaultPlane(seed=0)
        with faults.activated(plane):
            assert faults.active_plane() is plane
        assert faults.active_plane() is None
