"""Tests for the scheduler substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sched.scheduler import Scheduler, SchedulerError
from repro.sched.smp import SmpModel
from repro.sched.task import TaskKind, TaskState
from repro.syscall.cpu import CpuCostModel


def _scheduler(smp=False):
    return Scheduler(
        cost_model=CpuCostModel.for_options([]),
        smp=SmpModel(smp_enabled=smp, cpus=1),
    )


class TestLifecycle:
    def test_spawn_creates_ready_process(self):
        sched = _scheduler()
        task = sched.spawn("init")
        assert task.kind is TaskKind.PROCESS
        assert task.state is TaskState.READY
        assert sched.ready_count() == 1

    def test_pids_unique_and_increasing(self):
        sched = _scheduler()
        pids = [sched.spawn(f"t{i}").pid for i in range(5)]
        assert pids == sorted(set(pids))

    def test_fork_new_address_space(self):
        sched = _scheduler()
        parent = sched.spawn("app")
        child = sched.fork(parent)
        assert child.parent_pid == parent.pid
        assert child.address_space_id != parent.address_space_id
        assert child.kind is TaskKind.PROCESS

    def test_thread_shares_address_space(self):
        sched = _scheduler()
        parent = sched.spawn("app")
        thread = sched.create_thread(parent)
        assert thread.address_space_id == parent.address_space_id
        assert thread.kind is TaskKind.THREAD

    def test_fork_inherits_kernel_mode(self):
        """KML processes stay kernel-mode across fork (Section 3.2)."""
        sched = _scheduler()
        parent = sched.spawn("app", kernel_mode=True)
        assert sched.fork(parent).kernel_mode

    def test_exec_replaces_image(self):
        sched = _scheduler()
        task = sched.spawn("sh", working_set_kb=100)
        sched.exec(task, "redis-server", working_set_kb=2000)
        assert task.name == "redis-server"
        assert task.working_set_kb == 2000

    def test_exit_makes_zombie(self):
        sched = _scheduler()
        task = sched.spawn("app")
        sched.exit(task, code=3)
        assert task.state is TaskState.ZOMBIE
        assert task.exit_code == 3
        assert not task.alive
        assert sched.ready_count() == 0

    def test_operations_on_zombie_rejected(self):
        sched = _scheduler()
        task = sched.spawn("app")
        sched.exit(task)
        for operation in (sched.fork, sched.sleep, sched.wake):
            with pytest.raises(SchedulerError):
                operation(task)

    def test_task_lookup(self):
        sched = _scheduler()
        task = sched.spawn("app")
        assert sched.task(task.pid) is task
        with pytest.raises(SchedulerError):
            sched.task(9999)


class TestSleepWake:
    def test_sleep_removes_from_ready(self):
        sched = _scheduler()
        task = sched.spawn("ctl")
        sched.sleep(task)
        assert task.state is TaskState.SLEEPING
        assert sched.ready_count() == 0
        assert sched.sleeping_count() == 1

    def test_wake_requeues(self):
        sched = _scheduler()
        task = sched.spawn("ctl")
        sched.sleep(task)
        sched.wake(task)
        assert task.state is TaskState.READY
        assert sched.ready_count() == 1

    def test_wake_of_ready_task_is_noop(self):
        sched = _scheduler()
        task = sched.spawn("app")
        clock = sched.clock_ns
        sched.wake(task)
        assert sched.clock_ns == clock

    def test_sleeping_tasks_never_scheduled(self):
        sched = _scheduler()
        app = sched.spawn("app")
        for index in range(10):
            sched.sleep(sched.spawn(f"ctl{index}"))
        for _ in range(5):
            assert sched.schedule() is app


class TestSwitchAccounting:
    def test_first_schedule_costs_nothing(self):
        sched = _scheduler()
        sched.spawn("app")
        sched.schedule()
        assert sched.switch_count == 0

    def test_round_robin_switches(self):
        sched = _scheduler()
        a, b = sched.spawn("a"), sched.spawn("b")
        first = sched.schedule()
        second = sched.schedule()
        assert {first.pid, second.pid} == {a.pid, b.pid}
        assert sched.switch_count == 1
        assert sched.clock_ns > 0

    def test_sleeping_population_does_not_change_switch_cost(self):
        """The Figure 11 mechanism."""
        def switch_cost(sleepers):
            sched = _scheduler()
            a, b = sched.spawn("a"), sched.spawn("b")
            for index in range(sleepers):
                sched.sleep(sched.spawn(f"s{index}"))
            sched.schedule()
            before = sched.clock_ns
            sched.schedule()
            return sched.clock_ns - before

        assert switch_cost(0) == pytest.approx(switch_cost(1024))

    def test_smp_makes_switches_dearer(self):
        def cost(smp):
            sched = _scheduler(smp=smp)
            sched.spawn("a"), sched.spawn("b")
            sched.schedule()
            before = sched.clock_ns
            sched.schedule()
            return sched.clock_ns - before

        assert cost(True) > cost(False)

    def test_run_for_requires_current(self):
        sched = _scheduler()
        task = sched.spawn("app")
        with pytest.raises(SchedulerError):
            sched.run_for(task, 100)
        sched.schedule()
        sched.run_for(task, 100)
        assert task.vruntime_ns >= 100


class TestSchedulerProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from(["spawn", "fork", "thread", "sleep",
                                     "wake", "schedule", "exit"]),
                    min_size=1, max_size=60))
    def test_invariants_under_random_operations(self, operations):
        """Ready queue and task states stay consistent under any op mix."""
        sched = _scheduler()
        root = sched.spawn("root")
        for operation in operations:
            alive = [t for t in sched.tasks() if t.alive]
            if not alive:
                break
            victim = alive[len(alive) // 2]
            if operation == "spawn":
                sched.spawn("x")
            elif operation == "fork":
                sched.fork(victim)
            elif operation == "thread":
                sched.create_thread(victim)
            elif operation == "sleep":
                sched.sleep(victim)
            elif operation == "wake":
                sched.wake(victim)
            elif operation == "schedule":
                sched.schedule()
            elif operation == "exit":
                sched.exit(victim)
            # Invariants:
            ready_pids = list(sched._ready)
            assert len(ready_pids) == len(set(ready_pids))
            for pid in ready_pids:
                assert sched.task(pid).state is TaskState.READY
            if sched.current is not None:
                assert sched.current.state is TaskState.RUNNING
                assert sched.current.pid not in ready_pids
            for task in sched.tasks():
                if task.state is TaskState.SLEEPING:
                    assert task.pid not in ready_pids
