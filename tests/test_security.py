"""Tests for the attack-surface/CVE extension (paper Section 7 claims)."""

import pytest

from repro.core.specialization import app_config, lupine_general_config
from repro.kconfig.configs import lupine_base_config, microvm_config
from repro.security import analyze_config, cve_database
from repro.security.attack_surface import CVE_CORPUS_SIZE


@pytest.fixture(scope="module")
def reports(tree):
    return {
        "microvm": analyze_config(microvm_config(tree)),
        "lupine-base": analyze_config(lupine_base_config(tree)),
        "lupine-general": analyze_config(lupine_general_config(tree)),
    }


class TestCveCorpus:
    def test_corpus_size_matches_study(self):
        assert len(cve_database()) == CVE_CORPUS_SIZE == 1530

    def test_deterministic(self):
        assert cve_database() == cve_database()

    def test_some_cves_in_core(self):
        core = [cve for cve in cve_database() if cve.in_core]
        assert 0 < len(core) < 0.15 * CVE_CORPUS_SIZE

    def test_option_cves_reference_real_options(self, tree):
        for cve in cve_database():
            if not cve.in_core:
                assert cve.option in tree

    def test_severities_in_cvss_range(self):
        for cve in cve_database():
            assert 0.0 <= cve.severity <= 10.0

    def test_drivers_dominate(self, tree):
        directories = {}
        for cve in cve_database():
            if cve.in_core:
                continue
            directory = tree[cve.option].directory
            directories[directory] = directories.get(directory, 0) + 1
        assert directories["drivers"] == max(directories.values())


class TestNullification:
    def test_lupine_nullifies_about_89_percent(self, reports):
        """Alharthi et al.: 89% of CVEs nullifiable via configuration."""
        rate = reports["lupine-base"].nullification_rate
        assert 0.85 <= rate <= 0.92

    def test_specialization_strictly_helps(self, reports):
        assert (reports["lupine-base"].nullification_rate
                > reports["microvm"].nullification_rate)

    def test_general_close_to_base(self, reports):
        delta = (reports["lupine-base"].nullification_rate
                 - reports["lupine-general"].nullification_rate)
        assert 0 <= delta <= 0.02

    def test_partition_is_complete(self, reports):
        report = reports["microvm"]
        assert (len(report.applicable_cves) + len(report.nullified_cves)
                == CVE_CORPUS_SIZE)


class TestAttackSurface:
    def test_reduction_in_kurmus_band(self, reports):
        """Kurmus et al.: 50-85% of attack surface removable."""
        reduction = reports["lupine-base"].surface_reduction_vs(
            reports["microvm"]
        )
        assert 0.50 <= reduction <= 0.85

    def test_syscall_surface_shrinks(self, reports):
        assert (reports["lupine-base"].reachable_syscalls
                < reports["microvm"].reachable_syscalls)

    def test_app_config_surface_between_base_and_microvm(self, tree, reports):
        from repro.apps.registry import get_app

        redis = analyze_config(app_config(get_app("redis"), tree))
        assert (reports["lupine-base"].surface_kb
                < redis.surface_kb
                < reports["microvm"].surface_kb)
