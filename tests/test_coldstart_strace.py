"""Tests for the cold-start workload and strace formatting."""

import pytest

from repro.apps.registry import get_app
from repro.core.tracing import trace_app_run
from repro.syscall.strace import (
    format_summary,
    format_trace,
    parse_trace,
    roundtrip,
)
from repro.workloads.coldstart import run_cold_starts


class TestColdStart:
    @pytest.fixture(scope="class")
    def results(self):
        return run_cold_starts()

    def test_all_redis_capable_systems_present(self, results):
        assert {"microvm", "lupine-nokml", "hermitux", "osv", "rump"} <= set(
            results
        )

    def test_lupine_beats_microvm(self, results):
        assert (results["lupine-nokml"].total_ms
                < 0.55 * results["microvm"].total_ms)

    def test_boot_dominates_cold_start(self, results):
        for result in results.values():
            assert result.boot_ms > result.first_request_ms

    def test_total_is_sum(self, results):
        result = results["lupine-nokml"]
        assert result.total_ms == pytest.approx(
            result.boot_ms + result.app_init_ms + result.first_request_ms
        )

    def test_lupine_in_unikernel_ballpark(self, results):
        unikernel_best = min(
            results[name].total_ms for name in ("hermitux", "osv", "rump")
        )
        assert results["lupine-nokml"].total_ms < 2.5 * unikernel_best


class TestStrace:
    def test_format_and_parse_roundtrip(self):
        events = ["execve", "brk", "openat", "read", "close", "epoll_wait"]
        parsed, lossless = roundtrip(events)
        assert lossless
        assert parsed == events

    def test_parse_skips_noise(self):
        text = (
            "execve(\"/bin/app\", ...) = 0\n"
            "--- SIGCHLD {si_signo=SIGCHLD} ---\n"
            "+++ exited with 0 +++\n"
            "read(3, \"x\", 1) = 1\n"
        )
        assert parse_trace(text) == ["execve", "read"]

    def test_parse_skips_unknown_syscalls(self):
        assert parse_trace("frobnicate() = 0\nread() = 0\n") == ["read"]

    def test_strict_parse_raises_on_unknown(self):
        with pytest.raises(ValueError, match="frobnicate"):
            parse_trace("frobnicate() = 0\n", strict=True)

    def test_summary_table(self):
        trace = trace_app_run(get_app("redis"))
        summary = format_summary(trace.counts)
        assert "total" in summary
        assert "read" in summary
        assert "%" in summary

    def test_real_trace_roundtrips(self):
        trace = trace_app_run(get_app("nginx"))
        parsed, lossless = roundtrip(trace.events)
        assert lossless
        assert len(parsed) == len(trace)
