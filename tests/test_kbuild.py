"""Tests for the kernel build pipeline."""

import pytest

from repro.kbuild.builder import BuildError, KernelBuilder
from repro.kbuild.image import (
    COMPRESSION_RATIOS,
    CORE_TEXT_KB,
    DEFAULT_COMPRESSION,
)
from repro.kbuild.optimizer import OptLevel, Toolchain
from repro.kconfig.database import base_option_names, build_linux_tree
from repro.kconfig.resolver import Resolver


def _resolve(names, tree=None):
    tree = tree or build_linux_tree()
    return Resolver(tree).resolve_names(names)


class TestToolchain:
    def test_os_is_smaller_but_slower(self):
        assert OptLevel.OS.size_factor < OptLevel.O2.size_factor
        assert OptLevel.OS.speed_factor > OptLevel.O2.speed_factor

    def test_lto_shrinks_further(self):
        plain = Toolchain(opt_level=OptLevel.O2)
        lto = Toolchain(opt_level=OptLevel.O2, lto=True)
        assert lto.size_factor < plain.size_factor


class TestBuilder:
    def test_size_is_core_plus_options_times_compression(self, lupine_base):
        image = KernelBuilder().build(lupine_base)
        option_kb = sum(
            lupine_base.tree[name].size_kb for name in lupine_base.enabled
        )
        expected = (CORE_TEXT_KB + option_kb) * DEFAULT_COMPRESSION
        assert image.compressed_kb == pytest.approx(expected)

    def test_adding_options_never_shrinks_image(self, tree, lupine_base):
        bigger = _resolve(base_option_names() + ["INET", "EPOLL"], tree)
        small_image = KernelBuilder().build(lupine_base)
        big_image = KernelBuilder().build(bigger)
        assert big_image.compressed_kb > small_image.compressed_kb

    def test_xz_compresses_harder_than_gzip(self, tree):
        gzip_config = _resolve(base_option_names(), tree)
        xz_names = [n for n in base_option_names() if n != "KERNEL_GZIP"]
        xz_config = _resolve(xz_names + ["KERNEL_XZ"], tree)
        gzip_image = KernelBuilder().build(gzip_config)
        xz_image = KernelBuilder().build(xz_config)
        assert xz_image.compressed_kb < gzip_image.compressed_kb
        # uncompressed payload nearly identical (KERNEL_* opts are ~0-size)
        assert xz_image.uncompressed_kb == pytest.approx(
            gzip_image.uncompressed_kb, rel=0.01
        )

    def test_compression_ratio_table(self):
        assert COMPRESSION_RATIOS["KERNEL_XZ"] < (
            COMPRESSION_RATIOS["KERNEL_GZIP"]
        )

    def test_os_toolchain_from_config(self, tree):
        names = [n for n in base_option_names()
                 if n != "CC_OPTIMIZE_FOR_PERFORMANCE"]
        config = _resolve(names + ["CC_OPTIMIZE_FOR_SIZE"], tree)
        image = KernelBuilder().build(config)
        assert image.toolchain.opt_level is OptLevel.OS

    @pytest.mark.parametrize("missing,reason", [
        ("PRINTK", "boot progress"),
        ("BINFMT_ELF", "init"),
        ("TTY", "console"),
    ])
    def test_required_options_enforced(self, tree, missing, reason):
        names = [n for n in base_option_names() if n != missing]
        config = _resolve(names, tree)
        with pytest.raises(BuildError, match=reason):
            KernelBuilder().build(config)


class TestImage:
    def test_resident_kernel_smaller_than_uncompressed(self, microvm_build):
        image = microvm_build.image
        assert image.resident_kernel_kb < image.uncompressed_kb

    def test_size_mb_conversion(self, microvm_build):
        image = microvm_build.image
        assert image.size_mb == pytest.approx(image.compressed_kb / 1024.0)

    def test_str_rendering(self, microvm_build):
        assert "microvm" in str(microvm_build.image)

    def test_has_option(self, microvm_build):
        assert microvm_build.image.has_option("SMP")
        assert not microvm_build.image.has_option("KERNEL_MODE_LINUX")


class TestSlimIntegration:
    def test_slim_builder_produces_smaller_rootfs(self):
        from repro.apps.registry import get_app
        from repro.core.lupine import LupineBuilder
        from repro.core.variants import Variant

        redis = get_app("redis")
        fat = LupineBuilder(variant=Variant.LUPINE, slim=False)
        thin = LupineBuilder(variant=Variant.LUPINE, slim=True)
        fat_rootfs = fat.build_for_app(redis).rootfs
        thin_rootfs = thin.build_for_app(redis).rootfs
        assert thin_rootfs.size_kb < fat_rootfs.size_kb
        assert thin_rootfs.exists("/usr/bin/redis-server")

    def test_slim_guest_still_boots(self):
        from repro.apps.registry import get_app
        from repro.core.lupine import LupineBuilder
        from repro.core.variants import Variant

        unikernel = LupineBuilder(
            variant=Variant.LUPINE, slim=True
        ).build_for_app(get_app("nginx"))
        assert unikernel.boot().ran_successfully


class TestModules:
    def test_modules_excluded_from_image(self, tree):
        from repro.kconfig.expr import Tristate
        from repro.kconfig.resolver import Resolver

        # A synthetic driver built as a module must not grow the bzImage.
        filler = next(o.name for o in tree.options_in("drivers")
                      if o.synthetic)
        base = _resolve(base_option_names() + ["MODULES"], tree)
        request = {name: Tristate.YES
                   for name in base_option_names() + ["MODULES"]}
        request[filler] = Tristate.MODULE
        with_module = Resolver(tree).resolve(request)
        builder = KernelBuilder()
        image_base = builder.build(base)
        image_mod = builder.build(with_module)
        assert image_mod.compressed_kb == pytest.approx(
            image_base.compressed_kb
        )
        assert image_mod.modules_kb > 0

    def test_modules_without_modules_support_fail(self, tree):
        from repro.kconfig.expr import Tristate
        from repro.kconfig.resolver import Resolver

        filler = next(o.name for o in tree.options_in("drivers")
                      if o.synthetic)
        request = {name: Tristate.YES for name in base_option_names()}
        request[filler] = Tristate.MODULE
        config = Resolver(tree).resolve(request)
        with pytest.raises(BuildError, match="CONFIG_MODULES"):
            KernelBuilder().build(config)
