"""Tests for the syscall dispatch engine."""

import pytest

from repro.syscall.cpu import EntryMechanism
from repro.syscall.dispatch import SyscallEngine, SyscallNotImplemented


def _engine(options=(), **kwargs):
    return SyscallEngine.for_config(options, **kwargs)


class TestGating:
    def test_core_syscall_always_available(self):
        assert _engine().supports("read")

    def test_gated_syscall_needs_option(self):
        assert not _engine().supports("epoll_wait")
        assert _engine(["EPOLL"]).supports("epoll_wait")

    def test_enosys_names_missing_option(self):
        with pytest.raises(SyscallNotImplemented) as excinfo:
            _engine().invoke("futex")
        assert excinfo.value.missing_option == "FUTEX"
        assert "CONFIG_FUTEX" in str(excinfo.value)
        assert excinfo.value.errno_name == "ENOSYS"

    def test_enosys_error_message_matches_paper_style(self):
        """Section 4.1: 'epoll_create1 failed: function not implemented'."""
        with pytest.raises(SyscallNotImplemented, match="not implemented"):
            _engine().invoke("epoll_create1")

    def test_unknown_syscall(self):
        with pytest.raises(SyscallNotImplemented) as excinfo:
            _engine().invoke("not_a_syscall")
        assert excinfo.value.missing_option is None


class TestAccounting:
    def test_invoke_advances_clock(self):
        engine = _engine()
        engine.invoke("getppid")
        assert engine.clock_ns > 0
        assert engine.call_count == 1

    def test_per_syscall_counts(self):
        engine = _engine()
        engine.invoke("read")
        engine.invoke("read")
        engine.invoke("write")
        assert engine.per_syscall_counts == {"read": 2, "write": 1}

    def test_latency_ns_does_not_mutate(self):
        engine = _engine()
        latency = engine.latency_ns("getppid")
        assert latency > 0
        assert engine.clock_ns == 0
        assert engine.call_count == 0

    def test_work_ns_added(self):
        engine = _engine()
        base = engine.latency_ns("read")
        assert engine.latency_ns("read", work_ns=500) == pytest.approx(
            base + 500
        )

    def test_cpu_work(self):
        engine = _engine()
        engine.cpu_work(1000)
        assert engine.clock_ns == 1000
        with pytest.raises(ValueError):
            engine.cpu_work(-1)

    def test_reset_clock(self):
        engine = _engine()
        engine.invoke("read")
        engine.reset_clock()
        assert engine.clock_ns == 0
        assert engine.call_count == 0
        assert engine.per_syscall_counts == {}


class TestDeterminism:
    def test_identical_runs_identical_clocks(self):
        one, two = _engine(), _engine()
        for _ in range(50):
            one.invoke("read")
            two.invoke("read")
        assert one.clock_ns == two.clock_ns

    def test_jitter_is_bounded(self):
        engine = _engine()
        nominal = engine.latency_ns("getppid")
        samples = [engine.invoke("getppid").latency_ns for _ in range(100)]
        for sample in samples:
            assert abs(sample - nominal) <= 0.02 * nominal + 1.0
        assert len(set(samples)) > 1  # but it does vary


class TestEntryMechanisms:
    def test_kml_engine_is_faster(self):
        syscall = _engine(entry=EntryMechanism.SYSCALL)
        kml = _engine(entry=EntryMechanism.KML_CALL)
        assert kml.latency_ns("getppid") < syscall.latency_ns("getppid")

    def test_kml_runs_identical_kernel_paths(self):
        """Section 3.2: no kernel bypass; only the entry differs."""
        syscall = _engine(entry=EntryMechanism.SYSCALL)
        kml = _engine(entry=EntryMechanism.KML_CALL)
        delta_read = syscall.latency_ns("read") - kml.latency_ns("read")
        delta_null = syscall.latency_ns("getppid") - kml.latency_ns("getppid")
        assert delta_read == pytest.approx(delta_null)
