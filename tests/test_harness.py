"""Tests for the parallel experiment harness.

Covers the registry protocol, the content-addressed kernel build cache,
the on-disk result cache (hit fast path, fingerprint invalidation), the
determinism of concurrent runs, and the emitted run manifest.
"""

import json

import pytest

from repro.core.buildcache import BUILD_CACHE, KernelBuildCache, config_fingerprint
from repro.harness import (
    Artifact,
    Experiment,
    all_experiments,
    get_experiment,
    run_experiments,
)
from repro.harness.codec import decode, encode

#: Cheap structural experiments for cache/determinism tests.
FAST_IDS = ["fig4", "fig5", "table3"]
#: An experiment that performs kernel builds.
KERNEL_IDS = ["fig6"]


def _synthetic(name, calls, fingerprint):
    """A registry-free experiment that records its executions in *calls*."""

    def _run():
        calls.append(name)
        return {"value": len(calls), "points": [(0, 1.0), (1, 2.0)]}

    return Experiment(
        name=name,
        run_fn=_run,
        artifact_fn=lambda: Artifact(text=f"{name}: ran {len(calls)} times"),
        fingerprint_fn=lambda: fingerprint["value"],
    )


class TestBuildCache:
    def test_get_or_build_builds_once(self):
        cache = KernelBuildCache()
        built = []
        for _ in range(3):
            value = cache.get_or_build("k", lambda: built.append(1) or "image")
            assert value == "image"
        assert built == [1]
        stats = cache.stats()
        assert (stats.misses, stats.hits, stats.entries) == (1, 2, 1)

    def test_reset_drops_entries_and_counters(self):
        cache = KernelBuildCache()
        cache.get_or_build("k", lambda: "image")
        cache.reset()
        stats = cache.stats()
        assert (stats.misses, stats.hits, stats.entries) == (0, 0, 0)

    def test_config_fingerprint_is_content_addressed(self):
        base = config_fingerprint(["A", "B"], kml=True)
        assert base == config_fingerprint(["B", "A", "B"], kml=True)
        assert base != config_fingerprint(["A", "B"], kml=False)
        assert base != config_fingerprint(["A", "B", "C"], kml=True)

    def test_build_variant_shares_identical_configs(self):
        from repro.core.variants import Variant, build_variant

        first = build_variant(Variant.LUPINE_GENERAL)
        second = build_variant(Variant.LUPINE_GENERAL)
        assert first is second
        assert first.fingerprint

    def test_global_cache_is_shared(self):
        from repro.core.variants import Variant, build_variant

        build_variant(Variant.LUPINE_GENERAL)
        before = BUILD_CACHE.stats()
        build_variant(Variant.LUPINE_GENERAL)
        after = BUILD_CACHE.stats()
        assert after.misses == before.misses  # no new build
        assert after.hits == before.hits + 1

    def test_factory_raise_leaves_no_poisoned_entry(self):
        cache = KernelBuildCache()

        def _broken():
            raise RuntimeError("toolchain flake")

        with pytest.raises(RuntimeError, match="toolchain flake"):
            cache.get_or_build("k", _broken)
        # Nothing stored, nothing counted: the failed build is invisible.
        assert "k" not in cache
        stats = cache.stats()
        assert (stats.misses, stats.hits, stats.entries) == (0, 0, 0)
        # The next caller retries the factory and gets a clean build.
        assert cache.get_or_build("k", lambda: "image") == "image"
        stats = cache.stats()
        assert (stats.misses, stats.hits, stats.entries) == (1, 0, 1)

    def test_injected_factory_fault_propagates_before_store(self):
        from repro import faults
        from repro.faults import FaultInjected, FaultPlane

        cache = KernelBuildCache()
        plane = FaultPlane(seed=0)
        plane.one_shot("buildcache.factory")
        ran = []
        try:
            with faults.activated(plane):
                with pytest.raises(FaultInjected):
                    cache.get_or_build("k", lambda: ran.append(1) or "image")
        finally:
            faults.deactivate()
        # The fault fired before the factory body ran; miss accounting
        # stays consistent with entries created.
        assert ran == []
        assert cache.stats().misses == 0
        assert cache.get_or_build("k", lambda: "image") == "image"
        assert cache.stats().misses == 1


class TestRegistry:
    def test_discovers_every_experiment_module(self):
        from repro.experiments import ALL_EXPERIMENTS

        registry = all_experiments()
        assert list(registry) == list(ALL_EXPERIMENTS)
        assert len(registry) >= 17

    def test_get_experiment_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_fingerprints_stable_and_mostly_distinct(self):
        registry = all_experiments()
        fingerprints = {
            name: experiment.fingerprint()
            for name, experiment in registry.items()
        }
        again = {
            name: experiment.fingerprint()
            for name, experiment in registry.items()
        }
        assert fingerprints == again
        # Different experiments import different models.
        assert len(set(fingerprints.values())) > len(fingerprints) // 2

    def test_artifact_renders_table_or_figure(self):
        assert "Table 3" in get_experiment("table3").artifact().text
        fig5 = get_experiment("fig5").artifact()
        assert "Figure 5" in fig5.text
        assert fig5.figure is not None

    def test_unreadable_module_counted_not_swallowed(self):
        from repro.harness.registry import (
            _source_errors,
            module_fingerprint,
            reset_fingerprint_caches,
        )
        from repro.observe import METRICS

        reset_fingerprint_caches()
        try:
            before = METRICS.counter("harness.fingerprint_errors").value
            # The module name parses as a repro import but cannot be
            # imported: hashed as '' and counted, never silently dropped.
            fingerprint = module_fingerprint("repro.does_not_exist_zz")
            assert fingerprint
            assert (
                METRICS.counter("harness.fingerprint_errors").value
                == before + 1
            )
            assert "repro.does_not_exist_zz" in _source_errors
            assert _source_errors["repro.does_not_exist_zz"].startswith(
                "ModuleNotFoundError"
            )
            # Memoized: fingerprinting again does not double-count.
            module_fingerprint("repro.does_not_exist_zz")
            assert (
                METRICS.counter("harness.fingerprint_errors").value
                == before + 1
            )
        finally:
            reset_fingerprint_caches()

    def test_builtin_module_is_not_an_error(self):
        from repro.harness.registry import (
            _module_source,
            _source_errors,
            reset_fingerprint_caches,
        )
        from repro.observe import METRICS

        reset_fingerprint_caches()
        try:
            before = METRICS.counter("harness.fingerprint_errors").value
            assert _module_source("sys") == ""  # no __file__: legitimate
            assert METRICS.counter(
                "harness.fingerprint_errors"
            ).value == before
            assert "sys" not in _source_errors
        finally:
            reset_fingerprint_caches()


class TestCodec:
    def test_round_trip_preserves_structure(self):
        from repro.security.attack_surface import Cve
        from repro.syscall.lmbench import LmbenchReport

        value = {
            "report": LmbenchReport(
                system="x", latencies_us={"null call": 0.04},
                bandwidths_mb_s={"bw_mem rd": 9000.0},
            ),
            "points": [(0, 0.4), (160, 0.02)],
            "rows": {"ADVISE_SYSCALLS": ("madvise",)},
            "cve": Cve(identifier="CVE-1", option="X", severity=9.1),
            "mixed-keys": {0: "a", "b": 1},
        }
        restored = decode(encode(value))
        assert restored["report"].latencies_us == {"null call": 0.04}
        assert restored["points"] == [(0, 0.4), (160, 0.02)]
        assert restored["rows"]["ADVISE_SYSCALLS"] == ("madvise",)
        assert restored["cve"].severity == 9.1
        assert restored["mixed-keys"] == {0: "a", "b": 1}

    def test_encoded_results_are_json_serializable(self):
        run = run_experiments(
            names=["table5", "ext-security"], jobs=1,
            write_outputs=False, use_result_cache=False,
        )
        for result in run.results.values():
            json.dumps(encode(result), sort_keys=True)

    def test_unregistered_dataclass_rejected(self):
        import dataclasses

        @dataclasses.dataclass
        class Rogue:
            x: int = 1

        with pytest.raises(TypeError):
            encode(Rogue())


class TestResultCache:
    def test_warm_run_hits_everything_and_builds_nothing(self, tmp_path):
        names = FAST_IDS + KERNEL_IDS
        cold = run_experiments(
            names=names, jobs=1,
            output_dir=tmp_path / "out1", cache_dir=tmp_path / "cache",
        )
        assert cold.telemetry.result_cache_misses == len(names)
        before = BUILD_CACHE.stats()
        warm = run_experiments(
            names=names, jobs=1,
            output_dir=tmp_path / "out2", cache_dir=tmp_path / "cache",
        )
        after = BUILD_CACHE.stats()
        assert warm.telemetry.result_cache_hits == len(names)
        assert warm.telemetry.result_cache_misses == 0
        assert warm.telemetry.kernel_builds_performed == 0
        # The warm run never even consulted the kernel build cache.
        assert after.misses == before.misses and after.hits == before.hits
        # Byte-identical outputs.
        for name, path in cold.output_paths.items():
            assert path.read_bytes() == warm.output_paths[name].read_bytes()
        assert warm.results == cold.results

    def test_fingerprint_change_invalidates(self, tmp_path):
        calls = []
        fingerprint = {"value": "aaaa"}
        experiment = _synthetic("synthetic", calls, fingerprint)
        kwargs = dict(
            experiments=[experiment], jobs=1, write_outputs=False,
            cache_dir=tmp_path / "cache",
        )
        run_experiments(**kwargs)
        assert calls == ["synthetic"]
        second = run_experiments(**kwargs)
        assert calls == ["synthetic"]  # cache hit: not re-executed
        assert second.telemetry.result_cache_hits == 1

        fingerprint["value"] = "bbbb"  # inputs changed
        third = run_experiments(**kwargs)
        assert calls == ["synthetic", "synthetic"]
        assert third.telemetry.result_cache_misses == 1

    def test_force_reruns_but_refreshes_cache(self, tmp_path):
        calls = []
        fingerprint = {"value": "aaaa"}
        experiment = _synthetic("synthetic", calls, fingerprint)
        kwargs = dict(
            experiments=[experiment], jobs=1, write_outputs=False,
            cache_dir=tmp_path / "cache",
        )
        run_experiments(**kwargs)
        run_experiments(force=True, **kwargs)
        assert calls == ["synthetic", "synthetic"]
        final = run_experiments(**kwargs)
        assert final.telemetry.result_cache_hits == 1

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        calls = []
        fingerprint = {"value": "aaaa"}
        experiment = _synthetic("synthetic", calls, fingerprint)
        kwargs = dict(
            experiments=[experiment], jobs=1, write_outputs=False,
            cache_dir=tmp_path / "cache",
        )
        run_experiments(**kwargs)
        for path in (tmp_path / "cache").glob("*.json"):
            path.write_text("{not json")
        run_experiments(**kwargs)
        assert calls == ["synthetic", "synthetic"]


class TestDeterminism:
    def test_jobs_1_and_4_merge_identically(self, tmp_path):
        names = FAST_IDS + KERNEL_IDS
        serial = run_experiments(
            names=names, jobs=1, force=True,
            output_dir=tmp_path / "serial", cache_dir=tmp_path / "c1",
        )
        concurrent = run_experiments(
            names=names, jobs=4, force=True,
            output_dir=tmp_path / "concurrent", cache_dir=tmp_path / "c2",
        )
        assert list(serial.results) == names == list(concurrent.results)
        assert serial.artifacts == concurrent.artifacts
        assert (
            json.dumps(encode(serial.results), sort_keys=True)
            == json.dumps(encode(concurrent.results), sort_keys=True)
        )
        for name in names:
            assert (
                serial.output_paths[name].read_bytes()
                == concurrent.output_paths[name].read_bytes()
            )

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(names=["fig99"], write_outputs=False)


class TestManifest:
    def test_manifest_written_with_telemetry(self, tmp_path):
        run = run_experiments(
            names=FAST_IDS, jobs=2,
            output_dir=tmp_path / "out", cache_dir=tmp_path / "cache",
        )
        assert run.manifest_path is not None
        manifest = json.loads(run.manifest_path.read_text())
        assert manifest["jobs"] == 2
        assert [e["name"] for e in manifest["experiments"]] == FAST_IDS
        for entry in manifest["experiments"]:
            assert entry["wall_ms"] >= 0
            assert entry["fingerprint"]
            assert entry["cache_hit"] is False
        assert manifest["result_cache"]["misses"] == len(FAST_IDS)
        assert "performed" in manifest["kernel_builds"]

    def test_warm_manifest_reports_full_hit_rate(self, tmp_path):
        kwargs = dict(
            names=FAST_IDS, jobs=2,
            output_dir=tmp_path / "out", cache_dir=tmp_path / "cache",
        )
        run_experiments(**kwargs)
        warm = run_experiments(**kwargs)
        manifest = json.loads(warm.manifest_path.read_text())
        assert manifest["result_cache"]["hit_rate"] == 1.0
        assert manifest["kernel_builds"]["performed"] == 0
