"""Tests for specialization (Section 3.1) and the Figure 4 classification."""

import pytest

from repro.apps.registry import TOP20_APPS, get_app
from repro.core.classification import classify_microvm_options
from repro.core.specialization import (
    app_config,
    app_option_requirements,
    lupine_general_config,
    lupine_general_names,
    verify_general_covers_top20,
)


class TestAppConfigs:
    def test_redis_config_resolves_cleanly(self, tree):
        config = app_config(get_app("redis"), tree)
        assert config.demoted == {}
        assert len(config.enabled) == 283 + 10

    def test_hello_world_config_is_base(self, tree, lupine_base):
        config = app_config(get_app("hello-world"), tree)
        assert config.enabled == lupine_base.enabled

    @pytest.mark.parametrize("name", [a.name for a in TOP20_APPS])
    def test_all_top20_configs_resolve(self, tree, name):
        app = get_app(name)
        config = app_config(app, tree)
        assert config.demoted == {}
        assert len(config.enabled) == 283 + app.option_count

    def test_config_name(self, tree):
        assert app_config(get_app("nginx"), tree).name == "lupine-nginx"

    def test_app_requirements_match_table3(self):
        assert len(app_option_requirements(get_app("nginx"))) == 13

    def test_redis_kernel_lacks_nginx_only_syscalls(self, tree):
        """Section 3.1.1: 'A Lupine kernel compiled for redis does not
        contain the AIO or EVENTFD-related system calls.'"""
        from repro.syscall.dispatch import SyscallEngine

        config = app_config(get_app("redis"), tree)
        engine = SyscallEngine.for_config(config.enabled)
        assert engine.supports("epoll_wait")
        assert engine.supports("futex")
        assert not engine.supports("io_submit")
        assert not engine.supports("eventfd2")


class TestLupineGeneral:
    def test_general_is_base_plus_19(self):
        assert len(lupine_general_names()) == 283 + 19

    def test_general_resolves_cleanly(self, tree):
        config = lupine_general_config(tree)
        assert config.demoted == {}
        assert len(config.enabled) == 302

    def test_general_covers_every_app(self):
        assert verify_general_covers_top20()

    def test_general_superset_of_every_app_config(self, tree):
        general = lupine_general_config(tree)
        for app in TOP20_APPS:
            assert app_config(app, tree).enabled <= general.enabled


class TestClassification:
    def test_figure4_arithmetic(self):
        classification = classify_microvm_options()
        counts = classification.category_counts()
        assert len(classification.microvm) == 833
        assert len(classification.lupine_base) == 283
        assert len(classification.removed) == 550
        assert counts == {"app": 311, "mp": 89, "hw": 150}
        assert sum(counts.values()) == 550

    def test_categories_partition_removed_set(self):
        classification = classify_microvm_options()
        union = set()
        for names in classification.removed_by_category.values():
            assert not (union & names)
            union |= names
        assert union == set(classification.removed)

    def test_category_of(self):
        classification = classify_microvm_options()
        assert classification.category_of("PRINTK") == "base"
        assert classification.category_of("EPOLL") == "app"
        assert classification.category_of("SMP") == "mp"
        assert classification.category_of("ACPI") == "hw"
        with pytest.raises(KeyError):
            classification.category_of("KERNEL_MODE_LINUX")

    def test_sysvipc_classified_multiprocess(self):
        """Section 4.1: SYSVIPC was classified multi-process, yet postgres
        needs it -- the canonical graceful-degradation example."""
        classification = classify_microvm_options()
        assert classification.category_of("SYSVIPC") == "mp"
        assert "SYSVIPC" in get_app("postgres").required_options

    def test_summary_rows(self):
        rows = dict(classify_microvm_options().summary_rows())
        assert rows["microVM total"] == 833
        assert rows["lupine-base"] == 283
        assert rows["Application-specific"] == 311
