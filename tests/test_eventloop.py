"""Tests for the epoll/eventfd/timerfd substrate."""

import pytest

from repro.sched.eventloop import (
    EpollInstance,
    EventLoopError,
    EventMask,
    SimEventFd,
    SimSocket,
    SimTimerFd,
)
from repro.sched.scheduler import Scheduler
from repro.sched.smp import SmpModel
from repro.sched.task import TaskState
from repro.syscall.dispatch import SyscallEngine, SyscallNotImplemented


def _setup(options=("EPOLL", "EVENTFD", "TIMERFD")):
    engine = SyscallEngine.for_config(options)
    scheduler = Scheduler(
        cost_model=engine.cost_model, smp=SmpModel(smp_enabled=False)
    )
    return engine, scheduler


class TestConfigGating:
    def test_epoll_requires_config(self):
        engine, scheduler = _setup(options=())
        with pytest.raises(SyscallNotImplemented, match="EPOLL"):
            EpollInstance(engine=engine, scheduler=scheduler)

    def test_epoll_available_with_config(self):
        engine, scheduler = _setup()
        EpollInstance(engine=engine, scheduler=scheduler)


class TestInterestList:
    def test_add_modify_remove(self):
        engine, scheduler = _setup()
        epoll = EpollInstance(engine=engine, scheduler=scheduler)
        socket = SimSocket(fd=4)
        epoll.add(socket, EventMask.IN)
        epoll.modify(socket, EventMask.IN | EventMask.OUT)
        epoll.remove(socket)

    def test_duplicate_add_is_eexist(self):
        engine, scheduler = _setup()
        epoll = EpollInstance(engine=engine, scheduler=scheduler)
        socket = SimSocket(fd=4)
        epoll.add(socket, EventMask.IN)
        with pytest.raises(EventLoopError, match="EEXIST"):
            epoll.add(socket, EventMask.IN)

    def test_modify_unknown_is_enoent(self):
        engine, scheduler = _setup()
        epoll = EpollInstance(engine=engine, scheduler=scheduler)
        with pytest.raises(EventLoopError, match="ENOENT"):
            epoll.modify(SimSocket(fd=9), EventMask.IN)


class TestReadiness:
    def test_socket_readable_after_delivery(self):
        socket = SimSocket(fd=4)
        assert not socket.readiness() & EventMask.IN
        socket.deliver(b"ping")
        assert socket.readiness() & EventMask.IN
        assert socket.recv() == b"ping"
        assert not socket.readiness() & EventMask.IN

    def test_socket_writability_tracks_tx_window(self):
        socket = SimSocket(fd=4, tx_window=2)
        assert socket.send(b"a") and socket.send(b"b")
        assert not socket.send(b"c")  # window full
        assert not socket.readiness() & EventMask.OUT
        socket.tx_complete()
        assert socket.readiness() & EventMask.OUT

    def test_hangup_reports_hup_and_in(self):
        socket = SimSocket(fd=4)
        socket.hang_up()
        assert socket.readiness() & EventMask.HUP
        assert socket.readiness() & EventMask.IN

    def test_eventfd_counter_semantics(self):
        efd = SimEventFd(fd=5)
        assert not efd.readiness() & EventMask.IN
        efd.signal(3)
        efd.signal()
        assert efd.readiness() & EventMask.IN
        assert efd.consume() == 4
        assert not efd.readiness() & EventMask.IN
        with pytest.raises(EventLoopError):
            efd.signal(0)

    def test_timerfd_fires_on_simulated_clock(self):
        engine, scheduler = _setup()
        tfd = SimTimerFd(fd=6, engine=engine)
        tfd.arm(delay_ns=1000.0)
        assert not tfd.readiness() & EventMask.IN
        engine.cpu_work(1500.0)
        assert tfd.readiness() & EventMask.IN
        tfd.acknowledge()
        assert tfd.expirations == 1
        assert not tfd.readiness() & EventMask.IN


class TestWaitAndWake:
    def test_wait_returns_ready_events_immediately(self):
        engine, scheduler = _setup()
        epoll = EpollInstance(engine=engine, scheduler=scheduler)
        socket = SimSocket(fd=4)
        socket.deliver(b"x")
        epoll.add(socket, EventMask.IN)
        task = scheduler.spawn("server")
        events = epoll.wait(task)
        assert events and events[0][0] is socket
        assert task.state is not TaskState.SLEEPING

    def test_wait_blocks_until_notify(self):
        engine, scheduler = _setup()
        epoll = EpollInstance(engine=engine, scheduler=scheduler)
        socket = SimSocket(fd=4)
        epoll.add(socket, EventMask.IN)
        task = scheduler.spawn("server")
        assert epoll.wait(task) == []
        assert task.state is TaskState.SLEEPING
        socket.deliver(b"request")
        assert epoll.notify() == 1
        assert task.state is TaskState.READY
        assert epoll.wait(task)  # now ready

    def test_notify_without_events_wakes_nobody(self):
        engine, scheduler = _setup()
        epoll = EpollInstance(engine=engine, scheduler=scheduler)
        socket = SimSocket(fd=4)
        epoll.add(socket, EventMask.IN)
        task = scheduler.spawn("server")
        epoll.wait(task)
        assert epoll.notify() == 0
        assert task.state is TaskState.SLEEPING

    def test_mask_filters_events(self):
        engine, scheduler = _setup()
        epoll = EpollInstance(engine=engine, scheduler=scheduler)
        socket = SimSocket(fd=4)
        socket.deliver(b"x")
        epoll.add(socket, EventMask.OUT)  # not interested in IN
        task = scheduler.spawn("server")
        events = epoll.wait(task)
        assert events and not events[0][1] & EventMask.IN

    def test_level_triggered_fires_repeatedly(self):
        engine, scheduler = _setup()
        epoll = EpollInstance(engine=engine, scheduler=scheduler)
        socket = SimSocket(fd=4)
        socket.deliver(b"x")
        epoll.add(socket, EventMask.IN)
        task = scheduler.spawn("server")
        assert epoll.wait(task)
        assert epoll.wait(task)  # data still unread: still ready

    def test_wait_charges_syscall_time(self):
        engine, scheduler = _setup()
        epoll = EpollInstance(engine=engine, scheduler=scheduler)
        before = engine.clock_ns
        epoll.wait(scheduler.spawn("t"))
        assert engine.clock_ns > before
