"""Shared fixtures.

Expensive artifacts (the option tree, resolved configs, built variants) are
session-scoped: they are immutable, so sharing them across tests is safe and
keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.core.variants import (
    Variant,
    build_microvm,
    build_variant,
)
from repro.kconfig.configs import lupine_base_config, microvm_config
from repro.kconfig.database import build_linux_tree


@pytest.fixture(scope="session")
def tree():
    return build_linux_tree()


@pytest.fixture(scope="session")
def kml_tree():
    return build_linux_tree(patches=("kml",))


@pytest.fixture(scope="session")
def microvm(tree):
    return microvm_config(tree)


@pytest.fixture(scope="session")
def lupine_base(tree):
    return lupine_base_config(tree)


@pytest.fixture(scope="session")
def microvm_build():
    return build_microvm()


@pytest.fixture(scope="session")
def lupine_build():
    return build_variant(Variant.LUPINE)


@pytest.fixture(scope="session")
def nokml_build():
    return build_variant(Variant.LUPINE_NOKML)


@pytest.fixture(scope="session")
def general_build():
    return build_variant(Variant.LUPINE_GENERAL)
