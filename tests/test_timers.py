"""Tests for the hierarchical timer wheel."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sched.timers import TimerError, TimerWheel, WHEEL_SLOTS


class TestBasics:
    def test_fires_at_expiry(self):
        wheel = TimerWheel()
        timer = wheel.arm_after_ticks(5)
        assert wheel.advance(4) == []
        fired = wheel.advance(1)
        assert fired == [timer]
        assert timer.fired

    def test_callback_invoked(self):
        wheel = TimerWheel()
        log = []
        wheel.arm_after_ticks(2, callback=lambda: log.append("ding"))
        wheel.advance(2)
        assert log == ["ding"]

    def test_cancel_prevents_firing(self):
        wheel = TimerWheel()
        timer = wheel.arm_after_ticks(3)
        assert wheel.cancel(timer)
        assert wheel.advance(5) == []
        assert not timer.fired
        assert not wheel.cancel(timer)  # second cancel is a no-op

    def test_zero_tick_arm_rejected(self):
        with pytest.raises(TimerError):
            TimerWheel().arm_after_ticks(0)

    def test_negative_advance_rejected(self):
        with pytest.raises(TimerError):
            TimerWheel().advance(-1)

    def test_ns_arming_uses_hz_granularity(self):
        fast = TimerWheel(hz=1000)
        slow = TimerWheel(hz=100)
        # 3 ms = 3 ticks at 1000 Hz, rounds up to 1 tick at 100 Hz.
        fast_timer = fast.arm_after_ns(3e6)
        slow_timer = slow.arm_after_ns(3e6)
        assert fast_timer.expires_tick == 3
        assert slow_timer.expires_tick == 1

    def test_pending_count(self):
        wheel = TimerWheel()
        timers = [wheel.arm_after_ticks(i + 1) for i in range(5)]
        assert wheel.pending_count == 5
        wheel.cancel(timers[0])
        assert wheel.pending_count == 4
        wheel.advance(10)
        assert wheel.pending_count == 0


class TestHierarchy:
    def test_far_future_timer_cascades_and_fires(self):
        wheel = TimerWheel()
        distance = WHEEL_SLOTS * 3 + 7  # lives in level 1 initially
        timer = wheel.arm_after_ticks(distance)
        fired = wheel.advance(distance)
        assert timer in fired
        assert wheel.cascade_count >= 1

    def test_very_far_timer(self):
        wheel = TimerWheel()
        distance = WHEEL_SLOTS ** 2 + 13
        timer = wheel.arm_after_ticks(distance)
        assert wheel.advance(distance - 1) == []
        assert wheel.advance(1) == [timer]

    def test_many_timers_fire_exactly_once(self):
        wheel = TimerWheel()
        timers = [wheel.arm_after_ticks(t) for t in range(1, 200)]
        fired = wheel.advance(250)
        assert len(fired) == len(timers)
        assert all(t.fired for t in timers)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=500),
                    min_size=1, max_size=40))
    def test_every_timer_fires_on_time(self, delays):
        wheel = TimerWheel()
        timers = [wheel.arm_after_ticks(delay) for delay in delays]
        horizon = max(delays)
        fire_ticks = {}
        for tick in range(1, horizon + 1):
            for timer in wheel.advance(1):
                fire_ticks[timer.timer_id] = tick
        for timer, delay in zip(timers, delays):
            assert fire_ticks[timer.timer_id] == delay
        assert wheel.pending_count == 0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 300), st.booleans()),
                    min_size=1, max_size=30))
    def test_cancelled_timers_never_fire(self, specs):
        wheel = TimerWheel()
        expected = 0
        for delay, cancel in specs:
            timer = wheel.arm_after_ticks(delay)
            if cancel:
                wheel.cancel(timer)
            else:
                expected += 1
        fired = wheel.advance(400)
        assert len(fired) == expected
