"""End-to-end tests of the Figure 2 pipeline and graceful degradation."""

import pytest

from repro.apps.registry import get_app
from repro.core.lupine import LupineBuilder
from repro.core.variants import Variant
from repro.rootfs.init import INIT_SCRIPT_PATH
from repro.syscall.dispatch import SyscallNotImplemented
from repro.vmm.monitor import solo5_hvt


@pytest.fixture(scope="module")
def redis_unikernel():
    return LupineBuilder(variant=Variant.LUPINE).build_for_app(
        get_app("redis")
    )


class TestBuildPipeline:
    def test_kernel_is_application_specific(self, redis_unikernel):
        config = redis_unikernel.build.config
        assert "EPOLL" in config and "FUTEX" in config
        assert "AIO" not in config  # nginx-only

    def test_rootfs_contains_app_libc_and_init(self, redis_unikernel):
        rootfs = redis_unikernel.rootfs
        assert rootfs.exists("/usr/bin/redis-server")
        assert rootfs.exists("/lib/ld-musl-x86_64.so.1")
        assert rootfs.exists(INIT_SCRIPT_PATH)
        assert rootfs.lookup(INIT_SCRIPT_PATH).executable

    def test_kml_variant_ships_patched_libc(self, redis_unikernel):
        assert redis_unikernel.libc.kml_patched

    def test_init_script_mounts_proc_for_redis(self, redis_unikernel):
        assert "mount -t proc" in redis_unikernel.init_script
        assert "exec /usr/bin/redis-server" in redis_unikernel.init_script

    def test_nokml_variant_ships_plain_libc(self):
        unikernel = LupineBuilder(variant=Variant.LUPINE_NOKML).build_for_app(
            get_app("redis")
        )
        assert not unikernel.libc.kml_patched

    def test_bare_build(self):
        unikernel = LupineBuilder().build_bare()
        assert unikernel.app.name == "hello-world"
        assert unikernel.kernel_image_mb < 4.5

    def test_artifact_sizes(self, redis_unikernel):
        assert 3.5 <= redis_unikernel.kernel_image_mb <= 5.0
        assert redis_unikernel.rootfs_size_mb > 2.0


class TestBoot:
    def test_boot_succeeds_on_firecracker(self, redis_unikernel):
        guest = redis_unikernel.boot()
        assert guest.ran_successfully
        assert guest.boot_report.total_ms > 0
        assert "redis: ready" in guest.console

    def test_boot_rejected_on_incompatible_monitor(self, redis_unikernel):
        from repro.vmm.monitor import MonitorError

        with pytest.raises(MonitorError):
            redis_unikernel.boot(monitor=solo5_hvt())

    def test_guest_is_kernel_mode_under_kml(self, redis_unikernel):
        guest = redis_unikernel.boot()
        assert guest.app_task.kernel_mode

    def test_min_memory_in_paper_range(self, redis_unikernel):
        assert 18 <= redis_unikernel.min_memory_mb() <= 25  # paper: ~21


class TestGracefulDegradation:
    def test_fork_just_works(self, redis_unikernel):
        """Section 5: 'rather than crashing on fork, Lupine continues'."""
        guest = redis_unikernel.boot()
        child = guest.fork_app()
        assert child.pid != guest.app_task.pid
        assert guest.ran_successfully

    def test_missing_syscall_is_enosys_not_crash(self, redis_unikernel):
        guest = redis_unikernel.boot()
        with pytest.raises(SyscallNotImplemented):
            guest.syscall("io_submit")  # redis kernel has no AIO
        # The guest is still alive and serving:
        assert guest.syscall("epoll_wait").latency_ns > 0

    def test_control_processes_spawnable(self, redis_unikernel):
        guest = redis_unikernel.boot()
        control = guest.spawn_control_processes(64)
        assert len(control) == 64
        assert guest.scheduler.sleeping_count() == 64

    def test_multiprocess_postgres_runs_on_lupine(self):
        """The app every unikernel rejects boots fine here."""
        postgres = get_app("postgres")
        unikernel = LupineBuilder(variant=Variant.LUPINE).build_for_app(
            postgres
        )
        assert "SYSVIPC" in unikernel.build.config
        guest = unikernel.boot()
        assert guest.ran_successfully
        guest.fork_app()


class TestGuestDmesg:
    def test_dmesg_reflects_config(self, redis_unikernel):
        guest = redis_unikernel.boot()
        text = guest.dmesg()
        assert "TCP: Hash tables configured" in text  # redis needs INET
        assert "SELinux" not in text
        assert "boot complete" in text


class TestBootFailureInjection:
    def test_rootfs_without_init_cannot_boot(self, redis_unikernel):
        import dataclasses

        from repro.rootfs.container import FileEntry
        from repro.rootfs.ext2 import build_ext2

        broken = dataclasses.replace(
            redis_unikernel,
            rootfs=build_ext2([FileEntry("/usr/bin/redis-server", 2100,
                                         executable=True)]),
        )
        with pytest.raises(RuntimeError, match="startup script"):
            broken.boot()
