"""Cross-model property tests: monotonicity and consistency invariants.

Within the microVM option universe (which has no negative dependencies),
adding options can only grow the resolved set, the image, the boot time,
the static memory, the syscall surface and the packet-path cost.  These
invariants are what make the paper's "remove options -> everything gets
smaller/faster" methodology sound, so we check them directly.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.kbuild.builder import KernelBuilder
from repro.kconfig.database import (
    base_option_names,
    build_linux_tree,
    removed_option_names,
)
from repro.kconfig.resolver import Resolver
from repro.netstack.path import NetworkPath
from repro.syscall.table import available_syscalls

_TREE = build_linux_tree()
_BASE = base_option_names()
_REMOVED = removed_option_names()

_extra_subsets = st.sets(st.sampled_from(_REMOVED), max_size=25)

_settings = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _resolve(extra):
    return Resolver(_TREE).resolve_names(_BASE + sorted(extra))


class TestMonotonicity:
    @_settings
    @given(_extra_subsets, _extra_subsets)
    def test_resolution_monotone(self, small, large_extra):
        small_config = _resolve(small)
        large_config = _resolve(small | large_extra)
        assert small_config.enabled <= large_config.enabled

    @_settings
    @given(_extra_subsets)
    def test_requested_options_enabled_or_selected(self, extra):
        config = _resolve(extra)
        # Within the microvm universe every request survives resolution
        # (its dependencies are requested too or pulled in by selects)...
        # unless a dependency lies outside lupine-base and the sample.
        for name in extra:
            if name in config:
                continue
            option = _TREE[name]
            missing = option.dependency_symbols() - config.enabled
            assert missing, f"{name} disabled without missing deps"

    @_settings
    @given(_extra_subsets, _extra_subsets)
    def test_image_size_monotone(self, small, large_extra):
        builder = KernelBuilder()
        small_image = builder.build(_resolve(small))
        large_image = builder.build(_resolve(small | large_extra))
        assert large_image.compressed_kb >= small_image.compressed_kb - 1e-9

    @_settings
    @given(_extra_subsets, _extra_subsets)
    def test_boot_time_monotone(self, small, large_extra):
        from repro.boot.bootsim import BootSimulator

        simulator = BootSimulator(monitor_setup_ms=8.0)
        small_boot = simulator.boot(KernelBuilder().build(_resolve(small)))
        large_boot = simulator.boot(
            KernelBuilder().build(_resolve(small | large_extra))
        )
        assert large_boot.total_ms >= small_boot.total_ms - 1e-9

    @_settings
    @given(_extra_subsets, _extra_subsets)
    def test_syscall_surface_monotone(self, small, large_extra):
        small_set = available_syscalls(_resolve(small).enabled)
        large_set = available_syscalls(_resolve(small | large_extra).enabled)
        assert small_set <= large_set

    @_settings
    @given(_extra_subsets)
    def test_packet_path_never_cheaper_than_lean(self, extra):
        config = _resolve(extra | {"INET"})
        path = NetworkPath.for_options(config.enabled)
        lean = NetworkPath.for_options(["INET"])
        assert path.packet_ns() >= lean.packet_ns() - 1e-9


class TestConsistency:
    @_settings
    @given(_extra_subsets)
    def test_resolution_deterministic(self, extra):
        assert _resolve(extra).enabled == _resolve(extra).enabled

    @_settings
    @given(_extra_subsets)
    def test_footprint_succeeds_above_requirement(self, extra):
        from repro.mm.footprint import FootprintModel

        model = FootprintModel(image=KernelBuilder().build(_resolve(extra)))
        required_mb = model.required_kb() / 1024.0
        assert model.try_boot(int(required_mb) + 3)
        assert not model.try_boot(max(1, int(required_mb * 0.5)))
