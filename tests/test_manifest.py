"""Tests for manifest generation and option derivation."""

import pytest

from repro.apps.registry import TOP20_APPS, get_app
from repro.core.manifest import (
    ApplicationManifest,
    derive_options,
    generate_manifest,
    manifest_from_trace,
)


class TestGeneration:
    def test_manifest_mirrors_app(self):
        redis = get_app("redis")
        manifest = generate_manifest(redis)
        assert manifest.app_name == "redis"
        assert manifest.syscalls == redis.syscalls
        assert manifest.needs_network

    def test_derivation_matches_hand_derived_config_for_all_apps(self):
        """The paper's error-message-driven derivation, automated: must
        produce exactly Table 3's per-app option sets."""
        for app in TOP20_APPS:
            derived = derive_options(generate_manifest(app))
            assert derived == app.required_options, app.name


class TestValidation:
    def test_unknown_syscall_rejected(self):
        with pytest.raises(ValueError, match="unknown syscalls"):
            ApplicationManifest("x", syscalls=frozenset({"frobnicate"}))

    def test_unknown_facility_rejected(self):
        with pytest.raises(ValueError, match="unknown facilities"):
            ApplicationManifest(
                "x", syscalls=frozenset(), facilities=frozenset({"warp:9"})
            )


class TestTraceDriven:
    def test_trace_deduplicates(self):
        manifest = manifest_from_trace(
            "custom", ["read", "read", "epoll_wait"], ["socket:inet"]
        )
        assert manifest.syscalls == {"read", "epoll_wait"}
        assert manifest.needs_network

    def test_trace_derivation(self):
        manifest = manifest_from_trace(
            "custom",
            ["read", "write", "futex", "epoll_wait", "timerfd_create"],
            ["socket:inet", "mount:proc"],
        )
        assert derive_options(manifest) == {
            "FUTEX", "EPOLL", "TIMERFD", "INET", "PROC_FS"
        }

    def test_ungated_syscalls_imply_nothing(self):
        manifest = manifest_from_trace("tiny", ["read", "write", "getpid"])
        assert derive_options(manifest) == frozenset()
        assert not manifest.needs_network
