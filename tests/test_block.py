"""Tests for the block device and page cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.block.device import (
    BlockDeviceError,
    BlockRequest,
    RequestKind,
    VirtioBlockDevice,
)
from repro.block.pagecache import PAGE_KB, PageCache


def _device(**kwargs):
    return VirtioBlockDevice(capacity_mb=64, **kwargs)


class TestDevice:
    def test_read_costs_latency_plus_transfer(self):
        device = _device()
        small = device.read(0, 4)
        large = _device().read(0, 64)
        assert large > small

    def test_flush_is_expensive(self):
        device = _device()
        read_ns = device.read(0, 4)
        flush_ns = device.flush()
        assert flush_ns > 5 * read_ns

    def test_out_of_range_rejected(self):
        device = _device()
        with pytest.raises(BlockDeviceError, match="beyond end"):
            device.read(device.capacity_sectors, 4)

    def test_read_only_device_rejects_writes(self):
        device = VirtioBlockDevice(capacity_mb=16, read_only=True)
        with pytest.raises(BlockDeviceError, match="read-only"):
            device.write(0, 4)
        device.read(0, 4)  # reads fine

    def test_invalid_requests(self):
        with pytest.raises(BlockDeviceError):
            BlockRequest(RequestKind.READ, -1, 4)
        with pytest.raises(BlockDeviceError):
            BlockRequest(RequestKind.WRITE, 0, 0)

    def test_queue_batching_amortizes_latency(self):
        """A deep virtqueue overlaps device latency across requests."""
        batched = _device()
        for index in range(16):
            batched.submit(BlockRequest(RequestKind.READ, index * 8, 4))
        batched.complete_all()
        serial = _device()
        for index in range(16):
            serial.read(index * 8, 4)
        assert batched.clock_ns < serial.clock_ns

    def test_queue_overflow_applies_backpressure(self):
        device = _device(queue_depth=4)
        for index in range(6):  # exceeds depth; must not raise
            device.submit(BlockRequest(RequestKind.READ, index * 8, 4))
        device.complete_all()
        assert device.stats["read"] == 6

    def test_stats(self):
        device = _device()
        device.read(0, 4)
        device.write(8, 4)
        device.flush()
        assert device.stats == {"read": 1, "write": 1, "flush": 1}


class TestPageCache:
    def test_second_read_hits(self):
        cache = PageCache(_device())
        first = cache.read(0, 4)
        second = cache.read(0, 4)
        assert second < first / 5
        assert cache.hits == 1 and cache.misses == 1

    def test_buffered_writes_touch_no_device(self):
        device = _device()
        cache = PageCache(device)
        cache.write(0, 64)
        assert device.stats["write"] == 0
        assert len(cache.dirty_pages) == 16

    def test_fsync_writes_back_and_flushes(self):
        device = _device()
        cache = PageCache(device)
        cache.write(0, 16)
        cache.fsync()
        assert device.stats["write"] == 4
        assert device.stats["flush"] == 1
        assert not cache.dirty_pages

    def test_fsync_dominates_buffered_write(self):
        """The pgbench WAL mechanism: the sync, not the write, costs."""
        cache = PageCache(_device())
        write_ns = cache.write(0, 8)
        fsync_ns = cache.fsync()
        assert fsync_ns > 20 * write_ns

    def test_lru_eviction_writes_back_dirty_victims(self):
        device = _device()
        cache = PageCache(device, capacity_pages=4)
        cache.write(0, 4 * PAGE_KB)  # fill with dirty pages
        cache.read(64, 4)            # evicts one dirty page
        assert cache.writebacks == 1
        assert device.stats["write"] == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PageCache(_device(), capacity_pages=0)

    def test_multi_page_ranges(self):
        cache = PageCache(_device())
        cache.read(0, 12)  # three pages
        assert cache.misses == 3
        assert cache.cached_pages == 3

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["read", "write", "fsync"]),
                  st.integers(0, 120), st.integers(1, 24)),
        min_size=1, max_size=40,
    ))
    def test_invariants_under_random_io(self, operations):
        device = _device()
        cache = PageCache(device, capacity_pages=16)
        for kind, offset, size in operations:
            if kind == "read":
                cache.read(float(offset), float(size))
            elif kind == "write":
                cache.write(float(offset), float(size))
            else:
                cache.fsync()
            assert cache.cached_pages <= cache.capacity_pages
            assert cache.dirty_pages <= set(cache._pages)
        cache.fsync()
        assert not cache.dirty_pages
