"""Tests for the Kconfig expression language."""

import pytest
from hypothesis import given, strategies as st

from repro.kconfig.expr import (
    And,
    Compare,
    ExprError,
    Not,
    Or,
    Symbol,
    Tristate,
    expr_symbols,
    parse_expr,
)

Y, M, N = Tristate.YES, Tristate.MODULE, Tristate.NO


class TestTristate:
    def test_ordering(self):
        assert N < M < Y

    def test_str(self):
        assert str(Y) == "y"
        assert str(M) == "m"
        assert str(N) == "n"

    @pytest.mark.parametrize("text,value", [("y", Y), ("m", M), ("n", N),
                                            ("Y", Y), ("M", M), ("N", N)])
    def test_from_str(self, text, value):
        assert Tristate.from_str(text) is value

    def test_from_str_rejects_garbage(self):
        with pytest.raises(ValueError):
            Tristate.from_str("maybe")

    def test_invert_follows_kconfig(self):
        assert ~Y is N
        assert ~N is Y
        assert ~M is M  # !m == m in Kconfig


class TestParsing:
    def test_single_symbol(self):
        assert parse_expr("NET") == Symbol("NET")

    def test_and(self):
        assert parse_expr("A && B") == And(Symbol("A"), Symbol("B"))

    def test_or(self):
        assert parse_expr("A || B") == Or(Symbol("A"), Symbol("B"))

    def test_not(self):
        assert parse_expr("!A") == Not(Symbol("A"))

    def test_double_negation(self):
        assert parse_expr("!!A") == Not(Not(Symbol("A")))

    def test_precedence_and_binds_tighter(self):
        expr = parse_expr("A || B && C")
        assert isinstance(expr, Or)
        assert isinstance(expr.rhs, And)

    def test_parentheses_override_precedence(self):
        expr = parse_expr("(A || B) && C")
        assert isinstance(expr, And)
        assert isinstance(expr.lhs, Or)

    def test_comparison_equal(self):
        expr = parse_expr("A = B")
        assert expr == Compare(Symbol("A"), Symbol("B"), negated=False)

    def test_comparison_not_equal(self):
        expr = parse_expr("A != y")
        assert expr == Compare(Symbol("A"), Symbol("y"), negated=True)

    def test_quoted_string_symbol(self):
        expr = parse_expr('ARCH = "x86_64"')
        assert isinstance(expr, Compare)
        assert expr.rhs == Symbol("x86_64")

    def test_deeply_nested(self):
        expr = parse_expr("!(A && (B || !C)) || D")
        assert "D" in expr_symbols(expr)

    @pytest.mark.parametrize("bad", ["", "&&", "A &&", "(A", "A)", "A = ",
                                     "A @ B", "A ! B"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ExprError):
            parse_expr(bad)

    def test_roundtrip_via_str(self):
        for text in ("A && B", "A || B && C", "!(A || B)", "A=B && C!=n"):
            expr = parse_expr(text)
            assert parse_expr(str(expr)).evaluate({}) == expr.evaluate({})


class TestEvaluation:
    def test_missing_symbol_is_n(self):
        assert parse_expr("MISSING").evaluate({}) is N

    def test_literals(self):
        assert parse_expr("y").evaluate({}) is Y
        assert parse_expr("m").evaluate({}) is M
        assert parse_expr("n").evaluate({}) is N

    def test_and_is_min(self):
        env = {"A": Y, "B": M}
        assert parse_expr("A && B").evaluate(env) is M

    def test_or_is_max(self):
        env = {"A": N, "B": M}
        assert parse_expr("A || B").evaluate(env) is M

    def test_not_module(self):
        assert parse_expr("!A").evaluate({"A": M}) is M

    def test_compare_equal(self):
        assert parse_expr("A = B").evaluate({"A": Y, "B": Y}) is Y
        assert parse_expr("A = B").evaluate({"A": Y, "B": M}) is N

    def test_compare_against_literal(self):
        assert parse_expr("A = m").evaluate({"A": M}) is Y

    def test_complex_expression(self):
        env = {"NET": Y, "INET": Y, "UNIX": N}
        assert parse_expr("NET && (INET || UNIX)").evaluate(env) is Y
        assert parse_expr("NET && INET && UNIX").evaluate(env) is N

    def test_symbols_extraction(self):
        assert expr_symbols(parse_expr("A && !B || C=D")) == {
            "A", "B", "C", "D"
        }

    def test_literal_not_in_symbols(self):
        assert expr_symbols(parse_expr("A && y")) == {"A"}


_symbols = st.sampled_from(["A", "B", "C", "D"])
_tristates = st.sampled_from([N, M, Y])


@st.composite
def _exprs(draw, depth=0):
    if depth > 3 or draw(st.booleans()):
        return Symbol(draw(_symbols))
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return Not(draw(_exprs(depth + 1)))
    lhs, rhs = draw(_exprs(depth + 1)), draw(_exprs(depth + 1))
    return And(lhs, rhs) if kind == 1 else Or(lhs, rhs)


@st.composite
def _envs(draw):
    return {name: draw(_tristates) for name in ("A", "B", "C", "D")}


class TestExprProperties:
    @given(_exprs(), _envs())
    def test_de_morgan_and(self, expr, env):
        """!(a && b) == !a || !b under tristate semantics."""
        a, b = expr, Symbol("A")
        lhs = Not(And(a, b)).evaluate(env)
        rhs = Or(Not(a), Not(b)).evaluate(env)
        assert lhs == rhs

    @given(_exprs(), _envs())
    def test_double_negation_identity(self, expr, env):
        assert Not(Not(expr)).evaluate(env) == expr.evaluate(env)

    @given(_exprs(), _exprs(), _envs())
    def test_and_commutes(self, a, b, env):
        assert And(a, b).evaluate(env) == And(b, a).evaluate(env)

    @given(_exprs(), _exprs(), _envs())
    def test_or_commutes(self, a, b, env):
        assert Or(a, b).evaluate(env) == Or(b, a).evaluate(env)

    @given(_exprs(), _envs())
    def test_str_roundtrip_preserves_value(self, expr, env):
        assert parse_expr(str(expr)).evaluate(env) == expr.evaluate(env)

    @given(_exprs(), _envs())
    def test_absorption(self, a, env):
        assert Or(a, And(a, a)).evaluate(env) == a.evaluate(env)
