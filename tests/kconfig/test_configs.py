"""Tests for the named configurations."""

from repro.kconfig.configs import defconfig, tinyconfig
from repro.kconfig.database import microvm_option_names


class TestMicrovm:
    def test_exactly_833_enabled(self, microvm):
        assert len(microvm.enabled) == 833

    def test_no_demotions(self, microvm):
        assert microvm.demoted == {}

    def test_no_select_violations(self, microvm):
        assert microvm.select_violations == ()

    def test_name(self, microvm):
        assert microvm.name == "microvm"

    def test_has_hardware_and_debug_options(self, microvm):
        for name in ("PCI", "ACPI", "SMP", "SECCOMP", "AUDITSYSCALL",
                     "SLUB_DEBUG", "NF_CONNTRACK"):
            assert name in microvm

    def test_enabled_equals_requested_set(self, microvm):
        assert microvm.enabled == frozenset(microvm_option_names())


class TestLupineBase:
    def test_exactly_283_enabled(self, lupine_base):
        assert len(lupine_base.enabled) == 283

    def test_no_demotions(self, lupine_base):
        assert lupine_base.demoted == {}

    def test_is_subset_of_microvm(self, lupine_base, microvm):
        assert lupine_base.enabled < microvm.enabled

    def test_excludes_unikernel_unnecessary_options(self, lupine_base):
        for name in ("SMP", "PCI", "ACPI", "MODULES", "SECCOMP", "CGROUPS",
                     "NAMESPACES", "SECURITY_SELINUX", "PM"):
            assert name not in lupine_base

    def test_excludes_application_specific_options(self, lupine_base):
        for name in ("EPOLL", "FUTEX", "INET", "PROC_FS", "TMPFS"):
            assert name not in lupine_base

    def test_keeps_virtio_and_paravirt(self, lupine_base):
        for name in ("VIRTIO", "VIRTIO_BLK", "VIRTIO_NET", "PARAVIRT",
                     "SERIAL_8250_CONSOLE", "EXT2_FS"):
            assert name in lupine_base


class TestOtherConfigs:
    def test_tinyconfig_is_tiny(self, tree):
        tiny = tinyconfig(tree)
        assert 30 <= len(tiny.enabled) <= 60
        assert tiny.demoted == {}

    def test_tinyconfig_subset_of_base(self, tree, lupine_base):
        assert tinyconfig(tree).enabled < lupine_base.enabled

    def test_defconfig_is_distribution_scale(self, tree, microvm):
        config = defconfig(tree)
        assert len(config.enabled) > 2000
        assert microvm.enabled < config.enabled
