"""Tests for the option model and tree."""

import pytest

from repro.kconfig.expr import parse_expr
from repro.kconfig.model import (
    ConfigOption,
    DuplicateOptionError,
    KconfigTree,
    OptionType,
    UnknownOptionError,
)


def _option(name, directory="kernel", **kwargs):
    return ConfigOption(name=name, directory=directory, **kwargs)


class TestConfigOption:
    def test_defaults(self):
        option = _option("FOO")
        assert option.option_type is OptionType.BOOL
        assert option.selects == ()
        assert not option.synthetic

    @pytest.mark.parametrize("bad", ["", "FOO BAR", "FOO-BAR", "FOO!"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(ValueError):
            _option(bad)

    def test_numeric_leading_name_allowed(self):
        # Real kernel options like 9P_FS and 6LOWPAN start with digits.
        assert _option("9P_FS").name == "9P_FS"

    def test_dependency_symbols(self):
        option = _option("FOO", depends_on=parse_expr("A && !B"))
        assert option.dependency_symbols() == {"A", "B"}

    def test_symbolic_types(self):
        assert OptionType.BOOL.is_symbolic
        assert OptionType.TRISTATE.is_symbolic
        assert not OptionType.INT.is_symbolic
        assert not OptionType.STRING.is_symbolic


class TestKconfigTree:
    def test_add_and_lookup(self):
        tree = KconfigTree()
        tree.add(_option("FOO"))
        assert "FOO" in tree
        assert tree["FOO"].name == "FOO"

    def test_duplicate_rejected(self):
        tree = KconfigTree()
        tree.add(_option("FOO"))
        with pytest.raises(DuplicateOptionError):
            tree.add(_option("FOO"))

    def test_unknown_lookup_raises(self):
        tree = KconfigTree()
        with pytest.raises(UnknownOptionError):
            tree["MISSING"]

    def test_get_returns_none_for_missing(self):
        assert KconfigTree().get("MISSING") is None

    def test_len_and_iteration(self):
        tree = KconfigTree()
        tree.add_all([_option("A"), _option("B"), _option("C")])
        assert len(tree) == 3
        assert [o.name for o in tree] == ["A", "B", "C"]

    def test_count_by_directory(self):
        tree = KconfigTree()
        tree.add(_option("A", directory="net"))
        tree.add(_option("B", directory="net"))
        tree.add(_option("C", directory="fs"))
        assert tree.count_by_directory() == {"net": 2, "fs": 1}

    def test_count_selected_by_directory(self):
        tree = KconfigTree()
        tree.add(_option("A", directory="net"))
        tree.add(_option("B", directory="net"))
        tree.add(_option("C", directory="fs"))
        counts = tree.count_selected_by_directory(["A", "C"])
        assert counts == {"net": 1, "fs": 1}

    def test_count_selected_ignores_unknown_names(self):
        tree = KconfigTree()
        tree.add(_option("A", directory="net"))
        counts = tree.count_selected_by_directory(["A", "NOPE"])
        assert counts == {"net": 1}

    def test_options_in_directory(self):
        tree = KconfigTree()
        tree.add(_option("A", directory="net"))
        tree.add(_option("B", directory="fs"))
        assert [o.name for o in tree.options_in("net")] == ["A"]
        assert tree.options_in("sound") == []

    def test_undefined_references_detected(self):
        tree = KconfigTree()
        tree.add(_option("A", depends_on=parse_expr("GHOST")))
        tree.add(_option("B", selects=("PHANTOM",)))
        undefined = tree.undefined_references()
        assert undefined["A"] == {"GHOST"}
        assert undefined["B"] == {"PHANTOM"}

    def test_undefined_references_clean_tree(self):
        tree = KconfigTree()
        tree.add(_option("A"))
        tree.add(_option("B", depends_on=parse_expr("A"), selects=("A",)))
        assert tree.undefined_references() == {}

    def test_kernel_version_recorded(self):
        assert KconfigTree(kernel_version="4.0").kernel_version == "4.0"
