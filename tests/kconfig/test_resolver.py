"""Tests for olddefconfig-style resolution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kconfig.expr import Tristate, parse_expr
from repro.kconfig.model import (
    ConfigOption,
    KconfigTree,
    OptionType,
    UnknownOptionError,
)
from repro.kconfig.resolver import Resolver, enabled_closure

Y, M, N = Tristate.YES, Tristate.MODULE, Tristate.NO


def _tree(*options):
    tree = KconfigTree()
    tree.add_all(options)
    return tree


def _opt(name, depends=None, selects=(), default=None,
         option_type=OptionType.BOOL):
    return ConfigOption(
        name=name,
        option_type=option_type,
        depends_on=parse_expr(depends) if depends else parse_expr("y"),
        selects=tuple(selects),
        default=parse_expr(default) if default else None,
    )


class TestBasicResolution:
    def test_simple_enable(self):
        tree = _tree(_opt("A"))
        config = Resolver(tree).resolve_names(["A"])
        assert "A" in config
        assert config.value("A") is Y

    def test_unrequested_stays_off(self):
        tree = _tree(_opt("A"), _opt("B"))
        config = Resolver(tree).resolve_names(["A"])
        assert "B" not in config

    def test_unknown_request_strict(self):
        tree = _tree(_opt("A"))
        with pytest.raises(UnknownOptionError):
            Resolver(tree).resolve_names(["GHOST"])

    def test_unknown_request_lenient(self):
        tree = _tree(_opt("A"))
        config = Resolver(tree, strict=False).resolve_names(["A", "GHOST"])
        assert config.enabled == {"A"}

    def test_named_config(self):
        tree = _tree(_opt("A"))
        config = Resolver(tree).resolve_names(["A"], name="mycfg")
        assert config.name == "mycfg"
        assert config.with_name("other").name == "other"


class TestDependencies:
    def test_unmet_dependency_demotes(self):
        tree = _tree(_opt("A"), _opt("B", depends="A"))
        config = Resolver(tree).resolve_names(["B"])
        assert "B" not in config
        assert "B" in config.demoted

    def test_met_dependency_keeps(self):
        tree = _tree(_opt("A"), _opt("B", depends="A"))
        config = Resolver(tree).resolve_names(["A", "B"])
        assert config.enabled == {"A", "B"}

    def test_transitive_demotion(self):
        tree = _tree(_opt("A"), _opt("B", depends="A"), _opt("C", depends="B"))
        config = Resolver(tree).resolve_names(["B", "C"])
        assert config.enabled == set()
        assert set(config.demoted) == {"B", "C"}

    def test_negative_dependency(self):
        tree = _tree(_opt("A"), _opt("B", depends="!A"))
        config = Resolver(tree).resolve_names(["A", "B"])
        assert "B" not in config
        config = Resolver(tree).resolve_names(["B"])
        assert "B" in config

    def test_tristate_visibility_clamps_to_module(self):
        tree = _tree(
            _opt("A", option_type=OptionType.TRISTATE),
            _opt("B", depends="A", option_type=OptionType.TRISTATE),
        )
        config = Resolver(tree).resolve({"A": M, "B": Y})
        assert config.value("B") is M


class TestSelects:
    def test_select_forces_target(self):
        tree = _tree(_opt("A", selects=["B"]), _opt("B"))
        config = Resolver(tree).resolve_names(["A"])
        assert "B" in config

    def test_select_chain(self):
        tree = _tree(_opt("A", selects=["B"]), _opt("B", selects=["C"]),
                     _opt("C"))
        config = Resolver(tree).resolve_names(["A"])
        assert config.enabled == {"A", "B", "C"}

    def test_select_violating_dependency_recorded(self):
        tree = _tree(_opt("A", selects=["B"]), _opt("B", depends="C"),
                     _opt("C"))
        config = Resolver(tree).resolve_names(["A"])
        assert "B" in config  # select wins, as in kconfig
        assert ("A", "B") in config.select_violations

    def test_select_of_bool_from_module_is_yes(self):
        tree = _tree(
            _opt("A", option_type=OptionType.TRISTATE, selects=["B"]),
            _opt("B"),
        )
        config = Resolver(tree).resolve({"A": M})
        assert config.value("B") is Y


class TestDefaults:
    def test_default_applies_when_unrequested(self):
        tree = _tree(_opt("A", default="y"))
        config = Resolver(tree).resolve_names([])
        assert "A" in config

    def test_explicit_request_overrides_default(self):
        tree = _tree(_opt("A", default="y"))
        config = Resolver(tree).resolve({"A": N})
        assert "A" not in config

    def test_default_respects_dependencies(self):
        tree = _tree(_opt("GATE"), _opt("A", depends="GATE", default="y"))
        config = Resolver(tree).resolve_names([])
        assert "A" not in config
        config = Resolver(tree).resolve_names(["GATE"])
        assert "A" in config

    def test_default_tracks_other_symbol(self):
        tree = _tree(_opt("A"), _opt("B", default="A"))
        config = Resolver(tree).resolve_names(["A"])
        assert "B" in config


class TestDemotionRecords:
    """The ``demoted`` map must only name options that end up off."""

    def test_reenabled_by_default_drops_stale_record(self):
        """An option demoted early and re-enabled by its default later.

        Tree-order construction: D is demoted in iteration 1 (X defaults
        on), T (depends on D) is demoted next; a select chain then forces
        D back on, and T's own default re-fires in a later iteration.
        Selects pop their target's stale record, but default-driven
        re-enables did not -- T used to end up enabled *and* in
        ``demoted``.
        """
        tree = _tree(
            _opt("D", depends="!X"),
            _opt("T", depends="D", default="y"),
            _opt("X", default="y"),
            _opt("W", default="V"),
            _opt("V", default="y"),
            _opt("S", default="W", selects=["D"]),
        )
        for strategy in ("worklist", "sweep"):
            config = Resolver(tree, strategy=strategy).resolve_names(["D"])
            assert "T" in config, strategy
            # Everything ends up enabled (D via S's select, T via its
            # default), so no demotion record may survive.
            assert config.demoted == {}, strategy
            assert ("S", "D") in config.select_violations

    def test_select_source_demoted_later_rerecords_target(self):
        """A select's pop of ``demoted[target]`` must not stick once the
        selecting source itself is demoted and the target's unmet
        dependency demotes it again."""
        tree = _tree(
            _opt("A", depends="!X", selects=["B"]),
            _opt("B", depends="C"),
            _opt("C"),
            _opt("X", default="y"),
        )
        for strategy in ("worklist", "sweep"):
            config = Resolver(tree, strategy=strategy).resolve_names(["A"])
            assert "A" not in config, strategy
            assert "B" not in config, strategy
            assert config.demoted.get("B") == "C", strategy

    def test_demoted_names_only_disabled_options(self):
        tree = _tree(_opt("A"), _opt("B", depends="A"))
        config = Resolver(tree).resolve_names(["B"])
        for name in config.demoted:
            assert config.value(name) is N


class TestResolvedConfig:
    def test_builtin_vs_modules(self):
        tree = _tree(_opt("A"), _opt("B", option_type=OptionType.TRISTATE))
        config = Resolver(tree).resolve({"A": Y, "B": M})
        assert config.builtin == {"A"}
        assert config.modules == {"B"}
        assert config.enabled == {"A", "B"}

    def test_bool_request_module_clamps_to_yes(self):
        tree = _tree(_opt("A"))
        config = Resolver(tree).resolve({"A": M})
        assert config.value("A") is Y

    def test_diff(self):
        tree = _tree(_opt("A"), _opt("B"), _opt("C"))
        one = Resolver(tree).resolve_names(["A", "B"])
        two = Resolver(tree).resolve_names(["B", "C"])
        only_one, only_two = one.diff(two)
        assert only_one == {"A"}
        assert only_two == {"C"}

    def test_len_counts_enabled(self):
        tree = _tree(_opt("A"), _opt("B"))
        assert len(Resolver(tree).resolve_names(["A"])) == 1

    def test_options_in_tree_order(self):
        tree = _tree(_opt("B"), _opt("A"))
        config = Resolver(tree).resolve_names(["A", "B"])
        assert [o.name for o in config.options()] == ["B", "A"]


class TestEnabledClosure:
    def test_follows_selects(self):
        tree = _tree(_opt("A", selects=["B"]), _opt("B", selects=["C"]),
                     _opt("C"), _opt("D"))
        assert enabled_closure(tree, ["A"]) == {"A", "B", "C"}

    def test_handles_cycles(self):
        tree = _tree(_opt("A", selects=["B"]), _opt("B", selects=["A"]))
        assert enabled_closure(tree, ["A"]) == {"A", "B"}


@st.composite
def _random_tree_and_request(draw):
    """Random small trees with acyclic dependencies + random requests."""
    names = [f"OPT{i}" for i in range(draw(st.integers(2, 8)))]
    options = []
    for index, name in enumerate(names):
        depends = None
        earlier = names[:index]
        if earlier and draw(st.booleans()):
            depends = draw(st.sampled_from(earlier))
            if draw(st.booleans()):
                depends = f"!{depends}"
        selects = []
        if earlier and draw(st.booleans()):
            selects.append(draw(st.sampled_from(earlier)))
        options.append(_opt(name, depends=depends, selects=selects))
    tree = _tree(*options)
    requested = draw(st.sets(st.sampled_from(names)))
    return tree, sorted(requested)


class TestResolverProperties:
    @settings(max_examples=60, deadline=None)
    @given(_random_tree_and_request())
    def test_resolution_is_consistent(self, tree_and_request):
        """Every enabled option has satisfied deps or a recorded violation."""
        tree, requested = tree_and_request
        config = Resolver(tree).resolve_names(requested)
        violated = {target for _, target in config.select_violations}
        for name in config.enabled:
            option = tree[name]
            visible = option.depends_on.evaluate(config.values)
            assert visible is not N or name in violated

    @settings(max_examples=60, deadline=None)
    @given(_random_tree_and_request())
    def test_resolution_is_idempotent(self, tree_and_request):
        """Re-resolving an already-resolved config changes nothing."""
        tree, requested = tree_and_request
        first = Resolver(tree).resolve_names(requested)
        second = Resolver(tree).resolve(
            {name: first.value(name) for name in first.enabled}
        )
        assert second.enabled == first.enabled

    @settings(max_examples=60, deadline=None)
    @given(_random_tree_and_request())
    def test_selects_are_honoured(self, tree_and_request):
        tree, requested = tree_and_request
        config = Resolver(tree).resolve_names(requested)
        for name in config.enabled:
            for target in tree[name].selects:
                assert target in config
