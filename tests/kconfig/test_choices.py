"""Tests for Kconfig choice groups (mutually exclusive options)."""

import pytest

from repro.kconfig.expr import Tristate
from repro.kconfig.export import export_kconfig, import_kconfig
from repro.kconfig.model import (
    ChoiceGroup,
    ConfigOption,
    DuplicateOptionError,
    KconfigTree,
    UnknownOptionError,
)
from repro.kconfig.parser import KconfigParseError, parse_kconfig
from repro.kconfig.resolver import Resolver

CHOICE_TEXT = """\
config NET
\tbool

choice
\tprompt "Timer frequency"
\tdefault HZ_250

config HZ_100
\tbool "100 HZ"

config HZ_250
\tbool "250 HZ"

config HZ_1000
\tbool "1000 HZ"

endchoice
"""


def _tree_with_choice():
    tree = KconfigTree()
    for name in ("HZ_100", "HZ_250", "HZ_1000"):
        tree.add(ConfigOption(name=name))
    tree.add_choice(ChoiceGroup(
        name="hz", members=("HZ_100", "HZ_250", "HZ_1000"),
        default_member="HZ_250",
    ))
    return tree


class TestChoiceModel:
    def test_needs_two_members(self):
        with pytest.raises(ValueError, match="two members"):
            ChoiceGroup(name="x", members=("A",))

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ChoiceGroup(name="x", members=("A", "A"))

    def test_default_must_be_member(self):
        with pytest.raises(ValueError, match="not a member"):
            ChoiceGroup(name="x", members=("A", "B"), default_member="C")

    def test_members_must_exist_in_tree(self):
        tree = KconfigTree()
        tree.add(ConfigOption(name="A"))
        with pytest.raises(UnknownOptionError):
            tree.add_choice(ChoiceGroup(name="x", members=("A", "GHOST")))

    def test_member_in_one_choice_only(self):
        tree = _tree_with_choice()
        tree.add(ConfigOption(name="OTHER"))
        with pytest.raises(ValueError, match="already belongs"):
            tree.add_choice(
                ChoiceGroup(name="y", members=("HZ_100", "OTHER"))
            )

    def test_duplicate_choice_name(self):
        tree = _tree_with_choice()
        tree.add(ConfigOption(name="A"))
        tree.add(ConfigOption(name="B"))
        with pytest.raises(DuplicateOptionError):
            tree.add_choice(ChoiceGroup(name="hz", members=("A", "B")))

    def test_choice_of(self):
        tree = _tree_with_choice()
        assert tree.choice_of("HZ_100").name == "hz"
        tree.add(ConfigOption(name="FREE"))
        assert tree.choice_of("FREE") is None


class TestChoiceResolution:
    def test_tie_break_follows_request_insertion_order(self):
        """With several requested members, the first *requested* wins.

        Request mappings preserve insertion order, so the tie-break is
        the caller's ordering, not the choice's member declaration order.
        """
        tree = _tree_with_choice()
        first = Resolver(tree).resolve(
            {"HZ_1000": Tristate.YES, "HZ_100": Tristate.YES}
        )
        assert "HZ_1000" in first
        assert "HZ_100" not in first
        assert first.demoted["HZ_100"] == "choice hz: HZ_1000 wins"

        flipped = Resolver(tree).resolve(
            {"HZ_100": Tristate.YES, "HZ_1000": Tristate.YES}
        )
        assert "HZ_100" in flipped
        assert "HZ_1000" not in flipped
        assert flipped.demoted["HZ_1000"] == "choice hz: HZ_100 wins"

    def test_member_requested_off_cannot_win(self):
        tree = _tree_with_choice()
        config = Resolver(tree).resolve(
            {"HZ_100": Tristate.NO, "HZ_1000": Tristate.YES}
        )
        assert "HZ_1000" in config
        assert "HZ_100" not in config

    def test_default_applies_when_nothing_requested(self):
        config = Resolver(_tree_with_choice()).resolve_names([])
        assert "HZ_250" in config
        assert "HZ_100" not in config

    def test_requested_member_wins_over_default(self):
        config = Resolver(_tree_with_choice()).resolve_names(["HZ_1000"])
        assert "HZ_1000" in config
        assert "HZ_250" not in config

    def test_exclusivity_enforced(self):
        config = Resolver(_tree_with_choice()).resolve_names(
            ["HZ_100", "HZ_1000"]
        )
        enabled = {m for m in ("HZ_100", "HZ_250", "HZ_1000") if m in config}
        assert len(enabled) == 1
        assert "HZ_100" in enabled  # first requested wins
        demoted_reason = config.demoted["HZ_1000"]
        assert "choice" in demoted_reason

    def test_real_tree_hz_default(self, tree):
        from repro.kconfig.database import base_option_names

        names = [n for n in base_option_names() if n != "HZ_250"]
        config = Resolver(tree).resolve_names(names)
        assert "HZ_250" in config
        assert len(config.enabled) == 283

    def test_real_tree_exactly_one_hz(self, tree, microvm):
        hz_enabled = [n for n in ("HZ_100", "HZ_250", "HZ_1000")
                      if n in microvm]
        assert hz_enabled == ["HZ_250"]


class TestChoiceParsing:
    def test_parse_choice_block(self):
        tree = parse_kconfig(CHOICE_TEXT)
        assert len(tree.choices()) == 1
        choice = tree.choices()[0]
        assert choice.members == ("HZ_100", "HZ_250", "HZ_1000")
        assert choice.default_member == "HZ_250"
        assert choice.prompt == "Timer frequency"
        assert tree.choice_of("NET") is None

    def test_parsed_choice_resolves(self):
        tree = parse_kconfig(CHOICE_TEXT)
        config = Resolver(tree).resolve_names(["NET"])
        assert "HZ_250" in config

    def test_unclosed_choice_rejected(self):
        with pytest.raises(KconfigParseError, match="unclosed choice"):
            parse_kconfig("choice\nconfig A\n\tbool\nconfig B\n\tbool\n")

    def test_stray_endchoice_rejected(self):
        with pytest.raises(KconfigParseError, match="endchoice"):
            parse_kconfig("endchoice\n")

    def test_nested_choice_rejected(self):
        with pytest.raises(KconfigParseError, match="nested"):
            parse_kconfig("choice\nchoice\n")


class TestChoiceExport:
    def test_export_roundtrips_choices(self, tree):
        parsed = import_kconfig(export_kconfig(tree))
        assert len(parsed.choices()) == len(tree.choices())
        originals = {tuple(sorted(c.members)) for c in tree.choices()}
        round_tripped = {tuple(sorted(c.members))
                         for c in parsed.choices()}
        assert originals == round_tripped
        hz = parsed.choice_of("HZ_250")
        assert hz is not None and hz.default_member == "HZ_250"
