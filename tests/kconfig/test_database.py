"""Tests for the Linux 4.0 option database model (paper-exact counts)."""

import pytest

from repro.kconfig.database import (
    DIRECTORY_TOTALS,
    LINUX_4_0_TOTAL_OPTIONS,
    base_option_names,
    build_linux_tree,
    curated_totals,
    microvm_option_names,
    removed_option_names,
    removed_options_by_category,
    removed_options_by_subcategory,
)


class TestPaperCounts:
    def test_total_is_15953(self, tree):
        assert len(tree) == LINUX_4_0_TOTAL_OPTIONS == 15953

    def test_lupine_base_is_283(self):
        assert len(base_option_names()) == 283

    def test_removed_is_550(self):
        assert len(removed_option_names()) == 550

    def test_microvm_is_833(self):
        assert len(microvm_option_names()) == 833

    def test_category_split_311_89_150(self):
        by_category = removed_options_by_category()
        assert len(by_category["app"]) == 311
        assert len(by_category["mp"]) == 89
        assert len(by_category["hw"]) == 150

    def test_subcategory_counts_match_paper_text(self):
        by_sub = {k: len(v) for k, v in
                  removed_options_by_subcategory().items()}
        assert by_sub[("app", "net")] == 100        # "approximately 100"
        assert by_sub[("app", "fs")] == 35
        assert by_sub[("app", "compression")] == 20
        assert by_sub[("app", "crypto")] == 55
        assert by_sub[("app", "debug")] == 65       # "up to 65"
        assert by_sub[("app", "syscalls")] == 12    # Table 1
        assert by_sub[("mp", "cgroups-ns")] == 20   # "about 20"
        assert by_sub[("mp", "security-domain")] == 12
        assert by_sub[("hw", "power")] == 24

    def test_no_duplicate_names(self):
        names = microvm_option_names()
        assert len(names) == len(set(names))

    def test_directory_totals_sum(self):
        assert sum(DIRECTORY_TOTALS.values()) == 15953

    def test_drivers_dominate(self, tree):
        counts = tree.count_by_directory()
        assert counts["drivers"] > sum(
            v for k, v in counts.items() if k != "drivers"
        ) / 2


class TestTreeIntegrity:
    def test_no_undefined_references(self, tree):
        assert tree.undefined_references() == {}

    def test_every_curated_option_present(self, tree):
        for name in microvm_option_names():
            assert name in tree

    def test_costs_are_positive(self, tree):
        for name in microvm_option_names():
            option = tree[name]
            assert option.size_kb >= 0
            assert option.boot_cost_us >= 0
            assert option.mem_cost_kb >= 0

    def test_inet_is_heavyweight(self, tree):
        assert tree["INET"].size_kb > 500

    def test_synthetic_filler_marked(self, tree):
        synthetic = [o for o in tree if o.synthetic]
        assert len(synthetic) == 15953 - len(microvm_option_names()) - sum(
            1 for o in tree if o.category.startswith("ext:")
        )

    def test_filler_never_in_microvm(self, tree):
        microvm = set(microvm_option_names())
        for option in tree:
            if option.synthetic:
                assert option.name not in microvm

    def test_deterministic_rebuild(self):
        build_linux_tree.cache_clear()
        one = build_linux_tree()
        build_linux_tree.cache_clear()
        two = build_linux_tree()
        assert [o.name for o in one] == [o.name for o in two]
        assert [o.size_kb for o in one] == [o.size_kb for o in two]


class TestPatches:
    def test_pristine_tree_has_no_kml(self, tree):
        assert "KERNEL_MODE_LINUX" not in tree

    def test_kml_patch_adds_option(self, kml_tree):
        assert "KERNEL_MODE_LINUX" in kml_tree
        assert len(kml_tree) == 15953  # displaces one filler slot

    def test_kml_conflicts_with_paravirt(self, kml_tree):
        option = kml_tree["KERNEL_MODE_LINUX"]
        assert "PARAVIRT" in option.dependency_symbols()

    def test_unknown_patch_rejected(self):
        with pytest.raises(ValueError):
            build_linux_tree(patches=("rtlinux",))

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            build_linux_tree(version="5.0")


class TestCuratedTotals:
    def test_summary(self):
        totals = curated_totals()
        assert totals == {"base": 283, "removed": 550, "microvm": 833}
