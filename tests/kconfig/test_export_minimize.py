"""Tests for Kconfig export/import round-tripping and minimization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kconfig.configs import lupine_base_config, microvm_config
from repro.kconfig.export import export_kconfig, import_kconfig
from repro.kconfig.expr import parse_expr
from repro.kconfig.minimize import defconfig_lines, minimize_config
from repro.kconfig.model import ConfigOption, KconfigTree
from repro.kconfig.resolver import Resolver


class TestExportRoundTrip:
    def test_small_tree_roundtrip(self):
        tree = KconfigTree()
        tree.add(ConfigOption(name="NET", prompt="Networking",
                              directory="net", help_text="core\nnetworking"))
        tree.add(ConfigOption(name="INET", directory="net",
                              depends_on=parse_expr("NET"),
                              selects=("CRC32",),
                              default=parse_expr("NET")))
        tree.add(ConfigOption(name="CRC32", directory="lib"))
        files = export_kconfig(tree)
        assert set(files) == {"Kconfig", "net/Kconfig", "lib/Kconfig"}
        parsed = import_kconfig(files)
        assert set(parsed.names()) == set(tree.names())
        assert parsed["INET"].dependency_symbols() == {"NET"}
        assert parsed["INET"].selects == ("CRC32",)
        assert parsed["NET"].prompt == "Networking"
        assert "networking" in parsed["NET"].help_text

    def test_full_database_roundtrip(self, tree):
        """Push all 15,953 options through export -> parse."""
        parsed = import_kconfig(export_kconfig(tree))
        assert len(parsed) == len(tree)
        for name in ("INET", "EPOLL", "VIRTIO_NET", "SECURITY_SELINUX"):
            original, round_tripped = tree[name], parsed[name]
            assert round_tripped.option_type is original.option_type
            assert round_tripped.selects == original.selects
            assert (round_tripped.dependency_symbols()
                    == original.dependency_symbols())

    def test_roundtripped_tree_resolves_identically(self, tree, microvm):
        from repro.kconfig.database import microvm_option_names

        parsed = import_kconfig(export_kconfig(tree))
        resolved = Resolver(parsed).resolve_names(microvm_option_names())
        assert resolved.enabled == microvm.enabled

    def test_directory_structure_preserved(self, tree):
        parsed = import_kconfig(export_kconfig(tree))
        assert parsed.count_by_directory() == tree.count_by_directory()


class TestMinimize:
    def test_select_implied_options_dropped(self):
        tree = KconfigTree()
        tree.add(ConfigOption(name="A", selects=("B", "C")))
        tree.add(ConfigOption(name="B"))
        tree.add(ConfigOption(name="C"))
        config = Resolver(tree).resolve_names(["A"])
        assert minimize_config(config) == {"A"}

    def test_default_implied_options_dropped(self):
        tree = KconfigTree()
        tree.add(ConfigOption(name="A"))
        tree.add(ConfigOption(name="B", default=parse_expr("A")))
        config = Resolver(tree).resolve_names(["A", "B"])
        assert minimize_config(config) == {"A"}

    def test_explicitly_needed_options_kept(self):
        tree = KconfigTree()
        tree.add(ConfigOption(name="A"))
        tree.add(ConfigOption(name="B"))
        config = Resolver(tree).resolve_names(["A", "B"])
        assert minimize_config(config) == {"A", "B"}

    def test_minimized_lupine_base_reproduces_exactly(self, tree):
        config = lupine_base_config(tree)
        minimal = minimize_config(config)
        assert len(minimal) < len(config.enabled)
        resolved = Resolver(tree).resolve_names(sorted(minimal))
        assert resolved.enabled == config.enabled

    def test_minimized_microvm_reproduces_exactly(self, tree):
        config = microvm_config(tree)
        minimal = minimize_config(config)
        resolved = Resolver(tree).resolve_names(sorted(minimal))
        assert resolved.enabled == config.enabled

    def test_defconfig_lines_format(self, tree):
        config = lupine_base_config(tree)
        lines = defconfig_lines(config)
        assert all(line.startswith("CONFIG_") and line.endswith("=y")
                   for line in lines)
        assert lines == sorted(lines)


@st.composite
def _tree_with_implications(draw):
    names = [f"K{i}" for i in range(draw(st.integers(3, 7)))]
    tree = KconfigTree()
    for index, name in enumerate(names):
        earlier = names[:index]
        selects = tuple(
            n for n in earlier if draw(st.booleans()) and draw(st.booleans())
        )
        default = None
        if earlier and draw(st.booleans()):
            default = parse_expr(draw(st.sampled_from(earlier)))
        tree.add(ConfigOption(name=name, selects=selects, default=default))
    requested = sorted(draw(st.sets(st.sampled_from(names), min_size=1)))
    return tree, requested


class TestMinimizeProperties:
    @settings(max_examples=60, deadline=None)
    @given(_tree_with_implications())
    def test_minimize_always_reproduces(self, tree_and_request):
        tree, requested = tree_and_request
        config = Resolver(tree).resolve_names(requested)
        minimal = minimize_config(config)
        resolved = Resolver(tree).resolve_names(sorted(minimal))
        assert resolved.enabled == config.enabled

    @settings(max_examples=60, deadline=None)
    @given(_tree_with_implications())
    def test_minimal_is_subset_of_enabled(self, tree_and_request):
        tree, requested = tree_and_request
        config = Resolver(tree).resolve_names(requested)
        assert minimize_config(config) <= config.enabled
