"""Tests for categorized config diffs."""

import pytest

from repro.apps.registry import get_app
from repro.core.specialization import app_config
from repro.kconfig.diff import diff_configs


class TestDiff:
    def test_microvm_vs_base_is_the_550_story(self, tree, microvm,
                                              lupine_base):
        diff = diff_configs(microvm, lupine_base)
        assert diff.left_total == 550
        assert diff.right_total == 0
        assert len(diff.only_left["app"]) == 311
        assert len(diff.only_left["mp"]) == 89
        assert len(diff.only_left["hw"]) == 150

    def test_identical_configs(self, microvm):
        diff = diff_configs(microvm, microvm)
        assert diff.identical

    def test_app_vs_base_shows_table3_options(self, tree, lupine_base):
        redis = app_config(get_app("redis"), tree)
        diff = diff_configs(redis, lupine_base)
        assert diff.left_total == 10
        assert diff.right_total == 0
        assert "EPOLL" in diff.only_left["app"]
        # SYSVIPC is not in redis's set, but is 'mp' for postgres:
        postgres = app_config(get_app("postgres"), tree)
        postgres_diff = diff_configs(postgres, lupine_base)
        assert "SYSVIPC" in postgres_diff.only_left["mp"]

    def test_two_app_configs(self, tree):
        nginx = app_config(get_app("nginx"), tree)
        redis = app_config(get_app("redis"), tree)
        diff = diff_configs(nginx, redis)
        assert "AIO" in diff.only_left["app"]
        assert "TMPFS" in diff.only_right["app"]

    def test_summary_lines_render(self, microvm, lupine_base):
        lines = diff_configs(microvm, lupine_base).summary_lines()
        text = "\n".join(lines)
        assert "application-specific" in text
        assert "550 options" in text

    def test_option_listing(self, tree, lupine_base):
        redis = app_config(get_app("redis"), tree)
        lines = diff_configs(redis, lupine_base).summary_lines(
            show_options=True
        )
        assert any("CONFIG_EPOLL" in line for line in lines)

    def test_mismatched_trees_rejected(self, microvm):
        from repro.kconfig.model import ConfigOption, KconfigTree
        from repro.kconfig.resolver import Resolver

        other_tree = KconfigTree()
        other_tree.add(ConfigOption(name="LONELY"))
        other = Resolver(other_tree).resolve_names(["LONELY"])
        with pytest.raises(ValueError, match="different option trees"):
            diff_configs(microvm, other)
