"""Differential tests: the worklist engine against the full-sweep oracle.

The worklist resolver earns its keep only if it is *indistinguishable*
from the original sweep.  These tests resolve the same request sets
through both engines and require identical ``values``, ``demoted``,
``select_violations`` and ``requested`` -- on every curated configuration
the paper uses, on warm-start derivations, and on several hundred
seeded-random trees exercising tristates, expression operators, selects,
defaults and choice groups.
"""

import random

import pytest

from repro.kconfig.expr import Tristate, parse_expr
from repro.kconfig.model import ChoiceGroup, ConfigOption, KconfigTree, OptionType
from repro.kconfig.resolver import ResolutionError, Resolver

Y, M, N = Tristate.YES, Tristate.MODULE, Tristate.NO

#: (trees, request sets per tree) -- 40 x 6 = 240 randomized request sets,
#: above the 200 the acceptance criteria require.
RANDOM_TREES = 40
REQUESTS_PER_TREE = 6


def _assert_identical(tree, requested, label):
    """Resolve *requested* through both engines and compare everything."""
    worklist = Resolver(tree, strategy="worklist")
    sweep = Resolver(tree, strategy="sweep")
    try:
        expected = sweep.resolve(requested, name=label)
    except ResolutionError:
        with pytest.raises(ResolutionError):
            worklist.resolve(requested, name=label, use_cache=False)
        return None
    actual = worklist.resolve(requested, name=label, use_cache=False)
    assert actual.values == expected.values, label
    assert actual.demoted == expected.demoted, label
    assert actual.select_violations == expected.select_violations, label
    assert actual.requested == expected.requested, label
    return actual


def _random_expr(rng, symbols, depth=0):
    """A random dependency/default expression over *symbols*."""
    roll = rng.random()
    if depth >= 2 or roll < 0.45 or not symbols:
        leaf = rng.choice(symbols) if symbols and rng.random() < 0.85 else (
            rng.choice(["y", "m", "n"])
        )
        if symbols and rng.random() < 0.15:
            other = rng.choice([rng.choice(symbols), "y", "m", "n"])
            op = rng.choice(["=", "!="])
            return f"{leaf}{op}{other}"
        return leaf
    if roll < 0.60:
        return f"!({_random_expr(rng, symbols, depth + 1)})"
    op = rng.choice(["&&", "||"])
    return (
        f"({_random_expr(rng, symbols, depth + 1)}) {op} "
        f"({_random_expr(rng, symbols, depth + 1)})"
    )


def _random_tree(rng):
    """A random acyclic tree: mixed types, selects, defaults, one choice.

    Dependencies/defaults only reference earlier options, and select
    targets are never choice members, which keeps the fixpoint convergent
    (the property the curated database also has).
    """
    count = rng.randint(6, 18)
    names = [f"OPT{i}" for i in range(count)]
    choice_members = ()
    if count >= 6 and rng.random() < 0.6:
        start = rng.randrange(0, count - 3)
        size = rng.randint(2, 3)
        choice_members = tuple(names[start:start + size])
    tree = KconfigTree()
    for index, name in enumerate(names):
        earlier = names[:index]
        selectable = [n for n in earlier if n not in choice_members]
        option_type = (
            OptionType.BOOL
            if name in choice_members or rng.random() < 0.7
            else OptionType.TRISTATE
        )
        depends = (
            _random_expr(rng, earlier)
            if earlier and rng.random() < 0.5 else None
        )
        selects = tuple(
            rng.sample(selectable, rng.randint(1, min(2, len(selectable))))
        ) if selectable and rng.random() < 0.3 else ()
        default = (
            _random_expr(rng, earlier)
            if rng.random() < 0.4 else None
        )
        tree.add(ConfigOption(
            name=name,
            option_type=option_type,
            depends_on=parse_expr(depends) if depends else parse_expr("y"),
            selects=selects,
            default=parse_expr(default) if default else None,
        ))
    if choice_members:
        tree.add_choice(ChoiceGroup(
            name="grp",
            members=choice_members,
            default_member=(
                rng.choice(choice_members) if rng.random() < 0.8 else None
            ),
        ))
    return tree, names


def _random_request(rng, names):
    chosen = rng.sample(names, rng.randint(0, min(len(names), 6)))
    return {
        name: rng.choice([Y, Y, Y, M, N])
        for name in chosen
    }


class TestRandomizedDifferential:
    def test_seeded_random_request_sets(self):
        rng = random.Random(0x1ED_BEEF)
        checked = 0
        for _ in range(RANDOM_TREES):
            tree, names = _random_tree(rng)
            for _ in range(REQUESTS_PER_TREE):
                requested = _random_request(rng, names)
                _assert_identical(tree, requested, f"rand-{checked}")
                checked += 1
        assert checked >= 200

    def test_empty_and_full_requests(self):
        rng = random.Random(2020)
        for index in range(10):
            tree, names = _random_tree(rng)
            _assert_identical(tree, {}, f"empty-{index}")
            _assert_identical(
                tree, {name: Y for name in names}, f"full-{index}"
            )


class TestCuratedDifferential:
    """Both engines agree on every configuration the paper builds."""

    def test_named_configs(self, tree):
        from repro.kconfig.configs import TINYCONFIG_NAMES
        from repro.kconfig.database import (
            base_option_names,
            microvm_option_names,
        )

        defconfig_names = list(microvm_option_names())
        for option in tree.options_in("drivers"):
            if option.synthetic and int(
                option.name.rsplit("_", 1)[1]
            ) % 4 == 0:
                defconfig_names.append(option.name)

        for label, names in (
            ("microvm", microvm_option_names()),
            ("lupine-base", base_option_names()),
            ("tinyconfig", list(TINYCONFIG_NAMES)),
            ("defconfig", defconfig_names),
        ):
            _assert_identical(tree, {n: Y for n in names}, label)

    def test_all_twenty_app_configs(self, tree):
        from repro.apps.registry import TOP20_APPS
        from repro.core.specialization import app_config_names

        for app in TOP20_APPS:
            _assert_identical(
                tree,
                {n: Y for n in app_config_names(app)},
                f"lupine-{app.name}",
            )

    def test_kml_tree_variants(self, kml_tree):
        from repro.kconfig.database import base_option_names

        names = [
            n for n in base_option_names()
            if n not in ("PARAVIRT", "PARAVIRT_CLOCK", "KVM_GUEST")
        ] + ["KERNEL_MODE_LINUX"]
        _assert_identical(kml_tree, {n: Y for n in names}, "lupine-kml")


class TestWarmStartEqualsCold:
    """``resolve_from(lupine-base, ...)`` must equal a cold resolution."""

    @pytest.fixture(scope="class")
    def base(self, tree):
        from repro.kconfig.database import base_option_names

        return Resolver(tree).resolve_names(
            base_option_names(), name="lupine-base", use_cache=False
        )

    def _assert_warm_equals_cold(self, tree, base, names, label):
        resolver = Resolver(tree)
        cold = resolver.resolve_names(names, name=label, use_cache=False)
        warm = resolver.resolve_names_from(
            base, names, name=label, use_cache=False
        )
        assert warm.values == cold.values, label
        assert warm.demoted == cold.demoted, label
        assert warm.select_violations == cold.select_violations, label
        assert warm.requested == cold.requested, label

    def test_app_variants(self, tree, base):
        from repro.apps.registry import TOP20_APPS
        from repro.core.specialization import app_config_names

        for app in TOP20_APPS:
            self._assert_warm_equals_cold(
                tree, base, app_config_names(app), f"lupine-{app.name}"
            )

    def test_tiny_and_general_variants(self, tree, base):
        from repro.core.specialization import lupine_general_names
        from repro.core.variants import TINY_DISABLED, TINY_ENABLED

        tiny_names = [
            n for n in base.requested if n not in set(TINY_DISABLED)
        ] + list(TINY_ENABLED)
        self._assert_warm_equals_cold(tree, base, tiny_names, "lupine-tiny")
        self._assert_warm_equals_cold(
            tree, base, lupine_general_names(), "lupine-general"
        )

    def test_pin_removal(self, tree, base):
        """Dropping requests warm must match resolving the subset cold."""
        names = sorted(base.requested)[:-40]
        self._assert_warm_equals_cold(tree, base, names, "base-shrunk")

    def test_random_trees_random_deltas(self):
        """Warm derivation equals cold on random trees and request pairs.

        Exercises the trajectory-replay machinery: churned inputs of the
        influence cone, select re-forcing from outside the cone, and
        choice re-arbitration on member-pin reorderings.  The churned
        sets must match too, so warm results are themselves valid bases.
        """
        rng = random.Random(0xC0FFEE)
        checked = 0
        while checked < 120:
            tree, names = _random_tree(rng)
            resolver = Resolver(tree)
            try:
                base = resolver.resolve(
                    _random_request(rng, names), use_cache=False
                )
            except ResolutionError:
                continue
            for _ in range(4):
                requested = _random_request(rng, names)
                try:
                    cold = resolver.resolve(requested, use_cache=False)
                except ResolutionError:
                    continue
                warm = resolver.resolve_from(
                    base, requested, use_cache=False
                )
                assert warm.values == cold.values
                assert warm.demoted == cold.demoted
                assert warm.select_violations == cold.select_violations
                assert warm.requested == cold.requested
                assert warm.churned == cold.churned
                checked += 1

    def test_random_deltas_from_base(self, tree, base):
        from repro.kconfig.database import base_option_names, removed_option_names

        rng = random.Random(7)
        base_names = base_option_names()
        extras = removed_option_names()
        for index in range(8):
            names = [
                n for n in base_names if rng.random() > 0.05
            ] + rng.sample(extras, rng.randint(0, 10))
            self._assert_warm_equals_cold(
                tree, base, names, f"delta-{index}"
            )
