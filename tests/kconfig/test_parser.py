"""Tests for the Kconfig-language parser and .config fragment handling."""

import pytest

from repro.kconfig.expr import Tristate
from repro.kconfig.model import OptionType
from repro.kconfig.parser import (
    KconfigParseError,
    format_config_fragment,
    parse_config_fragment,
    parse_kconfig,
    parse_kconfig_menus,
)

SAMPLE = """\
mainmenu "Linux Kernel Configuration"

menu "Networking support"

config NET
\tbool "Networking support"
\tdefault y
\thelp
\t  The networking core.

config INET
\tbool "TCP/IP networking"
\tdepends on NET
\tselect CRC32

menuconfig NETFILTER
\tbool "Network packet filtering"
\tdepends on NET && INET

endmenu

config CRC32
\ttristate "CRC32 functions"
"""


class TestParseKconfig:
    def test_parses_all_options(self):
        tree = parse_kconfig(SAMPLE)
        assert set(tree.names()) == {"NET", "INET", "NETFILTER", "CRC32"}

    def test_types(self):
        tree = parse_kconfig(SAMPLE)
        assert tree["NET"].option_type is OptionType.BOOL
        assert tree["CRC32"].option_type is OptionType.TRISTATE

    def test_prompt(self):
        tree = parse_kconfig(SAMPLE)
        assert tree["NET"].prompt == "Networking support"

    def test_depends(self):
        tree = parse_kconfig(SAMPLE)
        assert tree["INET"].dependency_symbols() == {"NET"}
        assert tree["NETFILTER"].dependency_symbols() == {"NET", "INET"}

    def test_select(self):
        tree = parse_kconfig(SAMPLE)
        assert tree["INET"].selects == ("CRC32",)

    def test_default(self):
        tree = parse_kconfig(SAMPLE)
        assert tree["NET"].default is not None
        assert tree["NET"].default.evaluate({}) is Tristate.YES

    def test_help_text(self):
        tree = parse_kconfig(SAMPLE)
        assert "networking core" in tree["NET"].help_text.lower()

    def test_directory_assignment(self):
        tree = parse_kconfig(SAMPLE, directory="net")
        assert tree["NET"].directory == "net"

    def test_menus(self):
        tree, root = parse_kconfig_menus(SAMPLE)
        assert root.title == "Linux Kernel Configuration"
        assert root.submenus[0].title == "Networking support"
        assert "NET" in root.submenus[0].options
        assert "CRC32" in root.options

    def test_comments_and_blanks_ignored(self):
        tree = parse_kconfig("# a comment\n\nconfig FOO\n\tbool\n")
        assert "FOO" in tree

    def test_if_blocks_fold_into_depends(self):
        text = "config A\n\tbool\n\nif A\nconfig B\n\tbool\nendif\n"
        tree = parse_kconfig(text)
        assert tree["B"].dependency_symbols() == {"A"}

    def test_conditional_default(self):
        text = "config A\n\tbool\n\tdefault y if B\nconfig B\n\tbool\n"
        tree = parse_kconfig(text)
        assert tree["A"].default.evaluate({"B": Tristate.YES}) is Tristate.YES
        assert tree["A"].default.evaluate({}) is Tristate.NO

    def test_source_with_loader(self):
        files = {"drivers/Kconfig": "config VIRTIO\n\tbool\n"}
        tree = parse_kconfig(
            'source "drivers/Kconfig"\n', source_loader=files.__getitem__
        )
        assert tree["VIRTIO"].directory == "drivers"

    def test_source_without_loader_fails(self):
        with pytest.raises(KconfigParseError):
            parse_kconfig('source "drivers/Kconfig"\n')

    @pytest.mark.parametrize("bad,message", [
        ("endmenu\n", "endmenu"),
        ("endif\n", "endif"),
        ("menu \"x\"\n", "unclosed"),
        ("if A\nconfig B\n\tbool\n", "unclosed"),
        ("config\n", "config without a name"),
        ("bogus FOO\n", "unknown keyword"),
        ("config A\n\tfrobnicate\n", "unknown config attribute"),
        ("config A\n\tdepends B\n", "depends on"),
    ])
    def test_errors(self, bad, message):
        with pytest.raises(KconfigParseError, match=message):
            parse_kconfig(bad)

    def test_error_carries_line_number(self):
        try:
            parse_kconfig("config A\n\tbool\nbogus X\n")
        except KconfigParseError as error:
            assert error.line_number == 3
        else:
            pytest.fail("expected a parse error")


class TestConfigFragments:
    def test_format_enabled_and_disabled(self):
        text = format_config_fragment(
            {"NET": Tristate.YES, "INET": Tristate.NO, "CRC32": Tristate.MODULE}
        )
        assert "CONFIG_NET=y" in text
        assert "# CONFIG_INET is not set" in text
        assert "CONFIG_CRC32=m" in text

    def test_format_string_and_int(self):
        text = format_config_fragment({"CMDLINE": "console=ttyS0", "NR": 4})
        assert 'CONFIG_CMDLINE="console=ttyS0"' in text
        assert "CONFIG_NR=4" in text

    def test_roundtrip(self):
        values = {
            "NET": Tristate.YES,
            "INET": Tristate.NO,
            "CRC32": Tristate.MODULE,
            "CMDLINE": "quiet",
            "NR_CPUS": 8,
        }
        assert parse_config_fragment(format_config_fragment(values)) == values

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_config_fragment("not a config line\n")

    def test_parse_ignores_plain_comments(self):
        assert parse_config_fragment("# just a comment\n") == {}
