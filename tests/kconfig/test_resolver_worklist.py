"""Unit tests for the incremental-resolution machinery.

Covers the pieces under the worklist engine: compiled expressions, the
per-tree :class:`ResolutionIndex`, the process-wide resolution cache,
warm-start deltas, and the work counters the acceptance criteria gate.
"""

import itertools

import pytest

from repro.kconfig.bench import check_result
from repro.kconfig.expr import Tristate, compile_expr, parse_expr
from repro.kconfig.index import ResolutionIndex
from repro.kconfig.model import (
    ChoiceGroup,
    ConfigOption,
    KconfigTree,
    OptionType,
)
from repro.kconfig.rescache import RESOLUTION_CACHE, ResolutionCache
from repro.kconfig.resolver import Resolver
from repro.observe import METRICS

Y, M, N = Tristate.YES, Tristate.MODULE, Tristate.NO


def _tree(*options):
    tree = KconfigTree()
    tree.add_all(options)
    return tree


def _opt(name, depends=None, selects=(), default=None,
         option_type=OptionType.BOOL):
    return ConfigOption(
        name=name,
        option_type=option_type,
        depends_on=parse_expr(depends) if depends else parse_expr("y"),
        selects=tuple(selects),
        default=parse_expr(default) if default else None,
    )


class TestCompiledExpressions:
    EXPRS = (
        "y", "m", "n", "A", "!A", "A && B", "A || B", "!(A && B)",
        "A=B", "A!=B", "A=y", "A!=m", "(A || !B) && (B=m || !A)",
        "!!A", "A && y", "A && n", "A || y", "A || n",
    )

    def test_matches_ast_evaluation_exhaustively(self):
        values = (Y, M, N)
        for text in self.EXPRS:
            expr = parse_expr(text)
            compiled = compile_expr(expr)
            for a, b in itertools.product(values, values):
                env = {"A": a, "B": b}
                assert compiled(env) is expr.evaluate(env), (text, a, b)

    def test_missing_symbols_default_to_no(self):
        compiled = compile_expr(parse_expr("A || B=n"))
        assert compiled({}) is Y  # B=n holds when B is absent


class TestResolutionIndex:
    def test_reverse_edges(self):
        tree = _tree(
            _opt("A"),
            _opt("B", depends="A"),
            _opt("C", default="A", selects=["A"]),
        )
        index = tree.resolution_index()
        a, b, c = (index.pos_of[n] for n in "ABC")
        assert b in index.rev_dep[a]
        assert c in index.rev_def[a]
        assert c in index.rev_sel[a]
        assert index.selects_of[c] == (a,)
        assert index.dep_fn[a] is None  # constant-y deps compile away

    def test_rebuilt_after_tree_grows(self):
        tree = _tree(_opt("A"))
        first = tree.resolution_index()
        tree.add(_opt("B", depends="A"))
        second = tree.resolution_index()
        assert second is not first
        assert "B" in second.pos_of
        assert tree.resolution_index() is second

    def test_fingerprint_tracks_content(self):
        one = _tree(_opt("A"), _opt("B", depends="A"))
        same = _tree(_opt("A"), _opt("B", depends="A"))
        other = _tree(_opt("A"), _opt("B", depends="!A"))
        assert one.fingerprint() == same.fingerprint()
        assert one.fingerprint() != other.fingerprint()

    def test_choice_readers_cover_member_inputs(self):
        tree = _tree(_opt("G"), _opt("P"), _opt("Q"))
        tree.add_choice(
            ChoiceGroup(name="c", members=("P", "Q"), default_member="P")
        )
        index = tree.resolution_index()
        assert index.choice_readers[index.pos_of["P"]]
        assert index.choice_readers[index.pos_of["Q"]]
        assert not index.choice_readers[index.pos_of["G"]]


class TestResolutionCache:
    def _tree(self):
        return _tree(_opt("A"), _opt("B", depends="A"))

    def test_hit_returns_equal_config_without_resolving(self):
        RESOLUTION_CACHE.reset()
        tree = self._tree()
        resolver = Resolver(tree)
        performed = METRICS.counter("kconfig.resolutions")
        first = resolver.resolve_names(["A", "B"])
        count = performed.value
        second = resolver.resolve_names(["A", "B"])
        assert performed.value == count  # the hit does no resolution work
        assert second.values == first.values
        assert second.demoted == first.demoted

    def test_hit_rebinds_across_tree_instances(self):
        RESOLUTION_CACHE.reset()
        one, two = self._tree(), self._tree()
        Resolver(one).resolve_names(["A"])
        config = Resolver(two).resolve_names(["A"])
        assert config.tree is two

    def test_request_order_is_part_of_the_key(self):
        """Choice tie-breaks follow request order, so permutations of the
        same pins are distinct cache entries."""
        RESOLUTION_CACHE.reset()
        tree = _tree(_opt("P"), _opt("Q"))
        tree.add_choice(ChoiceGroup(name="c", members=("P", "Q")))
        first = Resolver(tree).resolve({"P": Y, "Q": Y})
        flipped = Resolver(tree).resolve({"Q": Y, "P": Y})
        assert "P" in first and "Q" not in first
        assert "Q" in flipped and "P" not in flipped

    def test_lru_eviction(self):
        cache = ResolutionCache(max_entries=2)
        cache.store("a", 1)
        cache.store("b", 2)
        assert cache.lookup("a") == 1  # refresh "a"
        cache.store("c", 3)  # evicts "b"
        assert cache.lookup("b") is None
        assert cache.lookup("a") == 1
        assert cache.lookup("c") == 3
        assert len(cache) == 2

    def test_store_keeps_first_writer(self):
        cache = ResolutionCache(max_entries=4)
        assert cache.store("k", "first") == "first"
        assert cache.store("k", "second") == "first"
        assert cache.lookup("k") == "first"

    def test_reset_empties(self):
        cache = ResolutionCache(max_entries=4)
        cache.store("k", 1)
        cache.reset()
        assert len(cache) == 0
        assert cache.lookup("k") is None


class TestWarmStart:
    def _tree(self):
        return _tree(
            _opt("A"),
            _opt("B", depends="A"),
            _opt("C", default="B"),
            _opt("D", depends="!A"),
            _opt("E", selects=["A"]),
        )

    def _pair(self, tree, base_names, delta_names):
        resolver = Resolver(tree)
        base = resolver.resolve_names(base_names, use_cache=False)
        warm = resolver.resolve_names_from(
            base, delta_names, use_cache=False
        )
        cold = resolver.resolve_names(delta_names, use_cache=False)
        return warm, cold

    @pytest.mark.parametrize("base_names,delta_names", [
        (["A"], ["A", "B"]),          # pin added
        (["A", "B"], ["A"]),          # pin removed
        (["A", "B"], ["B"]),          # upstream pin removed -> demotion
        (["A"], ["D"]),               # flip to the negated branch
        (["E"], ["E", "B"]),          # delta over a select
        ([], ["A", "B", "C", "E"]),   # empty base
        (["A", "B", "C", "E"], []),   # empty delta
    ])
    def test_delta_matches_cold(self, base_names, delta_names):
        warm, cold = self._pair(self._tree(), base_names, delta_names)
        assert warm.values == cold.values
        assert warm.demoted == cold.demoted
        assert warm.select_violations == cold.select_violations
        assert warm.requested == cold.requested

    def test_warm_visits_fewer_options_than_cold(self, tree):
        from repro.apps.registry import TOP20_APPS
        from repro.core.specialization import app_config_names
        from repro.kconfig.database import base_option_names

        resolver = Resolver(tree)
        base = resolver.resolve_names(
            base_option_names(), name="lupine-base", use_cache=False
        )
        names = app_config_names(TOP20_APPS[0])
        visited = METRICS.counter("kconfig.resolve.visited_options")

        before = visited.value
        resolver.resolve_names(names, use_cache=False)
        cold = visited.value - before

        before = visited.value
        resolver.resolve_names_from(base, names, use_cache=False)
        warm = visited.value - before

        assert warm * 10 <= cold

    def test_base_from_other_tree_rejected(self):
        one = self._tree()
        other = _tree(_opt("A"), _opt("Z"))
        base = Resolver(one).resolve_names(["A"], use_cache=False)
        with pytest.raises(ValueError, match="different tree"):
            Resolver(other).resolve_names_from(base, ["Z"])

    def test_base_from_equal_content_tree_accepted(self):
        one, two = self._tree(), self._tree()
        base = Resolver(one).resolve_names(["A"], use_cache=False)
        warm = Resolver(two).resolve_names_from(
            base, ["A", "B"], use_cache=False
        )
        assert warm.enabled == {"A", "B", "C"}  # C's default tracks B


class TestStrategySelection:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown resolution strategy"):
            Resolver(_tree(_opt("A")), strategy="bogus")

    def test_sweep_has_no_warm_start(self):
        tree = _tree(_opt("A"), _opt("B"))
        resolver = Resolver(tree, strategy="sweep")
        base = resolver.resolve_names(["A"])
        with pytest.raises(ValueError, match="worklist"):
            resolver.resolve_names_from(base, ["A", "B"])


class TestBenchCheck:
    def _result(self, **overrides):
        counters = {
            "kconfig.resolve.visited_options.cold_sweep": 1000,
            "kconfig.resolve.visited_options.warm_delta": 50,
            "kconfig.resolve.visited_options.cache_hit": 0,
            "kconfig.resolve.cache_hits.cache_hit": 20,
        }
        counters.update(overrides)
        return {
            "counters": counters,
            "gauges": {"kconfig.resolve.bench_apps": 20.0},
        }

    def test_passing_result(self):
        assert check_result(self._result()) == []

    def test_ratio_below_floor_fails(self):
        failures = check_result(self._result(**{
            "kconfig.resolve.visited_options.warm_delta": 500,
        }))
        assert any("10x" in f or ">= 10" in f for f in failures)

    def test_cache_hit_work_fails(self):
        failures = check_result(self._result(**{
            "kconfig.resolve.visited_options.cache_hit": 3,
        }))
        assert any("no resolution work" in f for f in failures)

    def test_missing_hits_fail(self):
        failures = check_result(self._result(**{
            "kconfig.resolve.cache_hits.cache_hit": 19,
        }))
        assert any("cache hits" in f for f in failures)
