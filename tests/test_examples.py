"""Smoke tests: every shipped example must run to completion.

Examples are part of the public API's contract; these tests catch doc rot
(an API change that breaks a walkthrough) the moment it happens.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load_module(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    module = _load_module(path)
    module.main()
    output = capsys.readouterr().out
    assert output.strip(), f"{path.name} produced no output"


def test_all_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {"quickstart", "config_diversity", "graceful_degradation",
            "unikernel_comparison", "database_unikernel"} <= names
