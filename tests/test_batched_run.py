"""Property tests: the batched throughput fast path is bit-exact.

``LinuxServerStack.run`` folds whole request batches through
``SyscallEngine.invoke_batch`` (closed-form addends, jitter applied
analytically).  Float addition is not associative, so "bit-exact" is a
real claim: for every profile, request count, engine, and pre-existing
jitter phase, the batched fold must reproduce the stepped reference loop
``run_stepped`` exactly -- same final clock, same rps bits, same jitter
call count.
"""

import pytest

from repro.core.variants import Variant, build_microvm, build_variant
from repro.apps.registry import get_app
from repro.workloads.memcached import MEMCACHED_GET, MEMCACHED_SET
from repro.workloads.nginx import NGINX_CONN, NGINX_SESS
from repro.workloads.redis import REDIS_GET, REDIS_SET
from repro.workloads.server import LinuxServerStack

PROFILES = (REDIS_GET, REDIS_SET, NGINX_CONN, NGINX_SESS,
            MEMCACHED_GET, MEMCACHED_SET)

#: Spans the jitter period boundaries: the phase sequence repeats every
#: 1000 calls, so counts near multiples of the per-profile round period
#: are the interesting edges.
REQUEST_COUNTS = (1, 2, 3, 7, 99, 100, 101, 250, 999, 1000, 1001, 2500)


def _builds():
    app = get_app("redis")
    return (
        ("microvm", build_microvm()),
        ("lupine", build_variant(Variant.LUPINE, app)),
        ("lupine-nokml", build_variant(Variant.LUPINE_NOKML, app)),
        ("lupine-tiny", build_variant(Variant.LUPINE_TINY, app)),
    )


def _pair(build):
    """Two stacks on fresh engines of the same kernel."""
    return (
        LinuxServerStack(engine=build.syscall_engine(),
                         netpath=build.network_path()),
        LinuxServerStack(engine=build.syscall_engine(),
                         netpath=build.network_path()),
    )


class TestBatchedEqualsStepped:
    @pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
    @pytest.mark.parametrize("requests", REQUEST_COUNTS)
    def test_bit_exact_across_profiles_and_counts(self, profile, requests):
        batched, stepped = _pair(build_microvm())
        rate_batched = batched.run(profile, requests)
        rate_stepped = stepped.run_stepped(profile, requests)
        assert batched.engine.clock_ns == stepped.engine.clock_ns
        assert rate_batched == rate_stepped  # identical bits, not approx
        assert batched.engine.call_count == stepped.engine.call_count

    @pytest.mark.parametrize("label,build", _builds(), ids=lambda v: (
        v if isinstance(v, str) else ""))
    def test_bit_exact_across_kernels(self, label, build):
        for profile in (REDIS_GET, NGINX_SESS):
            batched, stepped = _pair(build)
            assert (batched.run(profile, 137)
                    == stepped.run_stepped(profile, 137))
            assert batched.engine.clock_ns == stepped.engine.clock_ns

    @pytest.mark.parametrize("offset", (1, 17, 500, 999, 1000, 12345))
    def test_bit_exact_from_any_jitter_phase(self, offset):
        # A prior workload leaves the engine mid-jitter-period; the
        # batched fold must continue from that phase, not restart it.
        batched, stepped = _pair(build_microvm())
        for stack in (batched, stepped):
            for _ in range(offset):
                stack.engine.invoke("read")
        rate_batched = batched.run(REDIS_GET, 77)
        rate_stepped = stepped.run_stepped(REDIS_GET, 77)
        assert rate_batched == rate_stepped
        assert batched.engine.clock_ns == stepped.engine.clock_ns

    def test_consecutive_batches_compose(self):
        batched, stepped = _pair(build_microvm())
        for profile, requests in ((REDIS_GET, 33), (REDIS_SET, 41),
                                  (NGINX_CONN, 250)):
            assert (batched.run(profile, requests)
                    == stepped.run_stepped(profile, requests))
        assert batched.engine.clock_ns == stepped.engine.clock_ns

    def test_per_syscall_counts_match(self):
        batched, stepped = _pair(build_microvm())
        batched.run(NGINX_SESS, 211)
        stepped.run_stepped(NGINX_SESS, 211)
        assert (batched.engine.per_syscall_counts
                == stepped.engine.per_syscall_counts)

    def test_zero_requests_is_zero_division_like_stepped(self):
        batched, stepped = _pair(build_microvm())
        with pytest.raises(ZeroDivisionError):
            batched.run(REDIS_GET, 0)
        with pytest.raises(ZeroDivisionError):
            stepped.run_stepped(REDIS_GET, 0)

    def test_unsupported_syscall_falls_back_to_stepped_semantics(self):
        from repro.netstack.path import NetworkPath
        from repro.syscall.dispatch import SyscallNotImplemented
        from repro.workloads.server import RequestProfile

        # The bare hello-world kernel drops EPOLL: run() must take the
        # stepped fallback and surface ENOSYS exactly as the loop does.
        hello = build_variant(Variant.LUPINE_NOKML)
        profile = RequestProfile(
            name="epoll-heavy", syscalls=("read", "epoll_wait"),
            app_ns=100.0,
        )
        stack = LinuxServerStack(
            engine=hello.syscall_engine(),
            netpath=NetworkPath.for_options(("INET",)),
        )
        assert not stack.engine.supports("epoll_wait")
        with pytest.raises(SyscallNotImplemented):
            stack.run(profile, 5)
        # Charge-then-raise: the supported syscall before the missing
        # one was still billed before ENOSYS surfaced.
        assert stack.engine.clock_ns > 0
