"""The golden parity gate: every experiment is byte-identical to the pin.

``tests/golden/experiments_golden.json`` captures the encoded output of
all registered experiments.  This test re-captures them in a fresh
subprocess and compares byte-for-byte.  The subprocess deliberately runs
under a *different* hash seed than the pin was captured with: every
float fold over set-ordered config options iterates in sorted order, so
the document must be byte-identical under any ``PYTHONHASHSEED`` -- the
parity gate doubles as the hash-seed-independence gate.

If this fails after an intentional model change, re-pin with::

    python tests/golden/capture_golden.py \\
        tests/golden/experiments_golden.json
"""

import json
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
GOLDEN = REPO_ROOT / "tests" / "golden" / "experiments_golden.json"
CAPTURE = REPO_ROOT / "tests" / "golden" / "capture_golden.py"


def test_all_experiments_match_golden_bytes(tmp_path):
    output = tmp_path / "captured.json"
    # A hash seed the pin was NOT captured under: byte parity now also
    # asserts that no float fold depends on set-iteration order.
    environment = dict(os.environ, PYTHONHASHSEED="13")
    environment.pop("PYTHONPATH", None)  # capture script bootstraps itself
    subprocess.run(
        [sys.executable, str(CAPTURE), str(output)],
        check=True, env=environment, cwd=str(tmp_path),
    )
    captured = output.read_bytes()
    golden = GOLDEN.read_bytes()
    if captured == golden:
        return
    # Byte mismatch: diagnose which experiments drifted before failing.
    captured_doc = json.loads(captured)
    golden_doc = json.loads(golden)
    drifted = sorted(
        name
        for name in set(captured_doc) | set(golden_doc)
        if captured_doc.get(name) != golden_doc.get(name)
    )
    raise AssertionError(
        "experiment outputs drifted from tests/golden/experiments_golden"
        f".json: {drifted or 'encoding-level difference'}"
    )


def test_golden_pin_covers_every_registered_experiment():
    environment = dict(os.environ,
                       PYTHONPATH=str(REPO_ROOT / "src"))
    listing = subprocess.run(
        [sys.executable, "-c",
         "from repro.harness.registry import all_experiments;"
         "print('\\n'.join(all_experiments()))"],
        check=True, env=environment, capture_output=True, text=True,
    )
    registered = set(listing.stdout.split())
    pinned = set(json.loads(GOLDEN.read_text()))
    assert registered == pinned
