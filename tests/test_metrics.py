"""Tests for the table/figure renderers."""

import pytest

from repro.metrics.reporting import (
    Figure,
    Table,
    render_figure,
    render_markdown_table,
    render_table,
)


class TestTable:
    def test_add_row_checks_arity(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_alignment(self):
        table = Table("Title", ["name", "value"])
        table.add_row("x", 1.5)
        table.add_row("longer-name", 22000.0)
        text = render_table(table)
        assert "Title" in text
        assert "longer-name" in text
        assert "22,000.0" in text

    def test_none_renders_as_dash(self):
        table = Table("t", ["a"])
        table.add_row(None)
        assert "-" in render_table(table).splitlines()[-1]

    def test_small_floats_get_precision(self):
        table = Table("t", ["v"])
        table.add_row(0.0032)
        assert "0.00320" in render_table(table)

    def test_markdown(self):
        table = Table("T", ["a", "b"])
        table.add_row("x", 2)
        markdown = render_markdown_table(table)
        assert markdown.startswith("**T**")
        assert "| x | 2 |" in markdown


class TestFigure:
    def test_bars_scale_to_peak(self):
        figure = Figure("F", "x", "y")
        figure.add_series("s", [("a", 10.0), ("b", 5.0)])
        text = render_figure(figure, bar_width=10)
        lines = text.splitlines()
        bar_a = next(l for l in lines if l.strip().startswith("a"))
        bar_b = next(l for l in lines if l.strip().startswith("b"))
        assert bar_a.count("#") == 10
        assert bar_b.count("#") == 5

    def test_none_and_inf_render_na(self):
        figure = Figure("F", "x", "y")
        figure.add_series("s", [("a", None), ("b", float("inf")),
                               ("c", 1.0)])
        text = render_figure(figure)
        assert text.count("N/A") == 2

    def test_multiple_series(self):
        figure = Figure("F", "x", "y")
        figure.add_series("one", [("a", 1.0)])
        figure.add_series("two", [("a", 2.0)])
        text = render_figure(figure)
        assert "[one]" in text and "[two]" in text


class TestDataExport:
    def test_numeric_roundtrip(self):
        from repro.metrics.dataexport import figure_to_dat, parse_dat

        figure = Figure("F", "x", "y")
        figure.add_series("s1", [(1, 2.0), (2, 4.0)])
        figure.add_series("s2", [(1, 8.0)])
        parsed = parse_dat(figure_to_dat(figure))
        assert parsed == [[(1.0, 2.0), (2.0, 4.0)], [(1.0, 8.0)]]

    def test_categorical_and_nan(self):
        from repro.metrics.dataexport import figure_to_dat, parse_dat

        figure = Figure("F", "system", "MB")
        figure.add_series("size", [("microvm", 14.6), ("hermitux", None)])
        text = figure_to_dat(figure)
        assert '"microvm"' in text and "nan" in text
        parsed = parse_dat(text)
        assert parsed[0][0] == ("microvm", 14.6)
