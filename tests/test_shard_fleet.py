"""Sharded fleet execution: determinism, cohort oracle, shard plumbing.

The contracts under test (see docs/ARCHITECTURE.md "Sharded execution"):

- **Shard-count invariance.** ``Fleet.simulate(seed=s, jobs=N)`` produces
  a byte-identical manifest (hence digest) for every N, because shards
  are contiguous index ranges merged in shard order and each guest's
  outcome depends only on its own spec + clock.
- **Cohort oracle.** The cohort-vectorized fold (one representative per
  application, members replayed) is bit-identical to the per-guest
  sequential fold.
- **Hash-seed independence.** Every config-option float fold iterates
  sorted, so digests do not depend on PYTHONHASHSEED.
- **Counter merge.** Worker counter deltas fold back into the parent
  process's METRICS registry, so sharded and sequential runs cost the
  same by the counters.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.orchestrator import Fleet, KernelPolicy
from repro.harness.shardpool import shard_bounds
from repro.observe import METRICS

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestShardBounds:
    def test_partitions_are_contiguous_and_exhaustive(self):
        for count in (1, 2, 7, 100, 101):
            for jobs in (1, 2, 3, 7, 16):
                bounds = shard_bounds(count, jobs)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == count
                for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                    assert hi == lo
                assert all(hi > lo for lo, hi in bounds)

    def test_jobs_clamped_to_fleet_size(self):
        assert len(shard_bounds(3, 16)) == 3
        assert len(shard_bounds(5, 0)) == 1
        assert shard_bounds(0, 4) == []

    def test_near_equal_sizes(self):
        sizes = [hi - lo for lo, hi in shard_bounds(10, 3)]
        assert sorted(sizes) == [3, 3, 4]
        assert max(sizes) - min(sizes) <= 1


class TestCohortOracle:
    def test_cohort_matches_sequential_general(self):
        seq = Fleet.simulate(60, seed=7)
        cohort = Fleet.simulate(60, seed=7, cohort=True)
        assert cohort.manifest() == seq.manifest()
        assert cohort.manifest_digest == seq.manifest_digest

    def test_cohort_matches_sequential_per_app(self):
        seq = Fleet.simulate(40, policy=KernelPolicy.PER_APP, seed=11)
        cohort = Fleet.simulate(40, policy=KernelPolicy.PER_APP, seed=11,
                                cohort=True)
        assert cohort.manifest() == seq.manifest()
        assert cohort.build_count == seq.build_count


class TestShardedExecution:
    def test_sharded_matches_sequential_manifest(self):
        seq = Fleet.simulate(30, seed=3)
        sharded = Fleet.simulate(30, seed=3, jobs=2)
        assert sharded.manifest() == seq.manifest()
        assert sharded.build_count == seq.build_count

    def test_shard_stats_surface_worker_count(self):
        sharded = Fleet.simulate(12, seed=1, jobs=3)
        stats = sharded.shard_stats
        assert stats is not None
        assert stats.jobs == 3
        assert sum(stats.shard_sizes) == 12
        assert stats.max_elapsed_us <= stats.total_elapsed_us
        assert Fleet.simulate(12, seed=1).shard_stats is None

    def test_sharded_per_app_merges_build_count(self):
        seq = Fleet.simulate(40, policy=KernelPolicy.PER_APP, seed=5)
        sharded = Fleet.simulate(40, policy=KernelPolicy.PER_APP, seed=5,
                                 jobs=3, cohort=True)
        assert sharded.manifest_digest == seq.manifest_digest
        assert sharded.build_count == seq.build_count

    def test_worker_counters_fold_into_parent(self):
        def boots() -> int:
            return METRICS.counter("boot.boots").value

        before = boots()
        Fleet.simulate(20, seed=9)
        sequential_delta = boots() - before

        before = boots()
        Fleet.simulate(20, seed=9, jobs=2)
        sharded_delta = boots() - before
        assert sharded_delta == sequential_delta > 0

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           count=st.integers(min_value=1, max_value=40))
    def test_digest_invariant_across_job_counts(self, seed, count):
        digests = {
            Fleet.simulate(count, seed=seed, jobs=jobs,
                           cohort=(jobs > 1)).manifest_digest
            for jobs in (1, 2, 7)
        }
        assert len(digests) == 1

    def test_global_loop_rejects_shards_and_cohort(self):
        import pytest

        with pytest.raises(ValueError):
            Fleet.simulate(4, global_loop=True, jobs=2)
        with pytest.raises(ValueError):
            Fleet.simulate(4, global_loop=True, cohort=True)


class TestHashSeedIndependence:
    def test_digest_identical_under_two_hash_seeds(self):
        script = (
            "from repro.core.orchestrator import Fleet;"
            "print(Fleet.simulate(25, seed=4, cohort=True).manifest_digest)"
        )
        digests = set()
        for hash_seed in ("0", "13"):
            env = dict(os.environ,
                       PYTHONPATH=str(REPO_ROOT / "src"),
                       PYTHONHASHSEED=hash_seed)
            output = subprocess.run(
                [sys.executable, "-c", script], env=env, cwd=REPO_ROOT,
                capture_output=True, text=True, check=True,
            ).stdout.strip()
            digests.add(output)
        assert len(digests) == 1


class TestRegressDigestGate:
    def test_digest_drift_fails_the_gate(self):
        from repro.observe.regress import compare_runs

        baseline = {"counters": {}, "digests": {"fleet.d": "aaa"}}
        matching = compare_runs(baseline, {"counters": {},
                                           "digests": {"fleet.d": "aaa"}})
        assert matching.passed
        drifted = compare_runs(baseline, {"counters": {},
                                          "digests": {"fleet.d": "bbb"}})
        assert not drifted.passed
        assert drifted.regressions[0].kind == "digest"

    def test_baseline_digests_gate_skips_new_sections(self):
        from repro.observe.regress import compare_runs

        report = compare_runs(
            {"counters": {}, "digests": {}},
            {"counters": {}, "digests": {"fleet.new": "ccc"}},
        )
        assert report.passed and report.deltas == []


class TestServingRunFanOut:
    def test_run_serving_many_matches_sequential(self):
        from repro.traffic.bench import canonical_trace
        from repro.traffic.policy import FIXED_POOL, SCALE_TO_ZERO
        from repro.traffic.serve import (
            ServeSpec,
            run_serving,
            run_serving_many,
        )

        trace = canonical_trace(requests=400)
        specs = [
            ServeSpec(trace=trace, policy=SCALE_TO_ZERO, seed=2020),
            ServeSpec(trace=trace, policy=FIXED_POOL, seed=2020),
        ]
        fanned = run_serving_many(specs, jobs=2)
        assert [r.manifest_digest for r in fanned] == [
            run_serving(spec).manifest_digest for spec in specs
        ]


class TestRunnerEffectiveJobs:
    def test_manifest_reports_effective_worker_count(self, tmp_path):
        from repro.harness.registry import Artifact, Experiment
        from repro.harness.runner import run_experiments

        experiments = [
            Experiment(
                name=f"shardy-{index}",
                run_fn=lambda: {"v": 1},
                artifact_fn=lambda: Artifact(text="shardy"),
                fingerprint_fn=lambda index=index: f"fp-{index}",
            )
            for index in range(2)
        ]
        run = run_experiments(
            experiments=experiments, jobs=8, output_dir=tmp_path,
            cache_dir=tmp_path / "cache",
        )
        manifest = json.loads(run.manifest_path.read_text(encoding="utf-8"))
        assert manifest["jobs"] == 8
        assert manifest["effective_jobs"] == 2
        assert run.telemetry.effective_jobs == 2
