"""Tests for container images, the ext2 builder and init-script generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.registry import get_app
from repro.kml.libc import LibcVariant
from repro.rootfs.container import (
    ContainerImage,
    FileEntry,
    Layer,
    alpine_base_layer,
    container_for_app,
)
from repro.rootfs.ext2 import BLOCK_SIZE, Ext2Error, build_ext2
from repro.rootfs.init import (
    generate_init_script,
    parse_init_script,
)


class TestFileEntry:
    def test_relative_paths_rejected(self):
        with pytest.raises(ValueError):
            FileEntry("usr/bin/app", 10)

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            FileEntry("/x", -1)


class TestContainerImage:
    def test_layers_override_in_order(self):
        image = ContainerImage(name="test")
        image.add_layer(Layer("base", [FileEntry("/etc/conf", 1.0)]))
        image.add_layer(Layer("patch", [FileEntry("/etc/conf", 2.0)]))
        assert image.flatten()["/etc/conf"].size_kb == 2.0

    def test_alpine_base_has_musl(self):
        layer = alpine_base_layer(LibcVariant.MUSL)
        paths = {entry.path for entry in layer.files}
        assert "/lib/ld-musl-x86_64.so.1" in paths
        assert "/bin/busybox" in paths

    def test_container_for_app_includes_binary_and_metadata(self):
        redis = get_app("redis")
        image = container_for_app(redis)
        flattened = image.flatten()
        assert "/usr/bin/redis-server" in flattened
        assert image.entrypoint[0] == "/usr/bin/redis-server"
        assert dict(image.env).get("PATH")

    def test_kml_libc_variant_recorded_in_layer_name(self):
        image = container_for_app(get_app("redis"), LibcVariant.MUSL_KML)
        assert any("musl-kml" in layer.name for layer in image.layers)

    def test_total_size_positive(self):
        assert container_for_app(get_app("nginx")).total_size_kb > 1000


class TestExt2Builder:
    def test_builds_with_parent_directories(self):
        image = build_ext2([FileEntry("/usr/bin/app", 100, executable=True)])
        assert image.exists("/usr/bin/app")
        assert image.lookup("/usr").is_directory
        assert image.lookup("/usr/bin").is_directory

    def test_duplicate_paths_rejected(self):
        with pytest.raises(Ext2Error):
            build_ext2([FileEntry("/a", 1), FileEntry("/a", 2)])

    def test_lookup_missing_raises(self):
        image = build_ext2([])
        with pytest.raises(Ext2Error):
            image.lookup("/ghost")

    def test_list_directory(self):
        image = build_ext2(
            [FileEntry("/bin/sh", 1), FileEntry("/bin/ls", 1),
             FileEntry("/etc/passwd", 1)]
        )
        assert image.list_directory("/bin") == ["ls", "sh"]
        assert set(image.list_directory("/")) == {"bin", "etc"}

    def test_symlink_resolution(self):
        image = build_ext2([
            FileEntry("/bin/busybox", 800, executable=True),
            FileEntry("/bin/sh", 0, symlink_to="/bin/busybox"),
        ])
        assert image.resolve("/bin/sh").path == "/bin/busybox"

    def test_symlink_loop_detected(self):
        image = build_ext2([
            FileEntry("/a", 0, symlink_to="/b"),
            FileEntry("/b", 0, symlink_to="/a"),
        ])
        with pytest.raises(Ext2Error, match="symbolic links"):
            image.resolve("/a")

    def test_fast_symlinks_use_no_data_blocks(self):
        image = build_ext2([FileEntry("/sh", 0, symlink_to="/bin/busybox")])
        assert image.lookup("/sh").data_blocks == 0

    def test_small_file_needs_no_indirect_blocks(self):
        image = build_ext2([FileEntry("/small", 10)])
        assert image.lookup("/small").indirect_blocks == 0

    def test_large_file_needs_indirect_blocks(self):
        image = build_ext2([FileEntry("/large", 2048)])  # 2 MiB, 2048 blocks
        inode = image.lookup("/large")
        assert inode.indirect_blocks >= 1 + 1 + 7  # single + double tree

    def test_image_size_exceeds_payload(self):
        files = [FileEntry(f"/f{i}", 64) for i in range(10)]
        image = build_ext2(files)
        assert image.size_kb > 640  # payload + metadata

    def test_inode_numbers_unique(self):
        image = build_ext2(
            [FileEntry("/a/b/c", 1), FileEntry("/a/d", 1)]
        )
        numbers = [inode.number for inode in image.inodes.values()]
        assert len(numbers) == len(set(numbers))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(
            st.lists(
                st.text(alphabet="abcd", min_size=1, max_size=4),
                min_size=1, max_size=3,
            ),
            st.floats(min_value=0, max_value=500),
        ),
        min_size=1, max_size=12,
    ))
    def test_roundtrip_property(self, raw_files):
        """Every stored file is retrievable with its exact size."""
        files, seen = [], set()
        for parts, size_kb in raw_files:
            path = "/" + "/".join(parts)
            if path in seen or any(path.startswith(p + "/") or
                                   p.startswith(path + "/") for p in seen):
                continue
            seen.add(path)
            files.append(FileEntry(path, size_kb))
        image = build_ext2(files)
        for entry in files:
            inode = image.lookup(entry.path)
            assert inode.size_bytes == int(entry.size_kb * 1024)
            expected_blocks = (inode.size_bytes + BLOCK_SIZE - 1) // BLOCK_SIZE
            assert inode.data_blocks == expected_blocks


class TestInitScript:
    def test_mounts_follow_config(self):
        script = generate_init_script(
            ("/usr/bin/redis-server",),
            enabled_options=["PROC_FS", "TMPFS"],
        )
        parsed = parse_init_script(script)
        assert set(parsed["mounts"]) == {"proc", "tmpfs"}

    def test_no_mounts_without_options(self):
        script = generate_init_script(("/hello",))
        assert parse_init_script(script)["mounts"] == []

    def test_network_setup(self):
        script = generate_init_script(("/srv",), needs_network=True)
        assert parse_init_script(script)["network"]
        assert "eth0" in script

    def test_env_exported(self):
        script = generate_init_script(
            ("/app",), env=[("PGDATA", "/var/lib/pg")]
        )
        assert parse_init_script(script)["env"]["PGDATA"] == "/var/lib/pg"

    def test_entrypoint_execed_as_pid1(self):
        script = generate_init_script(("/usr/sbin/nginx", "-g", "daemon off;"))
        parsed = parse_init_script(script)
        assert parsed["entrypoint"][0] == "/usr/sbin/nginx"
        assert script.rstrip().splitlines()[-1].startswith("exec ")

    def test_empty_entrypoint_rejected(self):
        with pytest.raises(ValueError):
            generate_init_script(())

    def test_quoting_roundtrip(self):
        script = generate_init_script(
            ("/bin/sh", "-c", "echo 'it works'"),
            env=[("MOTD", "hello world")],
        )
        parsed = parse_init_script(script)
        assert parsed["env"]["MOTD"] == "hello world"

    def test_ulimit_emitted_when_requested(self):
        script = generate_init_script(("/srv",), ulimit_nofile=4096)
        assert "ulimit -n 4096" in script
