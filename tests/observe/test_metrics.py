"""Tests for the metrics registry (histogram edges pinned exactly)."""

import concurrent.futures
import json

import pytest

from repro.observe.metrics import Histogram, MetricsRegistry


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert registry.counter("c").value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_thread_safety(self):
        counter = MetricsRegistry().counter("c")

        def bump(_):
            for _ in range(1000):
                counter.inc()

        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(bump, range(8)))
        assert counter.value == 8000


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3)
        registry.gauge("g").set(7.5)
        assert registry.gauge("g").value == 7.5


class TestHistogramBuckets:
    def test_value_exactly_on_boundary_lands_in_that_bucket(self):
        histogram = Histogram("h", (1.0, 5.0, 10.0))
        histogram.observe(5.0)  # inclusive upper bound: the 5.0 bucket
        assert histogram.bucket_counts() == [
            (1.0, 0), (5.0, 1), (10.0, 0), (None, 0),
        ]

    def test_value_just_above_boundary_moves_up(self):
        histogram = Histogram("h", (1.0, 5.0, 10.0))
        histogram.observe(5.0000001)
        assert histogram.bucket_counts() == [
            (1.0, 0), (5.0, 0), (10.0, 1), (None, 0),
        ]

    def test_first_boundary_includes_zero_and_below(self):
        histogram = Histogram("h", (1.0, 5.0))
        histogram.observe(0.0)
        histogram.observe(1.0)
        assert histogram.bucket_counts()[0] == (1.0, 2)

    def test_above_last_boundary_overflows(self):
        histogram = Histogram("h", (1.0, 5.0))
        histogram.observe(5.0)   # in-range (inclusive)
        histogram.observe(5.01)  # overflow
        assert histogram.bucket_counts() == [(1.0, 0), (5.0, 1), (None, 1)]

    def test_summary_stats(self):
        histogram = Histogram("h", (10.0,))
        for value in (2.0, 8.0, 14.0):
            histogram.observe(value)
        snapshot = histogram.to_dict()
        assert snapshot["count"] == 3
        assert snapshot["sum"] == pytest.approx(24.0)
        assert (snapshot["min"], snapshot["max"]) == (2.0, 14.0)

    def test_unsorted_or_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", (1.0, 1.0))


class TestRegistry:
    def test_create_on_first_use_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h", (1.0,)) is registry.histogram("h", (1.0,))

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x", (1.0,))

    def test_histogram_bucket_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", (1.0, 3.0))

    def test_to_dict_is_sorted_and_json_stable(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("z").set(1.5)
        registry.histogram("h", (1.0,)).observe(0.5)
        snapshot = registry.to_dict()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert (
            json.dumps(snapshot, sort_keys=True)
            == json.dumps(registry.to_dict(), sort_keys=True)
        )

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(9)
        registry.reset()
        assert registry.counter("c").value == 0
