"""Tests for the trace/metrics exporters and the run-report renderers."""

import json

from repro.harness import run_experiments
from repro.observe.export import (
    chrome_trace,
    experiment_phase_rows,
    load_trace_events,
    render_trace_report,
    self_time_by_name,
    top_self_time,
    write_run_artifacts,
)
from repro.observe.metrics import MetricsRegistry
from repro.observe.tracer import TickClock, Tracer


def _sample_tracer():
    tracer = Tracer(clock=TickClock(step_us=1000.0))  # 1 ms per reading
    with tracer.span("experiment:fig7", category="harness",
                     experiment="fig7"):
        with tracer.span("execute", category="harness"):
            with tracer.span("kbuild.build", category="kbuild"):
                tracer.sim.advance(3.0)
        with tracer.span("encode", category="harness"):
            pass
    return tracer


class TestChromeTrace:
    def test_events_are_complete_spans(self):
        document = chrome_trace(_sample_tracer().records())
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 4
        for event in spans:
            assert set(event) >= {"name", "cat", "ph", "ts", "dur", "pid",
                                  "tid", "args"}
            assert event["dur"] >= 0
        assert document["displayTimeUnit"] == "ms"

    def test_parent_indices_reconstruct_tree(self):
        document = chrome_trace(_sample_tracer().records())
        spans = {e["args"]["index"]: e for e in document["traceEvents"]
                 if e["ph"] == "X"}
        execute = next(e for e in spans.values() if e["name"] == "execute")
        build = next(e for e in spans.values()
                     if e["name"] == "kbuild.build")
        assert build["args"]["parent"] == execute["args"]["index"]
        assert spans[execute["args"]["parent"]]["name"] == "experiment:fig7"

    def test_sim_clock_rides_in_args(self):
        document = chrome_trace(_sample_tracer().records())
        build = next(e for e in document["traceEvents"]
                     if e.get("name") == "kbuild.build")
        assert build["args"]["sim_duration_ms"] == 3.0

    def test_round_trips_through_disk(self, tmp_path):
        tracer = _sample_tracer()
        registry = MetricsRegistry()
        registry.counter("kbuild.builds").inc()
        paths = write_run_artifacts(tmp_path, tracer.records(), registry)
        events = load_trace_events(paths["trace"])
        assert [e["name"] for e in events] == [
            "experiment:fig7", "execute", "kbuild.build", "encode",
        ]
        metrics = json.loads(paths["metrics"].read_text())
        assert metrics["counters"]["kbuild.builds"] == 1


class TestAnalysis:
    def test_self_time_subtracts_children(self):
        events = chrome_trace(_sample_tracer().records())["traceEvents"]
        events = [e for e in events if e["ph"] == "X"]
        aggregated = self_time_by_name(events)
        execute = aggregated["execute"]
        build = aggregated["kbuild.build"]
        # execute's total covers the build; its self time excludes it.
        assert execute["total_ms"] > build["total_ms"]
        assert execute["self_ms"] < execute["total_ms"]

    def test_top_self_time_ranked_and_bounded(self):
        events = chrome_trace(_sample_tracer().records())["traceEvents"]
        events = [e for e in events if e["ph"] == "X"]
        top = top_self_time(events, top_n=2)
        assert len(top) == 2
        assert top[0]["self_ms"] >= top[1]["self_ms"]

    def test_phase_rows_group_by_experiment(self):
        events = chrome_trace(_sample_tracer().records())["traceEvents"]
        events = [e for e in events if e["ph"] == "X"]
        rows = experiment_phase_rows(events)
        assert [(r["experiment"], r["phase"]) for r in rows] == [
            ("fig7", "execute"), ("fig7", "encode"),
        ]


class TestHarnessEmission:
    def test_run_all_emits_valid_artifacts(self, tmp_path):
        run = run_experiments(
            names=["fig5", "fig7"], jobs=2,
            output_dir=tmp_path / "out", cache_dir=tmp_path / "cache",
        )
        assert run.trace_path is not None and run.trace_path.is_file()
        assert run.metrics_path is not None and run.metrics_path.is_file()

        document = json.loads(run.trace_path.read_text())
        spans = [e for e in document["traceEvents"] if e.get("ph") == "X"]
        names = {e["name"] for e in spans}
        # Nested build/boot/workload spans from the wired layers.
        assert {"harness.run", "experiment:fig7", "execute",
                "kconfig.resolve", "kbuild.build", "boot.boot"} <= names
        by_index = {e["args"]["index"]: e for e in spans}
        build = next(e for e in spans if e["name"] == "kbuild.build")
        ancestor = build
        seen = set()
        while ancestor["args"].get("parent") is not None:
            assert ancestor["args"]["index"] not in seen  # no cycles
            seen.add(ancestor["args"]["index"])
            ancestor = by_index[ancestor["args"]["parent"]]
        assert ancestor["name"].startswith(("experiment:", "harness.run"))

        metrics = json.loads(run.metrics_path.read_text())
        assert metrics["counters"]["kbuild.builds"] >= 1
        assert "harness.experiment.wall_ms" in metrics["histograms"]

    def test_report_renders_from_disk(self, tmp_path):
        run = run_experiments(
            names=["fig5"], jobs=1,
            output_dir=tmp_path / "out", cache_dir=tmp_path / "cache",
        )
        report = render_trace_report(run.trace_path,
                                     metrics_path=run.metrics_path, top_n=5)
        assert "self time" in report
        assert "phase breakdown" in report
        assert "fig5" in report
