"""Tests for the deterministic span tracer."""

import concurrent.futures
import dataclasses

import pytest

from repro.observe.tracer import SimClock, TickClock, Tracer


def _traced_workload(tracer):
    """A fixed code path: the determinism tests run it twice."""
    with tracer.span("run", category="test", jobs=1):
        for name in ("alpha", "beta"):
            with tracer.span(f"experiment:{name}", category="test",
                             experiment=name):
                with tracer.span("fingerprint", category="test"):
                    pass
                with tracer.span("execute", category="test") as record:
                    tracer.sim.advance(5.0)
                    record.set_attr("steps", 3)


class TestSpanTree:
    def test_same_run_identical_span_tree(self):
        first, second = Tracer(), Tracer()
        _traced_workload(first)
        _traced_workload(second)
        assert first.span_tree() == second.span_tree()

    def test_tree_structure(self):
        tracer = Tracer()
        _traced_workload(tracer)
        (root,) = tracer.span_tree()
        assert root["name"] == "run"
        assert [c["name"] for c in root["children"]] == [
            "experiment:alpha", "experiment:beta",
        ]
        alpha = root["children"][0]
        assert [c["name"] for c in alpha["children"]] == [
            "fingerprint", "execute",
        ]
        assert alpha["attrs"] == {"experiment": "alpha"}
        assert alpha["children"][1]["attrs"] == {"steps": 3}

    def test_tick_clock_makes_full_records_identical(self):
        first = Tracer(clock=TickClock())
        second = Tracer(clock=TickClock())
        _traced_workload(first)
        _traced_workload(second)
        as_dicts = lambda t: [dataclasses.asdict(r) for r in t.records()]
        first_records, second_records = as_dicts(first), as_dicts(second)
        # Thread ids are host artifacts; everything else is bit-identical.
        for record in first_records + second_records:
            record.pop("thread_id")
        assert first_records == second_records

    def test_depth_and_parent_links(self):
        tracer = Tracer()
        _traced_workload(tracer)
        records = {r.index: r for r in tracer.records()}
        root = records[0]
        assert root.depth == 0 and root.parent_index is None
        for record in records.values():
            if record.parent_index is not None:
                assert record.depth == records[record.parent_index].depth + 1


class TestClocks:
    def test_sim_clock_advances_inside_spans(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.sim.advance(10.0)
            with tracer.span("inner") as inner:
                tracer.sim.advance(2.5)
        assert inner.sim_duration_ms == pytest.approx(2.5)
        assert outer.sim_duration_ms == pytest.approx(12.5)
        assert inner.sim_start_ms == pytest.approx(10.0)

    def test_sim_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_host_durations_nonnegative_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.records()
        assert outer.duration_us >= inner.duration_us >= 0.0

    def test_reset_clears_records_and_sim_clock(self):
        tracer = Tracer()
        with tracer.span("x"):
            tracer.sim.advance(4.0)
        tracer.reset()
        assert tracer.records() == []
        assert tracer.sim.now_ms == 0.0


class TestApi:
    def test_decorator_records_span(self):
        tracer = Tracer()

        @tracer.traced("my.op", category="test")
        def operation(value):
            return value * 2

        assert operation(21) == 42
        (record,) = tracer.records()
        assert record.name == "my.op" and record.category == "test"

    def test_decorator_defaults_to_qualname(self):
        tracer = Tracer()

        @tracer.traced()
        def some_function():
            pass

        some_function()
        assert "some_function" in tracer.records()[0].name

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("fails"):
                raise RuntimeError("boom")
        (record,) = tracer.records()
        assert record.duration_us >= 0.0
        # The stack unwound: a new span is a root again.
        with tracer.span("next"):
            pass
        assert tracer.records()[1].parent_index is None

    def test_mark_and_records_since(self):
        tracer = Tracer()
        with tracer.span("before"):
            pass
        mark = tracer.mark()
        with tracer.span("after"):
            pass
        names = [r.name for r in tracer.records_since(mark)]
        assert names == ["after"]


class TestThreading:
    def test_threads_keep_independent_stacks(self):
        tracer = Tracer()

        def work(name):
            with tracer.span(f"job:{name}"):
                with tracer.span("step"):
                    pass

        with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(work, ["a", "b", "c", "d"]))

        records = tracer.records()
        assert len(records) == 8
        by_index = {r.index: r for r in records}
        for record in records:
            if record.name == "step":
                parent = by_index[record.parent_index]
                assert parent.name.startswith("job:")
                assert parent.thread_id == record.thread_id
            else:
                assert record.parent_index is None
