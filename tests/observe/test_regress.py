"""Tests for the regression gate (threshold boundaries pinned exactly)."""

import json

from repro.observe.regress import compare_runs, is_cost_counter, main


def _metrics(**counters):
    return {"counters": counters, "gauges": {}, "histograms": {}}


def _manifest(total_ms, experiments=()):
    return {
        "total_wall_ms": total_ms,
        "experiments": [
            {"name": name, "wall_ms": wall} for name, wall in experiments
        ],
    }


class TestThresholdBoundaries:
    def test_identical_runs_pass(self):
        metrics = _metrics(**{"buildcache.misses": 7})
        manifest = _manifest(100.0, [("fig7", 50.0)])
        report = compare_runs(metrics, metrics, manifest, manifest)
        assert report.passed

    def test_exactly_at_threshold_passes(self):
        # 10% threshold, 100 -> 110: exactly at the bound, strict >.
        report = compare_runs(
            _metrics(**{"buildcache.misses": 100}),
            _metrics(**{"buildcache.misses": 110}),
            threshold=0.10,
        )
        assert report.passed

    def test_just_past_threshold_fails(self):
        report = compare_runs(
            _metrics(**{"buildcache.misses": 100}),
            _metrics(**{"buildcache.misses": 111}),
            threshold=0.10,
        )
        assert not report.passed
        (regression,) = report.regressions
        assert regression.name == "buildcache.misses"

    def test_timing_exactly_at_threshold_passes(self):
        report = compare_runs(
            _metrics(), _metrics(),
            _manifest(1000.0), _manifest(1100.0),
            threshold=0.10, min_ms=5.0,
        )
        assert report.passed

    def test_timing_slowdown_past_threshold_fails(self):
        report = compare_runs(
            _metrics(), _metrics(),
            _manifest(1000.0), _manifest(1200.0),
            threshold=0.10, min_ms=5.0,
        )
        assert [d.name for d in report.regressions] == ["total_wall_ms"]

    def test_min_ms_absorbs_tiny_absolute_slowdowns(self):
        # 3x slower but only 2 ms absolute: below min_ms, passes.
        report = compare_runs(
            _metrics(), _metrics(),
            _manifest(10.0, [("fig5", 1.0)]),
            _manifest(10.0, [("fig5", 3.0)]),
            threshold=0.10, min_ms=5.0,
        )
        assert report.passed

    def test_per_experiment_slowdown_fails(self):
        report = compare_runs(
            _metrics(), _metrics(),
            _manifest(100.0, [("fig7", 100.0)]),
            _manifest(100.0, [("fig7", 200.0)]),
            threshold=0.10, min_ms=5.0,
        )
        assert [d.name for d in report.regressions] == ["experiment:fig7"]


class TestGateSemantics:
    def test_non_cost_counters_never_fail(self):
        report = compare_runs(
            _metrics(**{"buildcache.hits": 10}),
            _metrics(**{"buildcache.hits": 1000}),
        )
        assert report.passed

    def test_cost_counter_classification(self):
        assert is_cost_counter("harness.result_cache.misses")
        assert is_cost_counter("kernel_builds.performed")
        assert is_cost_counter("kconfig.resolutions")
        assert not is_cost_counter("buildcache.hits")
        assert not is_cost_counter("boot.boots")

    def test_counters_missing_from_current_are_skipped(self):
        report = compare_runs(
            _metrics(**{"buildcache.misses": 5, "gone.misses": 1}),
            _metrics(**{"buildcache.misses": 5}),
        )
        assert report.passed
        assert [d.name for d in report.deltas] == ["buildcache.misses"]

    def test_no_timings_skips_manifests(self):
        report = compare_runs(
            _metrics(), _metrics(),
            _manifest(100.0), _manifest(900.0),
            timings=False,
        )
        assert report.passed and report.deltas == []

    def test_zero_baseline_growth_is_regression(self):
        report = compare_runs(
            _metrics(**{"buildcache.misses": 0}),
            _metrics(**{"buildcache.misses": 1}),
        )
        assert not report.passed


class TestCliEntrypoint:
    def _write_run(self, directory, counters, total_ms):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "metrics.json").write_text(
            json.dumps(_metrics(**counters))
        )
        (directory / "run_manifest.json").write_text(
            json.dumps(_manifest(total_ms))
        )

    def test_identical_runs_exit_zero(self, tmp_path, capsys):
        self._write_run(tmp_path / "a", {"buildcache.misses": 3}, 100.0)
        assert main([str(tmp_path / "a"), str(tmp_path / "a")]) == 0
        assert "0 regressed" in capsys.readouterr().out

    def test_injected_slowdown_exits_nonzero(self, tmp_path, capsys):
        self._write_run(tmp_path / "base", {"buildcache.misses": 3}, 100.0)
        self._write_run(tmp_path / "cur", {"buildcache.misses": 3}, 200.0)
        assert main([str(tmp_path / "base"), str(tmp_path / "cur")]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_no_timings_ignores_wall_clock(self, tmp_path):
        self._write_run(tmp_path / "base", {"buildcache.misses": 3}, 100.0)
        self._write_run(tmp_path / "cur", {"buildcache.misses": 3}, 200.0)
        assert main(
            [str(tmp_path / "base"), str(tmp_path / "cur"), "--no-timings"]
        ) == 0

    def test_metrics_file_paths_accepted(self, tmp_path):
        self._write_run(tmp_path / "a", {"buildcache.misses": 3}, 100.0)
        metrics_file = str(tmp_path / "a" / "metrics.json")
        assert main([metrics_file, metrics_file]) == 0

    def test_missing_input_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope"), str(tmp_path / "nope")]) == 2
        assert "cannot load" in capsys.readouterr().err
