"""Tests for the KML patch and patched musl libc."""

import pytest

from repro.kml.libc import LibcVariant, MuslLibc
from repro.kml.patch import KmlPatch, PatchError
from repro.syscall.cpu import EntryMechanism


class TestKmlPatch:
    def test_applies_to_linux_4_0(self):
        tree = KmlPatch().apply("4.0")
        assert "KERNEL_MODE_LINUX" in tree

    def test_does_not_apply_elsewhere(self):
        """Section 4: 'Linux 4.0 is the most recent available version'."""
        with pytest.raises(PatchError):
            KmlPatch().apply("4.1")

    def test_lupine_modification_elevates_everything(self):
        patch = KmlPatch(all_processes_kernel_mode=True)
        assert patch.runs_in_kernel_mode("/usr/bin/redis-server")
        assert patch.runs_in_kernel_mode("/bin/sh")

    def test_upstream_kml_uses_trusted_path(self):
        patch = KmlPatch(all_processes_kernel_mode=False)
        assert patch.runs_in_kernel_mode("/trusted/bin/redis-server")
        assert not patch.runs_in_kernel_mode("/usr/bin/redis-server")

    def test_kml_option_conflicts_with_paravirt(self):
        from repro.kconfig.resolver import Resolver

        tree = KmlPatch().apply("4.0")
        config = Resolver(tree).resolve_names(
            ["X86_64", "PARAVIRT", "KERNEL_MODE_LINUX"]
        )
        assert "KERNEL_MODE_LINUX" not in config  # demoted by !PARAVIRT
        config = Resolver(tree).resolve_names(["X86_64", "KERNEL_MODE_LINUX"])
        assert "KERNEL_MODE_LINUX" in config


class TestMuslLibc:
    def test_variants(self):
        assert MuslLibc(kml_patched=False).variant is LibcVariant.MUSL
        assert MuslLibc(kml_patched=True).variant is LibcVariant.MUSL_KML

    def test_patched_libc_on_kml_kernel_uses_call(self):
        libc = MuslLibc(kml_patched=True)
        assert libc.entry_mechanism(True) is EntryMechanism.KML_CALL

    def test_patched_libc_falls_back_without_kml_kernel(self):
        libc = MuslLibc(kml_patched=True)
        assert libc.entry_mechanism(False) is EntryMechanism.SYSCALL

    def test_unpatched_libc_always_syscall(self):
        libc = MuslLibc(kml_patched=False)
        assert libc.entry_mechanism(True) is EntryMechanism.SYSCALL

    def test_dynamic_binaries_need_no_recompilation(self):
        """Section 3.2: patched libc is simply loaded."""
        libc = MuslLibc(kml_patched=True)
        assert libc.can_run_binary(statically_linked=False)

    def test_static_binaries_must_be_recompiled(self):
        libc = MuslLibc(kml_patched=True)
        assert not libc.can_run_binary(statically_linked=True)
        assert libc.can_run_binary(
            statically_linked=True, recompiled_against_kml=True
        )
