"""Tests for the self-healing serving plane (``repro.traffic.supervisor``).

Covers the :class:`ResiliencePolicy` knobs, the :class:`CircuitBreaker`
state machine, each guest failure mode end-to-end (``guest.crash`` /
``guest.hang`` / ``guest.boot_fail`` through the real router +
supervisor), crash-loop quarantine, determinism of faulted runs, the
EventCore's contained-failure semantics, the request-conservation
invariant under hypothesis-driven fault schedules, and the fault-site
registry drift tool.
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.faults import FaultPlane, activated
from repro.faults.plane import FaultInjected
from repro.traffic import (
    DEFAULT_RESILIENCE,
    FIXED_POOL,
    SCALE_TO_ZERO,
    CircuitBreaker,
    ResiliencePolicy,
    ServeSpec,
    default_serving_schedule,
    diurnal_trace,
    poisson_trace,
    run_serving,
    run_serving_many,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: A small trace with enough arrivals for every failure mode to matter.
SMALL_TRACE = diurnal_trace(requests=400, mean_rps=500, period_s=1.6,
                            amplitude=1.0)


def _spec(policy=FIXED_POOL, trace=SMALL_TRACE, seed=9, **overrides):
    resilience = (DEFAULT_RESILIENCE.with_overrides(**overrides)
                  if overrides else DEFAULT_RESILIENCE)
    return ServeSpec(trace=trace, policy=policy, seed=seed,
                     resilience=resilience)


class TestResiliencePolicy:
    def test_defaults_are_valid_and_manifest_canonical(self):
        manifest = DEFAULT_RESILIENCE.to_manifest()
        assert manifest["name"] == "default"
        assert manifest["retry_budget"] == 2
        assert len(manifest) == 14

    def test_overrides(self):
        tweaked = DEFAULT_RESILIENCE.with_overrides(retry_budget=5,
                                                    watchdog_s=0.1)
        assert tweaked.retry_budget == 5
        assert tweaked.watchdog_s == 0.1
        assert tweaked.breaker_window == DEFAULT_RESILIENCE.breaker_window
        assert DEFAULT_RESILIENCE.retry_budget == 2  # frozen original

    @pytest.mark.parametrize("bad", [
        {"watchdog_s": 0.0},
        {"retry_budget": -1},
        {"restart_backoff_s": -0.1},
        {"backoff_multiplier": 0.5},
        {"crash_loop_threshold": 0},
        {"quarantine_s": 0.0},
        {"breaker_threshold": 0.0},
        {"breaker_threshold": 1.5},
        {"breaker_min_samples": 0},
        {"breaker_cooldown_s": 0.0},
        {"shed_queue_depth": 0},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ResiliencePolicy(**bad)


class TestCircuitBreaker:
    POLICY = ResiliencePolicy(breaker_window=8, breaker_min_samples=4,
                              breaker_threshold=0.5, breaker_cooldown_s=1.0)

    def test_closed_admits_and_trips_on_windowed_error_rate(self):
        breaker = CircuitBreaker(self.POLICY)
        assert breaker.state == "closed"
        assert breaker.admit(0.0)
        for _ in range(3):
            breaker.record(True, 0.0)
        assert breaker.state == "closed"  # below min_samples
        breaker.record(True, 10.0)
        assert breaker.state == "open"
        assert breaker.opens == 1
        assert not breaker.admit(10.0 + 0.5e9)  # mid-cooldown

    def test_half_open_probe_closes_or_reopens(self):
        breaker = CircuitBreaker(self.POLICY)
        for _ in range(4):
            breaker.record(True, 0.0)
        assert breaker.admit(2e9)  # past cooldown: the probe
        assert breaker.state == "half_open"
        assert not breaker.admit(2e9)  # only one probe in flight
        breaker.record(False, 2e9)
        assert breaker.state == "closed"
        # And the failing-probe path re-opens for another cooldown:
        # one trip from the window, one from the failed probe.
        for _ in range(4):
            breaker.record(True, 3e9)
        assert breaker.admit(3e9 + 1.5e9)
        breaker.record(True, 3e9 + 1.5e9)
        assert breaker.state == "open"
        assert breaker.opens == 3

    def test_successes_keep_it_closed(self):
        breaker = CircuitBreaker(self.POLICY)
        for _ in range(20):
            breaker.record(False, 0.0)
        breaker.record(True, 0.0)
        assert breaker.state == "closed"


class TestGuestFailureModes:
    def test_crash_fails_over_and_is_retried(self):
        plane = FaultPlane(seed=1)
        plane.configure("guest.crash", nth_calls=(5,), max_injections=1,
                        message="die once")
        with activated(plane):
            report = run_serving(_spec())
        assert report.guest_crashes == 1
        assert report.guests_failed == 1
        assert report.retries >= 1
        assert report.failed == 0  # the retry budget absorbed it
        assert report.served == SMALL_TRACE.requests
        assert report.arrivals == (report.served + report.failed
                                   + report.shed + report.dropped)

    def test_hang_is_watchdog_killed_and_stalls_the_tail(self):
        plane = FaultPlane(seed=1)
        plane.configure("guest.hang", nth_calls=(5,), max_injections=1)
        with activated(plane):
            report = run_serving(_spec())
        assert report.guest_hangs == 1
        assert report.watchdog_kills == 1
        assert report.retries >= 1
        assert report.failed == 0
        # The hung request fails over only after the 0.5 s watchdog, so
        # its retried latency carries the stall.
        assert report.latency_ms["max"] >= (
            DEFAULT_RESILIENCE.watchdog_s * 1e3
        )

    def test_boot_failure_is_healed_by_a_supervisor_restart(self):
        """One request, one corrupted image: the cold boot fails, the
        request retries into the backlog (retries never spawn), and the
        supervisor's backoff probe boots the replacement."""
        trace = poisson_trace(requests=1, mean_rps=100)
        plane = FaultPlane(seed=1)
        plane.configure("guest.boot_fail", nth_calls=(1,), max_injections=1)
        with activated(plane):
            report = run_serving(
                _spec(policy=SCALE_TO_ZERO, trace=trace)
            )
        assert report.boot_failures == 1
        assert report.restarts == 1
        assert report.retries == 1
        assert report.served == 1
        assert report.failed == 0
        # The served request waited out the restart backoff at least.
        assert report.latency_ms["max"] >= (
            DEFAULT_RESILIENCE.restart_backoff_s * 1e3
        )

    def test_retry_budget_exhaustion_fails_the_request(self):
        # Every attempt crashes mid-request, so the request itself is the
        # victim each time and its failure count advances past the budget.
        trace = poisson_trace(requests=1, mean_rps=100)
        plane = FaultPlane(seed=1)
        plane.configure("guest.crash", probability=1.0)
        with activated(plane):
            report = run_serving(
                _spec(policy=SCALE_TO_ZERO, trace=trace, retry_budget=1)
            )
        assert report.served == 0
        assert report.failed == 1
        assert report.failed_reasons.get("retries_exhausted") == 1
        assert report.error_rate == 1.0

    def test_persistent_boot_failure_converges_to_quarantine(self):
        # A boot-failed restart worker has no victims, so the backlogged
        # request cannot burn retries; the consecutive-failure streak
        # must quarantine the app instead of probing forever.
        trace = poisson_trace(requests=1, mean_rps=100)
        plane = FaultPlane(seed=1)
        plane.configure("guest.boot_fail", probability=1.0)
        with activated(plane):
            report = run_serving(
                _spec(policy=SCALE_TO_ZERO, trace=trace, retry_budget=1)
            )
        assert report.served == 0
        assert report.failed == 1
        assert report.quarantines >= 1
        assert report.error_rate == 1.0

    def test_crash_loop_quarantines_the_app(self):
        plane = FaultPlane(seed=1)
        plane.configure("guest.crash", probability=1.0)
        with activated(plane):
            report = run_serving(_spec(
                policy=SCALE_TO_ZERO,
                retry_budget=0,
                crash_loop_threshold=3,
                crash_loop_window_s=60.0,
                quarantine_s=60.0,
                breaker_min_samples=10_000,  # keep the breaker out of it
            ))
        assert report.quarantines >= 1
        assert report.shed_reasons.get("quarantine", 0) > 0
        assert report.served == 0
        assert report.arrivals == (report.served + report.failed
                                   + report.shed + report.dropped)

    def test_breaker_opens_under_sustained_failure(self):
        plane = FaultPlane(seed=1)
        plane.configure("guest.crash", probability=1.0)
        with activated(plane):
            report = run_serving(_spec(
                policy=SCALE_TO_ZERO,
                retry_budget=0,
                breaker_window=8,
                breaker_min_samples=4,
                breaker_threshold=0.5,
                breaker_cooldown_s=5.0,
                crash_loop_threshold=10_000,  # keep quarantine out of it
            ))
        assert report.breaker_opens >= 1
        assert report.shed_reasons.get("breaker", 0) > 0
        assert report.arrivals == (report.served + report.failed
                                   + report.shed + report.dropped)


class TestFaultedDeterminism:
    def test_same_schedule_byte_identical_digests(self):
        digests = []
        for _ in range(2):
            with activated(default_serving_schedule(77)):
                digests.append(run_serving(
                    _spec(policy=SCALE_TO_ZERO)
                ).manifest_digest)
        assert digests[0] == digests[1]

    def test_empty_plane_is_invisible(self):
        clean = run_serving(_spec()).manifest_digest
        with activated(FaultPlane(seed=123)):
            installed = run_serving(_spec()).manifest_digest
        assert installed == clean

    def test_jobs_sweep_matches_sequential(self):
        specs = [_spec(policy=SCALE_TO_ZERO), _spec(policy=FIXED_POOL)]
        with activated(default_serving_schedule(77)):
            sequential = [run_serving(s).manifest_digest for s in specs]
            fanned = [r.manifest_digest
                      for r in run_serving_many(specs, jobs=2)]
        assert fanned == sequential


class TestEventCoreContainment:
    def _core(self):
        from repro.simcore.eventcore import EventCore

        return EventCore()

    def test_injected_fault_kills_only_that_runner(self):
        core = self._core()
        seen = []
        core.on_failure = lambda name, error: seen.append((name, error))

        def doomed():
            with faults.fault_site("test.die"):
                pass
            yield None  # pragma: no cover -- dies before the first yield

        def survivor(clock):
            yield clock.now_ns + 100.0
            yield clock.now_ns + 100.0

        plane = FaultPlane(seed=1)
        plane.configure("test.die", probability=1.0)
        core.spawn("doomed", doomed())
        core.spawn("ok", survivor(core.clock_for("ok")))
        with activated(plane):
            core.run()
        assert core.stats.guest_failures == 1
        assert [name for name, _ in core.failures] == ["doomed"]
        assert isinstance(core.failures[0][1], FaultInjected)
        assert seen == core.failures
        # The survivor ran to completion on its own timeline.
        assert core.clock_for("ok").now_ns == 200.0

    def test_non_injected_exceptions_still_propagate(self):
        core = self._core()

        def broken():
            raise ValueError("a simulator bug, not a fault")
            yield None  # pragma: no cover

        core.spawn("broken", broken())
        with pytest.raises(ValueError, match="simulator bug"):
            core.run()
        assert core.stats.guest_failures == 0


class TestRequestConservation:
    @settings(max_examples=15, deadline=None)
    @given(
        requests=st.integers(1, 60),
        seed=st.integers(0, 99),
        fault_seed=st.integers(0, 99),
        policy=st.sampled_from([SCALE_TO_ZERO, FIXED_POOL]),
    )
    def test_arrivals_settle_exactly_once(self, requests, seed, fault_seed,
                                          policy):
        """arrivals == completed + failed + shed + dropped, exactly,
        under arbitrary fault schedules (run_serving also asserts this
        internally via Router.check_conservation)."""
        trace = poisson_trace(requests=requests, mean_rps=2000)
        plane = FaultPlane(seed=fault_seed)
        plane.configure("guest.crash", probability=0.10)
        plane.configure("guest.hang", probability=0.05)
        plane.configure("guest.boot_fail", probability=0.15)
        plane.configure("traffic.arrival", probability=0.02)
        with activated(plane):
            report = run_serving(ServeSpec(
                trace=trace, policy=policy, seed=seed,
                resilience=DEFAULT_RESILIENCE.with_overrides(
                    watchdog_s=0.05, restart_backoff_s=0.01,
                ),
            ))
        assert report.arrivals == trace.requests
        assert report.arrivals == (report.served + report.failed
                                   + report.shed + report.dropped)


class TestFaultSiteDriftTool:
    SCRIPT = REPO_ROOT / "tools" / "check_fault_sites.py"

    def _load(self):
        spec = importlib.util.spec_from_file_location("check_fault_sites",
                                                      self.SCRIPT)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_repo_has_no_drift(self):
        completed = subprocess.run(
            [sys.executable, str(self.SCRIPT)],
            capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert "ok" in completed.stdout

    def test_wired_sites_include_the_serving_sites(self):
        module = self._load()
        wired = module.wired_sites()
        for site in ("guest.crash", "guest.hang", "guest.boot_fail",
                     "traffic.arrival", "eventcore.dispatch"):
            assert site in wired

    def test_detects_drift_in_both_directions(self, tmp_path):
        module = self._load()
        doc = tmp_path / "RESILIENCE.md"
        # A table documenting one real site and one phantom site.
        doc.write_text(
            "| Site | Where |\n|---|---|\n"
            "| `guest.crash` | somewhere |\n"
            "| `phantom.site` | nowhere |\n",
            encoding="utf-8",
        )
        documented = module.documented_sites(doc)
        assert documented.keys() == {"guest.crash", "phantom.site"}
        wired = set(module.wired_sites())
        assert "phantom.site" not in wired  # would be flagged [unwired]
        assert wired - documented.keys()  # would be flagged [undocumented]
