"""Trace-driven specialization: recording, derivation, determinism.

The Loupe loop (docs/SPECIALIZATION.md): ``UsageTrace`` recorders hook
the syscall engine (including the closed-form ``invoke_batch`` fold),
``repro.kconfig.derive`` turns an observation into a minimal config
warm-started from the ``lupine-base`` fixpoint, and the derived variant
family consumes it.  The properties checked here are the acceptance
criteria of the ``bench-derive`` gate: coverage of recorded usage,
bounded option ratio vs curated, and byte-identical digests on rerun.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.registry import TOP20_APPS, get_app
from repro.core.specialization import (
    app_config,
    app_option_requirements,
    derived_app_config,
    derived_option_requirements,
)
from repro.core.tracing import usage_trace_for_app
from repro.kconfig.configs import lupine_base_config, microvm_config
from repro.kconfig.database import build_linux_tree
from repro.kconfig.derive import (
    config_digest,
    covers_usage,
    derivation_report,
    derive_config,
    usage_option_requirements,
)
from repro.kconfig.minimize import minimize_config
from repro.kconfig.resolver import Resolver
from repro.syscall.dispatch import SyscallEngine, SyscallNotImplemented
from repro.syscall.strace import (
    format_trace,
    parse_trace,
    parse_trace_events,
    roundtrip,
)
from repro.syscall.table import SYSCALLS, option_for_syscall
from repro.syscall.usage import UsageTrace

_TREE = build_linux_tree()
_MICROVM = microvm_config(_TREE)
_BASE = lupine_base_config(_TREE)

#: Syscalls gated behind a config option (Table 1) plus ungated ones --
#: the sampling universe for the random-workload property tests.
_GATED = sorted(n for n in SYSCALLS if option_for_syscall(n) is not None)
_UNGATED = sorted(n for n in SYSCALLS if option_for_syscall(n) is None)

_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _provisioned_engine() -> SyscallEngine:
    engine = SyscallEngine.for_config(_MICROVM.enabled)
    engine.usage = UsageTrace(owner="test")
    return engine


class TestUsageRecording:
    def test_invoke_records_counts_and_option(self):
        engine = _provisioned_engine()
        engine.invoke("read")
        engine.invoke("read")
        engine.invoke("epoll_wait")
        usage = engine.usage
        assert usage.syscall_counts["read"] == 2
        assert usage.syscall_counts["epoll_wait"] == 1
        assert "EPOLL" in usage.options
        assert usage.call_count == 3

    def test_miss_records_and_still_raises(self):
        engine = SyscallEngine.for_config(_BASE.enabled)
        engine.usage = UsageTrace(owner="test")
        with pytest.raises(SyscallNotImplemented):
            engine.invoke("epoll_wait")
        assert engine.usage.misses.get("epoll_wait") == "EPOLL"
        assert "EPOLL" in engine.usage.missing_options
        # The failed call never ran: it is a miss, not usage.
        assert "epoll_wait" not in engine.usage.syscalls

    def test_supports_probe_is_not_usage(self):
        engine = _provisioned_engine()
        assert engine.supports("read")
        assert not engine.usage

    def test_batch_fold_matches_stepped_loop(self):
        names = ["read", "write", "epoll_wait", "futex"]
        stepped = _provisioned_engine()
        for _ in range(7):
            for name in names:
                stepped.invoke(name, work_ns=100.0)
        batched = _provisioned_engine()
        batched.invoke_batch(names, 100.0, repeats=7)
        assert batched.usage.as_dict() == stepped.usage.as_dict()

    def test_batch_zero_repeats_records_nothing(self):
        engine = _provisioned_engine()
        engine.invoke_batch(["read", "write"], 100.0, repeats=0)
        assert not engine.usage

    def test_merge_is_order_insensitive(self):
        a = UsageTrace(owner="a")
        a.record("read", None, 3)
        a.record_facility("socket:inet")
        b = UsageTrace(owner="b")
        b.record("read", None, 1)
        b.record("epoll_wait", "EPOLL", 2)
        b.record_miss("timerfd_create", "TIMERFD")
        ab = UsageTrace.merged([a, b], owner="m")
        ba = UsageTrace.merged([b, a], owner="m")
        assert ab.as_dict() == ba.as_dict()
        assert ab.digest() == ba.digest()
        assert ab.syscall_counts["read"] == 4


class TestStraceRoundTrip:
    def test_format_parse_format_with_misses(self):
        trace = UsageTrace(owner="t")
        trace.record("read", None, 2)
        trace.record("epoll_wait", "EPOLL", 1)
        trace.record_miss("timerfd_create", "TIMERFD")
        text = trace.to_strace()
        back = UsageTrace.from_strace(text, owner="t")
        assert back.syscalls == trace.syscalls
        assert back.missing_options == trace.missing_options
        # format -> parse -> format is a fixpoint.
        assert back.to_strace() == text

    def test_format_trace_emits_question_mark_for_unknown_return(self):
        line = format_trace([("read", None)]).strip()
        assert line.endswith("= ?")
        assert parse_trace_events(line) == [("read", None)]

    def test_format_trace_rejects_unknown_syscall(self):
        with pytest.raises(ValueError):
            format_trace(["not_a_syscall"])

    def test_parse_trace_events_preserves_negative_returns(self):
        text = format_trace([("openat", 3), ("timerfd_create", -38)])
        events = parse_trace_events(text)
        assert events == [("openat", 3), ("timerfd_create", -38)]
        # The legacy name-only view stays available.
        assert parse_trace(text) == ["openat", "timerfd_create"]

    def test_roundtrip_accepts_both_shapes(self):
        assert roundtrip(["read", "write"])
        assert roundtrip([("read", 0), ("timerfd_create", -38)])


@st.composite
def _workloads(draw):
    """A random workload mix: gated + ungated syscalls with repeats."""
    gated = draw(st.sets(st.sampled_from(_GATED), max_size=10))
    ungated = draw(st.sets(st.sampled_from(_UNGATED), max_size=10))
    repeats = draw(st.integers(min_value=1, max_value=5))
    return sorted(gated | ungated), repeats


class TestDerivationProperties:
    @_settings
    @given(_workloads())
    def test_derived_config_covers_any_recorded_mix(self, workload):
        names, repeats = workload
        engine = _provisioned_engine()
        for name in names:
            engine.invoke(name)
        if names:
            engine.invoke_batch(names, 100.0, repeats=repeats)
        config = derive_config(engine.usage, _TREE)
        assert covers_usage(config, engine.usage)
        # Every recorded syscall actually dispatches on the derived kernel.
        derived_engine = SyscallEngine.for_config(config.enabled)
        for name in engine.usage.syscalls:
            derived_engine.invoke(name)

    @_settings
    @given(_workloads())
    def test_derivation_is_deterministic(self, workload):
        names, repeats = workload
        digests = []
        for _ in range(2):
            engine = _provisioned_engine()
            for name in names:
                engine.invoke(name)
            if names:
                engine.invoke_batch(names, 100.0, repeats=repeats)
            digests.append(
                (engine.usage.digest(),
                 config_digest(derive_config(engine.usage, _TREE)))
            )
        assert digests[0] == digests[1]

    def test_misses_force_their_option_into_the_derivation(self):
        engine = SyscallEngine.for_config(_BASE.enabled)
        engine.usage = UsageTrace(owner="test")
        with pytest.raises(SyscallNotImplemented):
            engine.invoke("epoll_wait")
        requirements = usage_option_requirements(engine.usage)
        assert "EPOLL" in requirements
        config = derive_config(engine.usage, _TREE)
        assert "EPOLL" in config.enabled


class TestMinimizeFixpoint:
    @pytest.mark.parametrize("app_name", ["redis", "php", "nginx"])
    def test_minimize_resolve_minimize_is_a_fixpoint(self, app_name):
        config = derive_config(
            usage_trace_for_app(get_app(app_name)), _TREE
        )
        request = minimize_config(config)
        resolved = Resolver(_TREE).resolve_names(sorted(request))
        assert resolved.enabled == config.enabled
        assert minimize_config(resolved) == request


class TestDerivedFamily:
    def test_derived_requirements_superset_of_curated_for_top20(self):
        for app in TOP20_APPS:
            curated = app_option_requirements(app)
            derived = derived_option_requirements(app)
            assert curated <= derived, app.name

    def test_php_gains_exactly_epoll_and_inet(self):
        app = get_app("php")
        assert app_option_requirements(app) == frozenset()
        assert derived_option_requirements(app) == frozenset(
            {"EPOLL", "INET"}
        )

    def test_redis_derived_config_content_equals_curated(self):
        app = get_app("redis")
        derived = derived_app_config(app, _TREE)
        curated = app_config(app, _TREE)
        assert derived.enabled == curated.enabled
        assert config_digest(derived) == config_digest(curated)

    def test_derivation_report_meets_bench_acceptance(self):
        from repro.core.bench import MAX_OPTION_RATIO

        for app_name in ("redis", "php"):
            app = get_app(app_name)
            report = derivation_report(usage_trace_for_app(app), _TREE)
            assert report.covers
            curated = len(app_config(app, _TREE).enabled)
            assert report.option_count <= MAX_OPTION_RATIO * curated


class TestServingRecording:
    def _spec(self, record_usage):
        from repro.traffic.arrivals import poisson_trace
        from repro.traffic.policy import named_policy
        from repro.traffic.serve import ServeSpec

        return ServeSpec(
            trace=poisson_trace(requests=200, mean_rps=1000),
            policy=named_policy("scale-to-zero"),
            seed=7,
            record_usage=record_usage,
        )

    def test_recording_never_perturbs_the_served_manifest(self):
        from repro.traffic.serve import run_serving

        plain = run_serving(self._spec(False)).manifest()
        recorded = run_serving(self._spec(True)).manifest()
        assert "usage" not in plain
        assert "usage" in recorded
        # Everything served is identical -- recording is observation,
        # not perturbation -- so pinned digests never move.
        assert {k: v for k, v in recorded.items() if k != "usage"} == plain

    def test_recorded_fleet_usage_derives_serving_options(self):
        from repro.traffic.serve import run_serving

        report = run_serving(self._spec(True))
        assert report.usage_by_app
        for app_name, trace in report.usage_by_app.items():
            assert trace.call_count > 0, app_name
            assert "socket:inet" in trace.facilities
            assert "INET" in usage_option_requirements(trace)
