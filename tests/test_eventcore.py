"""Tests for the fleet-wide event core and the global fleet loop.

Covers the :class:`~repro.simcore.eventcore.EventCore` dispatch loop
itself (virtual-time ordering, closed-form fast-forward of idle guests,
stats), the chunked-serving parity that makes interleaving bit-exact,
and the headline differential property: ``Fleet.simulate`` under the
global event loop reproduces the sequential oracle's manifest digest
byte-for-byte, at acceptance scale, across seeds and policies.
"""

import pytest

from repro.simcore.eventcore import (
    PARK,
    EventCore,
    EventCoreError,
    drain_deadlines,
)


def _run_to_return(generator):
    """Drain *generator*, returning its ``StopIteration.value``."""
    while True:
        try:
            next(generator)
        except StopIteration as stop:
            return stop.value


class TestEventCore:
    def test_clock_for_is_create_on_first_use(self):
        core = EventCore()
        clock = core.clock_for("g")
        assert core.clock_for("g") is clock
        assert clock.now_ns == 0.0

    def test_clock_for_honors_start_ns(self):
        core = EventCore(start_ns=100.0)
        assert core.clock_for("g").now_ns == 100.0

    def test_duplicate_spawn_rejected(self):
        core = EventCore()

        def program():
            yield None

        core.spawn("g", program())
        with pytest.raises(EventCoreError):
            core.spawn("g", program())

    def test_empty_core_runs_to_completion(self):
        stats = EventCore().run()
        assert stats.events_dispatched == 0
        assert stats.guests == 0

    def test_guests_interleave_in_virtual_time_order(self):
        core = EventCore()
        order = []

        def program(name, step, stages):
            clock = core.clock_for(name)
            for _ in range(stages):
                order.append((name, clock.now_ns))
                clock.advance(step)
                yield None

        core.spawn("slow", program("slow", 10.0, 2))
        core.spawn("fast", program("fast", 3.0, 4))
        core.run()
        # The runnable guest with the smallest virtual instant always
        # dispatches next; ties (both at 0) break by spawn order.
        assert order == [
            ("slow", 0.0),
            ("fast", 0.0),
            ("fast", 3.0),
            ("fast", 6.0),
            ("fast", 9.0),
            ("slow", 10.0),
        ]

    def test_idle_guest_fast_forwarded_in_closed_form(self):
        core = EventCore()
        fired = []

        def program():
            clock = core.clock_for("g")
            clock.call_after(50.0, lambda: fired.append(clock.now_ns))
            yield 50.0
            # The core landed the clock exactly on the parked deadline
            # (one advance_to, which fired the due event on the way).
            assert clock.now_ns == 50.0

        core.spawn("g", program())
        stats = core.run()
        assert fired == [50.0]
        assert stats.guests_fast_forwarded == 1
        assert stats.events_dispatched == 2  # initial stage + wake-up

    def test_yield_none_means_runnable_now(self):
        core = EventCore()

        def program():
            clock = core.clock_for("g")
            clock.advance(7.0)
            yield None
            assert clock.now_ns == 7.0  # no fast-forward happened

        core.spawn("g", program())
        stats = core.run()
        assert stats.guests_fast_forwarded == 0

    def test_yielding_behind_own_clock_raises(self):
        core = EventCore()

        def program():
            clock = core.clock_for("g")
            clock.advance(100.0)
            yield 10.0  # time reversal: parked behind its own clock

        core.spawn("g", program())
        with pytest.raises(EventCoreError):
            core.run()

    def test_drain_deadlines_parks_on_each_pending_deadline(self):
        core = EventCore()
        fired = []

        def program():
            clock = core.clock_for("g")
            clock.call_after(10.0, lambda: fired.append("a"))
            clock.call_after(30.0, lambda: fired.append("b"))
            yield from drain_deadlines(clock)

        core.spawn("g", program())
        stats = core.run()
        assert fired == ["a", "b"]
        assert core.clock_for("g").now_ns == 30.0
        assert stats.guests_fast_forwarded == 2

    def test_drain_deadlines_skips_cancelled(self):
        core = EventCore()
        fired = []

        def program():
            clock = core.clock_for("g")
            doomed = clock.call_after(10.0, lambda: fired.append("doomed"))
            clock.call_after(20.0, lambda: fired.append("kept"))
            doomed.cancel()
            yield from drain_deadlines(clock)

        core.spawn("g", program())
        core.run()
        assert fired == ["kept"]

    def test_heap_high_water_tracks_registered_guests(self):
        core = EventCore()

        def program():
            yield None

        for index in range(5):
            core.spawn(f"g{index}", program())
        stats = core.run()
        assert stats.heap_high_water == 5
        assert stats.guests == 5

    def test_stats_published_to_metrics(self):
        from repro.observe import METRICS

        dispatched = METRICS.counter("eventcore.events_dispatched")
        forwarded = METRICS.counter("eventcore.guests_fast_forwarded")
        before = (dispatched.value, forwarded.value)

        core = EventCore()

        def program():
            clock = core.clock_for("g")
            clock.call_after(5.0, lambda: None)
            yield 5.0

        core.spawn("g", program())
        stats = core.run()
        assert dispatched.value - before[0] == stats.events_dispatched
        assert forwarded.value - before[1] == stats.guests_fast_forwarded
        assert stats.to_dict()["heap_high_water"] == stats.heap_high_water


class TestParkAndKick:
    """The serving extensions: PARK/unpark, kicks, and timed spawns."""

    def test_parked_runner_survives_run_and_resumes_on_kick(self):
        core = EventCore()
        log = []

        def program():
            log.append("before")
            yield PARK
            log.append("after")

        core.spawn("g", program())
        core.run()
        assert log == ["before"]  # quiescent with the runner parked
        assert core.is_parked("g")
        core.kick("g", 40.0)
        core.run()
        assert log == ["before", "after"]
        assert not core.is_parked("g")
        assert core.clock_for("g").now_ns == 40.0

    def test_unpark_requires_a_parked_runner(self):
        core = EventCore()

        def program():
            yield None

        core.spawn("g", program())
        with pytest.raises(EventCoreError):
            core.unpark("g")
        with pytest.raises(EventCoreError):
            core.unpark("missing")

    def test_kick_preempts_a_pending_deadline(self):
        core = EventCore()
        woken_at = []

        def program():
            clock = core.clock_for("g")
            yield clock.now_ns + 100.0  # long idle timeout
            woken_at.append(clock.now_ns)

        def traffic():
            yield 25.0  # traffic lands before the timeout
            core.kick("g", 25.0)

        core.spawn("g", program())
        core.spawn("t", traffic())
        stats = core.run()
        # The kick's generation bump invalidated the 100.0 heap entry:
        # the runner wakes once, at the kick instant, and the stale
        # entry is skipped without counting as a dispatch.
        assert woken_at == [25.0]
        assert stats.kicks == 1

    def test_kick_never_moves_a_clock_backwards(self):
        core = EventCore()

        def program():
            clock = core.clock_for("g")
            clock.advance(50.0)
            yield PARK
            assert clock.now_ns == 50.0

        core.spawn("g", program())
        core.run()
        core.kick("g", 10.0)  # behind the runner's own now: clamped
        core.run()

    def test_spawn_start_ns_defers_first_dispatch(self):
        core = EventCore()
        instants = []

        def early():
            clock = core.clock_for("early")
            instants.append(("early", clock.now_ns))
            clock.advance(5.0)
            yield None

        def late():
            instants.append(("late", core.clock_for("late").now_ns))
            yield None

        core.spawn("late", late(), start_ns=30.0)
        core.spawn("early", early())
        core.run()
        # The deferred runner dispatches at its start instant, after the
        # immediate one, with its clock fast-forwarded there.
        assert instants == [("early", 0.0), ("late", 30.0)]

    def test_park_and_kick_stats_published_as_deltas(self):
        from repro.observe import METRICS

        parks = METRICS.counter("eventcore.parks")
        kicks = METRICS.counter("eventcore.kicks")
        before = (parks.value, kicks.value)
        core = EventCore()

        def program():
            yield PARK
            yield PARK

        core.spawn("g", program())
        core.run()           # first park published here...
        core.kick("g", 1.0)
        core.run()           # ...second park here; deltas must not recount
        assert parks.value - before[0] == 2
        assert kicks.value - before[1] == 1
        assert core.stats.parks == 2
        assert core.stats.kicks == 1

    def test_resumed_run_is_quiescence_not_termination(self):
        core = EventCore()
        served = []

        def worker():
            while True:
                yield PARK
                if inbox:
                    served.append(inbox.pop())

        inbox = []
        core.spawn("w", worker())
        core.run()
        for item, at in ((1, 10.0), (2, 20.0)):
            inbox.append(item)
            core.kick("w", at)
            core.run()
        assert served == [1, 2]


class TestFleetEdgeCases:
    def test_zero_guest_fleet_is_empty_but_well_formed(self):
        from repro.core.orchestrator import Fleet, KernelPolicy

        simulation = Fleet.simulate(0, policy=KernelPolicy.GENERAL, seed=1)
        manifest = simulation.manifest()
        assert manifest["count"] == 0
        assert manifest["guests"] == []
        assert simulation.manifest_digest  # digestable, not degenerate
        assert simulation.distinct_kernels == 0

    def test_negative_fleet_size_rejected(self):
        from repro.core.orchestrator import Fleet

        with pytest.raises(ValueError, match="negative"):
            Fleet.simulate(-1)

    def test_duplicate_guest_names_rejected_up_front(self):
        from repro.core.orchestrator import Fleet
        from repro.simcore.guest import GuestSpec

        spec = GuestSpec(name="twin", variant=None, app="redis")
        with pytest.raises(ValueError, match="duplicate guest name"):
            Fleet._validate_specs([spec, spec])


class TestServeChunksParity:
    """Chunked serving is the bit-exactness unit the global loop rests on."""

    def _guest(self):
        from repro.core.variants import Variant
        from repro.simcore.guest import variant_guest

        return variant_guest(Variant.LUPINE_NOKML, app="redis")

    def test_serve_chunks_bit_equal_to_serve(self):
        from repro.workloads.redis import REDIS_GET

        monolithic = self._guest()
        chunked = self._guest()
        rps = monolithic.serve(REDIS_GET, 32)
        chunked_rps = _run_to_return(
            chunked.serve_chunks(REDIS_GET, 32, chunk_size=5)
        )
        # invoke_batch folds element-wise over the engine accumulator, so
        # any chunking replays the identical float additions: same rps,
        # same final clock, to the bit.
        assert chunked_rps == rps
        assert chunked.clock.now_ns == monolithic.clock.now_ns
        assert chunked.requests_served == monolithic.requests_served

    def test_chunk_size_does_not_matter(self):
        from repro.workloads.redis import REDIS_GET

        rates = set()
        for chunk_size in (1, 3, 8, 32):
            guest = self._guest()
            rates.add(_run_to_return(
                guest.serve_chunks(REDIS_GET, 32, chunk_size=chunk_size)
            ))
        assert len(rates) == 1

    def test_yields_carry_monotone_virtual_instants(self):
        from repro.workloads.redis import REDIS_GET

        guest = self._guest()
        instants = list(guest.serve_chunks(REDIS_GET, 24, chunk_size=8))
        assert len(instants) == 3
        assert instants == sorted(instants)
        assert instants[-1] == guest.clock.now_ns

    def test_rejects_bad_chunk_size(self):
        from repro.workloads.redis import REDIS_GET

        with pytest.raises(ValueError):
            next(self._guest().serve_chunks(REDIS_GET, 8, chunk_size=0))

    def test_shutdown_drains_pending_deadlines(self):
        guest = self._guest()
        fired = []
        guest.clock.call_after(5e9, lambda: fired.append(guest.clock.now_ns))
        guest.shutdown()
        assert fired == [5e9]
        assert guest.uptime_ns == 5e9


class TestFleetGlobalLoop:
    def test_manifest_reports_build_count(self):
        from repro.core.orchestrator import Fleet, KernelPolicy

        simulation = Fleet.simulate(20, policy=KernelPolicy.GENERAL, seed=5)
        assert simulation.manifest()["build_count"] == simulation.build_count
        # GENERAL: the whole fleet shares one kernel, built exactly once
        # through the orchestrator's memo.
        assert simulation.build_count == 1
        assert simulation.build_count == simulation.distinct_kernels

    def test_build_count_matches_distinct_kernels_per_app(self):
        from repro.core.orchestrator import Fleet, KernelPolicy

        simulation = Fleet.simulate(60, policy=KernelPolicy.PER_APP, seed=5)
        assert simulation.build_count == simulation.distinct_kernels > 1

    def test_global_loop_populates_eventcore_stats(self):
        from repro.core.orchestrator import Fleet, KernelPolicy

        sequential = Fleet.simulate(30, policy=KernelPolicy.GENERAL, seed=9)
        interleaved = Fleet.simulate(
            30, policy=KernelPolicy.GENERAL, seed=9, global_loop=True
        )
        assert sequential.eventcore_stats is None
        stats = interleaved.eventcore_stats
        assert stats is not None
        assert stats.guests == 30
        assert stats.events_dispatched >= 30
        assert stats.heap_high_water >= 30

    def test_global_loop_small_fleet_matches_oracle(self):
        from repro.core.orchestrator import Fleet, KernelPolicy

        sequential = Fleet.simulate(50, policy=KernelPolicy.PER_APP, seed=13)
        interleaved = Fleet.simulate(
            50, policy=KernelPolicy.PER_APP, seed=13, global_loop=True
        )
        # Stats live outside the manifest, so the whole document -- not
        # just the digest -- is execution-strategy-independent.
        assert interleaved.manifest() == sequential.manifest()
        assert interleaved.manifest_digest == sequential.manifest_digest

    @pytest.mark.parametrize("policy_name,seed", [
        ("GENERAL", 2020),
        ("GENERAL", 77),
        ("PER_APP", 2020),
        ("PER_APP", 77),
    ])
    def test_global_loop_matches_oracle_at_scale(self, policy_name, seed):
        """The acceptance criterion: byte-identical manifests at 1000
        guests, two seeds x two policies, global loop vs sequential."""
        from repro.core.orchestrator import Fleet, KernelPolicy

        policy = KernelPolicy[policy_name]
        sequential = Fleet.simulate(1000, policy=policy, seed=seed)
        interleaved = Fleet.simulate(
            1000, policy=policy, seed=seed, global_loop=True
        )
        assert interleaved.manifest_digest == sequential.manifest_digest
