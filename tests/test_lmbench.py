"""Tests for the lmbench micro-benchmark suite."""

import pytest

from repro.syscall import lmbench
from repro.syscall.dispatch import SyscallEngine
from repro.syscall.cpu import EntryMechanism


def _engine(options=("EPOLL",), entry=EntryMechanism.SYSCALL):
    return SyscallEngine.for_config(options, entry=entry)


class TestLatencies:
    def test_null_is_cheapest(self):
        engine = _engine()
        null = lmbench.null_latency_us(_engine())
        read = lmbench.read_latency_us(_engine())
        write = lmbench.write_latency_us(_engine())
        assert null < write <= read

    def test_values_in_sub_microsecond_range(self):
        assert 0.01 < lmbench.null_latency_us(_engine()) < 0.1

    def test_open_close_more_expensive_than_stat(self):
        engine = _engine()
        assert lmbench.open_close_latency_us(engine) > (
            lmbench.stat_latency_us(engine)
        )

    def test_fork_exec_sh_ordering(self):
        """Table 5 ordering: fork < exec < sh."""
        engine = _engine()
        fork = lmbench.fork_latency_us(engine)
        execp = lmbench.exec_latency_us(engine)
        sh = lmbench.sh_latency_us(engine)
        assert fork < execp < sh


class TestContextSwitchMatrix:
    def test_larger_working_sets_cost_more(self):
        engine = _engine()
        assert lmbench.context_switch_us(engine, 2, 64) > (
            lmbench.context_switch_us(engine, 2, 0)
        )

    def test_more_processes_cost_more(self):
        engine = _engine()
        assert lmbench.context_switch_us(engine, 16, 16) > (
            lmbench.context_switch_us(engine, 2, 16)
        )

    def test_requires_two_processes(self):
        with pytest.raises(ValueError):
            lmbench.context_switch_us(_engine(), 1, 0)


class TestKmlAmortization:
    def test_improvement_declines_monotonically(self):
        points = []
        for iterations in (0, 40, 80, 160):
            kml = SyscallEngine.for_config((), entry=EntryMechanism.KML_CALL)
            nokml = SyscallEngine.for_config((), entry=EntryMechanism.SYSCALL)
            points.append(lmbench.kml_improvement(kml, nokml, iterations))
        assert points == sorted(points, reverse=True)

    def test_paper_endpoints(self):
        """~40% at zero iterations, <5% at 160 (Figure 10)."""
        kml = SyscallEngine.for_config((), entry=EntryMechanism.KML_CALL)
        nokml = SyscallEngine.for_config((), entry=EntryMechanism.SYSCALL)
        at_zero = lmbench.kml_improvement(kml, nokml, 0)
        assert 0.35 <= at_zero <= 0.45
        kml.reset_clock(), nokml.reset_clock()
        at_160 = lmbench.kml_improvement(kml, nokml, 160)
        assert at_160 < 0.05


class TestSuite:
    def test_full_suite_has_all_table5_rows(self):
        report = lmbench.run_suite(_engine(), "test", net_stack_ns=700)
        for row in ("null call", "stat", "open clos", "fork proc",
                    "2p/0K ctxsw", "16p/64K ctxsw", "Pipe", "AF UNIX",
                    "UDP", "TCP", "TCP conn", "0K Create", "Mmap Latency",
                    "Page Fault"):
            assert row in report.latencies_us
        for row in ("Pipe", "TCP", "File reread", "Mem read", "Mem write"):
            assert row in report.bandwidths_mb_s

    def test_row_accessor(self):
        report = lmbench.run_suite(_engine(), "test", net_stack_ns=700)
        assert report.row("null call") == report.latencies_us["null call"]
        assert report.row("Mem read") == report.bandwidths_mb_s["Mem read"]

    def test_bandwidths_positive_and_sane(self):
        report = lmbench.run_suite(_engine(), "test", net_stack_ns=700)
        for name, value in report.bandwidths_mb_s.items():
            assert 500 < value < 30000, name
