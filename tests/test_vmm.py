"""Tests for the monitor models."""

import pytest

from repro.vmm.monitor import (
    DeviceKind,
    MonitorError,
    firecracker,
    qemu,
    solo5_hvt,
    uhyve,
)


class TestMonitorCatalogue:
    def test_unikernel_monitors_are_leanest(self):
        monitors = {m.name: m for m in (firecracker(), qemu(), solo5_hvt(),
                                        uhyve())}
        assert monitors["solo5-hvt"].setup_ms < monitors["firecracker"].setup_ms
        assert monitors["uhyve"].setup_ms < monitors["firecracker"].setup_ms
        assert monitors["firecracker"].setup_ms < monitors["qemu"].setup_ms

    def test_qemu_is_the_complexity_outlier(self):
        assert qemu().loc_estimate > 20 * firecracker().loc_estimate

    def test_firecracker_has_no_pci_devices(self):
        devices = firecracker().devices
        assert DeviceKind.VIRTIO_PCI not in devices
        assert DeviceKind.VIRTIO_MMIO_BLK in devices

    def test_unikernel_monitors_single_vcpu(self):
        assert solo5_hvt().max_vcpus == 1
        assert uhyve().max_vcpus == 1


class TestGuestCompatibility:
    def test_lupine_runs_on_firecracker(self, nokml_build):
        firecracker().check_linux_guest(nokml_build.image)  # must not raise

    def test_microvm_runs_on_firecracker(self, microvm_build):
        firecracker().check_linux_guest(microvm_build.image)

    def test_guest_without_virtio_rejected(self, tree):
        from repro.kbuild.builder import KernelBuilder
        from repro.kconfig.database import base_option_names
        from repro.kconfig.resolver import Resolver

        names = [n for n in base_option_names()
                 if n not in ("VIRTIO", "VIRTIO_BLK", "VIRTIO_MMIO")]
        config = Resolver(tree).resolve_names(names, name="no-virtio")
        image = KernelBuilder().build(config)
        with pytest.raises(MonitorError, match="block device"):
            firecracker().check_linux_guest(image)

    def test_qemu_accepts_ide_guests(self, microvm_build):
        # microVM config keeps ATA (classified hw, still in the 833).
        qemu().check_linux_guest(microvm_build.image)
