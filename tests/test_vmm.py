"""Tests for the monitor models."""

import pytest

from repro.vmm.monitor import (
    DeviceKind,
    MonitorError,
    firecracker,
    qemu,
    solo5_hvt,
    uhyve,
)


class TestMonitorCatalogue:
    def test_unikernel_monitors_are_leanest(self):
        monitors = {m.name: m for m in (firecracker(), qemu(), solo5_hvt(),
                                        uhyve())}
        assert monitors["solo5-hvt"].setup_ms < monitors["firecracker"].setup_ms
        assert monitors["uhyve"].setup_ms < monitors["firecracker"].setup_ms
        assert monitors["firecracker"].setup_ms < monitors["qemu"].setup_ms

    def test_qemu_is_the_complexity_outlier(self):
        assert qemu().loc_estimate > 20 * firecracker().loc_estimate

    def test_firecracker_has_no_pci_devices(self):
        devices = firecracker().devices
        assert DeviceKind.VIRTIO_PCI not in devices
        assert DeviceKind.VIRTIO_MMIO_BLK in devices

    def test_unikernel_monitors_single_vcpu(self):
        assert solo5_hvt().max_vcpus == 1
        assert uhyve().max_vcpus == 1


class TestGuestCompatibility:
    def test_lupine_runs_on_firecracker(self, nokml_build):
        firecracker().check_linux_guest(nokml_build.image)  # must not raise

    def test_microvm_runs_on_firecracker(self, microvm_build):
        firecracker().check_linux_guest(microvm_build.image)

    def test_guest_without_virtio_rejected(self, tree):
        from repro.kbuild.builder import KernelBuilder
        from repro.kconfig.database import base_option_names
        from repro.kconfig.resolver import Resolver

        names = [n for n in base_option_names()
                 if n not in ("VIRTIO", "VIRTIO_BLK", "VIRTIO_MMIO")]
        config = Resolver(tree).resolve_names(names, name="no-virtio")
        image = KernelBuilder().build(config)
        with pytest.raises(MonitorError, match="block device"):
            firecracker().check_linux_guest(image)

    def test_qemu_accepts_ide_guests(self, microvm_build):
        # microVM config keeps ATA (classified hw, still in the 833).
        qemu().check_linux_guest(microvm_build.image)

    def test_unikernel_monitors_reject_linux_guests(self, microvm_build):
        # solo5/uhyve expose only their bespoke devices; a Linux guest
        # has no driver for any of them.
        for monitor in (solo5_hvt(), uhyve()):
            with pytest.raises(MonitorError, match="block device"):
                monitor.check_linux_guest(microvm_build.image)


class TestInjectedGuestCrash:
    """The ``vmm.check_guest`` fault site models a boot crash on every
    monitor: an otherwise-compatible guest dies with MonitorError."""

    @pytest.mark.parametrize("make_monitor", [firecracker, qemu,
                                              solo5_hvt, uhyve],
                             ids=lambda m: m.__name__)
    def test_injected_crash_raises_monitor_error(self, make_monitor,
                                                 microvm_build):
        from repro import faults
        from repro.faults import FaultPlane

        monitor = make_monitor()
        plane = FaultPlane(seed=0)
        plane.one_shot("vmm.check_guest", exc=MonitorError,
                       message="injected driverless-guest boot crash")
        try:
            with faults.activated(plane):
                with pytest.raises(MonitorError, match="injected"):
                    monitor.check_linux_guest(microvm_build.image)
        finally:
            faults.deactivate()
        assert plane.injected == 1

    def test_check_recovers_after_one_shot(self, microvm_build):
        from repro import faults
        from repro.faults import FaultPlane

        plane = FaultPlane(seed=0)
        plane.one_shot("vmm.check_guest", exc=MonitorError)
        try:
            with faults.activated(plane):
                with pytest.raises(MonitorError):
                    firecracker().check_linux_guest(microvm_build.image)
                # The fault was one-shot; the same check now passes.
                firecracker().check_linux_guest(microvm_build.image)
        finally:
            faults.deactivate()
