"""Tests for the ELF loader over rootfs + address spaces."""

import pytest

from repro.apps.registry import get_app
from repro.core.lupine import LupineBuilder
from repro.core.variants import Variant
from repro.mm.address_space import AddressSpace, PhysicalMemory
from repro.mm.elf import ElfError, MUSL_LOADER, load_elf, parse_elf
from repro.rootfs.container import FileEntry
from repro.rootfs.ext2 import build_ext2


def _space(memory_mb=64):
    return AddressSpace(
        asid=1, physical=PhysicalMemory(total_bytes=memory_mb * 1024 * 1024)
    )


@pytest.fixture(scope="module")
def redis_rootfs():
    return LupineBuilder(variant=Variant.LUPINE).build_for_app(
        get_app("redis")
    ).rootfs


class TestParse:
    def test_segments_cover_file(self, redis_rootfs):
        binary = parse_elf(redis_rootfs, "/usr/bin/redis-server")
        file_backed = sum(
            s.size_kb for s in binary.segments if s.file_backed
        )
        assert file_backed == pytest.approx(binary.file_kb, rel=0.01)
        assert binary.interpreter == MUSL_LOADER

    def test_static_binary_has_no_interpreter(self, redis_rootfs):
        binary = parse_elf(redis_rootfs, "/usr/bin/redis-server",
                           dynamic=False)
        assert binary.interpreter is None

    def test_non_executable_rejected(self, redis_rootfs):
        with pytest.raises(ElfError, match="not executable"):
            parse_elf(redis_rootfs, "/etc/redis/redis.conf")

    def test_directory_rejected(self, redis_rootfs):
        with pytest.raises(ElfError, match="directory"):
            parse_elf(redis_rootfs, "/usr/bin")

    def test_symlinks_resolved(self):
        rootfs = build_ext2([
            FileEntry("/bin/busybox", 800, executable=True),
            FileEntry("/bin/sh", 0, symlink_to="/bin/busybox"),
        ])
        binary = parse_elf(rootfs, "/bin/sh")
        assert binary.path == "/bin/busybox"


class TestLoad:
    def test_load_maps_all_segments(self, redis_rootfs):
        space = _space()
        loaded = load_elf(space, redis_rootfs, "/usr/bin/redis-server")
        assert {m.name.rsplit(":", 1)[1] for m in loaded.mappings} == {
            "text", "rodata", "data", "bss"
        }
        assert loaded.interpreter_mapping is not None

    def test_resident_far_below_mapped(self, redis_rootfs):
        """Figure 8's mechanism: exec touches a sliver of the binary."""
        space = _space()
        loaded = load_elf(space, redis_rootfs, "/usr/bin/redis-server")
        assert space.resident_kb < 0.4 * loaded.binary.mapped_kb

    def test_static_load_skips_interpreter(self, redis_rootfs):
        space = _space()
        loaded = load_elf(space, redis_rootfs, "/usr/bin/redis-server",
                          dynamic=False)
        assert loaded.interpreter_mapping is None

    def test_dynamic_load_without_loader_fails(self):
        rootfs = build_ext2(
            [FileEntry("/app", 500, executable=True)]
        )
        with pytest.raises(ElfError, match="interpreter"):
            load_elf(_space(), rootfs, "/app")

    def test_mapping_lookup_helper(self, redis_rootfs):
        loaded = load_elf(_space(), redis_rootfs, "/usr/bin/redis-server")
        assert loaded.mapping("text").page_count > 0
        with pytest.raises(KeyError):
            loaded.mapping("tls")

    def test_huge_binary_loads_in_small_memory(self):
        """A 300 MB binary execs fine in a 64 MB guest (lazy loading)."""
        rootfs = build_ext2([
            FileEntry("/usr/bin/elasticsearch", 300 * 1024, executable=True),
            FileEntry(MUSL_LOADER, 584, executable=True),
        ])
        space = _space(memory_mb=64)
        loaded = load_elf(space, rootfs, "/usr/bin/elasticsearch")
        assert loaded.binary.mapped_kb > 300 * 1024
        assert space.resident_kb < 64 * 1024
