"""Tests for the application registry (paper Table 3, Figure 5)."""

import pytest

from repro.apps.app import ProcessModel
from repro.apps.registry import (
    TOP20_APPS,
    cumulative_option_growth,
    get_app,
    lupine_general_option_union,
    top20_in_popularity_order,
    total_downloads_billions,
)

#: Table 3's rightmost column, verbatim.
PAPER_TABLE3 = {
    "nginx": 13, "postgres": 10, "httpd": 13, "node": 5, "redis": 10,
    "mongo": 11, "mysql": 9, "traefik": 8, "memcached": 10,
    "hello-world": 0, "mariadb": 13, "golang": 0, "python": 0, "openjdk": 0,
    "rabbitmq": 12, "php": 0, "wordpress": 9, "haproxy": 8, "influxdb": 11,
    "elasticsearch": 12,
}


class TestTable3:
    def test_exactly_twenty_apps(self):
        assert len(TOP20_APPS) == 20

    @pytest.mark.parametrize("name,count", sorted(PAPER_TABLE3.items()))
    def test_option_counts_match_paper(self, name, count):
        assert get_app(name).option_count == count

    def test_popularity_order_is_descending(self):
        downloads = [a.downloads_billions for a in top20_in_popularity_order()]
        assert downloads == sorted(downloads, reverse=True)

    def test_nginx_is_most_popular(self):
        assert top20_in_popularity_order()[0].name == "nginx"

    def test_unknown_app_raises_with_hint(self):
        with pytest.raises(KeyError, match="known"):
            get_app("doom")

    def test_total_downloads_plausible(self):
        assert 16 <= total_downloads_billions() <= 18  # paper's table sums


class TestLupineGeneralUnion:
    def test_union_is_exactly_19(self):
        assert len(lupine_general_option_union()) == 19

    def test_growth_curve_flattens_at_19(self):
        growth = cumulative_option_growth()
        assert growth[0] == 13  # nginx alone
        assert growth[-1] == 19
        assert growth == sorted(growth)  # monotone non-decreasing

    def test_every_app_covered_by_union(self):
        union = lupine_general_option_union()
        for app in TOP20_APPS:
            assert app.required_options <= union


class TestPaperSpecifics:
    def test_redis_needs_epoll_and_futex(self):
        """Section 3.1.1: 'redis requires EPOLL and FUTEX by default'."""
        redis = get_app("redis")
        assert redis.requires("EPOLL")
        assert redis.requires("FUTEX")

    def test_nginx_additionally_needs_aio_and_eventfd(self):
        nginx, redis = get_app("nginx"), get_app("redis")
        assert nginx.requires("AIO") and nginx.requires("EVENTFD")
        assert not redis.requires("AIO") and not redis.requires("EVENTFD")

    def test_postgres_is_multiprocess_and_needs_sysvipc(self):
        """Section 4.1: postgres needed CONFIG_SYSVIPC."""
        postgres = get_app("postgres")
        assert postgres.requires("SYSVIPC")
        assert postgres.process_model is ProcessModel.MULTI_PROCESS
        assert postgres.uses_fork_at_startup
        assert not postgres.process_model.fits_unikernel

    def test_language_runtimes_need_nothing(self):
        for name in ("golang", "python", "openjdk", "php"):
            assert get_app(name).option_count == 0

    def test_hello_world_is_minimal(self):
        hello = get_app("hello-world")
        assert hello.option_count == 0
        assert not hello.needs_network


class TestSyscallConsistency:
    def test_syscall_sets_cover_required_table1_options(self):
        from repro.syscall.table import OPTION_SYSCALLS

        for app in TOP20_APPS:
            for option in app.required_options:
                gated = OPTION_SYSCALLS.get(option)
                if gated:
                    assert set(gated) & app.syscalls, (
                        f"{app.name} requires {option} but issues none of "
                        f"its syscalls"
                    )

    def test_facilities_cover_non_syscall_options(self):
        from repro.apps.registry import OPTION_FACILITIES

        for app in TOP20_APPS:
            for option in app.required_options:
                if option in OPTION_FACILITIES:
                    assert OPTION_FACILITIES[option] in app.facilities

    def test_servers_issue_socket_syscalls(self):
        for app in TOP20_APPS:
            if app.needs_network:
                assert "socket" in app.syscalls

    def test_entrypoints_are_absolute(self):
        for app in TOP20_APPS:
            assert app.entrypoint[0].startswith("/")
