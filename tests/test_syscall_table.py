"""Tests for the syscall table and Table 1 config gating."""

import pytest

from repro.syscall.table import (
    OPTION_SYSCALLS,
    SYSCALLS,
    available_syscalls,
    gated_syscalls,
    option_for_syscall,
    syscalls_for_option,
)

#: Paper Table 1 verbatim (option -> syscalls it enables).
PAPER_TABLE1 = {
    "ADVISE_SYSCALLS": {"madvise", "fadvise64"},
    "AIO": {"io_setup", "io_destroy", "io_submit", "io_cancel",
            "io_getevents"},
    "BPF_SYSCALL": {"bpf"},
    "EPOLL": {"epoll_ctl", "epoll_create", "epoll_wait", "epoll_pwait"},
    "EVENTFD": {"eventfd", "eventfd2"},
    "FANOTIFY": {"fanotify_init", "fanotify_mark"},
    "FHANDLE": {"open_by_handle_at", "name_to_handle_at"},
    "FILE_LOCKING": {"flock"},
    "FUTEX": {"futex", "set_robust_list", "get_robust_list"},
    "INOTIFY_USER": {"inotify_init", "inotify_add_watch",
                     "inotify_rm_watch"},
    "SIGNALFD": {"signalfd", "signalfd4"},
    "TIMERFD": {"timerfd_create", "timerfd_gettime", "timerfd_settime"},
}


class TestTable1:
    @pytest.mark.parametrize("option,expected", sorted(PAPER_TABLE1.items()))
    def test_paper_rows_covered(self, option, expected):
        assert expected <= set(OPTION_SYSCALLS[option])

    def test_gated_syscalls_resolve_to_their_option(self):
        for option, names in OPTION_SYSCALLS.items():
            for name in names:
                assert option_for_syscall(name) == option

    def test_syscalls_for_option_inverse(self):
        assert set(syscalls_for_option("EPOLL")) >= PAPER_TABLE1["EPOLL"]
        assert syscalls_for_option("NOT_AN_OPTION") == ()

    def test_sysvipc_extension_for_postgres(self):
        # Section 4.1: postgres needed CONFIG_SYSVIPC.
        assert "shmget" in OPTION_SYSCALLS["SYSVIPC"]
        assert "semop" in OPTION_SYSCALLS["SYSVIPC"]


class TestTableStructure:
    def test_ungated_core_syscalls(self):
        for name in ("read", "write", "open", "close", "mmap", "fork",
                     "execve", "getppid", "clone"):
            assert SYSCALLS[name].option is None

    def test_every_table1_syscall_exists(self):
        for names in PAPER_TABLE1.values():
            for name in names:
                assert name in SYSCALLS

    def test_handler_costs_positive(self):
        for syscall in SYSCALLS.values():
            assert syscall.handler_ns > 0

    def test_numbers_unique(self):
        numbers = [s.number for s in SYSCALLS.values()]
        assert len(numbers) == len(set(numbers))

    def test_getppid_is_cheapest_class(self):
        assert SYSCALLS["getppid"].handler_ns <= 5

    def test_execve_is_expensive(self):
        assert SYSCALLS["execve"].handler_ns > 1000

    def test_data_path_flags(self):
        assert SYSCALLS["read"].data_path
        assert SYSCALLS["write"].data_path
        assert not SYSCALLS["getppid"].data_path
        assert not SYSCALLS["epoll_wait"].data_path

    def test_gated_syscalls_set(self):
        gated = gated_syscalls()
        assert "epoll_wait" in gated
        assert "read" not in gated


class TestAvailability:
    def test_no_options_means_core_only(self):
        available = available_syscalls([])
        assert "read" in available
        assert "epoll_wait" not in available
        assert "futex" not in available

    def test_enabling_option_adds_its_family(self):
        available = available_syscalls(["EPOLL"])
        assert PAPER_TABLE1["EPOLL"] <= available
        assert "futex" not in available

    def test_microvm_has_everything_gated(self, microvm):
        available = available_syscalls(microvm.enabled)
        for names in PAPER_TABLE1.values():
            assert names <= available
