"""Serverless cold-start: boot-to-first-response latency.

The paper's introduction motivates lightweight virtualization with
serverless computing, where "unikernels have been shown to boot in as
little as 5-10 ms" while VMs need hundreds.  This extension measures the
full cold-start path for one function invocation: monitor setup + kernel
boot + app exec + first request served.

Each Linux cold start is one :class:`~repro.simcore.guest.Guest`
lifecycle: the Lupine rows run the full Figure 2 image pipeline
(``full_image`` guests, monitor guest-check included), the microVM row a
kernel-only boot -- then the first request is costed on the same guest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.variants import Variant
from repro.simcore import guest_for_app, microvm_guest
from repro.unikernels import HermiTux, OSv, Rumprun
from repro.workloads.redis import REDIS_GET

#: Simulated app initialization after exec (allocator, config parse, bind).
APP_INIT_MS = 2.4


@dataclass(frozen=True)
class ColdStartResult:
    """Breakdown of one cold start."""

    system: str
    boot_ms: float
    app_init_ms: float
    first_request_ms: float

    @property
    def total_ms(self) -> float:
        return self.boot_ms + self.app_init_ms + self.first_request_ms


def _linux_cold_start(
    system: str, variant: Optional[Variant] = None
) -> ColdStartResult:
    if variant is None:
        guest = microvm_guest()
    else:
        guest = guest_for_app(variant, "redis")
    boot_ms = guest.boot().total_ms
    first_request_ms = guest.request_ns(REDIS_GET) / 1e6
    return ColdStartResult(
        system=system,
        boot_ms=boot_ms,
        app_init_ms=APP_INIT_MS,
        first_request_ms=first_request_ms,
    )


def run_cold_starts() -> Dict[str, ColdStartResult]:
    """Cold-start comparison across all systems that can run redis."""
    results = {
        "microvm": _linux_cold_start("microvm"),
        "lupine-nokml": _linux_cold_start(
            "lupine-nokml", Variant.LUPINE_NOKML
        ),
        "lupine-nokml-general": _linux_cold_start(
            "lupine-nokml-general", Variant.LUPINE_GENERAL_NOKML
        ),
    }
    for unikernel in (HermiTux(), OSv(), Rumprun()):
        results[unikernel.name.replace("-rofs", "")] = ColdStartResult(
            system=unikernel.name,
            boot_ms=unikernel.boot_report().total_ms,
            app_init_ms=APP_INIT_MS,
            first_request_ms=unikernel.request_ns(REDIS_GET) / 1e6,
        )
    return results
