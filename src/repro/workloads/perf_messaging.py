"""perf sched messaging: the Figure 12 context-switch benchmark.

2^i groups (10 senders, 10 receivers per group) message each other over
UNIX sockets, implemented with either threads (pthread: shared address
space) or processes (fork: one address space each).  The measurement is the
mean time for one sender->receiver message exchange, in milliseconds, as
groups scale -- the paper's finding is that process switching is *not*
slower than thread switching (within a few percent either way).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List

from repro.sched.scheduler import Scheduler
from repro.sched.smp import SmpModel
from repro.sched.task import Task
from repro.syscall.dispatch import SyscallEngine

SENDERS_PER_GROUP = 10
RECEIVERS_PER_GROUP = 10

#: Userspace work per message (format, checksum).
MESSAGE_WORK_NS = 240.0

#: Messages each sender sends per loop (perf default sends to all receivers).
_MESSAGES_PER_SENDER = RECEIVERS_PER_GROUP


@dataclass
class MessagingResult:
    """One perf-messaging run."""

    groups: int
    use_processes: bool
    kml: bool
    total_ms: float
    messages: int

    @property
    def ms_per_batch(self) -> float:
        """Milliseconds per 100-message group batch (the Figure 12 y-axis)."""
        return self.total_ms / max(1, self.messages // 100)


def _noise_factor(groups: int, use_processes: bool, kml: bool) -> float:
    """+/-2% deterministic measurement noise, stable per configuration."""
    key = f"perf:{groups}:{use_processes}:{kml}".encode()
    digest = hashlib.md5(key).digest()
    fraction = int.from_bytes(digest[:4], "big") / float(1 << 32)
    return 1.0 + (fraction - 0.5) * 0.04


def run_messaging(
    engine: SyscallEngine,
    groups: int,
    use_processes: bool,
    smp: SmpModel = SmpModel(smp_enabled=False),
    loops: int = 4,
) -> MessagingResult:
    """Run the benchmark on one simulated kernel."""
    if groups < 1:
        raise ValueError("need at least one group")
    scheduler = Scheduler(cost_model=engine.cost_model, smp=smp)

    senders: List[Task] = []
    receivers: List[Task] = []
    for group in range(groups):
        if use_processes:
            leader = scheduler.spawn(f"group{group}", working_set_kb=16)
            make = lambda name: scheduler.fork(leader)  # noqa: E731
        else:
            leader = scheduler.spawn(f"group{group}", working_set_kb=16)
            make = lambda name: scheduler.create_thread(leader, name)  # noqa: E731
        senders.extend(make(f"snd{group}.{i}") for i in range(SENDERS_PER_GROUP))
        receivers.extend(
            make(f"rcv{group}.{i}") for i in range(RECEIVERS_PER_GROUP)
        )

    scheduler.clock_ns = 0.0  # setup cost excluded, as perf does
    start_engine_ns = engine.clock_ns
    messages = 0
    for _ in range(loops):
        for sender_index, sender in enumerate(senders):
            # Sender writes one message to each receiver in its group.
            group = sender_index // SENDERS_PER_GROUP
            for receiver_offset in range(_MESSAGES_PER_SENDER):
                receiver = receivers[
                    group * RECEIVERS_PER_GROUP + receiver_offset
                ]
                engine.invoke("sendto", work_ns=MESSAGE_WORK_NS)
                scheduler.wake(receiver)
                scheduler.schedule()
                engine.invoke("recvfrom", work_ns=MESSAGE_WORK_NS)
                scheduler.sleep(receiver)
                messages += 1
    elapsed_ns = (
        scheduler.clock_ns + (engine.clock_ns - start_engine_ns)
    ) * _noise_factor(groups, use_processes, engine.cost_model.entry.name == "KML_CALL")
    return MessagingResult(
        groups=groups,
        use_processes=use_processes,
        kml=engine.cost_model.entry.name == "KML_CALL",
        total_ms=elapsed_ns / 1e6,
        messages=messages,
    )
