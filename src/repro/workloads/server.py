"""Request-cost composition for network server workloads.

A served request costs: the syscalls the server issues (through the
simulated kernel, so entry mechanism and config hooks apply), the network
stack traversals for the packets involved (config hooks again), and the
application's own userspace work (identical across kernels -- the paper
keeps the application binary unmodified).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.netstack.path import NetworkPath
from repro.syscall.dispatch import SyscallEngine


@dataclass(frozen=True)
class RequestProfile:
    """The per-request recipe for one workload."""

    name: str
    syscalls: Tuple[str, ...]
    app_ns: float
    packets_in: int = 1
    packets_out: int = 1
    handshake_packets: int = 0
    payload_bytes: int = 256

    @property
    def total_packets(self) -> int:
        return self.packets_in + self.packets_out + self.handshake_packets


@dataclass
class LinuxServerStack:
    """A server application running on one simulated Linux kernel."""

    engine: SyscallEngine
    netpath: NetworkPath

    def _work_ns(self, profile: RequestProfile, base_ns: float = 0.0) -> float:
        """Network + *base_ns* cost of one request, shared by every path.

        The single source of the data/handshake formula: ``request_ns``
        folds the syscall latencies in as *base_ns*, the live-run paths
        fold in the app time -- so the analytic and driven costs cannot
        drift apart.  The fold order (``((base + data) + handshake)``)
        is load-bearing: float addition is not associative and both
        callers' historical groupings reduce to exactly this shape.
        """
        return (
            base_ns
            + (profile.packets_in + profile.packets_out)
            * self.netpath.packet_ns(profile.payload_bytes)
            + profile.handshake_packets * self.netpath.connection_packet_ns()
        )

    def request_ns(self, profile: RequestProfile) -> float:
        """Simulated time to serve one request."""
        syscall_ns = sum(
            self.engine.latency_ns(name) for name in profile.syscalls
        )
        # Userspace work is slower in ring 0? No: KML processes run the same
        # code at the same speed; only kernel work scales with -Os.
        return self._work_ns(profile, syscall_ns) + profile.app_ns

    def requests_per_second(self, profile: RequestProfile) -> float:
        return 1e9 / self.request_ns(profile)

    def run(self, profile: RequestProfile, requests: int) -> float:
        """Drive *requests* requests through the live engine; returns rps.

        Unlike :meth:`requests_per_second` this mutates engine state (the
        deterministic jitter applies), modelling a real benchmark run.

        The per-request costs are batched through
        :meth:`~repro.syscall.dispatch.SyscallEngine.invoke_batch`
        (closed-form addends, one engine call), bit-for-bit identical to
        the stepped loop :meth:`run_stepped` replays -- the property the
        batched-vs-stepped parity test pins.  Profiles with config-gated
        syscalls fall back to the stepped loop to preserve its
        charge-then-raise semantics.
        """
        start = self.engine.clock_ns
        self.serve_chunk(profile, requests)
        elapsed_s = (self.engine.clock_ns - start) / 1e9
        return requests / elapsed_s

    def serve_chunk(self, profile: RequestProfile, requests: int) -> None:
        """Charge *requests* requests without rate accounting.

        The unit of work the fleet's global event loop interleaves:
        because ``invoke_batch`` folds element-wise over the engine's
        running accumulator and jitter phases key off the continuous
        ``call_count``, serving ``n`` requests as any sequence of chunks
        is bit-for-bit identical to one ``n``-request batch -- which is
        what lets interleaved guests reproduce the sequential oracle's
        manifest exactly.  Profiles naming a config-gated syscall take
        the stepped loop, preserving its charge-then-raise semantics.
        """
        if all(self.engine.supports(name) for name in profile.syscalls):
            self.engine.invoke_batch(
                profile.syscalls,
                self._work_ns(profile, profile.app_ns),
                requests,
            )
            return
        for _ in range(requests):
            for name in profile.syscalls:
                self.engine.invoke(name)
            self.engine.cpu_work(self._work_ns(profile, profile.app_ns))

    def run_stepped(self, profile: RequestProfile, requests: int) -> float:
        """The reference per-request loop (the oracle :meth:`run` must
        match bit-for-bit; also the path for ENOSYS-raising profiles)."""
        start = self.engine.clock_ns
        for _ in range(requests):
            for name in profile.syscalls:
                self.engine.invoke(name)
            self.engine.cpu_work(self._work_ns(profile, profile.app_ns))
        elapsed_s = (self.engine.clock_ns - start) / 1e9
        return requests / elapsed_s
