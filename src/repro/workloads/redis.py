"""redis-benchmark: the GET/SET throughput workloads of Table 4.

Request recipes follow redis's actual event loop: one ``epoll_wait`` wakeup,
one ``read`` of the command, command execution in userspace, one ``write``
of the reply; one request and one reply packet on the wire.  SET does
slightly more userspace work (dict insert + allocation) than GET.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.server import LinuxServerStack, RequestProfile

REDIS_GET = RequestProfile(
    name="redis-get",
    syscalls=("epoll_wait", "read", "write"),
    app_ns=4000.0,
    packets_in=1,
    packets_out=1,
    payload_bytes=128,
)

REDIS_SET = RequestProfile(
    name="redis-set",
    syscalls=("epoll_wait", "read", "write"),
    app_ns=4350.0,
    packets_in=1,
    packets_out=1,
    payload_bytes=192,
)


@dataclass
class RedisBenchmark:
    """The redis-benchmark client (requests/second for GET and SET)."""

    requests: int = 2000

    def get_rps(self, stack: LinuxServerStack) -> float:
        return stack.run(REDIS_GET, self.requests)

    def set_rps(self, stack: LinuxServerStack) -> float:
        return stack.run(REDIS_SET, self.requests)
