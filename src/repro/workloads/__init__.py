"""Benchmark clients and workload generators.

- :mod:`repro.workloads.server` -- the request-cost composition for network
  servers (redis-benchmark and ab drive these, Table 4).
- :mod:`repro.workloads.redis` / :mod:`repro.workloads.nginx` -- the two
  macro-benchmarks of Table 4.
- :mod:`repro.workloads.perf_messaging` -- perf's sched messaging benchmark
  (Figure 12: threads vs processes).
- :mod:`repro.workloads.smp_stress` -- the sem_posix / futex / make -j
  worst-case SMP experiments of Section 5.
- :mod:`repro.workloads.control_procs` -- background control processes
  (Figure 11).
"""

from repro.workloads.coldstart import ColdStartResult, run_cold_starts
from repro.workloads.memcached import MemtierBenchmark
from repro.workloads.nginx import ApacheBench, NGINX_CONN, NGINX_SESS
from repro.workloads.pgbench import PgBench
from repro.workloads.redis import RedisBenchmark, REDIS_GET, REDIS_SET
from repro.workloads.server import LinuxServerStack, RequestProfile

__all__ = [
    "ApacheBench",
    "ColdStartResult",
    "LinuxServerStack",
    "MemtierBenchmark",
    "NGINX_CONN",
    "NGINX_SESS",
    "PgBench",
    "REDIS_GET",
    "REDIS_SET",
    "RedisBenchmark",
    "RequestProfile",
    "run_cold_starts",
]
