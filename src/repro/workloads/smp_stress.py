"""The Section 5 SMP worst-case experiments.

Three workloads on one processor, comparing an SMP-enabled kernel against a
UP kernel: ``sem_posix`` and ``futex`` spawn up to 512 workers (4 processes
sharing a futex/semaphore each) rapidly exercising wait/post, and ``make -j``
models a parallel kernel build.  The paper measures at most 3%, 8% and 3%
overhead respectively -- SMP support is nearly free even when unused.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sched.futex import FutexTable, PosixSemaphore
from repro.sched.scheduler import Scheduler
from repro.sched.smp import SmpModel
from repro.syscall.cpu import CpuCostModel, EntryMechanism


@dataclass
class StressResult:
    """One stress run: simulated seconds of wall-clock."""

    workload: str
    workers: int
    smp_enabled: bool
    elapsed_s: float


def _scheduler(smp_enabled: bool) -> Scheduler:
    cost_model = CpuCostModel.for_options((), entry=EntryMechanism.SYSCALL)
    return Scheduler(
        cost_model=cost_model, smp=SmpModel(smp_enabled=smp_enabled, cpus=1)
    )


def run_futex_stress(
    workers: int, smp_enabled: bool, ops_per_worker: int = 40
) -> StressResult:
    """Workers of 4 processes sharing a futex, ping-ponging wait/wake."""
    scheduler = _scheduler(smp_enabled)
    futexes = FutexTable(scheduler)
    for worker in range(workers):
        address = 0x1000 + worker * 16
        tasks = [
            scheduler.spawn(f"futex{worker}.{i}", working_set_kb=8)
            for i in range(4)
        ]
        futexes.store(address, 0)
        for _ in range(ops_per_worker):
            waiter, waker = tasks[0], tasks[1]
            futexes.wait(waiter, address, 0)
            scheduler.clock_ns += 600.0  # userspace work holding the lock
            futexes.wake(address, 1)
            scheduler.schedule()
    return StressResult(
        workload="futex",
        workers=workers,
        smp_enabled=smp_enabled,
        elapsed_s=scheduler.clock_ns / 1e9,
    )


def run_sem_posix_stress(
    workers: int, smp_enabled: bool, ops_per_worker: int = 40
) -> StressResult:
    """Workers of 4 processes sharing a POSIX semaphore (mostly fast path)."""
    scheduler = _scheduler(smp_enabled)
    futexes = FutexTable(scheduler)
    for worker in range(workers):
        tasks = [
            scheduler.spawn(f"sem{worker}.{i}", working_set_kb=8)
            for i in range(4)
        ]
        semaphore = PosixSemaphore(
            futexes, address=0x9000 + worker * 16, initial=1
        )
        for op in range(ops_per_worker):
            task = tasks[op % 4]
            acquired = semaphore.wait(task)
            scheduler.clock_ns += 1800.0  # critical-section userspace work
            semaphore.post()
            if not acquired:
                scheduler.schedule()  # only contended ops context switch
    return StressResult(
        workload="sem_posix",
        workers=workers,
        smp_enabled=smp_enabled,
        elapsed_s=scheduler.clock_ns / 1e9,
    )


#: Kernel compilation model: translation units and per-unit cost.
MAKE_UNITS = 160
UNIT_COMPILE_NS = 5_000_000.0
#: Kernel lock/unlock pairs taken per unit (page faults, VFS, pipes).
UNIT_LOCK_PAIRS = 12_000


def run_make_j(jobs: int, smp_enabled: bool, cpus: int = 1) -> StressResult:
    """``make -jN`` of the kernel: compile units over a worker pool."""
    smp = SmpModel(smp_enabled=smp_enabled, cpus=cpus)
    per_unit_ns = UNIT_COMPILE_NS + UNIT_LOCK_PAIRS * smp.lock_pair_ns()
    # fork+exec of the compiler per unit, plus pipe traffic to make.
    per_unit_ns += 1600.0 + 5200.0 + 40 * 95.0
    total_ns = MAKE_UNITS * per_unit_ns / smp.parallel_speedup(jobs)
    return StressResult(
        workload="make-j",
        workers=jobs,
        smp_enabled=smp_enabled,
        elapsed_s=total_ns / 1e9,
    )


def smp_overhead(workload: str, workers: int) -> float:
    """Fractional SMP-on-1-CPU overhead for one workload/worker count."""
    runners = {
        "futex": run_futex_stress,
        "sem_posix": run_sem_posix_stress,
        "make-j": run_make_j,
    }
    run = runners[workload]
    with_smp = run(workers, True)
    without_smp = run(workers, False)
    return with_smp.elapsed_s / without_smp.elapsed_s - 1.0
