"""An event-loop server running on the full substrate stack.

Where :class:`~repro.workloads.server.LinuxServerStack` computes request
costs analytically, this server *executes* them: a single task blocks in a
real :class:`~repro.sched.eventloop.EpollInstance`, connections arrive
through the :class:`~repro.netstack.tcp.TcpStack`, requests are read off
:class:`~repro.sched.eventloop.SimSocket` queues, and every syscall flows
through the engine.  It exists to validate the analytic model: both paths
must agree on throughput to within a modest factor (they share the same
cost constants but differ in wakeup/bookkeeping detail).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.netstack.tcp import TcpStack
from repro.sched.eventloop import EpollInstance, EventMask, SimSocket
from repro.sched.scheduler import Scheduler
from repro.sched.smp import SmpModel
from repro.syscall.dispatch import SyscallEngine


@dataclass
class EventServerResult:
    """One run of the event-loop server."""

    requests_served: int
    elapsed_ns: float
    wakeups: int

    @property
    def requests_per_second(self) -> float:
        return self.requests_served / (self.elapsed_ns / 1e9)


class EventLoopServer:
    """A single-threaded epoll server (the redis/nginx/memcached shape)."""

    def __init__(self, engine: SyscallEngine, tcp: TcpStack,
                 app_ns_per_request: float, port: int = 80):
        self.engine = engine
        self.tcp = tcp
        self.app_ns = app_ns_per_request
        self.port = port
        self.scheduler = Scheduler(
            cost_model=engine.cost_model, smp=SmpModel(smp_enabled=False)
        )
        self.task = self.scheduler.spawn("event-server", working_set_kb=512)
        self.epoll = EpollInstance(engine=engine, scheduler=self.scheduler)
        self.tcp.listen(port)
        self._sockets: Dict[int, SimSocket] = {}
        self._connections: Dict[int, object] = {}
        self._next_fd = 8

    # -- client-side drivers --------------------------------------------------

    def open_connection(self, peer_port: int) -> int:
        """A client connects; returns the server-side fd."""
        connection = self.tcp.accept_connection(
            self.port, "10.0.0.9", peer_port
        )
        if connection is None:
            raise RuntimeError("listen backlog overflow")
        self.engine.invoke("accept4")
        fd = self._next_fd
        self._next_fd += 1
        socket = SimSocket(fd=fd)
        self._sockets[fd] = socket
        self._connections[fd] = connection
        self.epoll.add(socket, EventMask.IN)
        return fd

    def send_request(self, fd: int, payload: bytes = b"GET x") -> None:
        """A client request arrives on *fd*."""
        connection = self._connections[fd]
        self.tcp.receive_segment(connection, len(payload))
        self._sockets[fd].deliver(payload)
        self.epoll.notify()

    # -- the server loop ---------------------------------------------------------

    def run_until_drained(self, response_bytes: int = 128) -> EventServerResult:
        """Serve every pending request; returns accounting."""
        start_ns = self._total_ns()
        served = 0
        wakeups = 0
        while True:
            events = self.epoll.wait(self.task)
            if not events:
                break  # would block: all requests drained
            wakeups += 1
            for file, mask in events:
                if not mask & EventMask.IN:
                    continue
                self.engine.invoke("read")
                payload = file.recv()
                if payload is None:
                    continue
                self.engine.cpu_work(self.app_ns)
                self.engine.invoke("write")
                file.send(b"R" * response_bytes)
                file.tx_complete()
                self.tcp.send_segment(
                    self._connections[file.fd], response_bytes
                )
                served += 1
        return EventServerResult(
            requests_served=served,
            elapsed_ns=self._total_ns() - start_ns,
            wakeups=wakeups,
        )

    def _total_ns(self) -> float:
        return self.engine.clock_ns + self.tcp.clock_ns + (
            self.scheduler.clock_ns
        )
