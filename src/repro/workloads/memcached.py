"""memtier-style memcached benchmark (extension workload).

memcached is #9 on the paper's Table 3; its event loop is libevent over
epoll with eventfd wakeups between worker threads, which makes it a good
stress of the EVENTFD/EPOLL configuration split the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.server import LinuxServerStack, RequestProfile

MEMCACHED_GET = RequestProfile(
    name="memcached-get",
    syscalls=("epoll_wait", "read", "write", "eventfd2"),
    app_ns=2600.0,
    packets_in=1,
    packets_out=1,
    payload_bytes=256,
)

MEMCACHED_SET = RequestProfile(
    name="memcached-set",
    syscalls=("epoll_wait", "read", "write", "eventfd2"),
    app_ns=2900.0,
    packets_in=1,
    packets_out=1,
    payload_bytes=320,
)


@dataclass
class MemtierBenchmark:
    """A memtier_benchmark-style client."""

    requests: int = 2000

    def get_rps(self, stack: LinuxServerStack) -> float:
        return stack.run(MEMCACHED_GET, self.requests)

    def set_rps(self, stack: LinuxServerStack) -> float:
        return stack.run(MEMCACHED_SET, self.requests)
