"""ab (ApacheBench): the nginx throughput workloads of Table 4.

Two scenarios, as in the paper:

- ``nginx-conn``: one HTTP request per connection -- every request pays the
  TCP handshake (SYN/SYN-ACK/ACK) and teardown, accept4 and fd churn.  This
  is where kernel specialization helps most (1.33x in the paper): conntrack
  and friends do their heaviest work on new flows.
- ``nginx-sess``: one hundred requests per keep-alive connection (ab
  --keepalive) -- handshake costs amortize away, leaving the steady-state
  read/writev path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.server import LinuxServerStack, RequestProfile

NGINX_CONN = RequestProfile(
    name="nginx-conn",
    syscalls=("accept4", "epoll_ctl", "read", "openat", "fstat", "writev",
              "close", "close"),
    app_ns=6500.0,
    packets_in=2,
    packets_out=2,
    handshake_packets=3,
    payload_bytes=6144,
)

NGINX_SESS = RequestProfile(
    name="nginx-sess",
    syscalls=("epoll_wait", "read", "openat", "writev", "close"),
    app_ns=4400.0,
    packets_in=1,
    packets_out=1,
    handshake_packets=0,
    payload_bytes=6144,
)

#: Requests per keep-alive session in the -sess scenario.
REQUESTS_PER_SESSION = 100


@dataclass
class ApacheBench:
    """The ab client."""

    requests: int = 2000

    def conn_rps(self, stack: LinuxServerStack) -> float:
        """One request per connection."""
        return stack.run(NGINX_CONN, self.requests)

    def sess_rps(self, stack: LinuxServerStack) -> float:
        """Keep-alive sessions: handshake amortized over 100 requests."""
        sessions = max(1, self.requests // REQUESTS_PER_SESSION)
        per_session_overhead_ns = (
            stack.engine.latency_ns("accept4")
            + 2 * stack.engine.latency_ns("close")
            + 3 * stack.netpath.connection_packet_ns()
        )
        rps = stack.run(NGINX_SESS, self.requests)
        # Fold the per-session connection cost back into the rate.
        per_request_ns = 1e9 / rps + per_session_overhead_ns / REQUESTS_PER_SESSION
        return 1e9 / per_request_ns
