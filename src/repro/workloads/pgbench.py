"""pgbench-style postgres benchmark (extension workload, Section 5 flavour).

postgres is the paper's canonical *non*-unikernel application: multiple
processes, System V shared memory, and fork at connection time.  This
workload exercises exactly those paths -- a TPC-B-ish transaction through a
backend process using SysV IPC for the shared buffer pool -- so it only
runs on kernels configured with ``SYSVIPC`` (graceful degradation, not the
unikernel envelope).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.syscall.dispatch import SyscallEngine
from repro.workloads.server import LinuxServerStack, RequestProfile

#: One TPC-B-ish transaction: receive query, touch shared buffers (SysV
#: shm + semaphores), write WAL, reply.
PGBENCH_TRANSACTION = RequestProfile(
    name="pgbench-tpcb",
    syscalls=(
        "epoll_wait", "recvfrom",          # query arrives
        "semop", "shmat", "shmdt",         # shared buffer pool access
        "pwrite64", "fdatasync",           # WAL
        "sendto",                          # reply
    ),
    app_ns=21000.0,  # executor + planner work
    packets_in=1,
    packets_out=1,
    payload_bytes=512,
)

#: Backend spawn: postgres forks one backend per connection.
BACKEND_SPAWN_SYSCALLS = ("fork", "setsid", "shmat")


@dataclass
class PgBench:
    """A pgbench-style client: transactions/second plus connection churn."""

    transactions: int = 500
    connections: int = 10

    def tps(self, stack: LinuxServerStack) -> float:
        """Transactions per second, including backend spawn costs."""
        engine = stack.engine
        for _ in range(self.connections):
            for name in BACKEND_SPAWN_SYSCALLS:
                engine.invoke(name)
        return stack.run(PGBENCH_TRANSACTION, self.transactions)

    @staticmethod
    def check_kernel(engine: SyscallEngine) -> None:
        """Fail fast (ENOSYS) if the kernel lacks postgres's requirements."""
        for name in ("semop", "shmat", "futex", "epoll_wait"):
            engine.lookup(name)
