"""Background control processes (Figure 11).

The paper launches 2^0 .. 2^10 sleeping "control processes" (shells,
monitors, environment setup -- the auxiliary processes real deployments
need) and shows that system call latency is unaffected: sleeping tasks are
not on the run queue, and an O(1) wakeup path does not get slower with more
sleepers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.sched.scheduler import Scheduler
from repro.sched.smp import SmpModel
from repro.syscall.dispatch import SyscallEngine
from repro.syscall.lmbench import (
    null_latency_us,
    read_latency_us,
    write_latency_us,
)


@dataclass
class ControlProcessResult:
    """Latency measurements with one background-process population."""

    control_processes: int
    latencies_us: Dict[str, float]


def run_with_control_processes(
    engine: SyscallEngine,
    control_processes: int,
) -> ControlProcessResult:
    """Measure lmbench null/read/write with sleeping control processes."""
    scheduler = Scheduler(
        cost_model=engine.cost_model, smp=SmpModel(smp_enabled=False)
    )
    app = scheduler.spawn("app", working_set_kb=64)
    for index in range(control_processes):
        task = scheduler.spawn(f"ctl-{index}", working_set_kb=4)
        scheduler.sleep(task)
    scheduler.schedule()  # app is the only runnable task
    assert scheduler.current is app
    assert scheduler.sleeping_count() == control_processes

    return ControlProcessResult(
        control_processes=control_processes,
        latencies_us={
            "null": null_latency_us(engine),
            "read": read_latency_us(engine),
            "write": write_latency_us(engine),
        },
    )


def sweep(engine_factory, max_power: int = 10) -> List[ControlProcessResult]:
    """Run the Figure 11 sweep: 2^0 .. 2^max_power control processes."""
    results = []
    for power in range(max_power + 1):
        engine = engine_factory()
        results.append(run_with_control_processes(engine, 2 ** power))
    return results
