"""The deterministic fault-injection plane.

A :class:`FaultPlane` owns a set of named injection *sites* -- stable
strings like ``"buildcache.factory"`` or ``"resultcache.load"`` -- and a
seeded schedule deciding, per call, whether that site misbehaves.  Library
code declares its natural failure points once::

    from repro.faults import fault_site

    with fault_site("kbuild.build"):
        image = self._build(config, ...)

and pays nothing when no plane is installed: the context manager is a
no-op (no spans, no metrics, no RNG draws), so fault-free runs are
byte-identical to a build of the tree without this module.

Determinism is the whole point -- a chaos run must be replayable:

- **Stateless decisions.**  Whether call *n* at ``(site, scope)`` injects
  is a pure function of ``(seed, site, scope, n)`` -- each decision draws
  from its own ``random.Random`` seeded with exactly that tuple, never
  from shared RNG state, so thread interleaving cannot reorder draws.
- **Scoped call counters.**  The harness wraps each experiment in
  :func:`experiment_scope`, so the per-site call index is counted per
  experiment; an experiment's own call sequence is sequential and
  therefore deterministic even when experiments run concurrently.
- **Three fault kinds.**  ``raise`` (the default) raises the configured
  exception; ``hang`` advances the simulated clock by ``hang_ms`` (a
  guest that stops answering) and raises :class:`FaultHang`, which the
  harness classifies as a timeout; ``corrupt`` is consumed by data paths
  via :func:`corrupt_text`, truncating the payload mid-byte the way a
  crashed writer would.

Every injection is observable: a ``fault.injected`` span (category
``faults``, with ``site``/``scope``/``kind`` attributes) and the
``faults.injected`` counter.  See ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple


class FaultInjected(RuntimeError):
    """An error raised by the fault plane (not by the code under test)."""

    def __init__(self, site: str, message: Optional[str] = None,
                 transient: bool = True) -> None:
        super().__init__(message or f"injected fault at {site}")
        self.site = site
        self.transient = transient


class FaultHang(FaultInjected):
    """An injected hang: the simulated clock ran past any useful deadline.

    The harness maps this to ``status="timed_out"`` rather than retrying:
    a guest that hangs once has, as far as the run can tell, hung forever.
    """

    def __init__(self, site: str, hang_ms: float) -> None:
        super().__init__(
            site,
            message=f"injected hang at {site} (+{hang_ms:g} sim ms)",
            transient=False,
        )
        self.hang_ms = hang_ms


@dataclass(frozen=True)
class FaultSpec:
    """One site's schedule.

    ``probability`` injects independently per call; ``nth_calls`` injects
    on exactly those (1-based) call indices; both can combine.
    ``max_injections`` caps how often the spec fires (1 = one-shot).
    ``transient`` marks the raised fault as retryable; ``exc`` swaps the
    raised type (e.g. ``MonitorError``) for realism at domain sites --
    note a plain exception carries no ``transient`` attribute, so the
    harness treats it as persistent.
    """

    site: str
    probability: float = 0.0
    nth_calls: Tuple[int, ...] = ()
    max_injections: Optional[int] = None
    transient: bool = True
    kind: str = "raise"                  # "raise" | "hang" | "corrupt"
    hang_ms: float = 0.0
    scope: Optional[str] = None          # restrict to one experiment scope
    message: Optional[str] = None
    exc: Optional[Callable[[str], BaseException]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("raise", "hang", "corrupt"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"{self.site}: probability must be in [0, 1], "
                f"got {self.probability}"
            )


class FaultPlane:
    """A seeded schedule of fault injections across named sites."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._rng = random.Random(self.seed)   # reserved for schedule gen
        self._lock = threading.Lock()
        self._specs: Dict[str, List[FaultSpec]] = {}
        self._calls: Dict[Tuple[str, str], int] = {}
        self._fired: Dict[int, int] = {}       # spec id -> injections so far
        self._injected = 0

    # -- configuration -----------------------------------------------------

    def configure(self, site: str, **kwargs: object) -> FaultSpec:
        """Add a :class:`FaultSpec` for *site* (keywords as on the spec)."""
        spec = FaultSpec(site=site, **kwargs)  # type: ignore[arg-type]
        with self._lock:
            self._specs.setdefault(site, []).append(spec)
        return spec

    def one_shot(self, site: str, **kwargs: object) -> FaultSpec:
        """A spec that fires on the first scheduled call, then never again."""
        kwargs.setdefault("nth_calls", (1,))
        kwargs.setdefault("max_injections", 1)
        return self.configure(site, **kwargs)

    @property
    def injected(self) -> int:
        """Total injections this plane has performed."""
        with self._lock:
            return self._injected

    def reset_counters(self) -> None:
        """Rewind call/injection counters (the schedule stays)."""
        with self._lock:
            self._calls.clear()
            self._fired.clear()
            self._injected = 0

    # -- decisions ---------------------------------------------------------

    def decide(self, site: str) -> Optional[FaultSpec]:
        """Count one call at *site* under the current scope; the spec to
        inject, or None.  Deterministic in ``(seed, site, scope, n)``."""
        scope = current_scope()
        with self._lock:
            specs = self._specs.get(site)
            if not specs:
                return None
            key = (site, scope)
            call = self._calls.get(key, 0) + 1
            self._calls[key] = call
            for spec in specs:
                if spec.scope is not None and spec.scope != scope:
                    continue
                fired = self._fired.get(id(spec), 0)
                if (spec.max_injections is not None
                        and fired >= spec.max_injections):
                    continue
                if not self._scheduled(spec, scope, call):
                    continue
                self._fired[id(spec)] = fired + 1
                self._injected += 1
                return spec
            return None

    def _scheduled(self, spec: FaultSpec, scope: str, call: int) -> bool:
        if call in spec.nth_calls:
            return True
        if spec.probability <= 0.0:
            return False
        draw = random.Random(
            f"{self.seed}\x00{spec.site}\x00{scope}\x00{call}"
        ).random()
        return draw < spec.probability

    # -- injection ---------------------------------------------------------

    def maybe_raise(self, site: str) -> None:
        """Raise the scheduled fault for this call at *site*, if any."""
        spec = self.decide(site)
        if spec is None or spec.kind == "corrupt":
            return
        self._record(spec)
        if spec.kind == "hang":
            from repro.simcore.context import current_clock

            current_clock().advance_ms(spec.hang_ms)
            raise FaultHang(site, spec.hang_ms)
        message = spec.message or f"injected fault at {site}"
        if spec.exc is not None:
            raise spec.exc(message)
        raise FaultInjected(site, message=message, transient=spec.transient)

    def maybe_corrupt(self, site: str, text: str) -> str:
        """*text*, truncated mid-payload when a corrupt fault is scheduled."""
        spec = self.decide(site)
        if spec is None or spec.kind != "corrupt":
            return text
        self._record(spec)
        return text[: len(text) // 2]

    @staticmethod
    def _record(spec: FaultSpec) -> None:
        from repro.observe import METRICS, span

        METRICS.counter("faults.injected").inc()
        with span("fault.injected", category="faults",
                  site=spec.site, scope=current_scope(), kind=spec.kind):
            pass


# -- the installed plane + experiment scope ---------------------------------

_active_lock = threading.Lock()
_active: Optional[FaultPlane] = None
_scopes = threading.local()


def install(plane: FaultPlane) -> FaultPlane:
    """Make *plane* the process-wide active plane (returns it)."""
    global _active
    with _active_lock:
        _active = plane
    return plane


def deactivate() -> None:
    """Remove the active plane; every site becomes a no-op again."""
    global _active
    with _active_lock:
        _active = None


def active_plane() -> Optional[FaultPlane]:
    with _active_lock:
        return _active


@contextmanager
def activated(plane: FaultPlane) -> Iterator[FaultPlane]:
    """Install *plane* for the duration of the block, then deactivate."""
    install(plane)
    try:
        yield plane
    finally:
        deactivate()


def current_scope() -> str:
    """The thread's current fault scope ('' outside any experiment)."""
    return getattr(_scopes, "value", "")


@contextmanager
def experiment_scope(name: str) -> Iterator[None]:
    """Scope fault decisions on this thread to experiment *name*."""
    previous = getattr(_scopes, "value", "")
    _scopes.value = name
    try:
        yield
    finally:
        _scopes.value = previous


@contextmanager
def fault_site(site: str) -> Iterator[None]:
    """Declare a named injection site around the ``with`` body.

    A no-op (no RNG, no metrics, no spans) unless a plane is installed.
    """
    plane = active_plane()
    if plane is not None:
        plane.maybe_raise(site)
    yield


def corrupt_text(site: str, text: str) -> str:
    """*text*, possibly truncated by an active corrupt fault at *site*."""
    plane = active_plane()
    if plane is None:
        return text
    return plane.maybe_corrupt(site, text)
