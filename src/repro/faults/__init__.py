"""Deterministic fault injection + the chaos harness.

The paper's §5 claim is graceful degradation -- Lupine keeps working when
unikernel assumptions break.  This package is how the reproduction holds
itself to the same standard: :mod:`repro.faults.plane` is a seeded,
deterministic fault-injection plane wired into every layer that has a
natural failure mode (build cache, result cache, kernel builder, monitor
guest checks, the boot simulator, experiment bodies), and
:mod:`repro.faults.chaos` is the ``repro-lupine chaos`` harness that runs
the full experiment suite under a seeded fault schedule and asserts the
resilience invariants (a complete manifest always lands, same seed =>
byte-identical run, zero faults => byte-identical to a fault-free run).

Usage from library code::

    from repro.faults import fault_site

    with fault_site("buildcache.factory"):
        artifact = factory()

With no plane installed the site is a strict no-op.  See
``docs/RESILIENCE.md`` for the site catalogue and semantics.
"""

from repro.faults.plane import (
    FaultHang,
    FaultInjected,
    FaultPlane,
    FaultSpec,
    activated,
    active_plane,
    corrupt_text,
    current_scope,
    deactivate,
    experiment_scope,
    fault_site,
    install,
)

__all__ = [
    "FaultHang",
    "FaultInjected",
    "FaultPlane",
    "FaultSpec",
    "activated",
    "active_plane",
    "corrupt_text",
    "current_scope",
    "deactivate",
    "experiment_scope",
    "fault_site",
    "install",
]
