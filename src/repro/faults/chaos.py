"""The chaos harness behind ``repro-lupine chaos``.

Runs the experiment suite under a seeded fault schedule and asserts the
resilience invariants the fault plane + harness are supposed to provide:

1. **Completion.** Every selected experiment ends with a definite status
   (``ok``/``cache_hit``/``failed``/``timed_out``) and the run manifest,
   ``trace.json`` and ``metrics.json`` always land -- however many
   experiments fail.
2. **Determinism.** Two runs with the same seed produce byte-identical
   artifacts (at ``jobs=1``; with ``jobs>1`` trace/metrics interleaving
   is scheduler-dependent, so the gate falls back to comparing statuses,
   outputs and rendered artifacts).
3. **Atomicity.** No stray ``*.tmp`` files survive a run: every durable
   write went through :func:`repro.core.atomicio.atomic_write_text`.

Each chaos invocation performs ``runs`` (default 2) identical sub-runs
into ``<output_dir>/run-a``, ``run-b``, ...  A sub-run resets process
state (build cache, tracer, metrics), installs a deterministic
:class:`~repro.observe.tracer.TickClock` as the host clock so wall times
are reproducible, installs the seeded schedule, then executes the suite
twice into the same directory -- a cold pass and a warm pass, so the
result-cache *load* path (and its corrupt fault) is exercised too.

The zero-fault invariant ("no plane installed => byte-identical to
today's harness") is held by the existing warm-run perf gate in
``tools/check.sh``, which regresses a fault-free run against
``benchmarks/baseline/metrics.json``.
"""

from __future__ import annotations

import json
import pathlib
import shutil
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import faults
from repro.faults.plane import FaultPlane

#: Simulated/host deadline for one experiment during chaos runs (ms).
CHAOS_DEADLINE_MS = 120_000.0

#: Hang faults advance the simulated clock this far -- past the deadline.
CHAOS_HANG_MS = 180_000.0

#: Statuses a finished experiment may carry.
KNOWN_STATUSES = ("ok", "cache_hit", "failed", "timed_out")

#: The resilience counters the chaos report surfaces.
REPORT_COUNTERS = (
    "faults.injected", "harness.retries", "harness.failures",
    "harness.timeouts",
)


def default_schedule(seed: int) -> FaultPlane:
    """The stock chaos schedule: every wired site, mixed fault kinds.

    Probabilities are deliberately moderate -- most experiments should
    recover via retry, a few should end ``failed``/``timed_out`` -- and
    every decision is deterministic in ``(seed, site, scope, call)``.
    """
    from repro.vmm.monitor import MonitorError

    plane = FaultPlane(seed=seed)
    plane.configure("experiment.run", probability=0.08,
                    message="injected flaky experiment body")
    plane.configure("kbuild.build", probability=0.10,
                    message="injected transient kernel build failure")
    plane.configure("buildcache.factory", probability=0.05,
                    message="injected build-cache factory failure")
    plane.configure("resultcache.store", probability=0.05,
                    message="injected result-cache store failure")
    plane.configure("resultcache.load", probability=0.15, kind="corrupt")
    plane.configure("boot.boot", probability=0.02, kind="hang",
                    hang_ms=CHAOS_HANG_MS)
    plane.configure("vmm.check_guest", probability=0.01, transient=False,
                    exc=MonitorError,
                    message="injected driverless-guest boot crash")
    return plane


@dataclass
class ChaosRun:
    """One sub-run's observable outcome."""

    output_dir: pathlib.Path
    statuses: Dict[str, str]
    counters: Dict[str, int]
    files: Dict[str, bytes]


@dataclass
class ChaosReport:
    """Everything one chaos invocation produced."""

    seed: int
    jobs: int
    runs: List[ChaosRun] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [f"chaos: seed={self.seed} jobs={self.jobs} "
                 f"runs={len(self.runs)}"]
        if self.runs:
            first = self.runs[0]
            by_status: Dict[str, int] = {}
            for status in first.statuses.values():
                by_status[status] = by_status.get(status, 0) + 1
            lines.append(
                "  statuses     : " + ", ".join(
                    f"{status}={count}"
                    for status, count in sorted(by_status.items())
                )
            )
            for name in REPORT_COUNTERS:
                lines.append(
                    f"  {name:<22}: {first.counters.get(name, 0)}"
                )
            abnormal = {
                name: status for name, status in first.statuses.items()
                if status not in ("ok", "cache_hit")
            }
            for name, status in sorted(abnormal.items()):
                lines.append(f"  [{status:>9}] {name}")
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        lines.append(
            "  invariants   : " + ("all hold" if self.passed else "VIOLATED")
        )
        return "\n".join(lines)


def _reset_process_state() -> None:
    """Reset every process-level memo that feeds counters or spans.

    Anything that would let sub-run B reuse work sub-run A paid for
    (kernel build cache, kconfig resolution cache, fingerprint memos)
    breaks the same-seed byte-identity invariant, so each sub-run starts
    from the same process state.
    """
    from repro.core.buildcache import BUILD_CACHE
    from repro.harness.registry import reset_fingerprint_caches
    from repro.kconfig.rescache import RESOLUTION_CACHE
    from repro.observe import reset_observability

    BUILD_CACHE.reset()
    RESOLUTION_CACHE.reset()
    reset_fingerprint_caches()
    reset_observability()


def _snapshot_files(root: pathlib.Path) -> Dict[str, bytes]:
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*")) if path.is_file()
    }


def _one_run(
    seed: int,
    names: Optional[Sequence[str]],
    jobs: int,
    run_dir: pathlib.Path,
    violations: List[str],
) -> Optional[ChaosRun]:
    from repro.harness.runner import RetryPolicy, run_experiments
    from repro.observe import METRICS, TRACER
    from repro.observe.tracer import TickClock

    if run_dir.exists():
        shutil.rmtree(run_dir)
    label = run_dir.name
    policy = RetryPolicy(max_attempts=3, backoff_ms=50.0,
                         deadline_ms=CHAOS_DEADLINE_MS)
    _reset_process_state()
    saved_clock = TRACER.clock
    TRACER.clock = TickClock(step_us=1000.0)
    try:
        with faults.activated(default_schedule(seed)):
            common = dict(
                names=names, jobs=jobs, output_dir=run_dir,
                cache_dir=run_dir / "result-cache", retry_policy=policy,
            )
            run_experiments(**common)          # cold pass
            warm = run_experiments(**common)   # warm pass: exercises loads
    except Exception as error:  # noqa: BLE001 -- the invariant under test
        violations.append(
            f"{label}: harness raised {type(error).__name__}: {error}"
        )
        return None
    finally:
        TRACER.clock = saved_clock
    counters = {
        name: value
        for name, value in METRICS.to_dict()["counters"].items()
        if name in REPORT_COUNTERS
    }
    statuses = {
        entry.name: entry.status for entry in warm.telemetry.experiments
    }

    for artifact in ("run_manifest.json", "trace.json", "metrics.json"):
        path = run_dir / artifact
        if not path.is_file():
            violations.append(f"{label}: {artifact} was not written")
            continue
        try:
            json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            violations.append(f"{label}: {artifact} is not valid JSON")
    for name, status in statuses.items():
        if status not in KNOWN_STATUSES:
            violations.append(
                f"{label}: experiment {name} has indefinite "
                f"status {status!r}"
            )
    stray = [p for p in _snapshot_files(run_dir) if p.endswith(".tmp")]
    if stray:
        violations.append(f"{label}: stray temp files {stray}")
    return ChaosRun(
        output_dir=run_dir,
        statuses=statuses,
        counters=counters,
        files=_snapshot_files(run_dir),
    )


def run_chaos(
    seed: int,
    names: Optional[Sequence[str]] = None,
    jobs: int = 1,
    output_dir: Optional[pathlib.Path] = None,
    runs: int = 2,
) -> ChaosReport:
    """Run the chaos gate (see module docstring); never raises on faults."""
    from repro.harness.runner import default_output_dir

    if output_dir is None:
        output_dir = default_output_dir() / "chaos"
    output_dir = pathlib.Path(output_dir)
    report = ChaosReport(seed=seed, jobs=max(1, int(jobs)))
    for index in range(max(1, int(runs))):
        sub = output_dir / f"run-{chr(ord('a') + index)}"
        chaos_run = _one_run(seed, names, report.jobs, sub,
                             report.violations)
        if chaos_run is not None:
            report.runs.append(chaos_run)

    if len(report.runs) >= 2:
        first = report.runs[0]
        for other in report.runs[1:]:
            if first.statuses != other.statuses:
                report.violations.append(
                    f"{other.output_dir.name}: statuses diverge from "
                    f"{first.output_dir.name} under the same seed"
                )
            if report.jobs == 1:
                compared = (set(first.files) | set(other.files))
            else:
                # Trace/metrics interleaving is scheduler-dependent at
                # jobs>1; rendered outputs must still be identical.
                compared = {
                    path for path in (set(first.files) | set(other.files))
                    if path.endswith((".txt", ".dat"))
                }
            for path in sorted(compared):
                if first.files.get(path) != other.files.get(path):
                    report.violations.append(
                        f"artifact {path} differs between "
                        f"{first.output_dir.name} and "
                        f"{other.output_dir.name} (same seed "
                        f"{seed})"
                    )
    return report
