"""``olddefconfig``-style configuration resolution.

Given an option tree and a *requested* set of values (a config fragment), the
resolver computes a complete, dependency-consistent configuration, applying
the same rules the kernel's ``scripts/kconfig/conf`` applies:

1. options whose ``depends on`` evaluates to ``n`` are demoted to ``n``;
2. ``select`` forces its target to at least the selecting option's value,
   even against the target's own dependencies (recorded as a violation,
   exactly as kconfig warns);
3. unrequested visible options take their ``default`` (or ``n``);
4. tristate values are clamped to bool for bool options.

Resolution iterates to a fixpoint; Kconfig guarantees termination because
values only move monotonically once requests are pinned, and we additionally
cap the iteration count defensively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Set, Tuple

from repro.kconfig.expr import Tristate
from repro.kconfig.model import ConfigOption, KconfigTree, OptionType, UnknownOptionError

_MAX_ITERATIONS = 64


class ResolutionError(RuntimeError):
    """Raised when resolution cannot reach a fixpoint (should not happen)."""


@dataclass(frozen=True)
class ResolvedConfig:
    """An immutable, fully resolved kernel configuration.

    ``values`` holds every symbolic option's tristate; ``enabled`` is the
    frozen set of option names with value > ``n`` (the paper's "selected
    options" unit of account).
    """

    tree: KconfigTree
    values: Mapping[str, Tristate]
    requested: Mapping[str, Tristate]
    demoted: Mapping[str, str]
    select_violations: Tuple[Tuple[str, str], ...]
    name: str = ""

    @property
    def enabled(self) -> FrozenSet[str]:
        return frozenset(
            name for name, value in self.values.items() if value is not Tristate.NO
        )

    @property
    def builtin(self) -> FrozenSet[str]:
        return frozenset(
            name for name, value in self.values.items() if value is Tristate.YES
        )

    @property
    def modules(self) -> FrozenSet[str]:
        return frozenset(
            name for name, value in self.values.items() if value is Tristate.MODULE
        )

    def __contains__(self, name: str) -> bool:
        return self.values.get(name, Tristate.NO) is not Tristate.NO

    def value(self, name: str) -> Tristate:
        return self.values.get(name, Tristate.NO)

    def __len__(self) -> int:
        return len(self.enabled)

    def options(self) -> List[ConfigOption]:
        """The enabled options, in tree order."""
        return [self.tree[name] for name in self.tree.names() if name in self]

    def with_name(self, name: str) -> "ResolvedConfig":
        return ResolvedConfig(
            tree=self.tree,
            values=self.values,
            requested=self.requested,
            demoted=self.demoted,
            select_violations=self.select_violations,
            name=name,
        )

    def diff(self, other: "ResolvedConfig") -> Tuple[FrozenSet[str], FrozenSet[str]]:
        """Return ``(only_in_self, only_in_other)`` enabled-option sets."""
        return self.enabled - other.enabled, other.enabled - self.enabled


class Resolver:
    """Resolves requested option sets against a :class:`KconfigTree`."""

    def __init__(self, tree: KconfigTree, strict: bool = True):
        self.tree = tree
        self.strict = strict

    def resolve(
        self,
        requested: Mapping[str, Tristate],
        name: str = "",
    ) -> ResolvedConfig:
        """Resolve *requested* into a complete configuration.

        In strict mode, requesting an option the tree does not define raises
        :class:`UnknownOptionError`; otherwise unknown requests are dropped.
        """
        from repro.observe import METRICS, span

        with span("kconfig.resolve", category="kconfig",
                  config=name, requested=len(requested)) as record:
            pinned = self._validate_requests(requested)
            values = self._initial_values(pinned)
            demoted: Dict[str, str] = {}
            select_violations: Set[Tuple[str, str]] = set()

            iterations = 0
            for _ in range(_MAX_ITERATIONS):
                iterations += 1
                changed = False
                # select overrides depends-on in kconfig, so compute the set
                # of select-forced targets first and exempt them from
                # demotion.
                forced = self._forced_targets(values)
                changed |= self._apply_dependencies(
                    values, pinned, demoted, forced
                )
                changed |= self._apply_selects(
                    values, demoted, select_violations
                )
                changed |= self._apply_defaults(values, pinned)
                changed |= self._apply_choices(values, pinned, demoted)
                if not changed:
                    break
            else:
                raise ResolutionError("configuration did not converge")
            record.set_attr("iterations", iterations)
            METRICS.counter("kconfig.resolutions").inc()
            METRICS.histogram(
                "kconfig.resolve.iterations",
                (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
            ).observe(iterations)

        # Re-check select-forced options against their dependencies one last
        # time so violations caused by late demotions are recorded.
        for source_name, target_name in self._select_edges(values):
            target = self.tree[target_name]
            if target.depends_on.evaluate(values) is Tristate.NO:
                select_violations.add((source_name, target_name))

        return ResolvedConfig(
            tree=self.tree,
            values=dict(values),
            requested=dict(pinned),
            demoted=dict(demoted),
            select_violations=tuple(sorted(select_violations)),
            name=name,
        )

    def resolve_names(self, names: Iterable[str], name: str = "") -> ResolvedConfig:
        """Convenience: resolve a plain iterable of option names, all ``y``."""
        return self.resolve({n: Tristate.YES for n in names}, name=name)

    # -- internals ---------------------------------------------------------

    def _validate_requests(
        self, requested: Mapping[str, Tristate]
    ) -> Dict[str, Tristate]:
        pinned: Dict[str, Tristate] = {}
        for option_name, value in requested.items():
            option = self.tree.get(option_name)
            if option is None:
                if self.strict:
                    raise UnknownOptionError(option_name)
                continue
            if not option.option_type.is_symbolic:
                continue
            if option.option_type is OptionType.BOOL and value is Tristate.MODULE:
                value = Tristate.YES
            pinned[option_name] = value
        return pinned

    def _initial_values(self, pinned: Mapping[str, Tristate]) -> Dict[str, Tristate]:
        values = {
            option.name: Tristate.NO
            for option in self.tree
            if option.option_type.is_symbolic
        }
        values.update(pinned)
        return values

    def _forced_targets(self, values: Dict[str, Tristate]) -> Set[str]:
        """Names currently forced on by an enabled option's select."""
        return {target for _, target in self._select_edges(values)}

    def _select_edges(self, values: Dict[str, Tristate]):
        """(source, target) select edges whose source is enabled."""
        for option in self.tree:
            if values.get(option.name, Tristate.NO) is Tristate.NO:
                continue
            for target_name in option.selects:
                target = self.tree.get(target_name)
                if target is not None and target.option_type.is_symbolic:
                    yield option.name, target_name

    def _apply_dependencies(
        self,
        values: Dict[str, Tristate],
        pinned: Mapping[str, Tristate],
        demoted: Dict[str, str],
        forced: Set[str],
    ) -> bool:
        changed = False
        for option in self.tree:
            if not option.option_type.is_symbolic:
                continue
            current = values[option.name]
            if current is Tristate.NO:
                continue
            if option.name in forced:
                continue
            visible = option.depends_on.evaluate(values)
            if visible is Tristate.NO:
                values[option.name] = Tristate.NO
                demoted[option.name] = str(option.depends_on)
                changed = True
            elif visible is Tristate.MODULE and current is Tristate.YES:
                if option.option_type is OptionType.TRISTATE:
                    values[option.name] = Tristate.MODULE
                    changed = True
        return changed

    def _apply_selects(
        self,
        values: Dict[str, Tristate],
        demoted: Dict[str, str],
        select_violations: Set[Tuple[str, str]],
    ) -> bool:
        changed = False
        for option in self.tree:
            source_value = values.get(option.name, Tristate.NO)
            if source_value is Tristate.NO:
                continue
            for target_name in option.selects:
                target = self.tree.get(target_name)
                if target is None or not target.option_type.is_symbolic:
                    continue
                forced = source_value
                if target.option_type is OptionType.BOOL:
                    forced = Tristate.YES
                if values[target_name] < forced:
                    values[target_name] = forced
                    demoted.pop(target_name, None)
                    changed = True
                    if target.depends_on.evaluate(values) is Tristate.NO:
                        select_violations.add((option.name, target_name))
        return changed

    def _apply_choices(
        self,
        values: Dict[str, Tristate],
        pinned: Mapping[str, Tristate],
        demoted: Dict[str, str],
    ) -> bool:
        """Enforce choice-group exclusivity and defaults.

        Among enabled members the winner is the first *requested* one (in
        request order), else the first enabled in member order; everyone
        else is demoted.  An all-off choice takes its default member.
        """
        changed = False
        for choice in self.tree.choices():
            enabled_members = [
                m for m in choice.members
                if values.get(m, Tristate.NO) is not Tristate.NO
            ]
            if not enabled_members:
                default = choice.default_member
                if default is not None and default not in pinned:
                    option = self.tree[default]
                    if option.depends_on.evaluate(values) is not Tristate.NO:
                        values[default] = Tristate.YES
                        changed = True
                continue
            requested_members = [
                m for m in pinned
                if m in choice.members
                and pinned[m] is not Tristate.NO
                and values.get(m, Tristate.NO) is not Tristate.NO
            ]
            winner = (requested_members or enabled_members)[0]
            for member in enabled_members:
                if member is not winner and member != winner:
                    values[member] = Tristate.NO
                    demoted[member] = f"choice {choice.name}: {winner} wins"
                    changed = True
        return changed

    def _apply_defaults(
        self,
        values: Dict[str, Tristate],
        pinned: Mapping[str, Tristate],
    ) -> bool:
        changed = False
        for option in self.tree:
            if not option.option_type.is_symbolic or option.default is None:
                continue
            if option.name in pinned or values[option.name] is not Tristate.NO:
                continue
            if option.depends_on.evaluate(values) is Tristate.NO:
                continue
            value = option.default.evaluate(values)
            if option.option_type is OptionType.BOOL and value is Tristate.MODULE:
                value = Tristate.YES
            if value is not Tristate.NO:
                values[option.name] = value
                changed = True
        return changed


def enabled_closure(tree: KconfigTree, names: Iterable[str]) -> FrozenSet[str]:
    """Transitive closure of *names* under ``select`` edges.

    Useful for quick what-if queries without running a full resolution.
    """
    closure: Set[str] = set()
    frontier = [name for name in names if name in tree]
    while frontier:
        current = frontier.pop()
        if current in closure:
            continue
        closure.add(current)
        frontier.extend(
            target for target in tree[current].selects if target not in closure
        )
    return frozenset(closure)
