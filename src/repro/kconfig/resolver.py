"""``olddefconfig``-style configuration resolution.

Given an option tree and a *requested* set of values (a config fragment), the
resolver computes a complete, dependency-consistent configuration, applying
the same rules the kernel's ``scripts/kconfig/conf`` applies:

1. options whose ``depends on`` evaluates to ``n`` are demoted to ``n``;
2. ``select`` forces its target to at least the selecting option's value,
   even against the target's own dependencies (recorded as a violation,
   exactly as kconfig warns);
3. unrequested visible options take their ``default`` (or ``n``);
4. tristate values are clamped to bool for bool options.

Resolution iterates to a fixpoint; Kconfig guarantees termination because
values only move monotonically once requests are pinned, and we additionally
cap the iteration count defensively.

Two engines implement the fixpoint:

``strategy="worklist"`` (the default)
    An incremental engine over the per-tree
    :class:`~repro.kconfig.index.ResolutionIndex`.  After the seed pass it
    only revisits options whose *inputs* changed — per-phase dirty sets
    driven by the reverse dependency indices — and evaluates compiled
    expression programs instead of re-walking ASTs.  It supports
    **warm-start derivation** (:meth:`Resolver.resolve_from`): seeding from
    an already-resolved base configuration and dirtying only the cone
    reachable from the request delta, which is how the per-application
    variants derive from the shared ``lupine-base`` fixpoint.  Worklist
    results are memoized process-wide in
    :data:`~repro.kconfig.rescache.RESOLUTION_CACHE`.

``strategy="sweep"``
    The original four full-tree passes per iteration, evaluating option
    ASTs directly.  It shares no acceleration structures with the worklist
    engine, which makes it the independent oracle for differential testing
    (``tests/kconfig/test_resolver_differential.py``); it never consults
    the resolution cache.

Both engines emit the same observable result and publish
``kconfig.resolve.visited_options`` (phase-loop bodies executed) and
``kconfig.expr.evals`` (top-level dependency/default evaluations), which is
what the ``bench-resolve`` benchmark and the ``regress`` gate compare.

**Worklist scheduling & sweep parity.**  A sweep pass walks positions in
tree order and *sees its own earlier mutations*: a change made while
processing position 5 is visible when the same pass reaches position 9,
but a change affecting position 3 waits for the next iteration.  The
worklist engine reproduces that trajectory exactly — each pass drains its
dirty set in ascending position order; a position dirtied mid-pass is
processed in the *same* pass if it lies ahead of the cursor and deferred
to the next iteration otherwise.  The select-forced set is likewise
snapshotted at iteration start (as ``_forced_targets`` does in the sweep)
by buffering enable/disable transitions and applying them as counted
deltas between iterations.  This makes the two engines agree not only on
the fixpoint but on the demotion *reasons*, which record which rule fired
last.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.kconfig.expr import Tristate
from repro.kconfig.index import ResolutionIndex
from repro.kconfig.model import (
    ConfigOption,
    KconfigTree,
    OptionType,
    UnknownOptionError,
)
from repro.kconfig.rescache import RESOLUTION_CACHE

_MAX_ITERATIONS = 64

#: Fixed buckets for the per-resolution iteration-count histogram.
_ITERATION_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

_STRATEGIES = ("worklist", "sweep")


class ResolutionError(RuntimeError):
    """Raised when resolution cannot reach a fixpoint (should not happen)."""


@dataclass(frozen=True)
class ResolvedConfig:
    """An immutable, fully resolved kernel configuration.

    ``values`` holds every symbolic option's tristate; ``enabled`` is the
    frozen set of option names with value > ``n`` (the paper's "selected
    options" unit of account).
    """

    tree: KconfigTree
    values: Mapping[str, Tristate]
    requested: Mapping[str, Tristate]
    demoted: Mapping[str, str]
    select_violations: Tuple[Tuple[str, str], ...]
    name: str = ""
    #: Options whose value changed at least once after request seeding
    #: (demotions, select forcing, fired defaults, choice arbitration).
    #: Warm-start uses this to spot inputs whose *intermediate* values a
    #: replay would otherwise miss; empty on hand-built configs.
    churned: FrozenSet[str] = frozenset()

    @property
    def enabled(self) -> FrozenSet[str]:
        return frozenset(
            name for name, value in self.values.items() if value is not Tristate.NO
        )

    @property
    def builtin(self) -> FrozenSet[str]:
        return frozenset(
            name for name, value in self.values.items() if value is Tristate.YES
        )

    @property
    def modules(self) -> FrozenSet[str]:
        return frozenset(
            name for name, value in self.values.items() if value is Tristate.MODULE
        )

    def __contains__(self, name: str) -> bool:
        return self.values.get(name, Tristate.NO) is not Tristate.NO

    def value(self, name: str) -> Tristate:
        return self.values.get(name, Tristate.NO)

    def __len__(self) -> int:
        return len(self.enabled)

    def options(self) -> List[ConfigOption]:
        """The enabled options, in tree order."""
        return [self.tree[name] for name in self.tree.names() if name in self]

    def with_name(self, name: str) -> "ResolvedConfig":
        return ResolvedConfig(
            tree=self.tree,
            values=self.values,
            requested=self.requested,
            demoted=self.demoted,
            select_violations=self.select_violations,
            name=name,
            churned=self.churned,
        )

    def diff(self, other: "ResolvedConfig") -> Tuple[FrozenSet[str], FrozenSet[str]]:
        """Return ``(only_in_self, only_in_other)`` enabled-option sets."""
        return self.enabled - other.enabled, other.enabled - self.enabled


class _SweepEngine:
    """The original full-tree fixpoint: four sweeps per iteration.

    Kept verbatim (modulo instrumentation) as the differential-testing
    oracle; it deliberately evaluates option ASTs and walks the tree
    rather than using the resolution index, so an index bug cannot hide
    from the differential test.
    """

    def __init__(self, tree: KconfigTree, pinned: Mapping[str, Tristate]):
        self.tree = tree
        self.pinned = pinned
        self.values: Dict[str, Tristate] = {
            option.name: Tristate.NO
            for option in tree
            if option.option_type.is_symbolic
        }
        self.values.update(pinned)
        self.demoted: Dict[str, str] = {}
        self.violations: Set[Tuple[str, str]] = set()
        self.churned: Set[str] = set()
        self.visited = 0
        self.evals = 0

    def run(self) -> int:
        values, pinned = self.values, self.pinned
        demoted, violations = self.demoted, self.violations
        iterations = 0
        for _ in range(_MAX_ITERATIONS):
            iterations += 1
            changed = False
            # select overrides depends-on in kconfig, so compute the set
            # of select-forced targets first and exempt them from
            # demotion.
            forced = self._forced_targets(values)
            changed |= self._apply_dependencies(values, demoted, forced)
            changed |= self._apply_selects(values, demoted, violations)
            changed |= self._apply_defaults(values, pinned)
            changed |= self._apply_choices(values, pinned, demoted)
            if not changed:
                break
        else:
            raise ResolutionError("configuration did not converge")

        # Re-check select-forced options against their dependencies one last
        # time so violations caused by late demotions are recorded.
        for source_name, target_name in self._select_edges(values):
            target = self.tree[target_name]
            self.evals += 1
            if target.depends_on.evaluate(values) is Tristate.NO:
                violations.add((source_name, target_name))

        # A demotion record can go stale: selects pop their target's entry
        # when re-forcing it, but an option re-enabled by its *default*
        # (after the blocking dependency itself got enabled) kept its old
        # record.  Resolution rules only ever record reasons for options
        # that end up off, so drop records for enabled options.
        self.demoted = {
            name: reason
            for name, reason in demoted.items()
            if values[name] is Tristate.NO
        }
        return iterations

    def _forced_targets(self, values: Dict[str, Tristate]) -> Set[str]:
        """Names currently forced on by an enabled option's select."""
        return {target for _, target in self._select_edges(values)}

    def _select_edges(
        self, values: Dict[str, Tristate]
    ) -> Iterator[Tuple[str, str]]:
        """(source, target) select edges whose source is enabled."""
        for option in self.tree:
            if values.get(option.name, Tristate.NO) is Tristate.NO:
                continue
            for target_name in option.selects:
                target = self.tree.get(target_name)
                if target is not None and target.option_type.is_symbolic:
                    yield option.name, target_name

    def _apply_dependencies(
        self,
        values: Dict[str, Tristate],
        demoted: Dict[str, str],
        forced: Set[str],
    ) -> bool:
        changed = False
        for option in self.tree:
            if not option.option_type.is_symbolic:
                continue
            self.visited += 1
            current = values[option.name]
            if current is Tristate.NO:
                continue
            if option.name in forced:
                continue
            self.evals += 1
            visible = option.depends_on.evaluate(values)
            if visible is Tristate.NO:
                values[option.name] = Tristate.NO
                demoted[option.name] = str(option.depends_on)
                self.churned.add(option.name)
                changed = True
            elif visible is Tristate.MODULE and current is Tristate.YES:
                if option.option_type is OptionType.TRISTATE:
                    values[option.name] = Tristate.MODULE
                    self.churned.add(option.name)
                    changed = True
        return changed

    def _apply_selects(
        self,
        values: Dict[str, Tristate],
        demoted: Dict[str, str],
        select_violations: Set[Tuple[str, str]],
    ) -> bool:
        changed = False
        for option in self.tree:
            if not option.option_type.is_symbolic:
                continue
            self.visited += 1
            source_value = values.get(option.name, Tristate.NO)
            if source_value is Tristate.NO:
                continue
            for target_name in option.selects:
                target = self.tree.get(target_name)
                if target is None or not target.option_type.is_symbolic:
                    continue
                forced = source_value
                if target.option_type is OptionType.BOOL:
                    forced = Tristate.YES
                if values[target_name] < forced:
                    values[target_name] = forced
                    demoted.pop(target_name, None)
                    self.churned.add(target_name)
                    changed = True
                    self.evals += 1
                    if target.depends_on.evaluate(values) is Tristate.NO:
                        select_violations.add((option.name, target_name))
        return changed

    def _apply_defaults(
        self,
        values: Dict[str, Tristate],
        pinned: Mapping[str, Tristate],
    ) -> bool:
        changed = False
        for option in self.tree:
            if not option.option_type.is_symbolic or option.default is None:
                continue
            self.visited += 1
            if option.name in pinned or values[option.name] is not Tristate.NO:
                continue
            self.evals += 1
            if option.depends_on.evaluate(values) is Tristate.NO:
                continue
            self.evals += 1
            value = option.default.evaluate(values)
            if option.option_type is OptionType.BOOL and value is Tristate.MODULE:
                value = Tristate.YES
            if value is not Tristate.NO:
                values[option.name] = value
                self.churned.add(option.name)
                changed = True
        return changed

    def _apply_choices(
        self,
        values: Dict[str, Tristate],
        pinned: Mapping[str, Tristate],
        demoted: Dict[str, str],
    ) -> bool:
        """Enforce choice-group exclusivity and defaults.

        Among enabled members the winner is the first *requested* one —
        request mappings preserve insertion order, so ties between
        several requested members go to whichever the caller asked for
        first — else the first enabled member in declaration order;
        everyone else is demoted.  An all-off choice takes its default
        member.
        """
        changed = False
        for choice in self.tree.choices():
            self.visited += 1
            enabled_members = [
                m for m in choice.members
                if values.get(m, Tristate.NO) is not Tristate.NO
            ]
            if not enabled_members:
                default = choice.default_member
                if default is not None and default not in pinned:
                    option = self.tree[default]
                    self.evals += 1
                    if option.depends_on.evaluate(values) is not Tristate.NO:
                        values[default] = Tristate.YES
                        self.churned.add(default)
                        changed = True
                continue
            requested_members = [
                m for m in pinned
                if m in choice.members
                and pinned[m] is not Tristate.NO
                and values.get(m, Tristate.NO) is not Tristate.NO
            ]
            winner = (requested_members or enabled_members)[0]
            for member in enabled_members:
                if member != winner:
                    values[member] = Tristate.NO
                    demoted[member] = f"choice {choice.name}: {winner} wins"
                    self.churned.add(member)
                    changed = True
        return changed


class _Worklist:
    """One phase's dirty set with sweep-order draining.

    ``pending`` holds positions to process the next time the phase runs.
    While a pass is draining, a touch *ahead* of the cursor joins the
    current pass (the sweep would see the mutation later in the same
    walk); a touch at or behind the cursor is deferred to the next
    iteration (the sweep would not revisit it until the next full pass).
    """

    __slots__ = ("pending", "_heap", "_in_heap", "_active", "_cursor")

    def __init__(self) -> None:
        self.pending: Set[int] = set()
        self._heap: List[int] = []
        self._in_heap: Set[int] = set()
        self._active = False
        self._cursor = -1

    def touch(self, position: int) -> None:
        if (
            self._active
            and position > self._cursor
            and position not in self._in_heap
        ):
            heapq.heappush(self._heap, position)
            self._in_heap.add(position)
        else:
            self.pending.add(position)

    def drain(self) -> Iterator[int]:
        """Yield scheduled positions in ascending order (one pass)."""
        heap = self._heap
        heap.clear()
        heap.extend(self.pending)
        heapq.heapify(heap)
        self._in_heap.clear()
        self._in_heap.update(self.pending)
        self.pending.clear()
        self._active = True
        try:
            while heap:
                position = heapq.heappop(heap)
                self._in_heap.discard(position)
                self._cursor = position
                yield position
        finally:
            self._active = False
            self._cursor = -1


class _WorklistEngine:
    """Incremental fixpoint over the resolution index (see module doc)."""

    def __init__(self, tree: KconfigTree, pinned: Mapping[str, Tristate]):
        index: ResolutionIndex = tree.resolution_index()
        self.tree = tree
        self.index = index
        self.pinned = pinned
        self.visited = 0
        self.evals = 0
        count = len(index.names)
        self.deps = _Worklist()
        self.sel = _Worklist()
        self.defaults = _Worklist()
        self.choices = _Worklist()
        #: Select-forced snapshot: per-target count of enabled selecting
        #: sources as of the last iteration boundary.
        self.forced_count = [0] * count
        self._enabled_snap = [False] * count
        self._forced_pending: Set[int] = set()
        self.changed = False
        self.values: Dict[str, Tristate] = {}
        self.demoted: Dict[str, str] = {}
        self.violations: Set[Tuple[str, str]] = set()
        self.churned: Set[str] = set()
        self._member_sets = [frozenset(c.members) for c in index.choices]

    # -- seeding -----------------------------------------------------------

    def run_cold(self) -> int:
        """Resolve from scratch: everything with a non-trivial rule is dirty."""
        index = self.index
        values = {name: Tristate.NO for name in index.names}
        values.update(self.pinned)
        self.values = values
        names = index.names
        for position in range(len(names)):
            if values[names[position]] is not Tristate.NO:
                self.deps.pending.add(position)
            if index.def_fn[position] is not None:
                self.defaults.pending.add(position)
        for position in index.has_selects:
            if values[names[position]] is not Tristate.NO:
                self.sel.pending.add(position)
        self.choices.pending.update(range(len(index.choices)))
        self._snapshot_forced()
        return self._fixpoint()

    def run_warm(self, base: ResolvedConfig) -> int:
        """Resolve by reusing *base*'s fixpoint outside the pins' cone.

        The engine's full request set replaces ``base.requested``.
        Every option the changed pins can influence -- transitively
        through dependency reads, default reads, select forcing and
        choice groups -- is reset to its cold seed and replayed; options
        outside that cone see exactly the same inputs under either
        request set, so their base values, demotion records and
        violations are reused as-is.  Merely dirtying the delta would
        not be enough: derived facts are sticky (a default, once fired,
        never un-fires), so stale cone state has to be torn down, not
        just re-checked.

        Replay also has to respect *trajectories*, not just final
        values: phase order means an option can read another's value
        mid-run before a select or default flips it (and demotions are
        irreversible).  Any option that churned during the base run and
        feeds the cone is therefore pulled into the cone itself, so the
        replay recomputes its trajectory instead of reading its final
        value; flat options (value never moved off its seed) are safe to
        read directly.
        """
        index = self.index
        names = index.names
        self.values = dict(base.values)
        old, new = base.requested, self.pinned
        delta = {
            name for name in old
            if name not in new or new[name] is not old[name]
        }
        delta.update(name for name in new if name not in old)
        seeds = {
            index.pos_of[name] for name in delta if name in index.pos_of
        }
        # Request *order* is semantic for choices (the first requested
        # member wins ties), so a reordering of member pins dirties the
        # whole group even when no pin value changed.
        for choice_index, members in enumerate(self._member_sets):
            old_sig = tuple(
                (name, old[name]) for name in old if name in members
            )
            new_sig = tuple(
                (name, new[name]) for name in new if name in members
            )
            if old_sig != new_sig:
                seeds.update(index.choice_members[choice_index])
        cone = self._influence_cone(seeds)
        churned_positions = {
            index.pos_of[name]
            for name in base.churned if name in index.pos_of
        }
        while True:
            suspects = [
                position for position in churned_positions - cone
                if any(r in cone for r in self._forward_edges(position))
            ]
            if not suspects:
                break
            cone = self._influence_cone(suspects, cone)
        cone_names = {names[position] for position in cone}
        for position in sorted(cone):
            name = names[position]
            self.values[name] = new.get(name, Tristate.NO)
            if self.values[name] is not Tristate.NO:
                self.deps.pending.add(position)
                if index.selects_of[position]:
                    self.sel.pending.add(position)
            if index.def_fn[position] is not None:
                self.defaults.pending.add(position)
            # Sources outside the cone keep forcing reset targets inside
            # it; requeue them so the select phase re-asserts the force.
            for source in index.rev_sel[position]:
                if self.values[names[source]] is not Tristate.NO:
                    self.sel.pending.add(source)
            for choice_index in index.choice_readers[position]:
                self.choices.pending.add(choice_index)
        self.demoted = {
            name: reason for name, reason in base.demoted.items()
            if name not in cone_names
        }
        self.violations = {
            (source, target) for source, target in base.select_violations
            if source not in cone_names and target not in cone_names
        }
        self._snapshot_forced()
        iterations = self._fixpoint()
        # Churn outside the cone carries over (identical trajectories);
        # inside the cone the replay re-derived it from scratch.
        self.churned |= set(base.churned) - cone_names
        return iterations

    def _forward_edges(self, position: int) -> Iterator[int]:
        """Positions whose value *position* can influence directly."""
        index = self.index
        yield from index.rev_dep[position]
        yield from index.rev_def[position]
        yield from index.selects_of[position]
        for choice_index in index.choice_readers[position]:
            yield from index.choice_members[choice_index]

    def _influence_cone(
        self, seeds: Iterable[int], cone: Optional[Set[int]] = None
    ) -> Set[int]:
        """Forward closure of *seeds* over every influence edge: options
        whose dependency or default reads a cone member, targets a cone
        member selects, and all members of choice groups a cone member
        feeds.  Extends *cone* in place when given."""
        if cone is None:
            cone = set()
        stack = list(seeds)
        while stack:
            position = stack.pop()
            if position in cone:
                continue
            cone.add(position)
            stack.extend(self._forward_edges(position))
        return cone

    def _snapshot_forced(self) -> None:
        index, values, names = self.index, self.values, self.index.names
        for position in index.has_selects:
            enabled = values[names[position]] is not Tristate.NO
            self._enabled_snap[position] = enabled
            if enabled:
                for target in index.selects_of[position]:
                    self.forced_count[target] += 1
        self._forced_pending.clear()

    def _apply_forced_deltas(self) -> None:
        """Fold buffered source enable/disable flips into the snapshot.

        Runs only between iterations, mirroring the sweep's
        ``_forced_targets`` recomputation at the top of each loop.  A
        target whose forced status flips gets its dependency rule
        re-checked.
        """
        if not self._forced_pending:
            return
        index, values, names = self.index, self.values, self.index.names
        counts = self.forced_count
        for position in sorted(self._forced_pending):
            enabled = values[names[position]] is not Tristate.NO
            if enabled == self._enabled_snap[position]:
                continue
            self._enabled_snap[position] = enabled
            delta = 1 if enabled else -1
            for target in index.selects_of[position]:
                was_forced = counts[target] > 0
                counts[target] += delta
                if (counts[target] > 0) != was_forced:
                    self.deps.touch(target)
        self._forced_pending.clear()

    # -- dirty propagation -------------------------------------------------

    def _set_value(self, position: int, value: Tristate) -> None:
        index = self.index
        self.values[index.names[position]] = value
        self.churned.add(index.names[position])
        self.changed = True
        self.deps.touch(position)
        for reader in index.rev_dep[position]:
            self.deps.touch(reader)
        if index.selects_of[position]:
            self._forced_pending.add(position)
            self.sel.touch(position)
        for source in index.rev_sel[position]:
            self.sel.touch(source)
        if index.def_fn[position] is not None:
            self.defaults.touch(position)
        for reader in index.rev_def[position]:
            self.defaults.touch(reader)
        for choice_index in index.choice_readers[position]:
            self.choices.touch(choice_index)

    # -- phase actions (each mirrors one sweep body) -----------------------

    def _deps_action(self, position: int) -> None:
        index = self.index
        name = index.names[position]
        current = self.values[name]
        if current is Tristate.NO:
            return
        if self.forced_count[position] > 0:
            return
        dep = index.dep_fn[position]
        if dep is None:
            return
        self.evals += 1
        visible = dep(self.values)
        if visible is Tristate.NO:
            self._set_value(position, Tristate.NO)
            self.demoted[name] = index.dep_reason[position]
        elif (
            visible is Tristate.MODULE
            and current is Tristate.YES
            and index.is_tristate[position]
        ):
            self._set_value(position, Tristate.MODULE)

    def _sel_action(self, position: int) -> None:
        index, values = self.index, self.values
        source_value = values[index.names[position]]
        if source_value is Tristate.NO:
            return
        for target in index.selects_of[position]:
            forced = Tristate.YES if index.is_bool[target] else source_value
            target_name = index.names[target]
            if values[target_name] < forced:
                self._set_value(target, forced)
                self.demoted.pop(target_name, None)
                dep = index.dep_fn[target]
                if dep is not None:
                    self.evals += 1
                    if dep(values) is Tristate.NO:
                        self.violations.add(
                            (index.names[position], target_name)
                        )

    def _def_action(self, position: int) -> None:
        index = self.index
        default = index.def_fn[position]
        if default is None:
            return
        name = index.names[position]
        if name in self.pinned or self.values[name] is not Tristate.NO:
            return
        dep = index.dep_fn[position]
        if dep is not None:
            self.evals += 1
            if dep(self.values) is Tristate.NO:
                return
        self.evals += 1
        value = default(self.values)
        if index.is_bool[position] and value is Tristate.MODULE:
            value = Tristate.YES
        if value is not Tristate.NO:
            self._set_value(position, value)

    def _choice_action(self, choice_index: int) -> None:
        index, values, names = self.index, self.values, self.index.names
        enabled_members = [
            member for member in index.choice_members[choice_index]
            if values[names[member]] is not Tristate.NO
        ]
        if not enabled_members:
            default = index.choice_default[choice_index]
            if default is not None and names[default] not in self.pinned:
                dep = index.choice_default_dep[choice_index]
                visible = True
                if dep is not None:
                    self.evals += 1
                    visible = dep(values) is not Tristate.NO
                if visible:
                    self._set_value(default, Tristate.YES)
            return
        member_set = self._member_sets[choice_index]
        requested = [
            name for name in self.pinned
            if name in member_set
            and self.pinned[name] is not Tristate.NO
            and values.get(name, Tristate.NO) is not Tristate.NO
        ]
        winner = requested[0] if requested else names[enabled_members[0]]
        choice_name = index.choices[choice_index].name
        for member in enabled_members:
            name = names[member]
            if name != winner:
                self._set_value(member, Tristate.NO)
                self.demoted[name] = f"choice {choice_name}: {winner} wins"

    # -- the loop ----------------------------------------------------------

    def _fixpoint(self) -> int:
        iterations = 0
        passes = (
            (self.deps, self._deps_action),
            (self.sel, self._sel_action),
            (self.defaults, self._def_action),
            (self.choices, self._choice_action),
        )
        while True:
            if iterations >= _MAX_ITERATIONS:
                raise ResolutionError("configuration did not converge")
            self._apply_forced_deltas()
            if not any(worklist.pending for worklist, _ in passes):
                break
            iterations += 1
            self.changed = False
            for worklist, action in passes:
                for position in worklist.drain():
                    self.visited += 1
                    action(position)
            if not self.changed:
                break

        index, values, names = self.index, self.values, self.index.names
        for source, target in index.select_edges:
            if values[names[source]] is Tristate.NO:
                continue
            dep = index.dep_fn[target]
            if dep is not None:
                self.evals += 1
                if dep(values) is Tristate.NO:
                    self.violations.add((names[source], names[target]))

        # Same stale-record cleanup as the sweep engine.
        self.demoted = {
            name: reason
            for name, reason in self.demoted.items()
            if values[name] is Tristate.NO
        }
        return iterations


class Resolver:
    """Resolves requested option sets against a :class:`KconfigTree`.

    ``strategy`` selects the fixpoint engine: ``"worklist"`` (incremental,
    cached, warm-startable — the default) or ``"sweep"`` (the full-tree
    oracle).  Both produce identical :class:`ResolvedConfig` results.
    """

    def __init__(
        self,
        tree: KconfigTree,
        strict: bool = True,
        strategy: str = "worklist",
    ):
        if strategy not in _STRATEGIES:
            raise ValueError(
                f"unknown resolution strategy {strategy!r}; "
                f"expected one of {_STRATEGIES}"
            )
        self.tree = tree
        self.strict = strict
        self.strategy = strategy

    def resolve(
        self,
        requested: Mapping[str, Tristate],
        name: str = "",
        use_cache: bool = True,
    ) -> ResolvedConfig:
        """Resolve *requested* into a complete configuration.

        In strict mode, requesting an option the tree does not define raises
        :class:`UnknownOptionError`; otherwise unknown requests are dropped.
        Worklist resolutions are memoized process-wide unless *use_cache*
        is false (callers probing many throwaway request sets, e.g. config
        minimization, should opt out).
        """
        from repro.observe import span

        with span("kconfig.resolve", category="kconfig",
                  config=name, requested=len(requested),
                  strategy=self.strategy) as record:
            pinned = self._validate_requests(requested)
            cache_key = None
            if self.strategy == "worklist" and use_cache:
                cache_key = self._cache_key(pinned, "cold")
                cached = RESOLUTION_CACHE.lookup(cache_key)
                if cached is not None:
                    record.set_attr("cache_hit", True)
                    return self._rebind(cached, name)
            if self.strategy == "worklist":
                engine = _WorklistEngine(self.tree, pinned)
                iterations = engine.run_cold()
            else:
                engine = _SweepEngine(self.tree, pinned)
                iterations = engine.run()
            config = self._finish(engine, pinned, iterations, name, record)
            if cache_key is not None:
                config = RESOLUTION_CACHE.store(cache_key, config)
        return config

    def resolve_names(
        self,
        names: Iterable[str],
        name: str = "",
        use_cache: bool = True,
    ) -> ResolvedConfig:
        """Convenience: resolve a plain iterable of option names, all ``y``."""
        return self.resolve(
            {n: Tristate.YES for n in names}, name=name, use_cache=use_cache
        )

    def resolve_from(
        self,
        base: ResolvedConfig,
        requested: Mapping[str, Tristate],
        name: str = "",
        use_cache: bool = True,
    ) -> ResolvedConfig:
        """Resolve *requested* warm-starting from the *base* fixpoint.

        *requested* is the complete request set for the derived
        configuration (it replaces ``base.requested``; it is not a
        delta on top of it).  Only the options in the cone reachable
        from the changed pins are revisited, which is what makes
        deriving the N-th per-application variant from ``lupine-base``
        cheap.  The result equals a cold resolution of the same
        requests; warm and cold results are cached under distinct keys.
        """
        from repro.observe import span

        if self.strategy != "worklist":
            raise ValueError(
                "warm-start resolution requires the worklist strategy"
            )
        # Content equality is what matters: a rebuilt tree with the same
        # fingerprint resolves identically, so a base carried across
        # (e.g.) an lru_cache clear of build_linux_tree stays usable.
        if base.tree is not self.tree and (
            base.tree.fingerprint() != self.tree.fingerprint()
        ):
            raise ValueError(
                "base configuration was resolved against a different tree"
            )
        with span("kconfig.resolve", category="kconfig",
                  config=name, requested=len(requested),
                  strategy=self.strategy, warm=True,
                  base=base.name) as record:
            pinned = self._validate_requests(requested)
            cache_key = None
            if use_cache:
                base_key = tuple(base.requested.items())
                cache_key = self._cache_key(pinned, ("warm", base_key))
                cached = RESOLUTION_CACHE.lookup(cache_key)
                if cached is not None:
                    record.set_attr("cache_hit", True)
                    return self._rebind(cached, name)
            engine = _WorklistEngine(self.tree, pinned)
            iterations = engine.run_warm(base)
            config = self._finish(engine, pinned, iterations, name, record)
            if cache_key is not None:
                config = RESOLUTION_CACHE.store(cache_key, config)
        return config

    def resolve_names_from(
        self,
        base: ResolvedConfig,
        names: Iterable[str],
        name: str = "",
        use_cache: bool = True,
    ) -> ResolvedConfig:
        """Warm-start convenience over plain option names, all ``y``."""
        return self.resolve_from(
            base, {n: Tristate.YES for n in names},
            name=name, use_cache=use_cache,
        )

    # -- internals ---------------------------------------------------------

    def _rebind(self, cached: ResolvedConfig, name: str) -> ResolvedConfig:
        """Adapt a cache hit to this resolver's tree instance and *name*.

        Cache keys are content fingerprints, so a hit may carry a
        different (but content-identical) tree object, e.g. after the
        tree builder's lru_cache was cleared.
        """
        if cached.tree is self.tree and cached.name == name:
            return cached
        return ResolvedConfig(
            tree=self.tree,
            values=cached.values,
            requested=cached.requested,
            demoted=cached.demoted,
            select_violations=cached.select_violations,
            name=name,
            churned=cached.churned,
        )

    def _cache_key(
        self, pinned: Mapping[str, Tristate], mode: Hashable
    ) -> Hashable:
        # Request *insertion order* is semantic: when several members of
        # a choice are requested, the first requested wins the tie-break.
        # Sorting the pins here would alias permutations that resolve to
        # different winners, so the key preserves the caller's order.
        return (
            self.tree.fingerprint(),
            tuple(pinned.items()),
            mode,
        )

    def _finish(self, engine, pinned, iterations, name, record) -> ResolvedConfig:
        from repro.observe import METRICS

        record.set_attr("iterations", iterations)
        record.set_attr("visited", engine.visited)
        METRICS.counter("kconfig.resolutions").inc()
        METRICS.counter("kconfig.resolve.visited_options").inc(engine.visited)
        METRICS.counter("kconfig.expr.evals").inc(engine.evals)
        METRICS.histogram(
            "kconfig.resolve.iterations", _ITERATION_BUCKETS
        ).observe(iterations)
        return ResolvedConfig(
            tree=self.tree,
            values=dict(engine.values),
            requested=dict(pinned),
            demoted=dict(engine.demoted),
            select_violations=tuple(sorted(engine.violations)),
            name=name,
            churned=frozenset(engine.churned),
        )

    def _validate_requests(
        self, requested: Mapping[str, Tristate]
    ) -> Dict[str, Tristate]:
        pinned: Dict[str, Tristate] = {}
        for option_name, value in requested.items():
            option = self.tree.get(option_name)
            if option is None:
                if self.strict:
                    raise UnknownOptionError(option_name)
                continue
            if not option.option_type.is_symbolic:
                continue
            if option.option_type is OptionType.BOOL and value is Tristate.MODULE:
                value = Tristate.YES
            pinned[option_name] = value
        return pinned


def enabled_closure(tree: KconfigTree, names: Iterable[str]) -> FrozenSet[str]:
    """Transitive closure of *names* under ``select`` edges.

    Useful for quick what-if queries without running a full resolution.
    """
    closure: Set[str] = set()
    frontier = [name for name in names if name in tree]
    while frontier:
        current = frontier.pop()
        if current in closure:
            continue
        closure.add(current)
        frontier.extend(
            target for target in tree[current].selects if target not in closure
        )
    return frozenset(closure)
