"""Per-tree resolution index: reverse dependencies + compiled expressions.

The worklist resolver (:mod:`repro.kconfig.resolver`) needs to answer, for
every value change of a symbol ``X``, "which options could this affect?"
without sweeping the whole 15,953-option tree.  This module precomputes
that answer once per :class:`~repro.kconfig.model.KconfigTree`:

- a dense position index over the *symbolic* (bool/tristate) options in
  tree order, so worklists are integer heaps rather than name sets;
- reverse indices: symbol -> options whose ``depends on`` mention it,
  symbol -> options whose ``default``/``depends on`` mention it (the
  defaults phase reads both), select target -> selecting sources, and
  symbol -> choice groups that read it (membership or the default
  member's dependencies);
- compiled evaluators (:func:`repro.kconfig.expr.compile_expr`) for every
  ``depends on`` and ``default`` expression, plus the rendered
  ``str(depends_on)`` demotion reasons, so the hot fixpoint loop never
  re-walks an AST or re-renders a reason string;
- the flat list of ``(source, target)`` select edges for the final
  violation pass, and a content fingerprint of the whole tree used as
  the resolution-cache key component.

The index is immutable once built and is cached on the tree by
:meth:`KconfigTree.resolution_index`; trees are append-only, so a length
check is enough to detect staleness.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.kconfig.expr import Env, Tristate, compile_expr, expr_symbols, is_const_true
from repro.kconfig.model import ChoiceGroup, KconfigTree, OptionType

EvalFn = Callable[[Env], Tristate]


class ResolutionIndex:
    """Immutable acceleration structures for resolving one tree."""

    def __init__(self, tree: KconfigTree) -> None:
        self.option_count = len(tree)
        self.choice_count = len(tree.choices())

        names: List[str] = []
        pos_of: Dict[str, int] = {}
        for option in tree:
            if option.option_type.is_symbolic:
                pos_of[option.name] = len(names)
                names.append(option.name)
        self.names: Tuple[str, ...] = tuple(names)
        self.pos_of: Dict[str, int] = pos_of
        count = len(names)

        self.is_bool: List[bool] = [False] * count
        self.is_tristate: List[bool] = [False] * count
        #: Compiled ``depends on``; ``None`` means the constant ``y`` (no
        #: dependencies), which the engine can skip without evaluating.
        self.dep_fn: List[Optional[EvalFn]] = [None] * count
        self.dep_reason: List[str] = [""] * count
        self.def_fn: List[Optional[EvalFn]] = [None] * count
        #: Select targets per source (symbolic targets only, select order).
        self.selects_of: List[Tuple[int, ...]] = [()] * count

        rev_dep: List[List[int]] = [[] for _ in range(count)]
        rev_def: List[List[int]] = [[] for _ in range(count)]
        rev_sel: List[List[int]] = [[] for _ in range(count)]

        select_edges: List[Tuple[int, int]] = []
        digest = hashlib.sha256()
        digest.update(f"tree:{tree.kernel_version}\n".encode("utf-8"))

        for option in tree:
            digest.update(
                (
                    f"{option.name}\x1f{option.option_type.value}\x1f"
                    f"{option.depends_on}\x1f{','.join(option.selects)}\x1f"
                    f"{option.default if option.default is not None else ''}\n"
                ).encode("utf-8")
            )
            p = pos_of.get(option.name)
            if p is None:
                continue
            self.is_bool[p] = option.option_type is OptionType.BOOL
            self.is_tristate[p] = option.option_type is OptionType.TRISTATE
            if not is_const_true(option.depends_on):
                self.dep_fn[p] = compile_expr(option.depends_on)
            self.dep_reason[p] = str(option.depends_on)
            dep_symbols = expr_symbols(option.depends_on)
            for symbol in dep_symbols:
                q = pos_of.get(symbol)
                if q is not None:
                    rev_dep[q].append(p)
            if option.default is not None:
                self.def_fn[p] = compile_expr(option.default)
                # The defaults phase re-reads both the option's visibility
                # (depends on) and its default expression.
                for symbol in dep_symbols | expr_symbols(option.default):
                    q = pos_of.get(symbol)
                    if q is not None:
                        rev_def[q].append(p)
            targets = []
            for target_name in option.selects:
                t = pos_of.get(target_name)
                target = tree.get(target_name)
                if t is not None and target is not None:
                    targets.append(t)
                    rev_sel[t].append(p)
                    select_edges.append((p, t))
            self.selects_of[p] = tuple(targets)

        self.rev_dep: List[Tuple[int, ...]] = [tuple(r) for r in rev_dep]
        self.rev_def: List[Tuple[int, ...]] = [tuple(r) for r in rev_def]
        self.rev_sel: List[Tuple[int, ...]] = [tuple(r) for r in rev_sel]
        #: ``(source, target)`` positions in tree-iteration order, for the
        #: post-fixpoint select-violation pass (O(edges), not O(tree)).
        self.select_edges: Tuple[Tuple[int, int], ...] = tuple(select_edges)
        #: Source positions that select anything (forced-set bookkeeping).
        self.has_selects: Tuple[int, ...] = tuple(
            p for p in range(count) if self.selects_of[p]
        )

        self.choices: Tuple[ChoiceGroup, ...] = tuple(tree.choices())
        choice_readers: List[List[int]] = [[] for _ in range(count)]
        #: Per choice: member positions (member order), default position,
        #: compiled default-member dependency.
        self.choice_members: List[Tuple[int, ...]] = []
        self.choice_default: List[Optional[int]] = []
        self.choice_default_dep: List[Optional[EvalFn]] = []
        for c, choice in enumerate(self.choices):
            digest.update(
                (
                    f"choice\x1f{choice.name}\x1f{','.join(choice.members)}"
                    f"\x1f{choice.default_member or ''}\n"
                ).encode("utf-8")
            )
            members = []
            for member in choice.members:
                m = pos_of.get(member)
                if m is not None:
                    members.append(m)
                    choice_readers[m].append(c)
            self.choice_members.append(tuple(members))
            default = choice.default_member
            d = pos_of.get(default) if default is not None else None
            self.choice_default.append(d)
            if d is not None:
                option = tree[default]
                self.choice_default_dep.append(
                    None if is_const_true(option.depends_on)
                    else compile_expr(option.depends_on)
                )
                for symbol in expr_symbols(option.depends_on):
                    q = pos_of.get(symbol)
                    if q is not None and c not in choice_readers[q]:
                        choice_readers[q].append(c)
            else:
                self.choice_default_dep.append(None)
        self.choice_readers: List[Tuple[int, ...]] = [
            tuple(r) for r in choice_readers
        ]

        #: Content fingerprint of the tree (options + semantics + choices);
        #: the resolution cache's tree key component.
        self.fingerprint: str = digest.hexdigest()[:16]
