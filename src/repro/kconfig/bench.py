"""The ``bench-resolve`` microbenchmark: resolver work, counted.

Measures the deterministic *work counters* of the resolution engines over
the paper's 20 application configurations, in four scenarios plus the
shared base cost:

- ``cold_sweep``     -- 20 cold resolutions through the full-sweep oracle;
- ``cold_worklist``  -- the same 20, cold, through the worklist engine;
- ``warm_base``      -- one cold worklist resolution of ``lupine-base``
  (the fixpoint all warm derivations share);
- ``warm_delta``     -- the 20 app configs derived warm from that base
  via ``Resolver.resolve_from`` (the production path);
- ``cache_hit``      -- the 20 app configs served from the process-wide
  resolution cache (zero resolution work).

Everything reported is a counter *delta* (visited options, expression
evaluations, resolutions performed) -- no wall-clock -- so the output is
byte-stable across machines and directly comparable by the ``regress``
gate.  The emitted JSON is shaped exactly like ``metrics.json``
(``counters`` / ``gauges`` / ``histograms``), with per-scenario counter
names such as ``kconfig.resolve.visited_options.warm_delta``; the
checked-in snapshot lives at ``benchmarks/baseline/BENCH_resolve.json``.

``check_result`` enforces the headline acceptance claim: warm-start
derivation of all 20 variants must visit at least
:data:`MIN_SWEEP_OVER_WARM_RATIO` times fewer options than 20 cold
sweeps, and cache hits must visit none at all.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Callable, Dict, List, Tuple

from repro.observe import METRICS

#: File the benchmark JSON is written to, next to the run manifest.
BENCH_RESOLVE_NAME = "BENCH_resolve.json"

#: The acceptance floor: cold sweeps must visit at least this many times
#: more options than the warm per-app derivations.
MIN_SWEEP_OVER_WARM_RATIO = 10.0

_WORK_COUNTERS = (
    "kconfig.resolutions",
    "kconfig.resolve.visited_options",
    "kconfig.expr.evals",
    "kconfig.resolve.cache_hits",
    "kconfig.resolve.cache_misses",
)


def _measure(fn: Callable[[], None]) -> Dict[str, int]:
    """Run *fn* and return the work-counter deltas it caused."""
    before = {name: METRICS.counter(name).value for name in _WORK_COUNTERS}
    fn()
    return {
        name: METRICS.counter(name).value - before[name]
        for name in _WORK_COUNTERS
    }


def run_bench() -> Dict[str, Any]:
    """Run every scenario and return the metrics-shaped result document."""
    from repro.apps.registry import TOP20_APPS
    from repro.core.specialization import app_config_names
    from repro.kconfig.database import base_option_names, build_linux_tree
    from repro.kconfig.rescache import RESOLUTION_CACHE
    from repro.kconfig.resolver import Resolver

    tree = build_linux_tree()
    request_sets: List[Tuple[str, List[str]]] = [
        (app.name, app_config_names(app)) for app in TOP20_APPS
    ]
    sweep = Resolver(tree, strategy="sweep")
    worklist = Resolver(tree)
    sections: Dict[str, Dict[str, int]] = {}

    sections["cold_sweep"] = _measure(lambda: [
        sweep.resolve_names(names, name=f"bench-sweep-{app}")
        for app, names in request_sets
    ])
    sections["cold_worklist"] = _measure(lambda: [
        worklist.resolve_names(
            names, name=f"bench-cold-{app}", use_cache=False
        )
        for app, names in request_sets
    ])

    base_box: List[Any] = []
    sections["warm_base"] = _measure(lambda: base_box.append(
        worklist.resolve_names(
            base_option_names(), name="lupine-base", use_cache=False
        )
    ))
    base = base_box[0]
    sections["warm_delta"] = _measure(lambda: [
        worklist.resolve_names_from(
            base, names, name=f"bench-warm-{app}", use_cache=False
        )
        for app, names in request_sets
    ])

    # The cache scenario owns the cache: start it empty, populate with the
    # 20 app resolutions (misses), then measure the second round (hits).
    RESOLUTION_CACHE.reset()
    for app, names in request_sets:
        worklist.resolve_names(names, name=f"bench-cached-{app}")
    sections["cache_hit"] = _measure(lambda: [
        worklist.resolve_names(names, name=f"bench-cached-{app}")
        for app, names in request_sets
    ])

    counters = {
        f"{metric}.{section}": value
        for section, deltas in sections.items()
        for metric, value in deltas.items()
    }
    warm = counters["kconfig.resolve.visited_options.warm_delta"]
    cold = counters["kconfig.resolve.visited_options.cold_sweep"]
    ratio = cold / warm if warm else float("inf")
    return {
        "counters": counters,
        "gauges": {
            "kconfig.resolve.bench_apps": float(len(request_sets)),
            "kconfig.resolve.sweep_over_warm_visited_ratio": round(ratio, 2),
        },
        "histograms": {},
    }


def check_result(result: Dict[str, Any]) -> List[str]:
    """Return acceptance-criterion violations ([] when the result passes)."""
    counters = result.get("counters", {})
    failures: List[str] = []
    warm = counters.get("kconfig.resolve.visited_options.warm_delta", 0)
    cold = counters.get("kconfig.resolve.visited_options.cold_sweep", 0)
    ratio = cold / warm if warm else float("inf")
    if ratio < MIN_SWEEP_OVER_WARM_RATIO:
        failures.append(
            f"warm-start derivation visited only {ratio:.1f}x fewer options "
            f"than cold sweeps ({cold} vs {warm}); "
            f"need >= {MIN_SWEEP_OVER_WARM_RATIO:.0f}x"
        )
    hit_visited = counters.get("kconfig.resolve.visited_options.cache_hit", 0)
    if hit_visited != 0:
        failures.append(
            f"cache-hit resolutions visited {hit_visited} options; "
            "hits must do no resolution work"
        )
    hits = counters.get("kconfig.resolve.cache_hits.cache_hit", 0)
    apps = int(result.get("gauges", {}).get("kconfig.resolve.bench_apps", 0))
    if hits != apps:
        failures.append(
            f"expected {apps} resolution-cache hits, observed {hits}"
        )
    return failures


def write_result(result: Dict[str, Any], path: pathlib.Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def render_summary(result: Dict[str, Any]) -> str:
    """Human-readable scenario table for the CLI."""
    counters = result["counters"]
    sections = ("cold_sweep", "cold_worklist", "warm_base", "warm_delta",
                "cache_hit")
    lines = [
        f"{'scenario':<14} {'resolutions':>11} {'visited':>9} {'evals':>9}"
    ]
    for section in sections:
        lines.append(
            f"{section:<14} "
            f"{counters[f'kconfig.resolutions.{section}']:>11} "
            f"{counters[f'kconfig.resolve.visited_options.{section}']:>9} "
            f"{counters[f'kconfig.expr.evals.{section}']:>9}"
        )
    ratio = result["gauges"]["kconfig.resolve.sweep_over_warm_visited_ratio"]
    lines.append(f"sweep/warm visited ratio: x{ratio:g}")
    return "\n".join(lines)
