"""Trace-driven configuration derivation: observed usage -> kernel config.

The paper derives per-app configurations manually from error messages
(Section 4.1); Loupe (PAPERS.md) showed the measured route scales.  This
module closes that loop inside the simulation: a
:class:`~repro.syscall.usage.UsageTrace` recorded off a running guest is
turned into an option-requirement set and resolved into a concrete
configuration, warm from the shared ``lupine-base`` fixpoint
(:meth:`Resolver.resolve_from` re-resolves only the cone reachable from
the extras -- each candidate is cheap per ``BENCH_resolve.json``), then
pruned ``savedefconfig``-style by :mod:`repro.kconfig.minimize`.

Determinism contract: every artifact here is a pure function of the
usage *set* (never of call order, counts beyond zero/nonzero, or process
layout).  Requirement sets fold sorted, so derived request lists,
resolved configs and digests are byte-identical across reruns and
``--jobs`` fan-outs -- the property ``bench-derive`` pins.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.core.optionset import implied_options
from repro.kconfig.configs import lupine_base_config
from repro.kconfig.database import base_option_names, build_linux_tree
from repro.kconfig.minimize import minimize_config
from repro.kconfig.model import KconfigTree
from repro.kconfig.resolver import ResolvedConfig, Resolver
from repro.syscall.table import available_syscalls
from repro.syscall.usage import UsageTrace


def usage_option_requirements(trace: UsageTrace) -> FrozenSet[str]:
    """Options atop lupine-base the observed usage implies.

    Exercised syscalls and touched facilities map through the shared
    helper in :mod:`repro.core.optionset`; observed ENOSYS misses
    contribute the option whose absence caused them -- the paper's
    "derive the config from the error message" route, automated.
    """
    return (
        implied_options(trace.syscalls, sorted(trace.facilities))
        | trace.missing_options
    )


def derived_config_names(trace: UsageTrace) -> List[str]:
    """The full requested-option list for a trace-derived kernel."""
    return base_option_names() + sorted(usage_option_requirements(trace))


def derive_config(
    trace: UsageTrace,
    tree: Optional[KconfigTree] = None,
    name: Optional[str] = None,
) -> ResolvedConfig:
    """Resolve the trace-derived configuration, warm from lupine-base."""
    if tree is None:
        tree = build_linux_tree()
    label = name or (
        f"lupine-derived-{trace.owner}" if trace.owner else "lupine-derived"
    )
    return Resolver(tree).resolve_names_from(
        lupine_base_config(tree), derived_config_names(trace), name=label
    )


def covers_usage(config: ResolvedConfig, trace: UsageTrace) -> bool:
    """Does *config* support everything the trace observed?

    Every observed syscall must dispatch (no ENOSYS), and every implied
    option -- including those behind observed misses and touched
    facilities -- must be enabled.
    """
    if not trace.syscalls <= available_syscalls(config.enabled):
        return False
    return usage_option_requirements(trace) <= config.enabled


def config_digest(config: ResolvedConfig) -> str:
    """sha256 over the sorted enabled set (label-independent).

    Two resolutions reaching the same enabled set digest identically, so
    the rerun/``--jobs`` determinism gates compare config *content*.
    """
    payload = json.dumps(sorted(config.enabled), separators=(",", ":"))
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


@dataclass(frozen=True)
class DerivationReport:
    """One app's trip through the derivation pipeline."""

    app: str
    usage_digest: str
    extras: Tuple[str, ...]  # implied options atop lupine-base, sorted
    request: Tuple[str, ...]  # minimized request reproducing the config
    option_count: int  # enabled options in the derived config
    covers: bool  # derived config supports all observed usage
    config_digest: str


def derivation_report(
    trace: UsageTrace, tree: Optional[KconfigTree] = None
) -> DerivationReport:
    """Derive, minimize and audit one usage trace."""
    if tree is None:
        tree = build_linux_tree()
    config = derive_config(trace, tree)
    return DerivationReport(
        app=trace.owner,
        usage_digest=trace.digest(),
        extras=tuple(sorted(usage_option_requirements(trace))),
        request=tuple(sorted(minimize_config(config))),
        option_count=len(config.enabled),
        covers=covers_usage(config, trace),
        config_digest=config_digest(config),
    )
