"""Options that exist in the tree but are not part of the microVM config.

These support the paper's ablations and the Lupine build pipeline itself:

- ``KERNEL_MODE_LINUX`` is added to the tree by applying the KML patch
  (:mod:`repro.kml`); it does not exist in a pristine Linux 4.0 tree, so the
  database flags it ``patch_only`` and the builder only accepts it on a
  patched tree.
- ``PAGE_TABLE_ISOLATION`` models the KPTI ablation from Section 3.1.2
  (the paper measured a 10x syscall-latency slowdown with KPTI on Linux 5.0).
- ``CC_OPTIMIZE_FOR_SIZE`` / ``BASE_SMALL`` model the ``-tiny`` variant's
  space/performance tradeoffs.

Group tuple layout matches ``removed_options``: (subcategory, category,
directory, size_kb, boot_us, mem_kb, [names]).
"""

from __future__ import annotations

EXTENSION_GROUPS = [
    (
        "build-tradeoffs",
        "ext",
        "init",
        0.0,
        0.0,
        0.0,
        [
            "CC_OPTIMIZE_FOR_SIZE",
            "BASE_SMALL",
            "KERNEL_XZ",
            "KERNEL_BZIP2",
            "SLOB",
            "NO_HZ_FULL",
            "PREEMPT_VOLUNTARY",
            "LTO_DISABLED",
        ],
    ),
    (
        "timer-hz",
        "ext",
        "kernel",
        0.0,
        0.0,
        0.0,
        [
            "HZ_100",
            "HZ_1000",
        ],
    ),
    (
        "mitigations",
        "ext",
        "security",
        12.0,
        5.0,
        4.0,
        [
            "PAGE_TABLE_ISOLATION",
            "RETPOLINE",
            "HARDENED_USERCOPY",
            "STACKPROTECTOR_STRONG",
            "RANDOMIZE_BASE",
            "DEBUG_RODATA",
        ],
    ),
    (
        "kml",
        "ext",
        "kernel",
        24.0,
        6.0,
        4.0,
        [
            "KERNEL_MODE_LINUX",
        ],
    ),
]

#: Options that only exist after a source patch is applied, mapped to the
#: patch that provides them.
PATCH_ONLY = {
    "KERNEL_MODE_LINUX": "kml",
}

EXTENSION_DEPENDS = {
    "PAGE_TABLE_ISOLATION": "X86_64",
    "RANDOMIZE_BASE": "RELOCATABLE",
    # The paper: CONFIG_PARAVIRT "unfortunately conflicts with KML".
    "KERNEL_MODE_LINUX": "X86_64 && !PARAVIRT",
    "BASE_SMALL": "!BASE_FULL",
    "SLOB": "!SLUB",
}

EXTENSION_SELECTS = {}
