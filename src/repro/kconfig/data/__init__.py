"""Curated option data for the Linux 4.0 database model.

The paper's accounting (Figures 3 and 4) requires exact counts:

- 15,953 total configuration options in Linux 4.0;
- 833 options selected by Firecracker's microVM configuration;
- 550 of those removed to form ``lupine-base`` (283 options), split into
  application-specific (311), multiple-processes (89) and hardware
  management (150) categories.

These modules define every option in the microVM configuration by name,
grouped the way the paper groups them, together with per-group cost-model
parameters (object size, initcall cost, static memory).  The remaining
~15,120 options -- which never appear in any configuration the paper builds
-- are synthesized deterministically by :mod:`repro.kconfig.database`.
"""

from repro.kconfig.data.base_options import BASE_GROUPS
from repro.kconfig.data.removed_options import REMOVED_GROUPS
from repro.kconfig.data.extensions import EXTENSION_GROUPS

__all__ = ["BASE_GROUPS", "REMOVED_GROUPS", "EXTENSION_GROUPS"]
