"""Categorized configuration diffs.

Answers the operator question the Lupine workflow raises constantly:
*what exactly separates these two kernels?*  The diff buckets every
differing option by its Figure 4 classification (base / app-specific /
multi-process / hardware / extension / unclassified), so "microvm vs
lupine-nginx" reads as the paper's removal story rather than a 550-line
name dump.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.kconfig.resolver import ResolvedConfig

#: Human-readable bucket labels, in display order.
_BUCKET_LABELS: Tuple[Tuple[str, str], ...] = (
    ("base", "lupine-base core"),
    ("app", "application-specific"),
    ("mp", "multiple-processes"),
    ("hw", "hardware management"),
    ("ext", "extension/patch"),
    ("", "unclassified"),
)


def _bucket(category: str) -> str:
    return category.split(":", 1)[0] if category else ""


@dataclass(frozen=True)
class ConfigDiff:
    """The difference between two resolved configurations."""

    left_name: str
    right_name: str
    only_left: Dict[str, FrozenSet[str]]
    only_right: Dict[str, FrozenSet[str]]

    @property
    def left_total(self) -> int:
        return sum(len(names) for names in self.only_left.values())

    @property
    def right_total(self) -> int:
        return sum(len(names) for names in self.only_right.values())

    @property
    def identical(self) -> bool:
        return self.left_total == 0 and self.right_total == 0

    def summary_lines(self, show_options: bool = False) -> List[str]:
        lines = [
            f"config diff: {self.left_name} vs {self.right_name}",
            f"  only in {self.left_name}: {self.left_total} options",
        ]
        lines += self._side_lines(self.only_left, show_options)
        lines.append(
            f"  only in {self.right_name}: {self.right_total} options"
        )
        lines += self._side_lines(self.only_right, show_options)
        return lines

    @staticmethod
    def _side_lines(side: Dict[str, FrozenSet[str]],
                    show_options: bool) -> List[str]:
        lines = []
        for bucket, label in _BUCKET_LABELS:
            names = side.get(bucket)
            if not names:
                continue
            lines.append(f"    {label:<24} {len(names)}")
            if show_options:
                for name in sorted(names):
                    lines.append(f"      CONFIG_{name}")
        return lines


def diff_configs(left: ResolvedConfig, right: ResolvedConfig) -> ConfigDiff:
    """Diff two configurations resolved against the same tree."""
    if left.tree is not right.tree and (
        set(left.tree.names()) != set(right.tree.names())
    ):
        raise ValueError("configs come from different option trees")
    only_left_names, only_right_names = left.diff(right)

    def bucketize(names: FrozenSet[str]) -> Dict[str, FrozenSet[str]]:
        buckets: Dict[str, set] = {}
        for name in names:
            option = left.tree.get(name) or right.tree.get(name)
            buckets.setdefault(_bucket(option.category), set()).add(name)
        return {bucket: frozenset(members)
                for bucket, members in buckets.items()}

    return ConfigDiff(
        left_name=left.name or "left",
        right_name=right.name or "right",
        only_left=bucketize(only_left_names),
        only_right=bucketize(only_right_names),
    )
