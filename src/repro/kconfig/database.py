"""The Linux 4.0 option database model.

Builds a :class:`~repro.kconfig.model.KconfigTree` with

- every option of Firecracker's microVM configuration, curated by name
  (283 ``lupine-base`` + 550 removed options; see :mod:`repro.kconfig.data`),
- the extension options used by ablations and by the KML patch, and
- deterministic synthetic filler options per source directory so the
  per-directory totals match Linux 4.0's 15,953 options (paper Figure 3).

Cost-model values (object size, initcall cost, static memory) are attached
per option: group means modulated by a stable per-name factor, with explicit
overrides for the options that dominate the paper's measurements.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Dict, FrozenSet, List, Tuple

from repro.kconfig.data.base_options import (
    BASE_DEPENDS,
    BASE_GROUPS,
    BASE_SELECTS,
)
from repro.kconfig.data.base_options import BOOT_OVERRIDES as BASE_BOOT
from repro.kconfig.data.base_options import MEM_OVERRIDES as BASE_MEM
from repro.kconfig.data.base_options import SIZE_OVERRIDES as BASE_SIZE
from repro.kconfig.data.extensions import (
    EXTENSION_DEPENDS,
    EXTENSION_GROUPS,
    EXTENSION_SELECTS,
    PATCH_ONLY,
)
from repro.kconfig.data.removed_options import BOOT_OVERRIDES as REMOVED_BOOT
from repro.kconfig.data.removed_options import MEM_OVERRIDES as REMOVED_MEM
from repro.kconfig.data.removed_options import (
    REMOVED_DEPENDS,
    REMOVED_GROUPS,
    REMOVED_SELECTS,
)
from repro.kconfig.data.removed_options import SIZE_OVERRIDES as REMOVED_SIZE
from repro.kconfig.expr import TRUE, parse_expr
from repro.kconfig.model import ConfigOption, KconfigTree, OptionType

#: Total number of configuration options in Linux 4.0 (paper Section 3.1).
LINUX_4_0_TOTAL_OPTIONS = 15953

#: Per-directory option totals for Linux 4.0 (paper Figure 3, log scale:
#: roughly half of all options live under drivers/).
DIRECTORY_TOTALS: Dict[str, int] = {
    "drivers": 8450,
    "arch": 3400,
    "sound": 1250,
    "net": 1106,
    "fs": 630,
    "lib": 280,
    "kernel": 330,
    "init": 120,
    "crypto": 180,
    "mm": 70,
    "security": 60,
    "block": 40,
    "virt": 12,
    "samples": 12,
    "usr": 13,
}

#: Name-pool prefixes for synthetic filler options, per directory.  Filler
#: options never appear in any configuration the paper builds; they exist so
#: whole-tree statistics (Figure 3) are faithful.
_FILLER_PREFIXES: Dict[str, Tuple[str, ...]] = {
    "drivers": (
        "NET_VENDOR", "SCSI_LLD", "USB_GADGET", "GPU_PANEL", "HWMON_SENSOR",
        "MEDIA_TUNER", "IIO_ADC", "MFD_CHIP", "REGULATOR_PMIC", "STAGING_DRV",
        "INPUT_TOUCH", "RTC_DRV", "WDT_DRV", "MTD_NAND", "CLK_DRV",
    ),
    "arch": ("ARCH_PLAT", "SOC_BOARD", "CPU_ERRATA", "MACH_VARIANT"),
    "sound": ("SND_SOC_CODEC", "SND_PCI_CARD", "SND_USB_DEV", "SND_FW"),
    "net": ("NET_PROTO_EXT", "NETFILTER_XT", "NET_DSA_TAG"),
    "fs": ("FS_FEATURE", "FS_LEGACY"),
    "lib": ("LIB_HELPER", "LIB_TEST"),
    "kernel": ("KERNEL_TUNABLE",),
    "init": ("INIT_TUNABLE",),
    "crypto": ("CRYPTO_ALG_EXT",),
    "mm": ("MM_TUNABLE",),
    "security": ("SECURITY_MODULE_EXT",),
    "block": ("BLK_FEATURE",),
    "virt": ("VIRT_GUEST_EXT",),
    "samples": ("SAMPLE_MODULE",),
    "usr": ("USR_INITRAMFS",),
}


def _stable_factor(name: str, low: float = 0.55, high: float = 1.65) -> float:
    """A deterministic per-name multiplier in ``[low, high]``.

    Derived from an md5 digest so it is stable across Python processes
    (``hash()`` is salted and unsuitable).
    """
    digest = hashlib.md5(name.encode("ascii")).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return low + fraction * (high - low)


def _curated_option(
    name: str,
    directory: str,
    category: str,
    size_mean: float,
    boot_mean: float,
    mem_mean: float,
    depends: Dict[str, str],
    selects: Dict[str, Tuple[str, ...]],
    size_overrides: Dict[str, float],
    boot_overrides: Dict[str, float],
    mem_overrides: Dict[str, float],
) -> ConfigOption:
    factor = _stable_factor(name)
    depends_expr = TRUE
    if name in depends:
        depends_expr = parse_expr(depends[name])
    return ConfigOption(
        name=name,
        option_type=OptionType.BOOL,
        prompt=name.replace("_", " ").title(),
        directory=directory,
        depends_on=depends_expr,
        selects=selects.get(name, ()),
        category=category,
        size_kb=size_overrides.get(name, size_mean * factor),
        boot_cost_us=boot_overrides.get(name, boot_mean * factor),
        mem_cost_kb=mem_overrides.get(name, mem_mean * factor),
    )


def base_option_names() -> List[str]:
    """The 283 option names of ``lupine-base`` (paper Section 3.1)."""
    return [name for group in BASE_GROUPS for name in group[5]]


def removed_option_names() -> List[str]:
    """The 550 options removed from microVM to form lupine-base."""
    return [name for group in REMOVED_GROUPS for name in group[6]]


def microvm_option_names() -> List[str]:
    """All 833 options of the Firecracker microVM configuration."""
    return base_option_names() + removed_option_names()


def removed_options_by_category() -> Dict[str, List[str]]:
    """Removed options keyed by paper category (``app``/``mp``/``hw``)."""
    by_category: Dict[str, List[str]] = {}
    for subcategory, category, _, _, _, _, names in REMOVED_GROUPS:
        by_category.setdefault(category, []).extend(names)
    return by_category


def removed_options_by_subcategory() -> Dict[Tuple[str, str], List[str]]:
    """Removed options keyed by ``(category, subcategory)``."""
    by_sub: Dict[Tuple[str, str], List[str]] = {}
    for subcategory, category, _, _, _, _, names in REMOVED_GROUPS:
        by_sub.setdefault((category, subcategory), []).extend(names)
    return by_sub


def _add_curated(tree: KconfigTree, patches: FrozenSet[str]) -> None:
    for group_name, directory, size_mean, boot_mean, mem_mean, names in BASE_GROUPS:
        for name in names:
            tree.add(
                _curated_option(
                    name, directory, f"base:{group_name}",
                    size_mean, boot_mean, mem_mean,
                    BASE_DEPENDS, BASE_SELECTS, BASE_SIZE, BASE_BOOT, BASE_MEM,
                )
            )
    for subcat, category, directory, size_mean, boot_mean, mem_mean, names in (
        REMOVED_GROUPS
    ):
        for name in names:
            tree.add(
                _curated_option(
                    name, directory, f"{category}:{subcat}",
                    size_mean, boot_mean, mem_mean,
                    REMOVED_DEPENDS, REMOVED_SELECTS,
                    REMOVED_SIZE, REMOVED_BOOT, REMOVED_MEM,
                )
            )
    for subcat, category, directory, size_mean, boot_mean, mem_mean, names in (
        EXTENSION_GROUPS
    ):
        for name in names:
            required_patch = PATCH_ONLY.get(name)
            if required_patch is not None and required_patch not in patches:
                continue
            tree.add(
                _curated_option(
                    name, directory, f"{category}:{subcat}",
                    size_mean, boot_mean, mem_mean,
                    EXTENSION_DEPENDS, EXTENSION_SELECTS, {}, {}, {},
                )
            )


def _register_choices(tree: KconfigTree) -> None:
    """The mutually-exclusive option groups the kernel defines as choices."""
    from repro.kconfig.model import ChoiceGroup

    tree.add_choice(ChoiceGroup(
        name="timer-frequency",
        members=("HZ_100", "HZ_250", "HZ_1000"),
        default_member="HZ_250",
        prompt="Timer frequency",
    ))
    tree.add_choice(ChoiceGroup(
        name="slab-allocator",
        members=("SLUB", "SLOB"),
        default_member="SLUB",
        prompt="Choose SLAB allocator",
    ))
    tree.add_choice(ChoiceGroup(
        name="kernel-compression",
        members=("KERNEL_GZIP", "KERNEL_XZ", "KERNEL_BZIP2"),
        default_member="KERNEL_GZIP",
        prompt="Kernel compression mode",
    ))
    tree.add_choice(ChoiceGroup(
        name="cc-optimization",
        members=("CC_OPTIMIZE_FOR_PERFORMANCE", "CC_OPTIMIZE_FOR_SIZE"),
        default_member="CC_OPTIMIZE_FOR_PERFORMANCE",
        prompt="Compiler optimization level",
    ))
    tree.add_choice(ChoiceGroup(
        name="base-size",
        members=("BASE_FULL", "BASE_SMALL"),
        default_member="BASE_FULL",
        prompt="Enable full-sized data structures for core",
    ))


def _add_filler(tree: KconfigTree) -> None:
    counts = tree.count_by_directory()
    for directory, total in DIRECTORY_TOTALS.items():
        existing = counts.get(directory, 0)
        missing = total - existing
        if missing < 0:
            raise AssertionError(
                f"curated options exceed directory total for {directory}: "
                f"{existing} > {total}"
            )
        prefixes = _FILLER_PREFIXES[directory]
        for index in range(missing):
            prefix = prefixes[index % len(prefixes)]
            name = f"{prefix}_{index // len(prefixes):04d}"
            tree.add(
                ConfigOption(
                    name=name,
                    option_type=OptionType.TRISTATE,
                    prompt=name.replace("_", " ").title(),
                    directory=directory,
                    size_kb=6.0 * _stable_factor(name),
                    boot_cost_us=3.0 * _stable_factor(name),
                    mem_cost_kb=1.0 * _stable_factor(name),
                    synthetic=True,
                )
            )


@lru_cache(maxsize=8)
def build_linux_tree(
    version: str = "4.0", patches: Tuple[str, ...] = ()
) -> KconfigTree:
    """Build the option tree for Linux *version* with *patches* applied.

    Only version ``4.0`` is modelled (the paper uses it because it is the
    most recent KML-patched kernel).  ``patches=("kml",)`` adds the
    ``KERNEL_MODE_LINUX`` option exactly as applying the KML patch does.
    """
    if version != "4.0":
        raise ValueError(f"only Linux 4.0 is modelled, not {version!r}")
    unknown = set(patches) - set(PATCH_ONLY.values())
    if unknown:
        raise ValueError(f"unknown patches: {sorted(unknown)}")
    tree = KconfigTree(kernel_version=version)
    _add_curated(tree, frozenset(patches))
    _register_choices(tree)
    _add_filler(tree)
    # Filler tops every directory up to its Figure 3 total, so the tree size
    # is invariant: patch-provided options displace one filler slot.
    if len(tree) != LINUX_4_0_TOTAL_OPTIONS:
        raise AssertionError(
            f"tree has {len(tree)} options, expected {LINUX_4_0_TOTAL_OPTIONS}"
        )
    # Pre-build the resolution index (reverse dependencies + compiled
    # expressions) while we hold the lru_cache slot: the tree is complete
    # here, and every resolver on this shared instance reuses the index.
    tree.resolution_index()
    return tree


def curated_totals() -> Dict[str, int]:
    """Sanity counts used by tests: base/removed/microvm option set sizes."""
    return {
        "base": len(base_option_names()),
        "removed": len(removed_option_names()),
        "microvm": len(microvm_option_names()),
    }
