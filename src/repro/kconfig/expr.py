"""The Kconfig tristate expression language.

Kconfig dependency and default expressions evaluate over *tristate* values:
``n`` (absent), ``m`` (module) and ``y`` (built in), ordered ``n < m < y``.
The connectives follow the kernel's semantics:

- ``A && B``  evaluates to ``min(A, B)``
- ``A || B``  evaluates to ``max(A, B)``
- ``!A``      evaluates to ``y - A`` (so ``!m == m``)
- ``A = B`` / ``A != B`` compare symbol values and yield ``y`` or ``n``

The grammar implemented here matches ``scripts/kconfig/zconf.y``::

    expr     := or
    or       := and { '||' and }
    and      := not { '&&' not }
    not      := '!' not | primary
    primary  := '(' expr ')' | symbol [ ('='|'!=') symbol ]
    symbol   := CONFIG-style identifier | quoted string | tristate literal
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Union


class Tristate(enum.IntEnum):
    """A Kconfig tristate value (``n`` < ``m`` < ``y``)."""

    NO = 0
    MODULE = 1
    YES = 2

    def __str__(self) -> str:
        return {Tristate.NO: "n", Tristate.MODULE: "m", Tristate.YES: "y"}[self]

    @classmethod
    def from_str(cls, text: str) -> "Tristate":
        """Parse ``'n'``/``'m'``/``'y'`` (case-insensitive) into a tristate."""
        try:
            return {"n": cls.NO, "m": cls.MODULE, "y": cls.YES}[text.lower()]
        except KeyError:
            raise ValueError(f"not a tristate literal: {text!r}") from None

    def __invert__(self) -> "Tristate":
        return Tristate(Tristate.YES - self)


#: Environment mapping symbol names to their current tristate values.
Env = Mapping[str, Tristate]


class ExprError(ValueError):
    """Raised for malformed Kconfig expressions."""


@dataclass(frozen=True)
class Symbol:
    """A reference to a config symbol (or a literal tristate/string)."""

    name: str

    def evaluate(self, env: Env) -> Tristate:
        if self.name in ("y", "Y"):
            return Tristate.YES
        if self.name in ("m", "M"):
            return Tristate.MODULE
        if self.name in ("n", "N"):
            return Tristate.NO
        return env.get(self.name, Tristate.NO)

    def symbols(self) -> Iterator[str]:
        if self.name not in ("y", "m", "n", "Y", "M", "N"):
            yield self.name

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not:
    """Logical negation: ``!operand``."""

    operand: "Expr"

    def evaluate(self, env: Env) -> Tristate:
        return ~self.operand.evaluate(env)

    def symbols(self) -> Iterator[str]:
        return self.operand.symbols()

    def __str__(self) -> str:
        if isinstance(self.operand, (Symbol, Not)):
            return f"!{self.operand}"
        return f"!({self.operand})"


@dataclass(frozen=True)
class And:
    """Logical conjunction: ``lhs && rhs`` (tristate ``min``)."""

    lhs: "Expr"
    rhs: "Expr"

    def evaluate(self, env: Env) -> Tristate:
        return min(self.lhs.evaluate(env), self.rhs.evaluate(env))

    def symbols(self) -> Iterator[str]:
        yield from self.lhs.symbols()
        yield from self.rhs.symbols()

    def __str__(self) -> str:
        return f"{_parenthesize(self.lhs)} && {_parenthesize(self.rhs)}"


@dataclass(frozen=True)
class Or:
    """Logical disjunction: ``lhs || rhs`` (tristate ``max``)."""

    lhs: "Expr"
    rhs: "Expr"

    def evaluate(self, env: Env) -> Tristate:
        return max(self.lhs.evaluate(env), self.rhs.evaluate(env))

    def symbols(self) -> Iterator[str]:
        yield from self.lhs.symbols()
        yield from self.rhs.symbols()

    def __str__(self) -> str:
        return f"{self.lhs} || {self.rhs}"


@dataclass(frozen=True)
class Compare:
    """Equality test between two symbols: yields ``y`` or ``n``."""

    lhs: Symbol
    rhs: Symbol
    negated: bool = False

    def evaluate(self, env: Env) -> Tristate:
        equal = self.lhs.evaluate(env) == self.rhs.evaluate(env)
        if self.negated:
            equal = not equal
        return Tristate.YES if equal else Tristate.NO

    def symbols(self) -> Iterator[str]:
        yield from self.lhs.symbols()
        yield from self.rhs.symbols()

    def __str__(self) -> str:
        op = "!=" if self.negated else "="
        return f"{self.lhs}{op}{self.rhs}"


Expr = Union[Symbol, Not, And, Or, Compare]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<op>&&|\|\||!=|=|!|\(|\))
  | (?P<sym>[A-Za-z0-9_]+)
  | (?P<str>"[^"]*"|'[^']*')
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ExprError(f"bad character in expression at {text[pos:]!r}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        token = match.group()
        if match.lastgroup == "str":
            token = token[1:-1]
        tokens.append(token)
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[str]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> str:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else ""

    def _next(self) -> str:
        token = self._peek()
        self._pos += 1
        return token

    def parse(self) -> Expr:
        expr = self._or()
        if self._pos != len(self._tokens):
            raise ExprError(f"trailing tokens: {self._tokens[self._pos:]!r}")
        return expr

    def _or(self) -> Expr:
        expr = self._and()
        while self._peek() == "||":
            self._next()
            expr = Or(expr, self._and())
        return expr

    def _and(self) -> Expr:
        expr = self._not()
        while self._peek() == "&&":
            self._next()
            expr = And(expr, self._not())
        return expr

    def _not(self) -> Expr:
        if self._peek() == "!":
            self._next()
            return Not(self._not())
        return self._primary()

    def _primary(self) -> Expr:
        token = self._next()
        if token == "(":
            expr = self._or()
            if self._next() != ")":
                raise ExprError("unbalanced parenthesis")
            return expr
        if not token or token in ("&&", "||", ")", "=", "!="):
            raise ExprError(f"expected symbol, got {token!r}")
        symbol = Symbol(token)
        if self._peek() in ("=", "!="):
            op = self._next()
            rhs = self._next()
            if not rhs or rhs in ("&&", "||", "(", ")"):
                raise ExprError(f"expected symbol after {op!r}")
            return Compare(symbol, Symbol(rhs), negated=(op == "!="))
        return symbol


def _parenthesize(expr: Expr) -> str:
    if isinstance(expr, Or):
        return f"({expr})"
    return str(expr)


def parse_expr(text: str) -> Expr:
    """Parse a Kconfig dependency expression into an AST.

    >>> str(parse_expr("NET && (INET || UNIX)"))
    'NET && (INET || UNIX)'
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ExprError("empty expression")
    return _Parser(tokens).parse()


#: An always-true expression, used for options with no dependencies.
TRUE = Symbol("y")

#: An always-false expression.
FALSE = Symbol("n")


def evaluate(expr: Expr, env: Env) -> Tristate:
    """Evaluate *expr* under *env* (missing symbols evaluate to ``n``)."""
    return expr.evaluate(env)


def expr_symbols(expr: Expr) -> set[str]:
    """Return the set of config symbols referenced by *expr*."""
    return set(expr.symbols())


def make_evaluator(expr: Expr) -> Callable[[Env], Tristate]:
    """Return a callable evaluating *expr*; convenient for hot paths."""
    return expr.evaluate


#: ``~value`` lookup table indexed by ``int(value)`` (``!n=y, !m=m, !y=n``).
_NOT_TABLE = (Tristate.YES, Tristate.MODULE, Tristate.NO)

_CONST_SYMBOLS = {
    "y": Tristate.YES, "Y": Tristate.YES,
    "m": Tristate.MODULE, "M": Tristate.MODULE,
    "n": Tristate.NO, "N": Tristate.NO,
}


def is_const_true(expr: Expr) -> bool:
    """True for the literal always-``y`` expression (no-dependency options)."""
    return isinstance(expr, Symbol) and expr.name in ("y", "Y")


def compile_expr(expr: Expr) -> Callable[[Env], Tristate]:
    """Flatten *expr* into nested closures with pre-resolved constants.

    The returned callable computes exactly ``expr.evaluate(env)`` but
    without re-dispatching through the dataclass ``evaluate`` methods on
    every call: literals are folded to constants at compile time, ``&&``
    / ``||`` short-circuit on ``n`` / ``y``, and negation is a table
    lookup.  Compile once per expression (the resolution index caches
    one program per option), evaluate many times.
    """
    if isinstance(expr, Symbol):
        constant = _CONST_SYMBOLS.get(expr.name)
        if constant is not None:
            return lambda env, _c=constant: _c
        def _symbol(env: Env, _name: str = expr.name,
                    _no: Tristate = Tristate.NO) -> Tristate:
            return env.get(_name, _no)
        return _symbol
    if isinstance(expr, Not):
        inner = compile_expr(expr.operand)
        def _negate(env: Env, _inner=inner, _table=_NOT_TABLE) -> Tristate:
            return _table[_inner(env)]
        return _negate
    if isinstance(expr, And):
        lhs, rhs = compile_expr(expr.lhs), compile_expr(expr.rhs)
        def _conj(env: Env, _l=lhs, _r=rhs,
                  _no: Tristate = Tristate.NO) -> Tristate:
            left = _l(env)
            if left is _no:
                return _no
            right = _r(env)
            return left if left <= right else right
        return _conj
    if isinstance(expr, Or):
        lhs, rhs = compile_expr(expr.lhs), compile_expr(expr.rhs)
        def _disj(env: Env, _l=lhs, _r=rhs,
                  _yes: Tristate = Tristate.YES) -> Tristate:
            left = _l(env)
            if left is _yes:
                return _yes
            right = _r(env)
            return left if left >= right else right
        return _disj
    if isinstance(expr, Compare):
        lhs, rhs = compile_expr(expr.lhs), compile_expr(expr.rhs)
        def _compare(env: Env, _l=lhs, _r=rhs, _neg=expr.negated,
                     _yes: Tristate = Tristate.YES,
                     _no: Tristate = Tristate.NO) -> Tristate:
            return _yes if (_l(env) == _r(env)) is not _neg else _no
        return _compare
    raise TypeError(f"cannot compile expression node: {expr!r}")
