"""The process-wide resolution cache.

Kernel-config resolution is deterministic: the same tree (by content
fingerprint) and the same frozen request set always produce the same
:class:`~repro.kconfig.resolver.ResolvedConfig`.  The experiment harness
resolves the same handful of configurations from many workers (every
variant build starts with a resolution), so — exactly like the kernel
build cache one layer up — resolutions are memoized process-wide and
shared across threads.

Keys are built by the resolver: ``(tree fingerprint, sorted pinned
requests, mode)`` where *mode* distinguishes cold resolutions from
warm-start derivations (see ``Resolver.resolve_from``); the two are kept
in separate namespaces so a warm derivation can never masquerade as the
cold oracle result.  The ``strategy="sweep"`` differential oracle never
touches this cache.

The cache is bounded (LRU): callers like ``minimize_config`` probe many
throwaway request sets, and each cached entry pins a full ~16k-entry
value map.  Effectiveness is published as the
``kconfig.resolve.cache_hits`` / ``kconfig.resolve.cache_misses``
counters and the ``kconfig.resolve.cache_entries`` gauge.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional

from repro.observe import METRICS

#: Entries kept before least-recently-used eviction; each entry holds a
#: full resolved value map, so the bound is deliberately modest.
DEFAULT_MAX_ENTRIES = 64


@dataclass(frozen=True)
class ResolutionCacheStats:
    """A point-in-time snapshot of cache effectiveness counters."""

    hits: int
    misses: int
    entries: int


class ResolutionCache:
    """Thread-safe bounded LRU cache of resolved configurations."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("resolution cache needs at least one entry")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    def lookup(self, key: Hashable) -> Optional[Any]:
        """The cached resolution for *key*, or None (counts the outcome)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                METRICS.counter("kconfig.resolve.cache_hits").inc()
                return entry
            self._misses += 1
            METRICS.counter("kconfig.resolve.cache_misses").inc()
            return None

    def store(self, key: Hashable, config: Any) -> Any:
        """Store *config* under *key*; first writer wins on a race."""
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                return existing
            self._entries[key] = config
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            METRICS.gauge("kconfig.resolve.cache_entries").set(
                len(self._entries)
            )
            return config

    def stats(self) -> ResolutionCacheStats:
        with self._lock:
            return ResolutionCacheStats(
                hits=self._hits, misses=self._misses,
                entries=len(self._entries),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def reset(self) -> None:
        """Drop all entries and counters (test isolation)."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0


#: The one resolution cache every resolver in the process shares.
RESOLUTION_CACHE = ResolutionCache()
