"""Export a :class:`KconfigTree` back to Kconfig-language source files.

Produces one ``<directory>/Kconfig`` file per source directory plus a root
``Kconfig`` that sources them, exactly how the kernel's tree is organized.
Round-tripping through :func:`repro.kconfig.parser.parse_kconfig` preserves
names, types, prompts, dependencies, selects, defaults and help text --
verified by the integration tests, which push the whole 15,953-option
database through the parser.
"""

from __future__ import annotations

from typing import Dict, List

from repro.kconfig.expr import TRUE
from repro.kconfig.model import ConfigOption, KconfigTree
from repro.kconfig.parser import parse_kconfig

ROOT_FILE = "Kconfig"


def _render_option(option: ConfigOption) -> str:
    lines: List[str] = [f"config {option.name}"]
    type_line = f"\t{option.option_type.value}"
    if option.prompt:
        type_line += f' "{option.prompt}"'
    lines.append(type_line)
    if option.depends_on is not TRUE and str(option.depends_on) != "y":
        lines.append(f"\tdepends on {option.depends_on}")
    for target in option.selects:
        lines.append(f"\tselect {target}")
    if option.default is not None:
        lines.append(f"\tdefault {option.default}")
    if option.help_text:
        lines.append("\thelp")
        for help_line in option.help_text.splitlines():
            lines.append(f"\t  {help_line}" if help_line else "")
    return "\n".join(lines)


def _render_choice(tree: KconfigTree, choice) -> str:
    lines = ["choice"]
    if choice.prompt:
        lines.append(f'\tprompt "{choice.prompt}"')
    if choice.default_member:
        lines.append(f"\tdefault {choice.default_member}")
    body = "\n".join(lines)
    members = "\n\n".join(
        _render_option(tree[name]) for name in choice.members
    )
    return f"{body}\n\n{members}\n\nendchoice"


def export_kconfig(tree: KconfigTree) -> Dict[str, str]:
    """Render *tree* as ``{path: kconfig_text}``.

    The root file sources each directory's file; option order within a
    directory follows tree insertion order, like the kernel's own files.
    Choice members render inside their ``choice``/``endchoice`` block, in
    the directory of the group's first member.
    """
    files: Dict[str, str] = {}
    root_lines = [f'mainmenu "Linux/{tree.kernel_version} Configuration"', ""]
    choice_members = {
        name for choice in tree.choices() for name in choice.members
    }
    choices_by_directory: Dict[str, List] = {}
    for choice in tree.choices():
        directory = tree[choice.members[0]].directory
        choices_by_directory.setdefault(directory, []).append(choice)
    for directory in tree.directories():
        path = f"{directory}/Kconfig"
        blocks = [
            _render_option(option)
            for option in tree.options_in(directory)
            if option.name not in choice_members
        ]
        blocks.extend(
            _render_choice(tree, choice)
            for choice in choices_by_directory.get(directory, [])
        )
        files[path] = "\n\n".join(blocks) + "\n"
        root_lines.append(f'source "{path}"')
    files[ROOT_FILE] = "\n".join(root_lines) + "\n"
    return files


def import_kconfig(files: Dict[str, str]) -> KconfigTree:
    """Parse a file set produced by :func:`export_kconfig` back to a tree."""
    return parse_kconfig(
        files[ROOT_FILE],
        source_loader=lambda path: files[path],
    )
