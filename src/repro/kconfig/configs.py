"""Named kernel configurations used throughout the paper.

- ``microvm_config``      -- Firecracker's microVM configuration adapted to
  Linux 4.0 (833 options), the paper's baseline.
- ``lupine_base_config``  -- the paper's 283-option application-agnostic base
  (Section 3.1).
- ``tinyconfig``          -- the kernel's minimal starting configuration,
  referenced by the paper's ``-tiny`` discussion (footnote 8).
- ``defconfig``           -- a general-purpose default configuration, for
  scale comparisons.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.kconfig.database import (
    base_option_names,
    build_linux_tree,
    microvm_option_names,
)
from repro.kconfig.model import KconfigTree
from repro.kconfig.resolver import ResolvedConfig, Resolver

#: The subset of lupine-base that even tinyconfig keeps: the bare machine
#: bring-up plus enough VFS to mount a root filesystem.
TINYCONFIG_NAMES: Tuple[str, ...] = (
    "X86_64",
    "X86_TSC",
    "GENERIC_CPU",
    "MMU",
    "PRINTK",
    "BUG",
    "SLUB",
    "SLAB_COMMON",
    "BINFMT_ELF",
    "VFS_CORE",
    "DCACHE",
    "INODE_CACHE",
    "NAMESPACE_MOUNT",
    "RAMFS",
    "TTY",
    "SERIAL_8250",
    "SERIAL_CORE",
    "SERIAL_8250_CONSOLE",
    "SERIAL_CORE_CONSOLE",
    "GENERIC_IRQ_CORE",
    "X86_LOCAL_APIC",
    "TIMER_WHEEL",
    "GENERIC_CLOCKEVENTS",
    "SCHED_CORE_CFS",
    "RUNQUEUE_SINGLE",
    "SCHED_TICK",
    "MMAP_CORE",
    "BRK_SYSCALL",
    "PAGE_ALLOC_CORE",
    "MEMBLOCK_CORE",
    "VSPRINTF",
    "KSTRTOX",
    "STRING_HELPERS",
    "RBTREE",
    "BITMAP_LIB",
    "KOBJECT",
)


def _resolve(
    tree: Optional[KconfigTree], names, config_name: str
) -> ResolvedConfig:
    if tree is None:
        tree = build_linux_tree()
    return Resolver(tree).resolve_names(names, name=config_name)


def microvm_config(tree: Optional[KconfigTree] = None) -> ResolvedConfig:
    """Firecracker's microVM configuration (the paper's baseline system)."""
    return _resolve(tree, microvm_option_names(), "microvm")


def lupine_base_config(tree: Optional[KconfigTree] = None) -> ResolvedConfig:
    """The paper's lupine-base configuration (283 options)."""
    return _resolve(tree, base_option_names(), "lupine-base")


def tinyconfig(tree: Optional[KconfigTree] = None) -> ResolvedConfig:
    """An approximation of ``make tinyconfig`` for the modelled tree."""
    return _resolve(tree, TINYCONFIG_NAMES, "tinyconfig")


def defconfig(tree: Optional[KconfigTree] = None) -> ResolvedConfig:
    """A general-purpose defconfig: microVM plus host-hardware defaults.

    Modelled as the microVM set plus every curated hardware option and a
    deterministic slice of driver filler, giving the "distribution kernel"
    scale the paper contrasts against (several thousand options).
    """
    if tree is None:
        tree = build_linux_tree()
    names = list(microvm_option_names())
    for option in tree.options_in("drivers"):
        if option.synthetic and int(option.name.rsplit("_", 1)[1]) % 4 == 0:
            names.append(option.name)
    return _resolve(tree, names, "defconfig")
