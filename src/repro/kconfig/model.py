"""Configuration option model: options, menus and the option tree.

A :class:`ConfigOption` corresponds to one ``config FOO`` block in a Kconfig
file.  A :class:`KconfigTree` is the full database for one kernel source tree
(e.g. Linux 4.0), indexed by name and by source directory so the paper's
Figure 3 (options per directory) can be computed directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.kconfig.expr import TRUE, Expr, expr_symbols


class OptionType(enum.Enum):
    """The value type of a config option."""

    BOOL = "bool"
    TRISTATE = "tristate"
    INT = "int"
    HEX = "hex"
    STRING = "string"

    @property
    def is_symbolic(self) -> bool:
        """True for bool/tristate options that participate in dependency logic."""
        return self in (OptionType.BOOL, OptionType.TRISTATE)


@dataclass
class ConfigOption:
    """One kernel configuration option.

    Attributes mirror Kconfig semantics; the simulation-specific extras are:

    ``directory``
        Top-level source directory the option's Kconfig file lives in
        (``drivers``, ``net``, ...) -- the unit of Figure 3.
    ``category``
        Classification used by the paper's Figure 4 analysis (see
        :mod:`repro.core.classification`).  Empty for options the paper never
        classifies (those outside the microVM configuration).
    ``size_kb``
        Object-code contribution (text+data, KiB, uncompressed) when the
        option is built in.  Consumed by :mod:`repro.kbuild`.
    ``boot_cost_us``
        Initcall cost in simulated microseconds when built in.  Consumed by
        :mod:`repro.boot`.
    ``mem_cost_kb``
        Static runtime memory (KiB) the feature allocates at boot.  Consumed
        by :mod:`repro.mm`.
    """

    name: str
    option_type: OptionType = OptionType.BOOL
    prompt: str = ""
    directory: str = "kernel"
    depends_on: Expr = TRUE
    selects: Tuple[str, ...] = ()
    default: Optional[Expr] = None
    help_text: str = ""
    category: str = ""
    size_kb: float = 0.0
    boot_cost_us: float = 0.0
    mem_cost_kb: float = 0.0
    synthetic: bool = False

    def dependency_symbols(self) -> set:
        """Names of symbols this option's ``depends on`` references."""
        return expr_symbols(self.depends_on)

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(f"invalid option name: {self.name!r}")


class DuplicateOptionError(ValueError):
    """Raised when two options with the same name are added to a tree."""


class UnknownOptionError(KeyError):
    """Raised when a config references an option not present in the tree."""


class KconfigTree:
    """The option database for one kernel source tree.

    Supports lookup by name, grouping by directory, and iteration.  The tree
    is append-only: options may be added but never mutated in place, which
    keeps resolved configurations consistent.
    """

    def __init__(self, kernel_version: str = "4.0") -> None:
        self.kernel_version = kernel_version
        self._options: Dict[str, ConfigOption] = {}
        self._by_directory: Dict[str, List[str]] = {}
        self._choices: Dict[str, "ChoiceGroup"] = {}
        self._choice_of_member: Dict[str, str] = {}
        self._resolution_index = None

    # -- resolution acceleration -------------------------------------------

    def resolution_index(self):
        """The cached :class:`~repro.kconfig.index.ResolutionIndex`.

        Built lazily on first resolution and reused for the life of the
        tree.  The tree is append-only (options/choices may be added but
        never mutated in place), so a size check is sufficient to detect
        a stale index and rebuild it.
        """
        from repro.kconfig.index import ResolutionIndex

        index = self._resolution_index
        if (
            index is None
            or index.option_count != len(self._options)
            or index.choice_count != len(self._choices)
        ):
            index = ResolutionIndex(self)
            self._resolution_index = index
        return index

    def fingerprint(self) -> str:
        """Content fingerprint of the tree (options, semantics, choices)."""
        return self.resolution_index().fingerprint

    # -- population ------------------------------------------------------

    def add(self, option: ConfigOption) -> ConfigOption:
        """Add *option*; raises :class:`DuplicateOptionError` on name clash."""
        if option.name in self._options:
            raise DuplicateOptionError(option.name)
        self._options[option.name] = option
        self._by_directory.setdefault(option.directory, []).append(option.name)
        return option

    def add_all(self, options: Iterable[ConfigOption]) -> None:
        for option in options:
            self.add(option)

    def add_choice(self, choice: "ChoiceGroup") -> "ChoiceGroup":
        """Register a choice group; members must already be in the tree."""
        if choice.name in self._choices:
            raise DuplicateOptionError(choice.name)
        for member in choice.members:
            if member not in self._options:
                raise UnknownOptionError(member)
            if member in self._choice_of_member:
                raise ValueError(
                    f"{member} already belongs to choice "
                    f"{self._choice_of_member[member]!r}"
                )
        self._choices[choice.name] = choice
        for member in choice.members:
            self._choice_of_member[member] = choice.name
        return choice

    def choices(self) -> List["ChoiceGroup"]:
        return list(self._choices.values())

    def choice_of(self, option_name: str) -> Optional["ChoiceGroup"]:
        """The choice group *option_name* belongs to, if any."""
        choice_name = self._choice_of_member.get(option_name)
        return self._choices.get(choice_name) if choice_name else None

    # -- lookup ----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._options

    def __getitem__(self, name: str) -> ConfigOption:
        try:
            return self._options[name]
        except KeyError:
            raise UnknownOptionError(name) from None

    def get(self, name: str) -> Optional[ConfigOption]:
        return self._options.get(name)

    def __iter__(self) -> Iterator[ConfigOption]:
        return iter(self._options.values())

    def __len__(self) -> int:
        return len(self._options)

    def names(self) -> Iterator[str]:
        return iter(self._options)

    # -- aggregation (Figure 3) -------------------------------------------

    def directories(self) -> List[str]:
        """Directories in insertion order."""
        return list(self._by_directory)

    def options_in(self, directory: str) -> List[ConfigOption]:
        return [self._options[name] for name in self._by_directory.get(directory, [])]

    def count_by_directory(self) -> Dict[str, int]:
        """Map directory -> number of options (paper Figure 3, 'total' series)."""
        return {d: len(names) for d, names in self._by_directory.items()}

    def count_selected_by_directory(self, selected: Iterable[str]) -> Dict[str, int]:
        """Like :meth:`count_by_directory` restricted to *selected* options."""
        counts = {d: 0 for d in self._by_directory}
        for name in selected:
            option = self.get(name)
            if option is not None:
                counts[option.directory] += 1
        return counts

    # -- validation --------------------------------------------------------

    def undefined_references(self) -> Dict[str, set]:
        """Map option name -> referenced-but-undefined dependency symbols.

        A healthy curated database has none; synthetic filler options never
        reference other symbols, so they cannot appear here.
        """
        undefined = {}
        for option in self:
            missing = {
                symbol
                for symbol in option.dependency_symbols() | set(option.selects)
                if symbol not in self._options
            }
            if missing:
                undefined[option.name] = missing
        return undefined


@dataclass
class Menu:
    """A (possibly nested) Kconfig menu; retained for parser fidelity."""

    title: str
    options: List[str] = field(default_factory=list)
    submenus: List["Menu"] = field(default_factory=list)


@dataclass
class ChoiceGroup:
    """A Kconfig ``choice``/``endchoice`` block: mutually exclusive options.

    Exactly one member is active in a resolved bool choice (the kernel's
    HZ_100/HZ_250/HZ_1000 tick-frequency selection is the canonical
    example).  ``default_member`` is used when no member is requested.
    """

    name: str
    members: Tuple[str, ...]
    default_member: Optional[str] = None
    prompt: str = ""

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise ValueError(
                f"choice {self.name!r} needs at least two members"
            )
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"choice {self.name!r} has duplicate members")
        if (self.default_member is not None
                and self.default_member not in self.members):
            raise ValueError(
                f"choice {self.name!r} default {self.default_member!r} is "
                "not a member"
            )
