"""Kconfig substrate: the Linux kernel configuration system, in Python.

This subpackage models the parts of Kconfig the paper relies on:

- :mod:`repro.kconfig.expr` -- the tristate expression language used by
  ``depends on``, ``default`` and friends.
- :mod:`repro.kconfig.model` -- configuration options and the option tree.
- :mod:`repro.kconfig.parser` -- a parser for Kconfig-language source text.
- :mod:`repro.kconfig.resolver` -- ``olddefconfig``-style resolution of a
  requested option set into a complete, dependency-consistent configuration.
- :mod:`repro.kconfig.database` -- a generated model of the Linux 4.0 option
  database (15,953 options, distributed across source directories as in
  Figure 3 of the paper).
- :mod:`repro.kconfig.configs` -- named configurations: ``defconfig``,
  ``tinyconfig``, Firecracker's ``microvm`` and the paper's ``lupine-base``.
"""

from repro.kconfig.expr import Tristate, parse_expr
from repro.kconfig.model import ConfigOption, KconfigTree, OptionType
from repro.kconfig.parser import KconfigParseError, parse_kconfig
from repro.kconfig.resolver import ResolvedConfig, Resolver

__all__ = [
    "ConfigOption",
    "KconfigParseError",
    "KconfigTree",
    "OptionType",
    "ResolvedConfig",
    "Resolver",
    "Tristate",
    "parse_expr",
    "parse_kconfig",
]
