"""Kconfig substrate: the Linux kernel configuration system, in Python.

This subpackage models the parts of Kconfig the paper relies on:

- :mod:`repro.kconfig.expr` -- the tristate expression language used by
  ``depends on``, ``default`` and friends, with an expression compiler for
  hot evaluation paths.
- :mod:`repro.kconfig.model` -- configuration options and the option tree.
- :mod:`repro.kconfig.parser` -- a parser for Kconfig-language source text.
- :mod:`repro.kconfig.resolver` -- ``olddefconfig``-style resolution of a
  requested option set into a complete, dependency-consistent configuration;
  incremental (worklist) by default, with the full-sweep oracle behind
  ``strategy="sweep"`` and warm-start derivation via ``resolve_from``.
- :mod:`repro.kconfig.index` -- the per-tree resolution index (reverse
  dependencies + compiled expressions) backing the worklist engine.
- :mod:`repro.kconfig.rescache` -- the process-wide resolution cache.
- :mod:`repro.kconfig.database` -- a generated model of the Linux 4.0 option
  database (15,953 options, distributed across source directories as in
  Figure 3 of the paper).
- :mod:`repro.kconfig.configs` -- named configurations: ``defconfig``,
  ``tinyconfig``, Firecracker's ``microvm`` and the paper's ``lupine-base``.
"""

from repro.kconfig.expr import Tristate, compile_expr, parse_expr
from repro.kconfig.index import ResolutionIndex
from repro.kconfig.model import ConfigOption, KconfigTree, OptionType
from repro.kconfig.parser import KconfigParseError, parse_kconfig
from repro.kconfig.rescache import RESOLUTION_CACHE, ResolutionCache
from repro.kconfig.resolver import ResolvedConfig, Resolver

__all__ = [
    "RESOLUTION_CACHE",
    "ConfigOption",
    "KconfigParseError",
    "KconfigTree",
    "OptionType",
    "ResolutionCache",
    "ResolutionIndex",
    "ResolvedConfig",
    "Resolver",
    "Tristate",
    "compile_expr",
    "parse_expr",
    "parse_kconfig",
]
