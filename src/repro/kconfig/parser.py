"""Parser for Kconfig-language source text.

Supports the subset of the Kconfig language the kernel build actually uses
for option definitions::

    menu "Networking support"

    config NET
        bool "Networking support"
        default y
        help
          Networking core.

    config INET
        bool "TCP/IP networking"
        depends on NET
        select CRYPTO_LIB

    endmenu

Recognized keywords: ``config``, ``menuconfig`` (treated as ``config``),
``menu``/``endmenu``, ``comment`` (ignored), ``if``/``endif`` (folded into
``depends on``), ``source`` (resolved through a caller-provided loader),
and inside a config block: ``bool``, ``tristate``, ``int``, ``hex``,
``string``, ``prompt``, ``default``, ``depends on``, ``select``, ``help``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.kconfig.expr import TRUE, And, Expr, parse_expr
from repro.kconfig.model import ConfigOption, KconfigTree, Menu, OptionType

_TYPE_KEYWORDS = {
    "bool": OptionType.BOOL,
    "tristate": OptionType.TRISTATE,
    "int": OptionType.INT,
    "hex": OptionType.HEX,
    "string": OptionType.STRING,
}


class KconfigParseError(ValueError):
    """Raised with a line number when Kconfig text cannot be parsed."""

    def __init__(self, message: str, line_number: int):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def _split_prompt(rest: str) -> str:
    rest = rest.strip()
    if rest.startswith('"') and rest.endswith('"') and len(rest) >= 2:
        return rest[1:-1]
    return rest


def _and_conditions(conditions: List[Expr]) -> Expr:
    expr: Expr = TRUE
    for condition in conditions:
        expr = condition if expr is TRUE else And(expr, condition)
    return expr


class _Lines:
    """Line cursor with pushback, tracking line numbers for diagnostics."""

    def __init__(self, text: str):
        self._lines = text.splitlines()
        self._index = 0

    def next(self) -> Optional[Tuple[int, str]]:
        if self._index >= len(self._lines):
            return None
        line = self._lines[self._index]
        self._index += 1
        return self._index, line

    def push_back(self) -> None:
        self._index -= 1


def parse_kconfig(
    text: str,
    directory: str = "kernel",
    source_loader: Optional[Callable[[str], str]] = None,
    tree: Optional[KconfigTree] = None,
) -> KconfigTree:
    """Parse Kconfig *text* into a :class:`KconfigTree`.

    ``source "path"`` statements are resolved through *source_loader*, which
    maps a path to Kconfig text; without a loader they raise.  The top-level
    directory of the path becomes the ``directory`` of options defined in the
    sourced file, mirroring how the kernel's tree is organized.
    """
    if tree is None:
        tree = KconfigTree()
    root_menu = Menu(title="<root>")
    _parse_into(text, tree, directory, source_loader, root_menu)
    return tree


def parse_kconfig_menus(
    text: str,
    directory: str = "kernel",
    source_loader: Optional[Callable[[str], str]] = None,
) -> Tuple[KconfigTree, Menu]:
    """Like :func:`parse_kconfig` but also return the root menu structure."""
    tree = KconfigTree()
    root_menu = Menu(title="<root>")
    _parse_into(text, tree, directory, source_loader, root_menu)
    return tree, root_menu


def _parse_into(
    text: str,
    tree: KconfigTree,
    directory: str,
    source_loader: Optional[Callable[[str], str]],
    root_menu: Menu,
) -> None:
    lines = _Lines(text)
    menu_stack: List[Menu] = [root_menu]
    condition_stack: List[Expr] = []
    choice_state: Optional[dict] = None
    choice_counter = [0]

    while True:
        item = lines.next()
        if item is None:
            break
        line_number, raw = item
        line = raw.strip()
        if not line or line.startswith("#"):
            continue

        keyword, _, rest = line.partition(" ")
        if choice_state is not None and keyword in ("prompt", "default") and (
            raw[:1].isspace()
        ):
            # Attribute lines of the choice header itself.
            if keyword == "prompt":
                choice_state["prompt"] = _split_prompt(rest)
            else:
                choice_state["default"] = rest.strip()
            continue
        if keyword in ("config", "menuconfig"):
            option = _parse_config_block(
                rest.strip(), lines, directory, line_number, condition_stack
            )
            tree.add(option)
            menu_stack[-1].options.append(option.name)
            if choice_state is not None:
                choice_state["members"].append(option.name)
        elif keyword == "choice":
            if choice_state is not None:
                raise KconfigParseError("nested choice", line_number)
            choice_counter[0] += 1
            choice_state = {
                "name": f"{directory}-choice-{choice_counter[0]}",
                "prompt": "",
                "default": None,
                "members": [],
            }
        elif keyword == "endchoice":
            if choice_state is None:
                raise KconfigParseError("endchoice without choice",
                                        line_number)
            from repro.kconfig.model import ChoiceGroup

            tree.add_choice(
                ChoiceGroup(
                    name=choice_state["name"],
                    members=tuple(choice_state["members"]),
                    default_member=choice_state["default"],
                    prompt=choice_state["prompt"],
                )
            )
            choice_state = None
        elif keyword == "menu":
            submenu = Menu(title=_split_prompt(rest))
            menu_stack[-1].submenus.append(submenu)
            menu_stack.append(submenu)
        elif keyword == "endmenu":
            if len(menu_stack) == 1:
                raise KconfigParseError("endmenu without menu", line_number)
            menu_stack.pop()
        elif keyword == "if":
            condition_stack.append(parse_expr(rest))
        elif keyword == "endif":
            if not condition_stack:
                raise KconfigParseError("endif without if", line_number)
            condition_stack.pop()
        elif keyword == "comment":
            continue
        elif keyword == "source":
            if source_loader is None:
                raise KconfigParseError(
                    f"source statement but no loader: {rest!r}", line_number
                )
            path = _split_prompt(rest)
            sub_directory = path.split("/", 1)[0] if "/" in path else directory
            _parse_into(
                source_loader(path), tree, sub_directory, source_loader, menu_stack[-1]
            )
        elif keyword == "mainmenu":
            root_menu.title = _split_prompt(rest)
        else:
            raise KconfigParseError(f"unknown keyword {keyword!r}", line_number)

    if len(menu_stack) != 1:
        raise KconfigParseError(f"unclosed menu {menu_stack[-1].title!r}", 0)
    if condition_stack:
        raise KconfigParseError("unclosed if block", 0)
    if choice_state is not None:
        raise KconfigParseError("unclosed choice block", 0)


def _parse_config_block(
    name: str,
    lines: _Lines,
    directory: str,
    start_line: int,
    condition_stack: List[Expr],
) -> ConfigOption:
    if not name:
        raise KconfigParseError("config without a name", start_line)

    option_type = OptionType.BOOL
    prompt = ""
    depends: List[Expr] = list(condition_stack)
    selects: List[str] = []
    default: Optional[Expr] = None
    help_lines: List[str] = []

    while True:
        item = lines.next()
        if item is None:
            break
        line_number, raw = item
        stripped = raw.strip()
        if not stripped:
            continue
        if not raw[:1].isspace():
            # A new top-level statement ends the block.
            lines.push_back()
            break

        keyword, _, rest = stripped.partition(" ")
        rest = rest.strip()
        if keyword in _TYPE_KEYWORDS:
            option_type = _TYPE_KEYWORDS[keyword]
            if rest:
                prompt = _split_prompt(rest)
        elif keyword == "prompt":
            prompt = _split_prompt(rest)
        elif keyword == "depends":
            if not rest.startswith("on "):
                raise KconfigParseError("expected 'depends on'", line_number)
            depends.append(parse_expr(rest[3:]))
        elif keyword == "select":
            symbol, _, condition = rest.partition(" if ")
            # Conditional selects are recorded unconditionally; the resolver
            # re-checks the selecting option's own visibility anyway.
            selects.append(symbol.strip())
        elif keyword == "default":
            value, _, condition = rest.partition(" if ")
            default_expr = parse_expr(value.strip())
            if condition.strip():
                default_expr = And(default_expr, parse_expr(condition.strip()))
            if default is None:
                default = default_expr
        elif keyword == "help" or stripped == "---help---":
            help_lines.extend(_consume_help(lines))
        elif keyword in ("range", "imply", "visible", "option", "modules"):
            continue  # accepted but not modelled
        else:
            raise KconfigParseError(
                f"unknown config attribute {keyword!r}", line_number
            )

    return ConfigOption(
        name=name,
        option_type=option_type,
        prompt=prompt,
        directory=directory,
        depends_on=_and_conditions(depends),
        selects=tuple(selects),
        default=default,
        help_text="\n".join(help_lines),
    )


def _consume_help(lines: _Lines) -> List[str]:
    """Consume an indented help body; stops at the first dedented line."""
    body: List[str] = []
    base_indent: Optional[int] = None
    while True:
        item = lines.next()
        if item is None:
            break
        _, raw = item
        if not raw.strip():
            if body:
                body.append("")
            continue
        indent = len(raw) - len(raw.lstrip())
        if base_indent is None:
            base_indent = indent
        if indent < base_indent:
            lines.push_back()
            break
        body.append(raw.strip())
    while body and not body[-1]:
        body.pop()
    return body


def format_config_fragment(values: dict) -> str:
    """Render a ``name -> Tristate/str/int`` mapping as a .config fragment.

    Disabled bool/tristate options render as ``# CONFIG_X is not set`` just
    like the kernel's own .config files.
    """
    from repro.kconfig.expr import Tristate

    rendered = []
    for name, value in sorted(values.items()):
        if isinstance(value, Tristate):
            if value is Tristate.NO:
                rendered.append(f"# CONFIG_{name} is not set")
            else:
                rendered.append(f"CONFIG_{name}={value}")
        elif isinstance(value, bool):
            rendered.append(
                f"CONFIG_{name}=y" if value else f"# CONFIG_{name} is not set"
            )
        elif isinstance(value, int):
            rendered.append(f"CONFIG_{name}={value}")
        else:
            rendered.append(f'CONFIG_{name}="{value}"')
    return "\n".join(rendered) + "\n"


def parse_config_fragment(text: str) -> dict:
    """Parse a .config fragment back into a ``name -> Tristate/str`` mapping."""
    from repro.kconfig.expr import Tristate

    values = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            if line.endswith(" is not set") and "CONFIG_" in line:
                name = line[len("# CONFIG_"):-len(" is not set")]
                values[name] = Tristate.NO
            continue
        if not line.startswith("CONFIG_") or "=" not in line:
            raise ValueError(f"malformed .config line: {line!r}")
        name, _, value = line[len("CONFIG_"):].partition("=")
        if value in ("y", "m", "n"):
            values[name] = Tristate.from_str(value)
        elif value.startswith('"') and value.endswith('"'):
            values[name] = value[1:-1]
        else:
            try:
                values[name] = int(value, 0)
            except ValueError:
                values[name] = value
    return values
