"""``savedefconfig``-style configuration minimization.

Given a resolved configuration, compute a minimal *request* set: the
smallest list of option names that, when resolved against the same tree,
reproduces exactly the same enabled set.  Options re-established by
``select`` edges or ``default`` expressions need not be requested -- this is
what lets the kernel's defconfig files stay small, and what lets Lupine's
application manifests list only the 0-13 options of Table 3 instead of the
full ~290.

The algorithm seeds the request with options that nothing else implies, then
greedily drops candidates whose removal leaves the resolution unchanged.
Greedy removal is exact here because resolution is monotone in the request
set for select/default-implied options.
"""

from __future__ import annotations

from typing import FrozenSet, List, Set

from repro.kconfig.resolver import ResolvedConfig, Resolver


def _implied_by_selects(config: ResolvedConfig) -> Set[str]:
    implied: Set[str] = set()
    tree = config.tree
    for name in config.enabled:
        for target in tree[name].selects:
            if target in config:
                implied.add(target)
    return implied


def _implied_by_defaults(config: ResolvedConfig) -> Set[str]:
    implied: Set[str] = set()
    for name in config.enabled:
        default = config.tree[name].default
        if default is not None and default.evaluate(config.values) >= (
            config.value(name)
        ):
            implied.add(name)
    return implied


def minimize_config(config: ResolvedConfig) -> FrozenSet[str]:
    """Compute a minimal request set reproducing *config*.

    Returns option names; ``Resolver(tree).resolve_names(result)`` yields a
    configuration with the same ``enabled`` set.
    """
    resolver = Resolver(config.tree)
    target = config.enabled

    candidates_for_removal = _implied_by_selects(config) | (
        _implied_by_defaults(config)
    )
    request: Set[str] = set(target)

    # Drop candidates one at a time, keeping the removal only if the
    # resolution still reaches the target set.  Deterministic order.
    # Trial resolutions are throwaway one-offs: bypass the process-wide
    # resolution cache rather than churn its LRU with them.
    for name in sorted(candidates_for_removal):
        trial = request - {name}
        resolved = resolver.resolve_names(sorted(trial), use_cache=False)
        if resolved.enabled == target:
            request = trial
    return frozenset(request)


def defconfig_lines(config: ResolvedConfig) -> List[str]:
    """Render the minimized request as defconfig-style lines."""
    return [f"CONFIG_{name}=y" for name in sorted(minimize_config(config))]
