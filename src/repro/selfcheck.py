"""Structural self-checks: the paper-exact invariants, verifiable anywhere.

``repro-lupine selfcheck`` runs these after an install or a modification to
the option data, confirming the counts the whole reproduction rests on.
Each check returns (name, passed, detail); the CLI prints them and exits
non-zero if any fail.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

CheckResult = Tuple[str, bool, str]


def _check_tree_total() -> CheckResult:
    from repro.kconfig.database import build_linux_tree

    total = len(build_linux_tree())
    return ("Linux 4.0 option total", total == 15953, f"{total} (want 15953)")


def _check_config_counts() -> CheckResult:
    from repro.kconfig.configs import lupine_base_config, microvm_config

    microvm = len(microvm_config().enabled)
    base = len(lupine_base_config().enabled)
    ok = (microvm, base) == (833, 283)
    return ("microVM/lupine-base counts", ok,
            f"{microvm}/{base} (want 833/283)")


def _check_category_split() -> CheckResult:
    from repro.core.classification import classify_microvm_options

    counts = classify_microvm_options().category_counts()
    ok = counts == {"app": 311, "mp": 89, "hw": 150}
    return ("Figure 4 category split", ok, str(counts))


def _check_no_undefined_references() -> CheckResult:
    from repro.kconfig.database import build_linux_tree

    undefined = build_linux_tree().undefined_references()
    return ("dependency graph closed", not undefined,
            f"{len(undefined)} dangling references")


def _check_resolution_clean() -> CheckResult:
    from repro.kconfig.configs import microvm_config

    config = microvm_config()
    ok = not config.demoted and not config.select_violations
    return ("microVM resolves without demotions", ok,
            f"{len(config.demoted)} demoted, "
            f"{len(config.select_violations)} violations")


def _check_table3() -> CheckResult:
    from repro.apps.registry import TOP20_APPS

    expected = (13, 10, 13, 5, 10, 11, 9, 8, 10, 0, 13, 0, 0, 0, 12, 0, 9,
                8, 11, 12)
    actual = tuple(app.option_count for app in TOP20_APPS)
    return ("Table 3 per-app option counts", actual == expected, str(actual))


def _check_union() -> CheckResult:
    from repro.apps.registry import lupine_general_option_union

    union = len(lupine_general_option_union())
    return ("lupine-general union", union == 19, f"{union} (want 19)")


def _check_manifest_roundtrip() -> CheckResult:
    from repro.apps.registry import TOP20_APPS
    from repro.core.manifest import derive_options, generate_manifest

    bad = [
        app.name
        for app in TOP20_APPS
        if derive_options(generate_manifest(app)) != app.required_options
    ]
    return ("manifest derivation matches Table 3", not bad, ", ".join(bad)
            or "all 20 apps")


def _check_table1() -> CheckResult:
    from repro.experiments.table1_syscall_options import run

    rows = run()
    ok = len(rows) == 12 and rows["FILE_LOCKING"] == ("flock",)
    return ("Table 1 syscall gating", ok, f"{len(rows)} rows")


ALL_CHECKS: List[Callable[[], CheckResult]] = [
    _check_tree_total,
    _check_config_counts,
    _check_category_split,
    _check_no_undefined_references,
    _check_resolution_clean,
    _check_table3,
    _check_union,
    _check_manifest_roundtrip,
    _check_table1,
]


def run_selfcheck() -> List[CheckResult]:
    """Run every structural check."""
    return [check() for check in ALL_CHECKS]


def all_passed(results: List[CheckResult]) -> bool:
    return all(passed for _, passed, _ in results)
