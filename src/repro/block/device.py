"""The virtio-blk device model.

Requests flow through a bounded virtqueue: submission costs a descriptor
write + kick, the backing file costs per-request latency plus per-KiB
transfer time, and a flush (REQ_FLUSH) costs a full device round trip.
Costs are simulated nanoseconds, accumulated on the device clock.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from repro.simcore.clock import VirtualClock

#: Descriptor setup + available-ring update + doorbell kick.
SUBMIT_NS = 450.0

#: Device-side latency per request (host file-backed, page-cache hot).
DEVICE_LATENCY_NS = 9_000.0

#: Transfer time per KiB.
TRANSFER_NS_PER_KB = 85.0

#: A flush forces host-side durability: an order of magnitude above a read.
FLUSH_NS = 95_000.0


class RequestKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    FLUSH = "flush"


class BlockDeviceError(RuntimeError):
    """Invalid requests (out-of-range sectors, full queue misuse)."""


@dataclass(frozen=True)
class BlockRequest:
    """One I/O request."""

    kind: RequestKind
    sector: int
    size_kb: float

    def __post_init__(self) -> None:
        if self.sector < 0:
            raise BlockDeviceError("negative sector")
        if self.kind is not RequestKind.FLUSH and self.size_kb <= 0:
            raise BlockDeviceError("data requests need a positive size")


@dataclass
class VirtioBlockDevice:
    """A virtio-blk device with a bounded virtqueue."""

    capacity_mb: float
    queue_depth: int = 128
    read_only: bool = False
    clock: VirtualClock = field(default_factory=VirtualClock)
    stats: Dict[str, int] = field(
        default_factory=lambda: {"read": 0, "write": 0, "flush": 0}
    )
    _in_flight: List[BlockRequest] = field(default_factory=list)

    @property
    def clock_ns(self) -> float:
        """Simulated nanoseconds accumulated on this device's clock."""
        return self.clock.now_ns

    @clock_ns.setter
    def clock_ns(self, value: float) -> None:
        self.clock.jump_to(value)

    @property
    def capacity_sectors(self) -> int:
        return int(self.capacity_mb * 1024 * 2)  # 512-byte sectors

    def _check(self, request: BlockRequest) -> None:
        end_sector = request.sector + int(request.size_kb * 2)
        if end_sector > self.capacity_sectors:
            raise BlockDeviceError(
                f"I/O beyond end of device: sector {end_sector} > "
                f"{self.capacity_sectors}"
            )
        if request.kind is RequestKind.WRITE and self.read_only:
            raise BlockDeviceError("write to read-only device")

    def submit(self, request: BlockRequest) -> None:
        """Queue a request; blocks (costing time) when the queue is full."""
        if request.kind is not RequestKind.FLUSH:
            self._check(request)
        if len(self._in_flight) >= self.queue_depth:
            self.complete_all()  # simulated back-pressure stall
        self.clock.advance(SUBMIT_NS)
        self._in_flight.append(request)

    def complete_all(self) -> int:
        """Process every queued request; returns how many completed.

        Device-side latency overlaps across queued requests (that is the
        point of a deep virtqueue): one latency charge per batch, transfer
        time per request.
        """
        if not self._in_flight:
            return 0
        self.clock.advance(DEVICE_LATENCY_NS)
        for request in self._in_flight:
            if request.kind is RequestKind.FLUSH:
                self.clock.advance(FLUSH_NS)
            else:
                self.clock.advance(request.size_kb * TRANSFER_NS_PER_KB)
            self.stats[request.kind.value] += 1
        completed = len(self._in_flight)
        self._in_flight.clear()
        return completed

    # -- synchronous convenience wrappers ---------------------------------

    def read(self, sector: int, size_kb: float) -> float:
        before = self.clock_ns
        self.submit(BlockRequest(RequestKind.READ, sector, size_kb))
        self.complete_all()
        return self.clock_ns - before

    def write(self, sector: int, size_kb: float) -> float:
        before = self.clock_ns
        self.submit(BlockRequest(RequestKind.WRITE, sector, size_kb))
        self.complete_all()
        return self.clock_ns - before

    def flush(self) -> float:
        before = self.clock_ns
        self.submit(BlockRequest(RequestKind.FLUSH, 0, 0.0))
        self.complete_all()
        return self.clock_ns - before
