"""A write-back page cache over a block device.

Reads hit the cache (cheap) or miss through to the device; writes dirty
cache pages without touching the device; ``fsync`` writes back every dirty
page and issues a device flush -- which is why ``fdatasync``-bound
workloads (pgbench's WAL) are orders of magnitude slower per operation
than redis's in-memory path, on any kernel.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Set

from repro.block.device import VirtioBlockDevice
from repro.simcore.clock import VirtualClock

PAGE_KB = 4.0

#: Cache hit cost (lookup + copy).
HIT_NS = 350.0


@dataclass
class PageCache:
    """Per-device page cache with LRU eviction."""

    device: VirtioBlockDevice
    capacity_pages: int = 4096
    clock: VirtualClock = field(default_factory=VirtualClock)
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    _pages: "OrderedDict[int, bool]" = field(default_factory=OrderedDict)
    # page -> dirty

    def __post_init__(self) -> None:
        if self.capacity_pages < 1:
            raise ValueError("cache needs at least one page")

    @property
    def clock_ns(self) -> float:
        """Simulated nanoseconds accumulated on this cache's clock."""
        return self.clock.now_ns

    @clock_ns.setter
    def clock_ns(self, value: float) -> None:
        self.clock.jump_to(value)

    @property
    def cached_pages(self) -> int:
        return len(self._pages)

    @property
    def dirty_pages(self) -> Set[int]:
        return {page for page, dirty in self._pages.items() if dirty}

    def _page_of(self, offset_kb: float) -> int:
        return int(offset_kb // PAGE_KB)

    def _insert(self, page: int, dirty: bool) -> None:
        if page in self._pages:
            self._pages[page] = self._pages[page] or dirty
            self._pages.move_to_end(page)
            return
        if len(self._pages) >= self.capacity_pages:
            victim, victim_dirty = next(iter(self._pages.items()))
            if victim_dirty:
                self._writeback(victim)
            self._pages.popitem(last=False)
        self._pages[page] = dirty

    def _writeback(self, page: int) -> None:
        self.clock.advance(self.device.write(page * int(PAGE_KB * 2), PAGE_KB))
        self.writebacks += 1

    # -- file operations ------------------------------------------------------

    def read(self, offset_kb: float, size_kb: float) -> float:
        """Read a byte range; returns simulated ns spent."""
        before = self.clock_ns
        first = self._page_of(offset_kb)
        last = self._page_of(offset_kb + max(size_kb, 0.001) - 0.001)
        for page in range(first, last + 1):
            if page in self._pages:
                self._pages.move_to_end(page)
                self.clock.advance(HIT_NS)
                self.hits += 1
            else:
                self.clock.advance(self.device.read(
                    page * int(PAGE_KB * 2), PAGE_KB
                ))
                self.misses += 1
                self._insert(page, dirty=False)
        return self.clock_ns - before

    def write(self, offset_kb: float, size_kb: float) -> float:
        """Buffered write: dirties pages, no device I/O."""
        before = self.clock_ns
        first = self._page_of(offset_kb)
        last = self._page_of(offset_kb + max(size_kb, 0.001) - 0.001)
        for page in range(first, last + 1):
            self.clock.advance(HIT_NS)
            self._insert(page, dirty=True)
        return self.clock_ns - before

    def fsync(self) -> float:
        """Write back all dirty pages, then flush the device."""
        before = self.clock_ns
        for page in sorted(self.dirty_pages):
            self._writeback(page)
            self._pages[page] = False
        self.clock.advance(self.device.flush())
        return self.clock_ns - before
