"""Block I/O substrate: virtio-blk devices and a write-back page cache.

Models the storage path under the rootfs and the durability-bound
workloads: reads hit the page cache or fault through to the device; writes
dirty cache pages cheaply; ``fsync`` pays the device round trips.  The
Lupine guest's ext2 rootfs sits on a virtio-blk device exposed by
Firecracker (Figure 2's runtime half).
"""

from repro.block.device import BlockRequest, RequestKind, VirtioBlockDevice
from repro.block.pagecache import PageCache

__all__ = ["BlockRequest", "PageCache", "RequestKind", "VirtioBlockDevice"]
