"""The active-clock context: which guest's clock is "now".

Layers that model time but do not own a guest object -- the boot
simulator advancing phase durations, the harness charging retry backoff,
the fault plane simulating a hang -- advance :func:`current_clock`.
Outside any guest that is the **process default clock** (the ambient
simulated timeline the old ``TRACER.sim`` counter provided); inside
``Guest`` lifecycle operations it is that guest's own
:class:`~repro.simcore.clock.VirtualClock`, entered via
:func:`use_clock`.

``observe.TRACER.sim`` is a millisecond view over exactly this function,
so existing traces keep working while every advance lands on the single
per-guest time authority.

The stack is thread-local: the experiment harness runs guests on a
thread pool, and each worker's active guest must not leak into its
neighbours.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, List

from repro.simcore.clock import VirtualClock

#: The ambient timeline used outside any guest scope.
_DEFAULT_CLOCK = VirtualClock()

_active = threading.local()


def _stack() -> List[VirtualClock]:
    stack = getattr(_active, "stack", None)
    if stack is None:
        stack = []
        _active.stack = stack
    return stack


def default_clock() -> VirtualClock:
    """The process-wide ambient clock (advances outside guest scopes)."""
    return _DEFAULT_CLOCK


def current_clock() -> VirtualClock:
    """The clock time-modelling code should advance *right now*."""
    stack = _stack()
    return stack[-1] if stack else _DEFAULT_CLOCK


@contextmanager
def use_clock(clock: VirtualClock) -> Iterator[VirtualClock]:
    """Make *clock* the active clock for the dynamic extent of the body."""
    stack = _stack()
    stack.append(clock)
    try:
        yield clock
    finally:
        stack.pop()
