"""The unified guest runtime: one lifecycle object per simulated guest.

``GuestSpec -> build -> boot -> serve -> shutdown``: a :class:`Guest`
composes the monitor, kernel image, :class:`SyscallEngine`,
:class:`NetworkPath`, scheduler, TCP stack and workload of one simulated
guest behind a single object, with every layer advancing the guest's own
:class:`~repro.simcore.clock.VirtualClock`.

Clock ownership rules (see ``docs/GUEST_RUNTIME.md``):

- the Guest owns the clock; engine, scheduler and TCP stack are *bound*
  to it at build time (they never keep private accumulators);
- lifecycle operations (``boot``, ``serve``) enter the guest's clock via
  :func:`~repro.simcore.context.use_clock`, so ambient advances -- boot
  phases, fault hangs -- land on this guest, not the process timeline;
- a guest used purely for steady-state measurement may ``serve`` from
  the BUILT state without booting: the paper's throughput numbers
  (Table 4) are steady-state and must not fold boot time into the
  engine's accumulator.

Experiments hand-wire nothing anymore: Figure 7 builds and boots
Guests, Table 4 serves workload profiles on them, the lmbench figures
measure their engines, and ``Fleet.simulate`` (:mod:`repro.core.orchestrator`)
drives thousands of them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.boot.phases import RootfsKind
from repro.simcore.clock import VirtualClock
from repro.simcore.context import use_clock


class GuestLifecycleError(RuntimeError):
    """An operation was issued in the wrong lifecycle state."""


class GuestState(enum.Enum):
    """Where a guest is in its lifecycle."""

    CREATED = "created"
    BUILT = "built"
    BOOTED = "booted"
    SHUTDOWN = "shutdown"


@dataclass(frozen=True)
class GuestSpec:
    """The declarative recipe for one guest.

    ``variant=None`` selects the microVM baseline kernel.  ``app`` names
    a registry application specializing the config (None: the bare
    lupine-base target).  ``full_image=True`` runs the whole Figure 2
    pipeline (container -> rootfs -> unikernel) instead of a kernel-only
    build -- the fleet path; kernel-only is what the latency/throughput
    experiments measure.
    """

    name: str
    variant: Optional["Variant"] = None  # noqa: F821 -- core.variants
    app: Optional[str] = None
    full_image: bool = False
    kpti: bool = False
    rootfs: RootfsKind = RootfsKind.EXT2


class Guest:
    """One simulated guest on its own virtual timeline."""

    def __init__(self, spec: GuestSpec,
                 clock: Optional[VirtualClock] = None,
                 unikernel=None) -> None:
        self.spec = spec
        self.clock = clock if clock is not None else VirtualClock()
        self.state = GuestState.CREATED
        self.kernel = None          # VariantBuild | MicrovmBuild
        #: Prebuilt LupineUnikernel (full_image fleets route builds
        #: through KernelOrchestrator.unikernel_for, so the per-app memo
        #: and build_count stay live); built on demand otherwise.
        self.unikernel = unikernel
        self.engine = None
        self.scheduler = None
        self.netpath = None
        self.tcp = None
        self.boot_report = None
        self.requests_served = 0
        self._stack = None

    # -- lifecycle ---------------------------------------------------------

    def build(self) -> "Guest":
        """Materialize kernel + runtime components, bound to the clock."""
        from repro.core.variants import build_microvm, build_variant
        from repro.netstack.tcp import stack_for_config
        from repro.sched.scheduler import Scheduler
        from repro.sched.smp import SmpModel

        self._require(GuestState.CREATED, "build")
        app = self._app()
        if self.spec.variant is None:
            self.kernel = build_microvm()
        elif self.spec.full_image:
            if app is None:
                raise GuestLifecycleError(
                    f"guest {self.spec.name}: full_image needs an app"
                )
            if self.unikernel is None:
                from repro.core.lupine import LupineBuilder

                self.unikernel = LupineBuilder(
                    variant=self.spec.variant
                ).build_for_app(app)
            self.kernel = self.unikernel.build
        else:
            self.kernel = build_variant(self.spec.variant, app)
        self.engine = self.kernel.syscall_engine(
            kpti=self.spec.kpti, clock=self.clock
        )
        smp_enabled = "SMP" in self.kernel.config
        self.scheduler = Scheduler(
            cost_model=self.engine.cost_model,
            smp=SmpModel(smp_enabled=smp_enabled, cpus=1),
            clock=self.clock,
        )
        # Hello-world kernels (Figure 6/7's measurement target) drop
        # CONFIG_INET entirely; such guests boot but cannot serve.
        if "INET" in self.kernel.config:
            self.netpath = self.kernel.network_path()
            self.tcp = stack_for_config(
                self.kernel.config.enabled, clock=self.clock
            )
        self.state = GuestState.BUILT
        return self

    def boot(self, monitor=None, system: Optional[str] = None):
        """Boot the guest; boot phases advance *this guest's* clock.

        Returns the :class:`~repro.boot.bootsim.BootReport`.  Full-image
        guests validate monitor/driver compatibility first, exactly as
        :meth:`LupineUnikernel.boot` did.
        """
        from repro.boot.bootsim import BootSimulator
        from repro.vmm.monitor import firecracker

        self._require(GuestState.BUILT, "boot")
        monitor = monitor if monitor is not None else firecracker()
        if self.spec.full_image:
            monitor.check_linux_guest(self.kernel.image)
            if system is None:
                system = self.kernel.config.name
        simulator = BootSimulator(monitor_setup_ms=monitor.setup_ms)
        with use_clock(self.clock):
            self.boot_report = simulator.boot(
                self.kernel.image, rootfs=self.spec.rootfs, system=system
            )
        self.state = GuestState.BOOTED
        return self.boot_report

    def serve(self, profile, requests: int) -> float:
        """Serve *requests* of *profile* through the live engine; rps.

        Allowed from BUILT (steady-state measurement, boot excluded from
        the engine fold) or BOOTED (full-lifecycle guests).
        """
        if self.state not in (GuestState.BUILT, GuestState.BOOTED):
            raise GuestLifecycleError(
                f"guest {self.spec.name}: cannot serve while {self.state.value}"
            )
        with use_clock(self.clock):
            rate = self.server_stack.run(profile, requests)
        self.requests_served += requests
        return rate

    def serve_chunks(self, profile, requests: int,
                     chunk_size: int = 8) -> "Iterator[float]":
        """Incremental :meth:`serve`: yield after every *chunk_size* requests.

        The fleet's global event loop drives this generator so guests
        interleave in virtual-time order between chunks.  The generator's
        return value (``StopIteration.value``) is the same rps -- to the
        bit -- that ``serve(profile, requests)`` computes: ``invoke_batch``
        folds element-wise over the engine's running accumulator, so any
        chunking of the same request count replays the identical
        additions (see :meth:`LinuxServerStack.serve_chunk
        <repro.workloads.server.LinuxServerStack.serve_chunk>`).

        Each yield carries the guest's current virtual instant.
        """
        if self.state not in (GuestState.BUILT, GuestState.BOOTED):
            raise GuestLifecycleError(
                f"guest {self.spec.name}: cannot serve while {self.state.value}"
            )
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        stack = self.server_stack
        start = stack.engine.clock_ns
        remaining = requests
        while remaining > 0:
            step = chunk_size if chunk_size < remaining else remaining
            with use_clock(self.clock):
                stack.serve_chunk(profile, step)
            remaining -= step
            yield self.clock.now_ns
        self.requests_served += requests
        elapsed_s = (stack.engine.clock_ns - start) / 1e9
        return requests / elapsed_s

    def shutdown(self) -> None:
        """Retire the guest; its clock stops accepting lifecycle work.

        Pending virtual deadlines (2MSL timers, armed sleeps) are drained
        first -- the clock lands on each in turn and fires it -- so a
        guest's uptime always covers every event it armed, identically
        in the sequential and global-loop fleet paths.
        """
        if self.state is GuestState.SHUTDOWN:
            return
        while True:
            deadline = self.clock.next_deadline_ns()
            if deadline is None:
                break
            self.clock.advance_to(deadline)
        self.state = GuestState.SHUTDOWN

    # -- measurement surface ----------------------------------------------

    @property
    def server_stack(self):
        """The guest's server workload stack (engine + network path)."""
        from repro.workloads.server import LinuxServerStack

        if self._stack is None:
            self._require_built("server_stack")
            if self.netpath is None:
                raise GuestLifecycleError(
                    f"guest {self.spec.name}: kernel has no network stack"
                )
            self._stack = LinuxServerStack(
                engine=self.engine, netpath=self.netpath
            )
        return self._stack

    def request_ns(self, profile) -> float:
        """Analytic per-request cost on this guest (no engine mutation)."""
        return self.server_stack.request_ns(profile)

    def requests_per_second(self, profile) -> float:
        return self.server_stack.requests_per_second(profile)

    def timer_wheel(self):
        """The kernel timer wheel, HZ from config, driven by the clock."""
        from repro.sched.timers import TimerWheel

        self._require_built("timer_wheel")
        hz = 250
        for option_name, value in (("HZ_100", 100), ("HZ_250", 250),
                                   ("HZ_1000", 1000)):
            if option_name in self.kernel.config:
                hz = value
        return TimerWheel(hz=hz).bind_clock(self.clock)

    @property
    def uptime_ns(self) -> float:
        return self.clock.now_ns

    @property
    def boot_ms(self) -> Optional[float]:
        return None if self.boot_report is None else self.boot_report.total_ms

    # -- internals ---------------------------------------------------------

    def _app(self):
        if self.spec.app is None:
            return None
        from repro.apps.registry import get_app

        return get_app(self.spec.app)

    def _require(self, state: GuestState, operation: str) -> None:
        if self.state is not state:
            raise GuestLifecycleError(
                f"guest {self.spec.name}: {operation} requires "
                f"{state.value}, currently {self.state.value}"
            )

    def _require_built(self, operation: str) -> None:
        if self.state in (GuestState.CREATED, GuestState.SHUTDOWN):
            raise GuestLifecycleError(
                f"guest {self.spec.name}: {operation} requires a built guest"
            )


# -- convenience constructors ---------------------------------------------


def microvm_guest(name: str = "microvm") -> Guest:
    """A built guest on the microVM baseline kernel."""
    return Guest(GuestSpec(name=name)).build()


def variant_guest(variant, app: Optional[str] = None,
                  name: Optional[str] = None) -> Guest:
    """A built kernel-only guest for *variant* (optionally specialized)."""
    label = name or (f"{variant.value}[{app}]" if app else variant.value)
    return Guest(GuestSpec(name=label, variant=variant, app=app)).build()


def guest_for_app(variant, app: str, name: Optional[str] = None) -> Guest:
    """A built full-image guest (Figure 2 pipeline) for *app*."""
    return Guest(GuestSpec(
        name=name or f"{variant.value}[{app}]",
        variant=variant, app=app, full_image=True,
    )).build()
