"""The per-guest virtual clock: one time authority for every layer.

Before this module the repository kept four disconnected time domains --
``TRACER.sim`` (milliseconds), ``SyscallEngine.clock_ns``, the scheduler's
nanosecond accumulator and the timer wheel's tick counter -- so a boot, a
syscall burst and a TCP teardown on the *same guest* advanced unrelated
counters and cross-layer causality (a 2MSL timer expiring because the
workload ran long enough) was unrepresentable.

:class:`VirtualClock` is the single authority: a nanosecond-resolution
monotonic accumulator with a deadline/event queue and listeners.  The
boot simulator, syscall engine, scheduler, timer wheel and TCP stack of
one guest all advance the same instance (see
:mod:`repro.simcore.guest`); ``observe.TRACER.sim`` is a millisecond view
over the *active* clock (:mod:`repro.simcore.context`).

Float-fold exactness
--------------------

The reproduction's golden-parity guarantee rests on IEEE-754 addition
being replayed exactly: experiment outputs are folds like
``clock += latency`` and float addition is not associative.  The clock
therefore guarantees that ``advance(ns)`` computes **exactly**
``now + ns`` (one double addition, identical to the ``clock_ns += x``
folds it replaces), and ``advance_to``/``jump_to`` set the target value
**exactly** (no ``now + (target - now)`` rounding detour).  Event
dispatch never perturbs the accumulator: due events observe their
deadline, then the clock lands on the exact target.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Callable, List, Optional


class ClockError(ValueError):
    """Invalid clock operations (negative advances, past deadlines)."""


class ScheduledEvent:
    """One pending deadline on a :class:`VirtualClock`.

    Lifecycle: *pending* -> *fired* (dispatched by the clock) or
    *cancelled* (by the holder), never both.  ``cancel()`` after dispatch
    returns ``False`` -- the callback has already run, so callers must
    not believe they prevented it.
    """

    __slots__ = ("deadline_ns", "seq", "callback", "cancelled", "fired",
                 "_clock")

    def __init__(self, deadline_ns: float, seq: int,
                 callback: Optional[Callable[[], None]],
                 clock: Optional["VirtualClock"] = None) -> None:
        self.deadline_ns = deadline_ns
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False
        self._clock = clock

    def cancel(self) -> bool:
        """Cancel the event; returns False if it already fired/cancelled."""
        if self.cancelled or self.fired:
            return False
        self.cancelled = True
        if self._clock is not None:
            self._clock._note_cancelled()
        return True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.deadline_ns, self.seq) < (other.deadline_ns, other.seq)


class VirtualClock:
    """Monotonic simulated time in nanoseconds, with deadlines.

    Thread-safe for concurrent advances (the harness runs experiments on
    a pool); callbacks and listeners run outside the lock, at the moment
    the clock sits exactly on the event's deadline.
    """

    #: Heap-compaction floor: cancelled entries are swept out only once the
    #: queue is at least this large *and* more than half cancelled
    #: (asyncio-style), so tiny queues never pay repeated heapify costs.
    COMPACT_MIN_EVENTS = 64

    def __init__(self, start_ns: float = 0.0) -> None:
        self._lock = threading.RLock()
        self._now_ns = float(start_ns)
        self._events: List[ScheduledEvent] = []
        self._seq = itertools.count()
        self._listeners: List[Callable[[float], None]] = []
        self._cancelled_count = 0

    # -- reading -----------------------------------------------------------

    @property
    def now_ns(self) -> float:
        with self._lock:
            return self._now_ns

    @property
    def now_ms(self) -> float:
        with self._lock:
            return self._now_ns / 1e6

    @property
    def pending_events(self) -> int:
        with self._lock:
            return len(self._events) - self._cancelled_count

    def next_deadline_ns(self) -> Optional[float]:
        """The earliest pending (non-cancelled) deadline, or None.

        The closed-form fast-forward hook: an idle guest's next event is
        this instant, so the fleet event core can land on it with one
        ``advance_to`` instead of stepping (see
        :mod:`repro.simcore.eventcore`).
        """
        with self._lock:
            self._skim_cancelled()
            return self._events[0].deadline_ns if self._events else None

    # -- advancing ---------------------------------------------------------

    def advance(self, ns: float) -> float:
        """Advance by *ns* >= 0 nanoseconds; returns the new now.

        Exactness: the final value is exactly ``now + ns`` (one double
        addition), regardless of how many events fire on the way.
        """
        if ns < 0:
            raise ClockError(f"virtual time cannot go backwards ({ns} ns)")
        with self._lock:
            return self._run_to(self._now_ns + ns)

    def advance_ms(self, ms: float) -> float:
        """Advance by *ms* milliseconds; returns the new now in ms."""
        if ms < 0:
            raise ClockError(f"virtual time cannot go backwards ({ms} ms)")
        return self.advance(ms * 1e6) / 1e6

    def advance_to(self, target_ns: float) -> float:
        """Advance to exactly *target_ns* (>= now); fires due events."""
        with self._lock:
            if target_ns < self._now_ns:
                raise ClockError(
                    f"advance_to({target_ns}) is in the past "
                    f"(now {self._now_ns})"
                )
            return self._run_to(target_ns)

    def jump_to(self, value_ns: float) -> float:
        """Set the clock to exactly *value_ns*, forwards or backwards.

        Forward jumps behave like :meth:`advance_to` (due events fire);
        backward jumps rebase the accumulator administratively -- the
        legacy ``engine.clock_ns = 0.0`` reset idiom -- leaving pending
        events armed at their absolute deadlines.  Listeners are notified
        of the rebase (with the new now) exactly as they are of forward
        moves, so a bound :class:`~repro.sched.timers.TimerWheel`
        re-anchors its tick base instead of keeping a stale one.
        """
        with self._lock:
            if value_ns < self._now_ns:
                self._now_ns = float(value_ns)
                self._notify(self._now_ns)
                return self._now_ns
            return self._run_to(value_ns)

    def reset(self) -> None:
        """Rewind to zero and drop all pending events (test isolation).

        Listeners stay registered and observe the rebase to 0.0 -- the
        same rebase semantics as a backward :meth:`jump_to`.
        """
        with self._lock:
            self._now_ns = 0.0
            self._events.clear()
            self._cancelled_count = 0
            self._notify(0.0)

    # -- deadlines ---------------------------------------------------------

    def call_at(self, deadline_ns: float,
                callback: Optional[Callable[[], None]] = None
                ) -> ScheduledEvent:
        """Schedule *callback* to fire when the clock reaches *deadline_ns*."""
        with self._lock:
            if deadline_ns < self._now_ns:
                raise ClockError(
                    f"deadline {deadline_ns} is in the past "
                    f"(now {self._now_ns})"
                )
            event = ScheduledEvent(
                deadline_ns, next(self._seq), callback, clock=self
            )
            heapq.heappush(self._events, event)
        return event

    def call_after(self, delay_ns: float,
                   callback: Optional[Callable[[], None]] = None
                   ) -> ScheduledEvent:
        """Schedule *callback* to fire *delay_ns* >= 0 from now."""
        if delay_ns < 0:
            raise ClockError(f"cannot schedule {delay_ns} ns in the past")
        with self._lock:
            return self.call_at(self._now_ns + delay_ns, callback)

    # -- listeners ---------------------------------------------------------

    def add_listener(self, listener: Callable[[float], None]) -> None:
        """Register *listener(now_ns)*, called after every forward move.

        The timer wheel binds through this: each advance syncs the wheel
        by the number of whole ticks elapsed (see
        :meth:`repro.sched.timers.TimerWheel.bind_clock`).
        """
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[float], None]) -> None:
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    # -- internals ---------------------------------------------------------

    def _run_to(self, target_ns: float) -> float:
        """Move to exactly *target_ns*, firing due events in deadline order.

        Caller holds ``self._lock`` (re-entrant): the whole move, event
        callbacks included, is atomic with respect to other threads, just
        as the per-layer ``clock_ns += x`` folds it replaces were single
        statements.  Callbacks may re-enter the clock from this thread.
        """
        while True:
            self._skim_cancelled()
            if self._events and self._events[0].deadline_ns <= target_ns:
                event = heapq.heappop(self._events)
                # Mark *before* the callback runs: a cancel() from inside
                # the callback (or any later one) must report False -- the
                # event has been dispatched.
                event.fired = True
                # The callback observes the clock *at* its deadline.
                self._now_ns = event.deadline_ns
                if event.callback is not None:
                    event.callback()
            else:
                self._now_ns = target_ns
                break
        self._notify(target_ns)
        return target_ns

    def _notify(self, now_ns: float) -> None:
        """Tell every listener the clock now reads *now_ns*."""
        for listener in list(self._listeners):
            listener(now_ns)

    def _skim_cancelled(self) -> None:
        """Drop cancelled events sitting at the top of the heap."""
        while self._events and self._events[0].cancelled:
            heapq.heappop(self._events)
            self._cancelled_count -= 1

    def _note_cancelled(self) -> None:
        """Bookkeep one cancellation; compact when the heap is mostly dead.

        Cancelled events used to linger until their deadline was reached
        -- cancelled 2MSL timers from fast TCP closes accumulated for a
        whole run.  asyncio-style: once cancelled entries exceed half of
        a non-trivial queue, rebuild the heap from the live entries.
        """
        with self._lock:
            self._cancelled_count += 1
            if (len(self._events) >= self.COMPACT_MIN_EVENTS
                    and self._cancelled_count * 2 > len(self._events)):
                self._events = [
                    e for e in self._events if not e.cancelled
                ]
                heapq.heapify(self._events)
                self._cancelled_count = 0
