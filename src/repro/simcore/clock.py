"""The per-guest virtual clock: one time authority for every layer.

Before this module the repository kept four disconnected time domains --
``TRACER.sim`` (milliseconds), ``SyscallEngine.clock_ns``, the scheduler's
nanosecond accumulator and the timer wheel's tick counter -- so a boot, a
syscall burst and a TCP teardown on the *same guest* advanced unrelated
counters and cross-layer causality (a 2MSL timer expiring because the
workload ran long enough) was unrepresentable.

:class:`VirtualClock` is the single authority: a nanosecond-resolution
monotonic accumulator with a deadline/event queue and listeners.  The
boot simulator, syscall engine, scheduler, timer wheel and TCP stack of
one guest all advance the same instance (see
:mod:`repro.simcore.guest`); ``observe.TRACER.sim`` is a millisecond view
over the *active* clock (:mod:`repro.simcore.context`).

Float-fold exactness
--------------------

The reproduction's golden-parity guarantee rests on IEEE-754 addition
being replayed exactly: experiment outputs are folds like
``clock += latency`` and float addition is not associative.  The clock
therefore guarantees that ``advance(ns)`` computes **exactly**
``now + ns`` (one double addition, identical to the ``clock_ns += x``
folds it replaces), and ``advance_to``/``jump_to`` set the target value
**exactly** (no ``now + (target - now)`` rounding detour).  Event
dispatch never perturbs the accumulator: due events observe their
deadline, then the clock lands on the exact target.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Callable, List, Optional


class ClockError(ValueError):
    """Invalid clock operations (negative advances, past deadlines)."""


class ScheduledEvent:
    """One pending deadline on a :class:`VirtualClock`."""

    __slots__ = ("deadline_ns", "seq", "callback", "cancelled")

    def __init__(self, deadline_ns: float, seq: int,
                 callback: Optional[Callable[[], None]]) -> None:
        self.deadline_ns = deadline_ns
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> bool:
        """Cancel the event; returns False if it already fired/cancelled."""
        if self.cancelled:
            return False
        self.cancelled = True
        return True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.deadline_ns, self.seq) < (other.deadline_ns, other.seq)


class VirtualClock:
    """Monotonic simulated time in nanoseconds, with deadlines.

    Thread-safe for concurrent advances (the harness runs experiments on
    a pool); callbacks and listeners run outside the lock, at the moment
    the clock sits exactly on the event's deadline.
    """

    def __init__(self, start_ns: float = 0.0) -> None:
        self._lock = threading.RLock()
        self._now_ns = float(start_ns)
        self._events: List[ScheduledEvent] = []
        self._seq = itertools.count()
        self._listeners: List[Callable[[float], None]] = []

    # -- reading -----------------------------------------------------------

    @property
    def now_ns(self) -> float:
        with self._lock:
            return self._now_ns

    @property
    def now_ms(self) -> float:
        with self._lock:
            return self._now_ns / 1e6

    @property
    def pending_events(self) -> int:
        with self._lock:
            return sum(1 for e in self._events if not e.cancelled)

    # -- advancing ---------------------------------------------------------

    def advance(self, ns: float) -> float:
        """Advance by *ns* >= 0 nanoseconds; returns the new now.

        Exactness: the final value is exactly ``now + ns`` (one double
        addition), regardless of how many events fire on the way.
        """
        if ns < 0:
            raise ClockError(f"virtual time cannot go backwards ({ns} ns)")
        with self._lock:
            return self._run_to(self._now_ns + ns)

    def advance_ms(self, ms: float) -> float:
        """Advance by *ms* milliseconds; returns the new now in ms."""
        if ms < 0:
            raise ClockError(f"virtual time cannot go backwards ({ms} ms)")
        return self.advance(ms * 1e6) / 1e6

    def advance_to(self, target_ns: float) -> float:
        """Advance to exactly *target_ns* (>= now); fires due events."""
        with self._lock:
            if target_ns < self._now_ns:
                raise ClockError(
                    f"advance_to({target_ns}) is in the past "
                    f"(now {self._now_ns})"
                )
            return self._run_to(target_ns)

    def jump_to(self, value_ns: float) -> float:
        """Set the clock to exactly *value_ns*, forwards or backwards.

        Forward jumps behave like :meth:`advance_to` (due events fire);
        backward jumps rebase the accumulator administratively -- the
        legacy ``engine.clock_ns = 0.0`` reset idiom -- leaving pending
        events armed at their absolute deadlines.
        """
        with self._lock:
            if value_ns < self._now_ns:
                self._now_ns = float(value_ns)
                return self._now_ns
            return self._run_to(value_ns)

    def reset(self) -> None:
        """Rewind to zero and drop all pending events (test isolation)."""
        with self._lock:
            self._now_ns = 0.0
            self._events.clear()

    # -- deadlines ---------------------------------------------------------

    def call_at(self, deadline_ns: float,
                callback: Optional[Callable[[], None]] = None
                ) -> ScheduledEvent:
        """Schedule *callback* to fire when the clock reaches *deadline_ns*."""
        with self._lock:
            if deadline_ns < self._now_ns:
                raise ClockError(
                    f"deadline {deadline_ns} is in the past "
                    f"(now {self._now_ns})"
                )
            event = ScheduledEvent(deadline_ns, next(self._seq), callback)
            heapq.heappush(self._events, event)
        return event

    def call_after(self, delay_ns: float,
                   callback: Optional[Callable[[], None]] = None
                   ) -> ScheduledEvent:
        """Schedule *callback* to fire *delay_ns* >= 0 from now."""
        if delay_ns < 0:
            raise ClockError(f"cannot schedule {delay_ns} ns in the past")
        with self._lock:
            return self.call_at(self._now_ns + delay_ns, callback)

    # -- listeners ---------------------------------------------------------

    def add_listener(self, listener: Callable[[float], None]) -> None:
        """Register *listener(now_ns)*, called after every forward move.

        The timer wheel binds through this: each advance syncs the wheel
        by the number of whole ticks elapsed (see
        :meth:`repro.sched.timers.TimerWheel.bind_clock`).
        """
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[float], None]) -> None:
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    # -- internals ---------------------------------------------------------

    def _run_to(self, target_ns: float) -> float:
        """Move to exactly *target_ns*, firing due events in deadline order.

        Caller holds ``self._lock`` (re-entrant): the whole move, event
        callbacks included, is atomic with respect to other threads, just
        as the per-layer ``clock_ns += x`` folds it replaces were single
        statements.  Callbacks may re-enter the clock from this thread.
        """
        while True:
            while self._events and self._events[0].cancelled:
                heapq.heappop(self._events)
            if self._events and self._events[0].deadline_ns <= target_ns:
                event = heapq.heappop(self._events)
                # The callback observes the clock *at* its deadline.
                self._now_ns = event.deadline_ns
                if event.callback is not None:
                    event.callback()
            else:
                self._now_ns = target_ns
                break
        for listener in list(self._listeners):
            listener(target_ns)
        return target_ns
