"""simcore: the unified guest runtime on a single virtual-time core.

Three pieces:

- :mod:`repro.simcore.clock` / :mod:`repro.simcore.context` -- the
  per-guest :class:`VirtualClock` (ns resolution, monotonic, deadline
  queue) and the thread-local *active clock* every time-modelling layer
  advances;
- :mod:`repro.simcore.guest` -- the :class:`Guest` lifecycle object
  (``GuestSpec -> build -> boot -> serve -> shutdown``) composing
  monitor, kernel image, syscall engine, network path, scheduler and
  workload around one clock;
- :mod:`repro.simcore.eventcore` -- the fleet-wide :class:`EventCore`
  merging every guest's deadline queue into one global heap and
  interleaving guests in virtual-time order (``Fleet.simulate``'s
  global loop), with idle guests fast-forwarded in closed form.

``guest`` is exported lazily (PEP 562): it imports the build pipeline
and observability layers, which themselves import ``simcore.clock``, so
an eager import here would cycle.

See ``docs/GUEST_RUNTIME.md`` for the lifecycle and clock-ownership
rules.
"""

from __future__ import annotations

from repro.simcore.clock import ClockError, ScheduledEvent, VirtualClock
from repro.simcore.context import current_clock, default_clock, use_clock
from repro.simcore.eventcore import (
    EventCore,
    EventCoreError,
    EventCoreStats,
    drain_deadlines,
)

_LAZY = (
    "Guest",
    "GuestLifecycleError",
    "GuestSpec",
    "GuestState",
    "guest_for_app",
    "microvm_guest",
    "variant_guest",
)


def __getattr__(name: str):
    if name in _LAZY:
        from repro.simcore import guest as _guest

        return getattr(_guest, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ClockError",
    "EventCore",
    "EventCoreError",
    "EventCoreStats",
    "ScheduledEvent",
    "VirtualClock",
    "current_clock",
    "default_clock",
    "drain_deadlines",
    "use_clock",
    *_LAZY,
]
