"""The fleet-wide event core: one global heap over every guest timeline.

``Fleet.simulate`` used to drive guests strictly one at a time, each on
its own :class:`~repro.simcore.clock.VirtualClock` -- cross-guest
causality (shared-host contention, staggered boots, correlated fault
schedules) was unrepresentable because there was no global order between
two guests' events.  :class:`EventCore` merges every registered guest's
deadline queue into one heap and dispatches guests in **virtual-time
order**: at every step the runnable guest with the smallest virtual
instant runs its next lifecycle stage.  Events across the whole fleet
now have a single well-defined global order (ties broken by dispatch
sequence number, so runs are deterministic).

Guest programs
--------------

A guest registers as a *program*: a generator whose ``next()`` runs one
lifecycle stage (build, boot, a chunk of serving, a drain step) and
advances the guest's own clock.  The yielded value tells the core when
the guest is next runnable:

- ``yield None`` -- runnable immediately, at the guest's current virtual
  instant (CPU-bound stages: the next serve chunk);
- ``yield deadline_ns`` -- **idle** until an armed virtual deadline (a
  2MSL timer, a sleep).  The core parks the guest at that absolute
  instant in the global heap, and when it becomes the earliest event
  fast-forwards the guest's clock there **in closed form** -- one
  ``advance_to``, firing the due events, never stepping.  This is the
  ``invoke_batch`` fold applied *across* guests: within a guest, batched
  serving folds a whole jitter period in one call; across guests, idle
  time folds into one jump.

Determinism: the heap is keyed ``(virtual_ns, seq)`` with ``seq`` a
monotone counter, programs run on one thread, and every per-guest
outcome depends only on that guest's own clock -- so a fleet run under
the global loop produces byte-identical per-guest results to the
sequential oracle (asserted by tests and the ``bench-guests
--global-loop`` gate).

Fault injection: each dispatch is a :func:`~repro.faults.plane.fault_site`
(``eventcore.dispatch``) entered inside the dispatched guest's clock
scope, so a correlated cross-guest fault schedule has a well-defined
global order and an injected hang advances exactly the afflicted
guest's timeline.

Clock discipline: fleet code paths must not construct
:class:`VirtualClock` directly -- guests obtain their clock from
:meth:`EventCore.clock_for` (enforced by ``tools/lint_time.py``'s
``no-direct-clock-in-fleet`` rule), so every fleet timeline is
registered with, and order-visible to, the core.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.simcore.clock import VirtualClock

#: A guest lifecycle program: ``next()`` runs one stage; yields ``None``
#: (runnable now) or an absolute virtual deadline (idle until then).
GuestProgram = Generator[Optional[float], None, None]


class EventCoreError(RuntimeError):
    """Invalid event-core operations (duplicate guests, time reversal)."""


@dataclass
class _Runner:
    """One registered guest: its clock plus its lifecycle program."""

    name: str
    clock: VirtualClock
    program: GuestProgram
    done: bool = False


@dataclass
class EventCoreStats:
    """Counters one :meth:`EventCore.run` produced (manifest-external)."""

    events_dispatched: int = 0
    guests_fast_forwarded: int = 0
    heap_high_water: int = 0
    guests: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "events_dispatched": self.events_dispatched,
            "guests_fast_forwarded": self.guests_fast_forwarded,
            "heap_high_water": self.heap_high_water,
            "guests": self.guests,
        }


@dataclass
class EventCore:
    """The global event loop for a fleet of guests.

    Usage::

        core = EventCore()
        for spec in specs:
            guest = Guest(spec, clock=core.clock_for(spec.name))
            core.spawn(spec.name, lifecycle_program(guest))
        core.run()

    One core = one fleet = one global virtual-order; cores are
    single-threaded and not reusable across fleets (register a fresh one
    per run, like a fresh heap per simulation).
    """

    start_ns: float = 0.0
    _clocks: Dict[str, VirtualClock] = field(default_factory=dict)
    _runners: Dict[str, _Runner] = field(default_factory=dict)
    _heap: List[Tuple[float, int, "_Runner"]] = field(default_factory=list)
    _seq: "itertools.count" = field(default_factory=itertools.count)
    stats: EventCoreStats = field(default_factory=EventCoreStats)

    # -- registration ------------------------------------------------------

    def clock_for(self, name: str) -> VirtualClock:
        """The virtual clock for guest *name* (created on first use).

        Fleet code obtains guest clocks exclusively through this method
        -- the lint forbids direct ``VirtualClock()`` construction in
        fleet paths -- so every timeline the fleet runs on is known to
        the core.
        """
        if name not in self._clocks:
            self._clocks[name] = VirtualClock(self.start_ns)
        return self._clocks[name]

    def spawn(self, name: str, program: GuestProgram) -> None:
        """Register guest *name*'s lifecycle *program* with the core."""
        if name in self._runners:
            raise EventCoreError(f"guest {name!r} already registered")
        runner = _Runner(name=name, clock=self.clock_for(name),
                         program=program)
        self._runners[name] = runner
        self.stats.guests += 1
        self._push(runner.clock.now_ns, runner)

    # -- the loop ----------------------------------------------------------

    def run(self) -> EventCoreStats:
        """Dispatch the merged heap until every program completes.

        Returns (and publishes to the metrics registry) the per-core
        counters: events dispatched, guests fast-forwarded in closed
        form, and the heap's high-water mark.
        """
        from repro.faults.plane import fault_site
        from repro.simcore.context import use_clock

        while self._heap:
            key_ns, _, runner = heapq.heappop(self._heap)
            self.stats.events_dispatched += 1
            if key_ns > runner.clock.now_ns:
                # Idle guest whose parked deadline is now the earliest
                # fleet event: land on it in one closed-form jump (due
                # events fire inside advance_to).
                self.stats.guests_fast_forwarded += 1
                runner.clock.advance_to(key_ns)
            try:
                with use_clock(runner.clock):
                    with fault_site("eventcore.dispatch"):
                        idle_until = next(runner.program)
            except StopIteration:
                runner.done = True
                continue
            next_key = (runner.clock.now_ns if idle_until is None
                        else float(idle_until))
            if next_key < runner.clock.now_ns:
                raise EventCoreError(
                    f"guest {runner.name!r} yielded deadline {next_key} "
                    f"behind its own clock ({runner.clock.now_ns})"
                )
            self._push(next_key, runner)
        self._publish()
        return self.stats

    # -- internals ---------------------------------------------------------

    def _push(self, key_ns: float, runner: _Runner) -> None:
        heapq.heappush(self._heap, (key_ns, next(self._seq), runner))
        if len(self._heap) > self.stats.heap_high_water:
            self.stats.heap_high_water = len(self._heap)

    def _publish(self) -> None:
        # Imported here: repro.observe imports simcore (clock/context),
        # so a module-level import would cycle.
        from repro.observe import METRICS

        METRICS.counter("eventcore.events_dispatched").inc(
            self.stats.events_dispatched
        )
        METRICS.counter("eventcore.guests_fast_forwarded").inc(
            self.stats.guests_fast_forwarded
        )
        METRICS.gauge("eventcore.heap_high_water").set(
            float(self.stats.heap_high_water)
        )


def drain_deadlines(clock: VirtualClock) -> GuestProgram:
    """A program fragment parking a guest on each pending deadline in turn.

    ``yield from drain_deadlines(guest.clock)`` at the end of a lifecycle
    program retires the guest only after its armed timers (2MSL, ...)
    have fired, with every wait going through the global heap so the core
    fast-forwards it in closed form.
    """
    while True:
        deadline = clock.next_deadline_ns()
        if deadline is None:
            return
        yield deadline
