"""The fleet-wide event core: one global heap over every guest timeline.

``Fleet.simulate`` used to drive guests strictly one at a time, each on
its own :class:`~repro.simcore.clock.VirtualClock` -- cross-guest
causality (shared-host contention, staggered boots, correlated fault
schedules) was unrepresentable because there was no global order between
two guests' events.  :class:`EventCore` merges every registered guest's
deadline queue into one heap and dispatches guests in **virtual-time
order**: at every step the runnable guest with the smallest virtual
instant runs its next lifecycle stage.  Events across the whole fleet
now have a single well-defined global order (ties broken by dispatch
sequence number, so runs are deterministic).

Guest programs
--------------

A guest registers as a *program*: a generator whose ``next()`` runs one
lifecycle stage (build, boot, a chunk of serving, a drain step) and
advances the guest's own clock.  The yielded value tells the core when
the guest is next runnable:

- ``yield None`` -- runnable immediately, at the guest's current virtual
  instant (CPU-bound stages: the next serve chunk);
- ``yield deadline_ns`` -- **idle** until an armed virtual deadline (a
  2MSL timer, a sleep).  The core parks the guest at that absolute
  instant in the global heap, and when it becomes the earliest event
  fast-forwards the guest's clock there **in closed form** -- one
  ``advance_to``, firing the due events, never stepping.  This is the
  ``invoke_batch`` fold applied *across* guests: within a guest, batched
  serving folds a whole jitter period in one call; across guests, idle
  time folds into one jump.
- ``yield PARK`` -- **parked indefinitely**: the guest leaves the heap
  entirely and is not runnable again until another program calls
  :meth:`EventCore.unpark` (or :meth:`EventCore.kick`).  This is how a
  warm serving guest waits for traffic without holding a deadline: the
  router wakes it when a request arrives, and ``run()`` returning with
  parked guests still registered means the fleet is *quiescent*, not
  finished -- the caller may unpark them (e.g. to retire) and ``run()``
  again.

Serving extensions (the ``repro.traffic`` layer drives these):

- :meth:`EventCore.spawn` takes ``start_ns`` so a guest cold-booted in
  reaction to an arrival first dispatches *at the arrival instant* --
  the core fast-forwards the fresh clock there, aligning the guest's
  timeline with global time before its build/boot stages run;
- :meth:`EventCore.kick` re-arms a registered guest at an instant,
  whether it is parked or waiting on a (later) armed deadline.  A kick
  supersedes the pending heap entry via a per-runner generation
  counter: the stale entry is skipped on pop without counting as a
  dispatch, so wake-ups never double-run a guest.

Determinism: the heap is keyed ``(virtual_ns, seq)`` with ``seq`` a
monotone counter, programs run on one thread, and every per-guest
outcome depends only on that guest's own clock -- so a fleet run under
the global loop produces byte-identical per-guest results to the
sequential oracle (asserted by tests and the ``bench-guests
--global-loop`` gate).

Fault injection: each dispatch is a :func:`~repro.faults.plane.fault_site`
(``eventcore.dispatch``) entered inside the dispatched guest's clock
scope, so a correlated cross-guest fault schedule has a well-defined
global order and an injected hang advances exactly the afflicted
guest's timeline.  An injected fault is *contained*: the afflicted
runner dies with a structured record (``EventCore.failures``, the
``guest_failures`` counter, the optional ``on_failure`` callback) while
the rest of the fleet keeps running -- one poisoned guest must not take
the event loop down.  Non-injected exceptions still propagate.

Clock discipline: fleet code paths must not construct
:class:`VirtualClock` directly -- guests obtain their clock from
:meth:`EventCore.clock_for` (enforced by ``tools/lint_time.py``'s
``no-direct-clock-in-fleet`` rule), so every fleet timeline is
registered with, and order-visible to, the core.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.simcore.clock import VirtualClock


class _ParkSentinel:
    """The :data:`PARK` singleton (its own type, so yields are explicit)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PARK"


#: Yield this from a guest program to park indefinitely: the runner
#: leaves the global heap until ``unpark``/``kick`` re-arms it.
PARK = _ParkSentinel()

#: A guest lifecycle program: ``next()`` runs one stage; yields ``None``
#: (runnable now), an absolute virtual deadline (idle until then), or
#: :data:`PARK` (off the heap until unparked).
GuestProgram = Generator[Optional[float], None, None]


class EventCoreError(RuntimeError):
    """Invalid event-core operations (duplicate guests, time reversal)."""


@dataclass
class _Runner:
    """One registered guest: its clock plus its lifecycle program."""

    name: str
    clock: VirtualClock
    program: GuestProgram
    done: bool = False
    parked: bool = False
    #: Bumped by every kick; heap entries carry the generation they were
    #: pushed under, so superseded entries are skipped on pop.
    gen: int = 0


@dataclass
class EventCoreStats:
    """Counters one :meth:`EventCore.run` produced (manifest-external)."""

    events_dispatched: int = 0
    guests_fast_forwarded: int = 0
    heap_high_water: int = 0
    guests: int = 0
    parks: int = 0
    kicks: int = 0
    #: Runners killed by a contained dispatch fault (structured failure
    #: outcomes, mirroring ``harness.fingerprint_errors``).
    guest_failures: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "events_dispatched": self.events_dispatched,
            "guests_fast_forwarded": self.guests_fast_forwarded,
            "heap_high_water": self.heap_high_water,
            "guests": self.guests,
            "parks": self.parks,
            "kicks": self.kicks,
            "guest_failures": self.guest_failures,
        }


@dataclass
class EventCore:
    """The global event loop for a fleet of guests.

    Usage::

        core = EventCore()
        for spec in specs:
            guest = Guest(spec, clock=core.clock_for(spec.name))
            core.spawn(spec.name, lifecycle_program(guest))
        core.run()

    One core = one fleet = one global virtual-order; cores are
    single-threaded and not reusable across fleets (register a fresh one
    per run, like a fresh heap per simulation).
    """

    start_ns: float = 0.0
    _clocks: Dict[str, VirtualClock] = field(default_factory=dict)
    _runners: Dict[str, _Runner] = field(default_factory=dict)
    _heap: List[Tuple[float, int, int, "_Runner"]] = field(
        default_factory=list
    )
    _seq: "itertools.count" = field(default_factory=itertools.count)
    stats: EventCoreStats = field(default_factory=EventCoreStats)
    #: Stats already folded into METRICS (``run()`` publishes deltas, so
    #: quiesce-then-resume runs never double-count).
    _published: EventCoreStats = field(default_factory=EventCoreStats)
    #: Contained per-runner dispatch faults, in dispatch order: the
    #: structured record of every runner ``run()`` killed.
    failures: List[Tuple[str, BaseException]] = field(default_factory=list)
    #: Called as ``on_failure(name, error)`` after a dispatch fault kills
    #: a runner -- the serving router uses this to fail over the dead
    #: worker's queued requests.
    on_failure: Optional[Callable[[str, BaseException], None]] = None

    # -- registration ------------------------------------------------------

    def clock_for(self, name: str) -> VirtualClock:
        """The virtual clock for guest *name* (created on first use).

        Fleet code obtains guest clocks exclusively through this method
        -- the lint forbids direct ``VirtualClock()`` construction in
        fleet paths -- so every timeline the fleet runs on is known to
        the core.
        """
        if name not in self._clocks:
            self._clocks[name] = VirtualClock(self.start_ns)
        return self._clocks[name]

    def spawn(self, name: str, program: GuestProgram,
              start_ns: Optional[float] = None) -> None:
        """Register guest *name*'s lifecycle *program* with the core.

        ``start_ns`` arms the first dispatch at an absolute virtual
        instant instead of the guest clock's current one -- the
        cold-boot path: a guest spawned in reaction to an arrival at
        global time T first runs *at* T, and the core fast-forwards its
        fresh clock there before the build stage executes.  Spawning
        mid-``run()`` is legal (the heap absorbs new entries).
        """
        if name in self._runners:
            raise EventCoreError(f"guest {name!r} already registered")
        runner = _Runner(name=name, clock=self.clock_for(name),
                         program=program)
        self._runners[name] = runner
        self.stats.guests += 1
        key_ns = runner.clock.now_ns
        if start_ns is not None:
            key_ns = max(float(start_ns), key_ns)
        self._push(key_ns, runner)

    # -- wake-up surface ---------------------------------------------------

    def is_parked(self, name: str) -> bool:
        """Whether guest *name* yielded :data:`PARK` and awaits a wake-up."""
        runner = self._runners.get(name)
        return runner is not None and runner.parked and not runner.done

    def unpark(self, name: str, at_ns: Optional[float] = None) -> None:
        """Wake a :data:`PARK`-ed guest at ``at_ns`` (default: its own now).

        Raises :class:`EventCoreError` unless the guest is currently
        parked -- use :meth:`kick` when the guest may instead be waiting
        on an armed deadline.
        """
        runner = self._runners.get(name)
        if runner is None or runner.done:
            raise EventCoreError(f"guest {name!r} is not registered/alive")
        if not runner.parked:
            raise EventCoreError(f"guest {name!r} is not parked")
        self.kick(name, runner.clock.now_ns if at_ns is None else at_ns)

    def kick(self, name: str, at_ns: float) -> None:
        """Re-arm guest *name* to dispatch at ``at_ns`` (clamped to its now).

        Works whether the guest is parked or pending on a (typically
        later) deadline: the runner's generation counter is bumped, so
        any entry already in the heap is superseded -- skipped on pop
        without counting as a dispatch.  The serving router uses this to
        hand a warm guest a request: pop it from the pool, enqueue the
        work, kick it at the arrival instant.
        """
        runner = self._runners.get(name)
        if runner is None or runner.done:
            raise EventCoreError(f"guest {name!r} is not registered/alive")
        runner.gen += 1
        runner.parked = False
        self.stats.kicks += 1
        self._push(max(float(at_ns), runner.clock.now_ns), runner)

    # -- the loop ----------------------------------------------------------

    def run(self) -> EventCoreStats:
        """Dispatch the merged heap until it empties.

        The heap empties when every program has completed *or parked*:
        a return with parked runners means the fleet is quiescent, and
        the caller may :meth:`unpark`/:meth:`kick` them and ``run()``
        again -- stats accumulate across resumed runs, and the metrics
        registry receives only the delta each run produced.

        Returns (and publishes to the metrics registry) the per-core
        counters: events dispatched, guests fast-forwarded in closed
        form, parks/kicks, and the heap's high-water mark.
        """
        from repro.faults.plane import FaultInjected, fault_site
        from repro.simcore.context import use_clock

        while self._heap:
            key_ns, _, gen, runner = heapq.heappop(self._heap)
            if runner.done or gen != runner.gen:
                # Superseded by a kick (or retired): a stale entry, not
                # a dispatch.
                continue
            self.stats.events_dispatched += 1
            if key_ns > runner.clock.now_ns:
                # Idle guest whose parked deadline is now the earliest
                # fleet event: land on it in one closed-form jump (due
                # events fire inside advance_to).
                self.stats.guests_fast_forwarded += 1
                runner.clock.advance_to(key_ns)
            try:
                with use_clock(runner.clock):
                    with fault_site("eventcore.dispatch"):
                        idle_until = next(runner.program)
            except StopIteration:
                runner.done = True
                continue
            except FaultInjected as error:
                # Containment, not swallowing: the runner dies with a
                # structured failure record and a counter, the rest of
                # the fleet keeps running.  Anything that is *not* an
                # injected fault still propagates -- a real bug should
                # crash the run, loudly.
                runner.done = True
                runner.parked = False
                self.stats.guest_failures += 1
                self.failures.append((runner.name, error))
                if self.on_failure is not None:
                    self.on_failure(runner.name, error)
                continue
            if idle_until is PARK:
                runner.parked = True
                self.stats.parks += 1
                continue
            next_key = (runner.clock.now_ns if idle_until is None
                        else float(idle_until))
            if next_key < runner.clock.now_ns:
                raise EventCoreError(
                    f"guest {runner.name!r} yielded deadline {next_key} "
                    f"behind its own clock ({runner.clock.now_ns})"
                )
            self._push(next_key, runner)
        self._publish()
        return self.stats

    # -- internals ---------------------------------------------------------

    def _push(self, key_ns: float, runner: _Runner) -> None:
        heapq.heappush(
            self._heap, (key_ns, next(self._seq), runner.gen, runner)
        )
        if len(self._heap) > self.stats.heap_high_water:
            self.stats.heap_high_water = len(self._heap)

    def _publish(self) -> None:
        # Imported here: repro.observe imports simcore (clock/context),
        # so a module-level import would cycle.
        from repro.observe import METRICS

        METRICS.counter("eventcore.events_dispatched").inc(
            self.stats.events_dispatched - self._published.events_dispatched
        )
        METRICS.counter("eventcore.guests_fast_forwarded").inc(
            self.stats.guests_fast_forwarded
            - self._published.guests_fast_forwarded
        )
        METRICS.counter("eventcore.parks").inc(
            self.stats.parks - self._published.parks
        )
        METRICS.counter("eventcore.kicks").inc(
            self.stats.kicks - self._published.kicks
        )
        METRICS.counter("eventcore.guest_failures").inc(
            self.stats.guest_failures - self._published.guest_failures
        )
        METRICS.gauge("eventcore.heap_high_water").set(
            float(self.stats.heap_high_water)
        )
        self._published = EventCoreStats(**self.stats.to_dict())


def drain_deadlines(clock: VirtualClock) -> GuestProgram:
    """A program fragment parking a guest on each pending deadline in turn.

    ``yield from drain_deadlines(guest.clock)`` at the end of a lifecycle
    program retires the guest only after its armed timers (2MSL, ...)
    have fired, with every wait going through the global heap so the core
    fast-forwards it in closed form.
    """
    while True:
        deadline = clock.next_deadline_ns()
        if deadline is None:
            return
        yield deadline
