"""The ``bench-guests`` microbenchmark: fleet simulation cost, counted.

Boots and serves whole fleets through :meth:`Fleet.simulate
<repro.core.orchestrator.Fleet.simulate>` and reports the deterministic
*work counters* the run caused, per kernel policy and execution
strategy:

- ``fleet_general`` -- :data:`GENERAL_GUESTS` guests sharing one
  ``lupine-general`` kernel (the paper's recommended deployment), run
  guest by guest: the sequential differential oracle;
- ``fleet_per_app`` -- :data:`PER_APP_GUESTS` guests on per-app
  specialized kernels (maximum specialization, maximum builds);
- ``fleet_general_cohort`` -- the general fleet again, through the
  cohort-vectorized fold (one simulated representative per app cohort,
  entries replayed per guest).  Its manifest digest must equal
  ``fleet_general``'s;
- ``fleet_general_tenk`` -- :data:`SHARDED_GUESTS` guests through the
  cohort fold in one process: the single-process oracle for the
  sharded run;
- ``fleet_general_sharded`` -- the same :data:`SHARDED_GUESTS`-guest
  fleet partitioned across ``jobs`` worker processes
  (:mod:`repro.harness.shardpool`).  Its digest must equal
  ``fleet_general_tenk``'s at **any** job count -- the shard
  determinism contract -- and its throughput gauge must clear
  :data:`SHARDED_MIN_GUESTS_PER_TICK_SEC` (>= 100x the historical
  ~50/tick-sec sequential figure);
- ``fleet_general_global`` (``--global-loop``) -- the general fleet as
  **one event loop** on the fleet-wide
  :class:`~repro.simcore.eventcore.EventCore`; digest must equal
  ``fleet_general``'s.

Nothing reported is wall-clock.  Boot and resolver work are counter
deltas (``boot.boots``, ``kconfig.resolve.*``, ``vmm.guest_checks``);
throughput is guests per second *on the TickClock* -- the tracer's host
clock is swapped for a :class:`~repro.observe.tracer.TickClock`, which
advances a fixed step per reading, so "elapsed time" counts clock
readings (one per span edge), a machine-independent proxy for work.
For the sharded scenario the model is parallel: the parent's own tick
elapsed plus the *slowest* shard's (shards run concurrently).

Manifest digests land in the result's dedicated ``digests`` section
(they are identities, not monotonic counts -- the regress gate compares
them for exact equality), so the gate pins bit-identical fleet
behaviour under every execution strategy.  Digests are hash-seed
independent: every float fold over set-ordered config options iterates
in sorted order, so no ``PYTHONHASHSEED`` pin is needed.  The
checked-in snapshot lives at ``benchmarks/baseline/BENCH_guests.json``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Callable, Dict, List

from repro.observe import METRICS, TRACER

#: File the benchmark JSON is written to, next to the run manifest.
BENCH_GUESTS_NAME = "BENCH_guests.json"

#: Fleet sizes per scenario.  The general fleet is the acceptance-scale
#: run (>= 1000 guests on one shared kernel); the per-app fleet is
#: smaller -- its point is kernel diversity, not scale.  The sharded
#: scenarios run an order of magnitude past the sequential oracle.
GENERAL_GUESTS = 1000
PER_APP_GUESTS = 200
SHARDED_GUESTS = 10_000

#: Worker processes for the sharded scenario when the CLI does not
#: override it; the digest must not depend on this.
DEFAULT_SHARD_JOBS = 2

#: Acceptance floor for the sharded scenario's throughput gauge:
#: >= 100x the historical ~50 guests/tick-sec sequential figure.
SHARDED_MIN_GUESTS_PER_TICK_SEC = 5000.0

#: The PRNG seed every scenario draws its application mix from.
FLEET_SEED = 2020  # EuroSys '20

_WORK_COUNTERS = (
    "boot.boots",
    "vmm.guest_checks",
    "kconfig.resolutions",
    "kconfig.resolve.visited_options",
    "kconfig.resolve.cache_hits",
    "kconfig.resolve.cache_misses",
    "eventcore.events_dispatched",
    "eventcore.guests_fast_forwarded",
)


def _measure(fn: Callable[[], None]) -> Dict[str, int]:
    """Run *fn* and return the work-counter deltas it caused."""
    before = {name: METRICS.counter(name).value for name in _WORK_COUNTERS}
    fn()
    return {
        name: METRICS.counter(name).value - before[name]
        for name in _WORK_COUNTERS
    }


def run_bench(global_loop: bool = False,
              jobs: int = DEFAULT_SHARD_JOBS) -> Dict[str, Any]:
    """Run every scenario and return the metrics-shaped result document.

    ``global_loop=True`` adds the ``fleet_general_global`` scenario (the
    general fleet as one EventCore loop).  ``jobs`` sets the worker
    count of the ``fleet_general_sharded`` scenario; its digest must be
    identical for any value -- the property the shard-determinism gate
    runs this benchmark at two job counts to pin.
    """
    from repro.core.buildcache import BUILD_CACHE
    from repro.core.orchestrator import Fleet, KernelPolicy
    from repro.kconfig.rescache import RESOLUTION_CACHE
    from repro.observe.tracer import TickClock

    jobs = max(1, int(jobs))
    # Start cold so the counters are history-independent: the same bench
    # numbers whether run standalone or after a full experiment sweep.
    BUILD_CACHE.reset()
    RESOLUTION_CACHE.reset()

    # (section, policy, count, global_loop, cohort, jobs)
    scenarios = [
        ("fleet_general", KernelPolicy.GENERAL, GENERAL_GUESTS,
         False, False, 1),
        ("fleet_per_app", KernelPolicy.PER_APP, PER_APP_GUESTS,
         False, False, 1),
        ("fleet_general_cohort", KernelPolicy.GENERAL, GENERAL_GUESTS,
         False, True, 1),
        ("fleet_general_tenk", KernelPolicy.GENERAL, SHARDED_GUESTS,
         False, True, 1),
        ("fleet_general_sharded", KernelPolicy.GENERAL, SHARDED_GUESTS,
         False, True, jobs),
    ]
    if global_loop:
        scenarios.append(
            ("fleet_general_global", KernelPolicy.GENERAL, GENERAL_GUESTS,
             True, False, 1),
        )
    sections: Dict[str, Dict[str, int]] = {}
    gauges: Dict[str, float] = {}
    counters: Dict[str, int] = {}
    digests: Dict[str, str] = {}
    host_clock = TRACER.clock
    tick = TickClock(step_us=1000.0)
    TRACER.clock = tick
    try:
        for (section, policy, count, use_global,
             use_cohort, use_jobs) in scenarios:
            box: List[Any] = []
            tick_before = tick._now
            sections[section] = _measure(lambda: box.append(
                Fleet.simulate(count, policy=policy, seed=FLEET_SEED,
                               global_loop=use_global, cohort=use_cohort,
                               jobs=use_jobs)
            ))
            tick_elapsed_us = tick._now - tick_before
            simulation = box[0]
            if simulation.shard_stats is not None:
                # Parallel model: shards ran concurrently, so the run
                # costs the parent's own elapsed plus the slowest shard.
                tick_elapsed_us += simulation.shard_stats.max_elapsed_us
                gauges[f"fleet.shard_jobs.{section}"] = float(
                    simulation.shard_stats.jobs
                )
            tick_elapsed_s = tick_elapsed_us / 1e6
            # Digest as an identity in the dedicated digests section: the
            # regress gate then pins bit-identical manifests, not just
            # equal work totals.
            digests[f"fleet.manifest_digest48.{section}"] = (
                simulation.manifest_digest[:12]
            )
            gauges[f"fleet.guests.{section}"] = float(simulation.count)
            gauges[f"fleet.distinct_kernels.{section}"] = float(
                simulation.distinct_kernels
            )
            gauges[f"fleet.build_count.{section}"] = float(
                simulation.build_count
            )
            gauges[f"fleet.requests.{section}"] = float(
                simulation.total_requests
            )
            gauges[f"fleet.guests_per_tick_sec.{section}"] = round(
                count / tick_elapsed_s, 2
            )
            if simulation.eventcore_stats is not None:
                stats = simulation.eventcore_stats
                gauges[f"eventcore.heap_high_water.{section}"] = float(
                    stats.heap_high_water
                )
    finally:
        TRACER.clock = host_clock

    counters.update({
        f"{metric}.{section}": value
        for section, deltas in sections.items()
        for metric, value in deltas.items()
    })
    return {"counters": counters, "gauges": gauges, "digests": digests,
            "histograms": {}}


def check_result(result: Dict[str, Any]) -> List[str]:
    """Return acceptance-criterion violations ([] when the result passes)."""
    counters = result.get("counters", {})
    gauges = result.get("gauges", {})
    digests = result.get("digests", {})
    failures: List[str] = []
    boots = counters.get("boot.boots.fleet_general", 0)
    if boots < 1000:
        failures.append(
            f"general fleet booted only {boots} guests; need >= 1000"
        )
    checks = counters.get("vmm.guest_checks.fleet_general", 0)
    if checks != boots:
        failures.append(
            f"general fleet ran {checks} guest checks for {boots} boots; "
            "every full-image guest must be monitor-checked"
        )
    shared = gauges.get("fleet.distinct_kernels.fleet_general", 0.0)
    if shared != 1.0:
        failures.append(
            f"general fleet materialized {shared:g} distinct kernels; "
            "the general policy must share exactly one"
        )
    diverse = gauges.get("fleet.distinct_kernels.fleet_per_app", 0.0)
    if diverse <= 1.0:
        failures.append(
            f"per-app fleet materialized {diverse:g} distinct kernels; "
            "specialization must produce several"
        )
    oracle = digests.get("fleet.manifest_digest48.fleet_general", "")
    if not oracle:
        failures.append("general fleet manifest digest missing")
    for section in ("fleet_general", "fleet_per_app",
                    "fleet_general_sharded"):
        builds = gauges.get(f"fleet.build_count.{section}")
        kernels = gauges.get(f"fleet.distinct_kernels.{section}")
        if builds != kernels:
            failures.append(
                f"{section} reported build_count {builds:g} != "
                f"distinct_kernels {kernels:g}; the fleet must build "
                "through the orchestrator's kernel memo"
            )
    cohort = digests.get("fleet.manifest_digest48.fleet_general_cohort", "")
    if cohort != oracle:
        failures.append(
            "cohort-vectorized fold diverged from the sequential oracle: "
            f"manifest digest48 {cohort or '?'} != {oracle or '?'}"
        )
    tenk = digests.get("fleet.manifest_digest48.fleet_general_tenk", "")
    sharded = digests.get("fleet.manifest_digest48.fleet_general_sharded", "")
    if not tenk or sharded != tenk:
        failures.append(
            "sharded fleet diverged from the single-process oracle: "
            f"manifest digest48 {sharded or '?'} != {tenk or '?'}"
        )
    if gauges.get("fleet.shard_jobs.fleet_general_sharded", 0.0) < 1.0:
        failures.append("sharded scenario reported no worker processes")
    throughput = gauges.get(
        "fleet.guests_per_tick_sec.fleet_general_sharded", 0.0
    )
    if throughput < SHARDED_MIN_GUESTS_PER_TICK_SEC:
        failures.append(
            f"sharded fleet ran at {throughput:g} guests/tick-sec; need "
            f">= {SHARDED_MIN_GUESTS_PER_TICK_SEC:g} (100x the sequential "
            "baseline)"
        )
    if "fleet.guests.fleet_general_global" in gauges:
        interleaved = digests.get(
            "fleet.manifest_digest48.fleet_general_global", ""
        )
        if interleaved != oracle:
            failures.append(
                "global event loop diverged from the sequential oracle: "
                f"manifest digest48 {interleaved or '?'} != {oracle or '?'}"
            )
        if gauges.get(
            "fleet.guests_per_tick_sec.fleet_general_global", 0.0
        ) <= 0.0:
            failures.append("global-loop guests/sec gauge missing or zero")
        if counters.get(
            "eventcore.events_dispatched.fleet_general_global", 0
        ) < GENERAL_GUESTS:
            failures.append(
                "global loop dispatched fewer events than guests; the "
                "fleet cannot have run through the EventCore"
            )
    return failures


def write_result(result: Dict[str, Any], path: pathlib.Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def render_summary(result: Dict[str, Any]) -> str:
    """Human-readable scenario table for the CLI."""
    counters, gauges = result["counters"], result["gauges"]
    digests = result.get("digests", {})
    sections = sorted(
        key[len("fleet.guests."):]
        for key in gauges if key.startswith("fleet.guests.")
    )
    lines = [
        f"{'scenario':<21} {'guests':>7} {'kernels':>8} "
        f"{'resolutions':>11} {'guests/tick-s':>13}"
    ]
    for section in sections:
        lines.append(
            f"{section:<21} "
            f"{int(gauges[f'fleet.guests.{section}']):>7} "
            f"{int(gauges[f'fleet.distinct_kernels.{section}']):>8} "
            f"{counters[f'kconfig.resolutions.{section}']:>11} "
            f"{gauges[f'fleet.guests_per_tick_sec.{section}']:>13g}"
        )
    oracle = digests.get("fleet.manifest_digest48.fleet_general", "?")
    lines.append(f"general-fleet manifest digest48: {oracle}")
    for section, oracle_section in (
        ("fleet_general_cohort", "fleet_general"),
        ("fleet_general_sharded", "fleet_general_tenk"),
        ("fleet_general_global", "fleet_general"),
    ):
        digest = digests.get(f"fleet.manifest_digest48.{section}")
        if digest is None:
            continue
        reference = digests.get(
            f"fleet.manifest_digest48.{oracle_section}", "?"
        )
        lines.append(
            f"{section}: digest matches {oracle_section}: "
            f"{digest == reference}"
        )
    if "fleet.shard_jobs.fleet_general_sharded" in gauges:
        lines.append(
            "sharded run: "
            f"{int(gauges['fleet.shard_jobs.fleet_general_sharded'])} "
            "worker process(es)"
        )
    return "\n".join(lines)
