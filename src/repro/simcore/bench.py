"""The ``bench-guests`` microbenchmark: fleet simulation cost, counted.

Boots and serves whole fleets through :meth:`Fleet.simulate
<repro.core.orchestrator.Fleet.simulate>` and reports the deterministic
*work counters* the run caused, per kernel policy:

- ``fleet_general`` -- :data:`GENERAL_GUESTS` guests sharing one
  ``lupine-general`` kernel (the paper's recommended deployment);
- ``fleet_per_app`` -- :data:`PER_APP_GUESTS` guests on per-app
  specialized kernels (maximum specialization, maximum builds);
- ``fleet_general_global`` (``--global-loop``) -- the general fleet
  again, but run as **one event loop** on the fleet-wide
  :class:`~repro.simcore.eventcore.EventCore`: same seed, same guests,
  interleaved in virtual-time order.  Its manifest digest must equal
  ``fleet_general``'s -- the sequential run is the differential oracle
  -- which ``check_result`` asserts, alongside a guests/sec gauge for
  the global loop.

Nothing reported is wall-clock.  Boot and resolver work are counter
deltas (``boot.boots``, ``kconfig.resolve.*``, ``vmm.guest_checks``);
throughput is guests per second *on the TickClock* -- the tracer's host
clock is swapped for a :class:`~repro.observe.tracer.TickClock`, which
advances a fixed step per reading, so "elapsed time" counts clock
readings (one per span edge), a machine-independent proxy for work.
The manifest digest of each fleet is folded in as an integer counter,
so the ``regress`` gate pins bit-identical fleet behaviour, not just
equal work totals.  The checked-in snapshot lives at
``benchmarks/baseline/BENCH_guests.json``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Callable, Dict, List

from repro.observe import METRICS, TRACER

#: File the benchmark JSON is written to, next to the run manifest.
BENCH_GUESTS_NAME = "BENCH_guests.json"

#: Fleet sizes per scenario.  The general fleet is the acceptance-scale
#: run (>= 1000 guests on one shared kernel); the per-app fleet is
#: smaller -- its point is kernel diversity, not scale.
GENERAL_GUESTS = 1000
PER_APP_GUESTS = 200

#: The PRNG seed every scenario draws its application mix from.
FLEET_SEED = 2020  # EuroSys '20

_WORK_COUNTERS = (
    "boot.boots",
    "vmm.guest_checks",
    "kconfig.resolutions",
    "kconfig.resolve.visited_options",
    "kconfig.resolve.cache_hits",
    "kconfig.resolve.cache_misses",
    "eventcore.events_dispatched",
    "eventcore.guests_fast_forwarded",
)


def _measure(fn: Callable[[], None]) -> Dict[str, int]:
    """Run *fn* and return the work-counter deltas it caused."""
    before = {name: METRICS.counter(name).value for name in _WORK_COUNTERS}
    fn()
    return {
        name: METRICS.counter(name).value - before[name]
        for name in _WORK_COUNTERS
    }


def run_bench(global_loop: bool = False) -> Dict[str, Any]:
    """Run every scenario and return the metrics-shaped result document.

    ``global_loop=True`` adds the ``fleet_general_global`` scenario: the
    general fleet executed as one EventCore loop, whose manifest digest
    must match the sequential ``fleet_general`` oracle.
    """
    from repro.core.buildcache import BUILD_CACHE
    from repro.core.orchestrator import Fleet, KernelPolicy
    from repro.kconfig.rescache import RESOLUTION_CACHE
    from repro.observe.tracer import TickClock

    # Start cold so the counters are history-independent: the same bench
    # numbers whether run standalone or after a full experiment sweep.
    BUILD_CACHE.reset()
    RESOLUTION_CACHE.reset()

    scenarios = [
        ("fleet_general", KernelPolicy.GENERAL, GENERAL_GUESTS, False),
        ("fleet_per_app", KernelPolicy.PER_APP, PER_APP_GUESTS, False),
    ]
    if global_loop:
        scenarios.append(
            ("fleet_general_global", KernelPolicy.GENERAL,
             GENERAL_GUESTS, True),
        )
    sections: Dict[str, Dict[str, int]] = {}
    gauges: Dict[str, float] = {}
    counters: Dict[str, int] = {}
    host_clock = TRACER.clock
    tick = TickClock(step_us=1000.0)
    TRACER.clock = tick
    try:
        for section, policy, count, use_global in scenarios:
            box: List[Any] = []
            tick_before = tick._now
            sections[section] = _measure(lambda: box.append(
                Fleet.simulate(count, policy=policy, seed=FLEET_SEED,
                               global_loop=use_global)
            ))
            tick_elapsed_s = (tick._now - tick_before) / 1e6
            simulation = box[0]
            # Digest as an integer counter: the regress gate then pins
            # bit-identical manifests, not just equal work totals.
            counters[f"fleet.manifest_digest48.{section}"] = int(
                simulation.manifest_digest[:12], 16
            )
            gauges[f"fleet.guests.{section}"] = float(simulation.count)
            gauges[f"fleet.distinct_kernels.{section}"] = float(
                simulation.distinct_kernels
            )
            gauges[f"fleet.build_count.{section}"] = float(
                simulation.build_count
            )
            gauges[f"fleet.requests.{section}"] = float(
                simulation.total_requests
            )
            gauges[f"fleet.guests_per_tick_sec.{section}"] = round(
                count / tick_elapsed_s, 2
            )
            if simulation.eventcore_stats is not None:
                stats = simulation.eventcore_stats
                gauges[f"eventcore.heap_high_water.{section}"] = float(
                    stats.heap_high_water
                )
    finally:
        TRACER.clock = host_clock

    counters.update({
        f"{metric}.{section}": value
        for section, deltas in sections.items()
        for metric, value in deltas.items()
    })
    return {"counters": counters, "gauges": gauges, "histograms": {}}


def check_result(result: Dict[str, Any]) -> List[str]:
    """Return acceptance-criterion violations ([] when the result passes)."""
    counters = result.get("counters", {})
    gauges = result.get("gauges", {})
    failures: List[str] = []
    boots = counters.get("boot.boots.fleet_general", 0)
    if boots < 1000:
        failures.append(
            f"general fleet booted only {boots} guests; need >= 1000"
        )
    checks = counters.get("vmm.guest_checks.fleet_general", 0)
    if checks != boots:
        failures.append(
            f"general fleet ran {checks} guest checks for {boots} boots; "
            "every full-image guest must be monitor-checked"
        )
    shared = gauges.get("fleet.distinct_kernels.fleet_general", 0.0)
    if shared != 1.0:
        failures.append(
            f"general fleet materialized {shared:g} distinct kernels; "
            "the general policy must share exactly one"
        )
    diverse = gauges.get("fleet.distinct_kernels.fleet_per_app", 0.0)
    if diverse <= 1.0:
        failures.append(
            f"per-app fleet materialized {diverse:g} distinct kernels; "
            "specialization must produce several"
        )
    if counters.get("fleet.manifest_digest48.fleet_general", 0) <= 0:
        failures.append("general fleet manifest digest missing")
    for section in ("fleet_general", "fleet_per_app"):
        builds = gauges.get(f"fleet.build_count.{section}")
        kernels = gauges.get(f"fleet.distinct_kernels.{section}")
        if builds != kernels:
            failures.append(
                f"{section} reported build_count {builds:g} != "
                f"distinct_kernels {kernels:g}; the fleet must build "
                "through the orchestrator's kernel memo"
            )
    if "fleet.guests.fleet_general_global" in gauges:
        sequential = counters.get(
            "fleet.manifest_digest48.fleet_general", 0
        )
        interleaved = counters.get(
            "fleet.manifest_digest48.fleet_general_global", -1
        )
        if interleaved != sequential:
            failures.append(
                "global event loop diverged from the sequential oracle: "
                f"manifest digest48 {interleaved:012x} != {sequential:012x}"
            )
        if gauges.get(
            "fleet.guests_per_tick_sec.fleet_general_global", 0.0
        ) <= 0.0:
            failures.append("global-loop guests/sec gauge missing or zero")
        if counters.get(
            "eventcore.events_dispatched.fleet_general_global", 0
        ) < GENERAL_GUESTS:
            failures.append(
                "global loop dispatched fewer events than guests; the "
                "fleet cannot have run through the EventCore"
            )
    return failures


def write_result(result: Dict[str, Any], path: pathlib.Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def render_summary(result: Dict[str, Any]) -> str:
    """Human-readable scenario table for the CLI."""
    counters, gauges = result["counters"], result["gauges"]
    sections = sorted(
        key[len("fleet.guests."):]
        for key in gauges if key.startswith("fleet.guests.")
    )
    lines = [
        f"{'scenario':<21} {'guests':>7} {'kernels':>8} "
        f"{'resolutions':>11} {'guests/tick-s':>13}"
    ]
    for section in sections:
        lines.append(
            f"{section:<21} "
            f"{int(gauges[f'fleet.guests.{section}']):>7} "
            f"{int(gauges[f'fleet.distinct_kernels.{section}']):>8} "
            f"{counters[f'kconfig.resolutions.{section}']:>11} "
            f"{gauges[f'fleet.guests_per_tick_sec.{section}']:>13g}"
        )
    digest = counters["fleet.manifest_digest48.fleet_general"]
    lines.append(f"general-fleet manifest digest48: {digest:012x}")
    if "fleet.manifest_digest48.fleet_general_global" in counters:
        dispatched = counters.get(
            "eventcore.events_dispatched.fleet_general_global", 0
        )
        lines.append(
            "global loop: digest matches oracle: "
            f"{counters['fleet.manifest_digest48.fleet_general_global'] == digest}"
            f", events dispatched: {dispatched}"
        )
    return "\n".join(lines)
