"""Address spaces with demand paging.

A real (if small) VM subsystem: mappings are created eagerly but pages are
allocated only on first touch, against a shared physical-page budget.  The
footprint model boots guests against decreasing budgets; an
:class:`OutOfMemoryError` during boot is the simulated analogue of the
guest failing to come up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

PAGE_SIZE = 4096


class OutOfMemoryError(MemoryError):
    """The physical page budget is exhausted (guest OOM)."""


@dataclass(frozen=True)
class Page:
    """One allocated physical page."""

    frame_number: int
    address_space_id: int
    virtual_page: int


@dataclass
class PhysicalMemory:
    """The guest's physical memory budget, shared by all address spaces."""

    total_bytes: int
    _next_frame: int = 0

    @property
    def total_pages(self) -> int:
        return self.total_bytes // PAGE_SIZE

    @property
    def allocated_pages(self) -> int:
        return self._next_frame

    @property
    def free_pages(self) -> int:
        return self.total_pages - self._next_frame

    def allocate_frame(self) -> int:
        if self._next_frame >= self.total_pages:
            raise OutOfMemoryError(
                f"out of memory: {self.total_pages} pages exhausted"
            )
        frame = self._next_frame
        self._next_frame += 1
        return frame

    def reserve_kb(self, kb: float) -> None:
        """Carve out a static (non-pageable) reservation, e.g. kernel data."""
        pages = int(kb * 1024 + PAGE_SIZE - 1) // PAGE_SIZE
        for _ in range(pages):
            self.allocate_frame()


@dataclass
class Mapping:
    """A virtual memory area (VMA)."""

    start_page: int
    page_count: int
    name: str
    eager: bool = False

    @property
    def end_page(self) -> int:
        return self.start_page + self.page_count


@dataclass
class AddressSpace:
    """One process's address space."""

    asid: int
    physical: PhysicalMemory
    _mappings: List[Mapping] = field(default_factory=list)
    _pages: Dict[int, Page] = field(default_factory=dict)
    _next_free_page: int = 0x1000

    def mmap(
        self,
        size_kb: float,
        name: str = "[anon]",
        eager: bool = False,
    ) -> Mapping:
        """Create a mapping; allocate pages now only if *eager*."""
        page_count = max(1, int(size_kb * 1024 + PAGE_SIZE - 1) // PAGE_SIZE)
        mapping = Mapping(
            start_page=self._next_free_page,
            page_count=page_count,
            name=name,
            eager=eager,
        )
        self._next_free_page += page_count + 16  # guard gap
        self._mappings.append(mapping)
        if eager:
            for page in range(mapping.start_page, mapping.end_page):
                self._fault(page)
        return mapping

    def touch(self, mapping: Mapping, offset_kb: float = 0.0) -> Page:
        """Access one page of *mapping*, faulting it in if necessary."""
        page = mapping.start_page + int(offset_kb * 1024) // PAGE_SIZE
        if page >= mapping.end_page:
            raise ValueError("access beyond end of mapping")
        return self._fault(page)

    def touch_range(self, mapping: Mapping, kb: float) -> int:
        """Touch the first *kb* of *mapping*; returns pages faulted."""
        pages = min(
            mapping.page_count, int(kb * 1024 + PAGE_SIZE - 1) // PAGE_SIZE
        )
        faulted = 0
        for index in range(pages):
            page = mapping.start_page + index
            if page not in self._pages:
                self._fault(page)
                faulted += 1
        return faulted

    def _fault(self, virtual_page: int) -> Page:
        existing = self._pages.get(virtual_page)
        if existing is not None:
            return existing
        page = Page(
            frame_number=self.physical.allocate_frame(),
            address_space_id=self.asid,
            virtual_page=virtual_page,
        )
        self._pages[virtual_page] = page
        return page

    # -- accounting -----------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    @property
    def resident_kb(self) -> float:
        return self.resident_pages * PAGE_SIZE / 1024.0

    @property
    def mapped_kb(self) -> float:
        return sum(m.page_count for m in self._mappings) * PAGE_SIZE / 1024.0

    def mappings(self) -> Iterator[Mapping]:
        return iter(self._mappings)

    def find_mapping(self, name: str) -> Optional[Mapping]:
        for mapping in self._mappings:
            if mapping.name == name:
                return mapping
        return None
