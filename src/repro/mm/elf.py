"""ELF loading: from rootfs file to demand-paged address space.

Ties the rootfs and memory substrates together the way ``execve`` does:
resolve the binary in the ext2 image (following symlinks), split it into
segments, create lazy mappings for text/rodata/data plus an anonymous bss,
and -- for dynamically linked binaries -- map the interpreter (musl's
``ld-musl-x86_64.so.1``) too.  Only the pages actually touched become
resident, which is the mechanism behind Figure 8's flat Linux footprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.mm.address_space import AddressSpace, Mapping
from repro.rootfs.ext2 import Ext2Image

#: Path of the musl dynamic loader inside Lupine rootfs images.
MUSL_LOADER = "/lib/ld-musl-x86_64.so.1"

#: Segment split of a typical ELF executable (fractions of file size).
_TEXT_FRACTION = 0.68
_RODATA_FRACTION = 0.17
_DATA_FRACTION = 0.15
#: bss as a fraction of data (zero pages, not file-backed).
_BSS_OVER_DATA = 0.60

#: Startup working set: fraction of text actually executed to reach main.
STARTUP_TEXT_FRACTION = 0.18


class ElfError(ValueError):
    """Raised when a path cannot be executed."""


@dataclass(frozen=True)
class ElfSegment:
    """One loadable segment."""

    name: str
    size_kb: float
    writable: bool
    file_backed: bool


@dataclass(frozen=True)
class ElfBinary:
    """A parsed executable."""

    path: str
    file_kb: float
    segments: Tuple[ElfSegment, ...]
    dynamic: bool
    interpreter: Optional[str]

    @property
    def mapped_kb(self) -> float:
        return sum(segment.size_kb for segment in self.segments)


def parse_elf(image: Ext2Image, path: str, dynamic: bool = True) -> ElfBinary:
    """Resolve and 'parse' an executable from an ext2 image."""
    inode = image.resolve(path)
    if inode.is_directory:
        raise ElfError(f"{path} is a directory")
    if not inode.executable:
        raise ElfError(f"{path} is not executable")
    file_kb = inode.size_bytes / 1024.0
    data_kb = file_kb * _DATA_FRACTION
    segments = (
        ElfSegment("text", file_kb * _TEXT_FRACTION, writable=False,
                   file_backed=True),
        ElfSegment("rodata", file_kb * _RODATA_FRACTION, writable=False,
                   file_backed=True),
        ElfSegment("data", data_kb, writable=True, file_backed=True),
        ElfSegment("bss", data_kb * _BSS_OVER_DATA, writable=True,
                   file_backed=False),
    )
    return ElfBinary(
        path=inode.path,
        file_kb=file_kb,
        segments=segments,
        dynamic=dynamic,
        interpreter=MUSL_LOADER if dynamic else None,
    )


@dataclass
class LoadedImage:
    """A binary mapped into an address space."""

    binary: ElfBinary
    mappings: List[Mapping]
    interpreter_mapping: Optional[Mapping]

    def mapping(self, segment_name: str) -> Mapping:
        for candidate in self.mappings:
            if candidate.name.endswith(f":{segment_name}"):
                return candidate
        raise KeyError(segment_name)


def load_elf(
    space: AddressSpace,
    rootfs: Ext2Image,
    path: str,
    dynamic: bool = True,
) -> LoadedImage:
    """Map *path* from *rootfs* into *space*, execve-style.

    Creates lazy mappings for every segment and touches only the startup
    working set (loader entry + early text + data page), mirroring demand
    paging on a real exec.
    """
    binary = parse_elf(rootfs, path, dynamic=dynamic)
    mappings: List[Mapping] = []
    for segment in binary.segments:
        mapping = space.mmap(
            max(segment.size_kb, 4.0),
            name=f"{binary.path}:{segment.name}",
        )
        mappings.append(mapping)

    interpreter_mapping: Optional[Mapping] = None
    if binary.interpreter is not None:
        if not rootfs.exists(binary.interpreter):
            raise ElfError(
                f"dynamic binary {path} needs missing interpreter "
                f"{binary.interpreter}"
            )
        loader = rootfs.resolve(binary.interpreter)
        interpreter_mapping = space.mmap(
            max(loader.size_bytes / 1024.0, 4.0),
            name=f"{binary.interpreter}:text",
        )
        # The loader runs first: its text is touched immediately.
        space.touch_range(
            interpreter_mapping, loader.size_bytes / 1024.0 * 0.5
        )

    # Startup working set: early text, one data page, one bss page (stack
    # and heap come from separate anonymous mappings made by the runtime).
    text = mappings[0]
    space.touch_range(text, binary.segments[0].size_kb *
                      STARTUP_TEXT_FRACTION)
    space.touch_range(mappings[2], 4.0)
    space.touch_range(mappings[3], 4.0)
    return LoadedImage(
        binary=binary,
        mappings=mappings,
        interpreter_mapping=interpreter_mapping,
    )
