"""Memory footprint measurement (Figure 8).

The paper defines footprint as the minimum memory with which the guest
still satisfies its success criterion, found by repeatedly booting with a
decreasing memory parameter.  :func:`measure_min_memory_mb` reproduces that
search procedure against a boot attempt driven by the demand-paging model.

The :class:`FootprintModel` composes a Linux guest's memory needs:

- resident kernel code (from the built image; init sections freed),
- kernel static allocations (per enabled option, scaled: much of each
  option's state is allocated only on use),
- boot-time slack the allocator needs to make progress (page tables,
  percpu areas, buffers) -- common to every Linux guest,
- the userspace base (init + libc) and the application's resident set,
  which is small because binaries load lazily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.kbuild.image import KernelImage
from repro.mm.address_space import AddressSpace, OutOfMemoryError, PhysicalMemory

#: Fraction of per-option static memory actually allocated at boot.
STATIC_ALLOC_FACTOR = 0.35

#: Userspace base: init system + dynamic loader + libc resident pages (KiB).
USERSPACE_BASE_KB = 2560.0

#: Boot-time slack: page tables, percpu, kernel stacks, I/O buffers (KiB).
BOOT_SLACK_KB = 9420.0


@dataclass(frozen=True)
class FootprintModel:
    """Memory requirements of one Linux guest (kernel image + app)."""

    image: KernelImage
    app_resident_kb: float = 512.0
    app_mapped_kb: float = 4096.0

    def kernel_static_kb(self) -> float:
        config = self.image.config
        # Sorted fold over the frozenset: keeps the float sum identical
        # under any PYTHONHASHSEED (footprints feed manifest digests).
        return STATIC_ALLOC_FACTOR * sum(
            config.tree[name].mem_cost_kb for name in sorted(config.enabled)
        )

    def required_kb(self) -> float:
        """Total resident memory a successful boot needs."""
        return (
            self.image.resident_kernel_kb
            + self.kernel_static_kb()
            + BOOT_SLACK_KB
            + USERSPACE_BASE_KB
            + self.app_resident_kb
        )

    def try_boot(self, memory_mb: int) -> bool:
        """Attempt a boot under *memory_mb*; True if the guest comes up.

        Exercises the demand-paging machinery: static parts are reserved
        eagerly, the app binary is mapped fully but only its resident set
        is touched.
        """
        physical = PhysicalMemory(total_bytes=memory_mb * 1024 * 1024)
        try:
            physical.reserve_kb(self.image.resident_kernel_kb)
            physical.reserve_kb(self.kernel_static_kb())
            physical.reserve_kb(BOOT_SLACK_KB)
            space = AddressSpace(asid=1, physical=physical)
            libc = space.mmap(USERSPACE_BASE_KB, name="init+libc")
            space.touch_range(libc, USERSPACE_BASE_KB)
            app = space.mmap(self.app_mapped_kb, name="app")
            space.touch_range(app, self.app_resident_kb)
        except OutOfMemoryError:
            return False
        return True


def measure_min_memory_mb(
    try_boot: Callable[[int], bool],
    upper_mb: int = 512,
    lower_mb: int = 1,
) -> int:
    """Find the minimum whole-MB memory for which *try_boot* succeeds.

    Mirrors the paper's methodology (decreasing memory passed to the
    monitor), implemented as a binary search for speed.  Raises if the
    guest cannot boot even at *upper_mb*.
    """
    if not try_boot(upper_mb):
        raise OutOfMemoryError(f"guest does not boot even with {upper_mb} MB")
    low, high = lower_mb, upper_mb  # invariant: high boots; low-1 untested
    while low < high:
        middle = (low + high) // 2
        if try_boot(middle):
            high = middle
        else:
            low = middle + 1
    return high
