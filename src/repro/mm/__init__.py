"""Memory substrate: address spaces, demand paging, footprint measurement.

Implements the mechanisms behind Figure 8: Linux loads binaries lazily, so
the minimum memory needed by a guest tracks the kernel's resident code and
static allocations, not application binary size -- which is why microVM and
Lupine show no variation across hello/nginx/redis while unikernels do.
"""

from repro.mm.address_space import AddressSpace, OutOfMemoryError, Page
from repro.mm.footprint import FootprintModel, measure_min_memory_mb

__all__ = [
    "AddressSpace",
    "FootprintModel",
    "OutOfMemoryError",
    "Page",
    "measure_min_memory_mb",
]
