"""Security analysis extension.

The paper's related-work section cites two quantified security benefits of
configuration specialization: Alharthi et al. find 89% of 1,530 studied
kernel CVEs nullifiable via configuration, and Kurmus et al. find 50-85% of
the attack surface removable.  This extension reproduces both analyses over
the simulated option database (see DESIGN.md §6 -- an extension, not a
paper table).
"""

from repro.security.attack_surface import (
    AttackSurfaceReport,
    Cve,
    analyze_config,
    cve_database,
)

__all__ = ["AttackSurfaceReport", "Cve", "analyze_config", "cve_database"]
