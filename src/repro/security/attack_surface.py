"""Attack-surface and CVE-nullification analysis over kernel configs.

Two metrics, following the studies the paper cites (Section 7):

- **attack surface**: compiled-in code reachable from an unprivileged
  process, approximated (as Kurmus et al. do) by the object-size sum of
  enabled options plus the unconditional core;
- **CVE nullification**: the fraction of a CVE corpus whose vulnerable
  option is compiled out.  The corpus is synthesized deterministically:
  1,530 CVEs (the size of the Alharthi et al. study) distributed over the
  option database with the real-world skew toward drivers/net/fs code, and
  a slice pinned to unconditional core code that no configuration removes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.core.optionset import option_surface
from repro.kconfig.database import build_linux_tree
from repro.kconfig.model import KconfigTree
from repro.kconfig.resolver import ResolvedConfig

#: Size of the synthesized CVE corpus (Alharthi et al. studied 1,530).
CVE_CORPUS_SIZE = 1530

#: Fraction of CVEs living in unconditional core code (not nullifiable by
#: any configuration): calibrated so a Lupine-class config nullifies ~89%.
CORE_CVE_FRACTION = 0.08

#: Directory weights for CVE placement (driver and protocol code dominates
#: historical kernel CVEs).
_DIRECTORY_CVE_WEIGHTS: Dict[str, float] = {
    "drivers": 0.46,
    "net": 0.22,
    "fs": 0.12,
    "sound": 0.05,
    "arch": 0.05,
    "crypto": 0.03,
    "kernel": 0.03,
    "mm": 0.02,
    "security": 0.01,
    "lib": 0.01,
}


@dataclass(frozen=True)
class Cve:
    """One synthesized CVE: an identifier pinned to an option (or core)."""

    identifier: str
    option: Optional[str]  # None => unconditional core code
    severity: float  # CVSS-like 0..10

    @property
    def in_core(self) -> bool:
        return self.option is None


def _stable_pick(seed: str, items: List[str]) -> str:
    digest = hashlib.md5(seed.encode("ascii")).digest()
    return items[int.from_bytes(digest[:8], "big") % len(items)]


def _stable_severity(seed: str) -> float:
    digest = hashlib.md5((seed + ":sev").encode("ascii")).digest()
    return 2.0 + (int.from_bytes(digest[:4], "big") / float(1 << 32)) * 8.0


@lru_cache(maxsize=1)
def cve_database(tree: Optional[KconfigTree] = None) -> Tuple[Cve, ...]:
    """The deterministic synthesized CVE corpus."""
    if tree is None:
        tree = build_linux_tree()
    by_directory: Dict[str, List[str]] = {
        directory: [option.name for option in tree.options_in(directory)]
        for directory in tree.directories()
    }
    cves: List[Cve] = []
    core_count = int(CVE_CORPUS_SIZE * CORE_CVE_FRACTION)
    for index in range(CVE_CORPUS_SIZE):
        identifier = f"CVE-SIM-{2015 + index % 6}-{10000 + index}"
        if index < core_count:
            cves.append(Cve(identifier, None, _stable_severity(identifier)))
            continue
        directories = list(_DIRECTORY_CVE_WEIGHTS)
        weights = list(_DIRECTORY_CVE_WEIGHTS.values())
        # Deterministic weighted pick.
        digest = hashlib.md5(identifier.encode("ascii")).digest()
        roll = int.from_bytes(digest[:4], "big") / float(1 << 32)
        cumulative = 0.0
        directory = directories[-1]
        for candidate, weight in zip(directories, weights):
            cumulative += weight / sum(weights)
            if roll <= cumulative:
                directory = candidate
                break
        option = _stable_pick(identifier, by_directory[directory])
        cves.append(Cve(identifier, option, _stable_severity(identifier)))
    return tuple(cves)


@dataclass(frozen=True)
class AttackSurfaceReport:
    """Security posture of one configuration."""

    config_name: str
    surface_kb: float
    reachable_syscalls: int
    applicable_cves: Tuple[Cve, ...]
    nullified_cves: Tuple[Cve, ...]

    @property
    def nullification_rate(self) -> float:
        total = len(self.applicable_cves) + len(self.nullified_cves)
        return len(self.nullified_cves) / total if total else 0.0

    def surface_reduction_vs(self, baseline: "AttackSurfaceReport") -> float:
        """Fractional attack-surface reduction relative to *baseline*."""
        return 1.0 - self.surface_kb / baseline.surface_kb


def analyze_config(config: ResolvedConfig) -> AttackSurfaceReport:
    """Compute the attack-surface report for one resolved configuration.

    Surface metrics come from the shared fold in
    :func:`repro.core.optionset.option_surface`, so curated and
    trace-derived configs report identically-computed numbers.
    """
    tree = config.tree
    surface = option_surface(config)
    applicable: List[Cve] = []
    nullified: List[Cve] = []
    for cve in cve_database(tree):
        if cve.in_core or cve.option in config:
            applicable.append(cve)
        else:
            nullified.append(cve)
    return AttackSurfaceReport(
        config_name=config.name or "<unnamed>",
        surface_kb=surface.surface_kb,
        reachable_syscalls=surface.reachable_syscalls,
        applicable_cves=tuple(applicable),
        nullified_cves=tuple(nullified),
    )
