"""Boot substrate: phase-based simulation of guest kernel boot.

Reproduces the mechanisms behind Figure 7: boot time is dominated by which
phases a configuration runs -- clock calibration is ~2 ms with
``CONFIG_PARAVIRT`` (kvm-clock) and ~50 ms without (TSC calibration loop),
device initcalls scale with the configured-in subsystems, and the root
filesystem mount cost depends on the filesystem (OSv's zfs vs read-only
rootfs difference, Section 4.3).
"""

from repro.boot.bootsim import BootReport, BootSimulator
from repro.boot.phases import BootPhase, RootfsKind

__all__ = ["BootPhase", "BootReport", "BootSimulator", "RootfsKind"]
