"""The boot simulator.

Runs a :class:`~repro.kbuild.image.KernelImage` through the boot phases
under a given monitor and root filesystem, producing a per-phase breakdown
and the total boot time the paper's Figure 7 reports (measured, as in the
paper, from monitor start to the guest's "boot complete" I/O port write).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.boot.phases import (
    BootPhase,
    DECOMPRESS_KB_PER_MS,
    EARLY_SETUP_MS,
    INIT_EXEC_MS,
    INITCALL_ASYNC_FACTOR,
    INITCALL_DISPATCH_US,
    LOAD_KB_PER_MS,
    PARAVIRT_CLOCK_CALIBRATION_MS,
    RootfsKind,
    TSC_CALIBRATION_MS,
)
from repro.faults import fault_site
from repro.kbuild.image import KernelImage
from repro.observe import METRICS, span
from repro.simcore.context import current_clock


@dataclass
class BootReport:
    """Outcome of one simulated boot."""

    system: str
    phases_ms: Dict[BootPhase, float] = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        return sum(self.phases_ms.values())

    def phase_ms(self, phase: BootPhase) -> float:
        return self.phases_ms.get(phase, 0.0)

    def breakdown(self) -> str:
        lines = [f"boot {self.system}: {self.total_ms:.1f} ms"]
        for phase in BootPhase:
            if phase in self.phases_ms:
                lines.append(f"  {phase.value:<18} {self.phases_ms[phase]:7.2f} ms")
        return "\n".join(lines)


@dataclass
class BootSimulator:
    """Simulates guest boots for Linux kernel images.

    ``monitor_setup_ms`` comes from the VMM (:mod:`repro.vmm`); unikernel
    comparators provide their own boot models (:mod:`repro.unikernels`).
    """

    monitor_setup_ms: float

    def boot(
        self,
        image: KernelImage,
        rootfs: RootfsKind = RootfsKind.EXT2,
        system: Optional[str] = None,
    ) -> BootReport:
        report = BootReport(system=system or image.name)
        phases = report.phases_ms
        with span("boot.boot", category="boot",
                  system=report.system) as record:
            # Fault site: a "hang" advances the simulated clock past any
            # deadline and raises FaultHang (a guest that never reaches
            # the boot-complete I/O port write); a "raise" is a crash.
            with fault_site("boot.boot"):
                pass
            phases[BootPhase.MONITOR_SETUP] = self.monitor_setup_ms
            phases[BootPhase.KERNEL_LOAD] = (
                image.compressed_kb / LOAD_KB_PER_MS
            )
            phases[BootPhase.DECOMPRESS] = (
                image.uncompressed_kb / DECOMPRESS_KB_PER_MS
            )
            phases[BootPhase.EARLY_SETUP] = EARLY_SETUP_MS
            phases[BootPhase.CLOCK_CALIBRATION] = (
                PARAVIRT_CLOCK_CALIBRATION_MS
                if image.has_option("PARAVIRT")
                else TSC_CALIBRATION_MS
            )
            phases[BootPhase.INITCALLS] = self._initcalls_ms(image)
            phases[BootPhase.ROOTFS_MOUNT] = rootfs.mount_ms
            phases[BootPhase.INIT_EXEC] = INIT_EXEC_MS
            # One child span per phase, advancing the active virtual
            # clock by the modelled duration: booted under a Guest scope
            # this is the guest's own timeline (and the trace carries the
            # boot timeline Figure 7 is made of, not just host overhead).
            for phase in BootPhase:
                if phase not in phases:
                    continue
                with span(f"boot.{phase.value}", category="boot"):
                    current_clock().advance_ms(phases[phase])
            record.set_attr("total_sim_ms", report.total_ms)
        METRICS.counter("boot.boots").inc()
        METRICS.histogram(
            "boot.total_ms",
            (5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0),
        ).observe(report.total_ms)
        return report

    @staticmethod
    def _initcalls_ms(image: KernelImage) -> float:
        config = image.config
        # Sorted fold: ``config.enabled`` is a frozenset, so iteration
        # order -- and therefore the float sum -- would otherwise vary
        # with PYTHONHASHSEED.  Boot times feed fleet manifest digests.
        total_us = sum(
            config.tree[name].boot_cost_us for name in sorted(config.enabled)
        )
        total_us *= INITCALL_ASYNC_FACTOR
        total_us += INITCALL_DISPATCH_US * len(config.enabled)
        # -Os slows initcall code just like any other kernel code.
        total_us *= image.toolchain.speed_factor
        return total_us / 1000.0
