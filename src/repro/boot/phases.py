"""Boot phases and their cost rules."""

from __future__ import annotations

import enum


class BootPhase(enum.Enum):
    """The phases of a simulated guest boot, in order."""

    MONITOR_SETUP = "monitor-setup"
    KERNEL_LOAD = "kernel-load"
    DECOMPRESS = "decompress"
    EARLY_SETUP = "early-setup"
    CLOCK_CALIBRATION = "clock-calibration"
    INITCALLS = "initcalls"
    ROOTFS_MOUNT = "rootfs-mount"
    INIT_EXEC = "init-exec"


class RootfsKind(enum.Enum):
    """Root filesystem kinds with distinct mount costs (Section 4.3)."""

    EXT2 = "ext2"
    RAMFS = "ramfs"
    ZFS = "zfs"
    ROFS = "rofs"

    @property
    def mount_ms(self) -> float:
        return {
            RootfsKind.EXT2: 2.4,
            RootfsKind.RAMFS: 0.4,
            # OSv's zfs import dominated its boot time until the authors
            # switched to a read-only filesystem (10x improvement).
            RootfsKind.ZFS: 41.0,
            RootfsKind.ROFS: 0.9,
        }[self]


#: Decompression throughput (uncompressed KiB per ms).
DECOMPRESS_KB_PER_MS = 12000.0

#: Kernel load throughput from the monitor (compressed KiB per ms).
LOAD_KB_PER_MS = 30000.0

#: Clock calibration with paravirtual clock (kvm-clock): read one MSR.
PARAVIRT_CLOCK_CALIBRATION_MS = 1.8

#: Clock calibration without paravirt: the PIT-timed TSC calibration loop.
TSC_CALIBRATION_MS = 49.5

#: Fraction of summed initcall cost visible on the boot critical path
#: (asynchronous probing overlaps device initcalls).
INITCALL_ASYNC_FACTOR = 0.80

#: Per-option initcall dispatch overhead (registration, ordering).
INITCALL_DISPATCH_US = 2.5

#: Fixed early setup (memblock, IDT, percpu areas).
EARLY_SETUP_MS = 1.1

#: Exec of the init process / startup script interpreter.
INIT_EXEC_MS = 1.9
