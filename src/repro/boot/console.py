"""Kernel console (dmesg) output for simulated boots.

Generates the log lines a real boot would print, with each line stamped at
its phase's position on the simulated timeline.  This is what the paper's
derivation methodology actually looked at -- "application output guided
which configuration options to try" -- and what the boot-time measurement
hooks into (the final I/O-port write line).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.boot.bootsim import BootReport
from repro.boot.phases import BootPhase
from repro.kbuild.image import KernelImage


@dataclass(frozen=True)
class ConsoleLine:
    """One dmesg line with its simulated timestamp."""

    timestamp_ms: float
    text: str

    def __str__(self) -> str:
        return f"[{self.timestamp_ms / 1000.0:10.6f}] {self.text}"


def _phase_lines(image: KernelImage, phase: BootPhase) -> List[str]:
    config = image.config
    if phase is BootPhase.DECOMPRESS:
        return ["Decompressing Linux... Parsing ELF... done.",
                "Booting the kernel."]
    if phase is BootPhase.EARLY_SETUP:
        lines = [
            f"Linux version {config.tree.kernel_version}.0-lupine "
            "(gcc version 8.3.0)",
            "Command line: console=ttyS0 reboot=k panic=1 pci=off",
        ]
        if image.kml_enabled:
            lines.append("Kernel Mode Linux: all processes run in ring 0")
        return lines
    if phase is BootPhase.CLOCK_CALIBRATION:
        if image.has_option("PARAVIRT"):
            return ["kvm-clock: Using msrs 4b564d01 and 4b564d00",
                    "tsc: Detected 3800.000 MHz processor (kvm-clock)"]
        return ["tsc: Fast TSC calibration failed",
                "tsc: PIT calibration: 3800.014 MHz (slow path)"]
    if phase is BootPhase.INITCALLS:
        lines = []
        if image.has_option("SMP"):
            lines.append("smp: Bringing up secondary CPUs ...")
        else:
            lines.append("Hierarchical RCU implementation (UP)")
        if image.has_option("PCI"):
            lines.append("PCI: Probing PCI hardware")
        if image.has_option("ACPI"):
            lines.append("ACPI: Core revision 20150204")
        if image.has_option("VIRTIO_MMIO"):
            lines.append("virtio-mmio: probing devices from command line")
        if image.has_option("VIRTIO_NET"):
            lines.append("virtio_net virtio1: eth0")
        if image.has_option("INET"):
            lines.append("TCP: Hash tables configured")
        if image.has_option("NETFILTER"):
            lines.append("nf_conntrack: default automatic helper assignment")
        if image.has_option("SECURITY_SELINUX"):
            lines.append("SELinux:  Initializing.")
        if image.has_option("AUDIT"):
            lines.append("audit: initializing netlink subsys")
        lines.append(
            f"clocksource: Switched to clocksource "
            f"{'kvm-clock' if image.has_option('PARAVIRT') else 'tsc'}"
        )
        return lines
    if phase is BootPhase.ROOTFS_MOUNT:
        return ["EXT2-fs (vda): mounted filesystem",
                "VFS: Mounted root (ext2 filesystem) on device 254:0."]
    if phase is BootPhase.INIT_EXEC:
        return ["Run /sbin/lupine-init as init process",
                "lupine: boot complete (I/O port write)"]
    return []


def render_console(image: KernelImage, report: BootReport) -> List[ConsoleLine]:
    """Produce the timestamped dmesg stream for one boot."""
    lines: List[ConsoleLine] = []
    elapsed = 0.0
    for phase in BootPhase:
        duration = report.phase_ms(phase)
        texts = _phase_lines(image, phase)
        for index, text in enumerate(texts):
            fraction = (index + 1) / (len(texts) + 1)
            lines.append(
                ConsoleLine(timestamp_ms=elapsed + duration * fraction,
                            text=text)
            )
        elapsed += duration
    return lines


def dmesg(image: KernelImage, report: BootReport) -> str:
    """The full console text."""
    return "\n".join(str(line) for line in render_console(image, report))
