"""The top-20 Docker Hub applications (paper Table 3).

Download counts (billions) and descriptions are the paper's.  Each app's
``required_options`` is its hand-derived configuration atop ``lupine-base``
(Section 4.1); the per-app counts match Table 3 exactly and their union is
the 19 options of ``lupine-general``.

Application syscall sets are constructed from the option-to-syscall mapping
so that the manifest generator's derivation (syscalls + facilities ->
options) round-trips to exactly the hand-derived configuration -- the same
consistency the paper observed between error-message-driven derivation and
benchmark success.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.apps.app import Application, ProcessModel, SuccessCriterion
from repro.syscall.table import OPTION_SYSCALLS

#: Syscalls virtually every Linux binary issues (via libc startup).
COMMON_SYSCALLS: FrozenSet[str] = frozenset(
    {
        "read", "write", "open", "openat", "close", "fstat", "stat", "lseek",
        "mmap", "munmap", "mprotect", "brk", "rt_sigaction", "rt_sigprocmask",
        "ioctl", "access", "execve", "exit_group", "arch_prctl", "getpid",
        "getppid", "getuid", "geteuid", "getgid", "getegid", "uname",
        "getcwd", "dup2", "fcntl", "clock_gettime", "gettimeofday",
        "nanosleep", "set_tid_address", "prlimit64", "getrandom", "readv",
        "writev", "pipe2", "getdents64", "sigaltstack",
    }
)

#: Extra syscalls for network servers (sockets are not option-gated; the
#: protocol families behind them are).
SERVER_SYSCALLS: FrozenSet[str] = frozenset(
    {
        "socket", "bind", "listen", "accept", "accept4", "connect",
        "setsockopt", "getsockopt", "sendto", "recvfrom", "sendmsg",
        "recvmsg", "shutdown", "getsockname", "getpeername", "poll", "select",
    }
)

#: Options whose requirement is expressed as a runtime facility rather than
#: a syscall (socket families, mounts, kernel crypto).
OPTION_FACILITIES: Dict[str, str] = {
    "UNIX": "socket:unix",
    "INET": "socket:inet",
    "PACKET": "socket:packet",
    "PROC_FS": "mount:proc",
    "TMPFS": "mount:tmpfs",
    "CRYPTO_AES": "crypto:aes",
}

_FACILITY_OPTION = {facility: option for option, facility in
                    OPTION_FACILITIES.items()}


def option_for_facility(facility: str) -> str:
    """The Kconfig option providing a runtime facility."""
    return _FACILITY_OPTION[facility]


def _derive_syscalls_and_facilities(
    options: Tuple[str, ...], server: bool, multi_process: bool
) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    syscalls = set(COMMON_SYSCALLS)
    if server:
        syscalls |= SERVER_SYSCALLS
    if multi_process:
        syscalls |= {"fork", "clone", "wait4", "kill", "setsid"}
    facilities = set()
    for option in options:
        if option in OPTION_FACILITIES:
            facilities.add(OPTION_FACILITIES[option])
        else:
            gated = OPTION_SYSCALLS.get(option)
            if not gated:
                raise ValueError(
                    f"app option {option} is neither syscall-gated nor a "
                    "facility; the manifest could never derive it"
                )
            syscalls.update(gated)
    return frozenset(syscalls), frozenset(facilities)


def _app(
    name: str,
    downloads: float,
    description: str,
    options: Tuple[str, ...],
    process_model: ProcessModel = ProcessModel.SINGLE_PROCESS,
    success: SuccessCriterion = SuccessCriterion.QUERY_RESPONSE,
    binary_kb: int = 2048,
    resident_kb: int = 800,
    server: bool = True,
    fork_at_startup: bool = False,
    entrypoint: Tuple[str, ...] = (),
) -> Application:
    syscalls, facilities = _derive_syscalls_and_facilities(
        options, server, process_model is ProcessModel.MULTI_PROCESS
    )
    return Application(
        name=name,
        description=description,
        downloads_billions=downloads,
        required_options=frozenset(options),
        syscalls=syscalls,
        facilities=facilities,
        process_model=process_model,
        success_criterion=success,
        binary_size_kb=binary_kb,
        resident_kb=resident_kb,
        uses_fork_at_startup=fork_at_startup,
        needs_network=server,
        needs_procfs="PROC_FS" in options,
        entrypoint=entrypoint,
    )


#: Table 3, in popularity order (billions of downloads).
TOP20_APPS: Tuple[Application, ...] = (
    _app(
        "nginx", 1.7, "Web server",
        ("FUTEX", "EPOLL", "EVENTFD", "AIO", "UNIX", "INET", "PACKET",
         "TIMERFD", "SIGNALFD", "INOTIFY_USER", "FILE_LOCKING",
         "ADVISE_SYSCALLS", "PROC_FS"),
        binary_kb=1340, resident_kb=900,
        entrypoint=("/usr/sbin/nginx", "-g", "daemon off;"),
    ),
    _app(
        "postgres", 1.6, "Database",
        ("FUTEX", "EPOLL", "UNIX", "INET", "PROC_FS", "FILE_LOCKING",
         "ADVISE_SYSCALLS", "SYSVIPC", "POSIX_MQUEUE", "TMPFS"),
        process_model=ProcessModel.MULTI_PROCESS,
        binary_kb=7800, resident_kb=4200, fork_at_startup=True,
        entrypoint=("/usr/bin/postgres", "-D", "/var/lib/postgresql/data"),
    ),
    _app(
        "httpd", 1.4, "Web server",
        ("FUTEX", "EPOLL", "EVENTFD", "AIO", "UNIX", "INET", "PACKET",
         "TIMERFD", "SIGNALFD", "FILE_LOCKING", "ADVISE_SYSCALLS",
         "PROC_FS", "TMPFS"),
        binary_kb=2200, resident_kb=1400,
        entrypoint=("/usr/sbin/httpd", "-DFOREGROUND"),
    ),
    _app(
        "node", 1.2, "Language runtime",
        ("FUTEX", "EPOLL", "UNIX", "INET", "PROC_FS"),
        success=SuccessCriterion.CONSOLE_OUTPUT,
        binary_kb=38000, resident_kb=9500,
        entrypoint=("/usr/bin/node", "/app/hello.js"),
    ),
    _app(
        "redis", 1.2, "Key-value store",
        ("FUTEX", "EPOLL", "UNIX", "INET", "PACKET", "TIMERFD",
         "FILE_LOCKING", "ADVISE_SYSCALLS", "PROC_FS", "TMPFS"),
        binary_kb=2100, resident_kb=1600,
        entrypoint=("/usr/bin/redis-server", "--protected-mode", "no"),
    ),
    _app(
        "mongo", 1.2, "NOSQL database",
        ("FUTEX", "EPOLL", "EVENTFD", "UNIX", "INET", "PROC_FS",
         "FILE_LOCKING", "ADVISE_SYSCALLS", "TMPFS", "SIGNALFD",
         "MEMBARRIER"),
        process_model=ProcessModel.MULTI_THREADED,
        binary_kb=46000, resident_kb=22000,
        entrypoint=("/usr/bin/mongod",),
    ),
    _app(
        "mysql", 1.2, "Database",
        ("FUTEX", "EPOLL", "EVENTFD", "AIO", "UNIX", "INET", "PROC_FS",
         "FILE_LOCKING", "TMPFS"),
        process_model=ProcessModel.MULTI_THREADED,
        binary_kb=24000, resident_kb=16000,
        entrypoint=("/usr/sbin/mysqld",),
    ),
    _app(
        "traefik", 1.1, "Edge router",
        ("FUTEX", "EPOLL", "UNIX", "INET", "PACKET", "PROC_FS", "TIMERFD",
         "INOTIFY_USER"),
        success=SuccessCriterion.LOG_READY,
        binary_kb=62000, resident_kb=12000,
        entrypoint=("/usr/bin/traefik",),
    ),
    _app(
        "memcached", 0.9, "Key-value store",
        ("FUTEX", "EPOLL", "EVENTFD", "UNIX", "INET", "PACKET", "PROC_FS",
         "FILE_LOCKING", "ADVISE_SYSCALLS", "TMPFS"),
        process_model=ProcessModel.MULTI_THREADED,
        binary_kb=350, resident_kb=420,
        entrypoint=("/usr/bin/memcached", "-u", "root"),
    ),
    _app(
        "hello-world", 0.9, "C program “hello”",
        (),
        success=SuccessCriterion.CONSOLE_OUTPUT,
        binary_kb=12, resident_kb=16, server=False,
        entrypoint=("/hello",),
    ),
    _app(
        "mariadb", 0.8, "Database",
        ("FUTEX", "EPOLL", "EVENTFD", "AIO", "UNIX", "INET", "PROC_FS",
         "FILE_LOCKING", "ADVISE_SYSCALLS", "TMPFS", "SIGNALFD",
         "INOTIFY_USER", "CRYPTO_AES"),
        process_model=ProcessModel.MULTI_THREADED,
        binary_kb=21000, resident_kb=15000,
        entrypoint=("/usr/sbin/mysqld",),
    ),
    _app(
        "golang", 0.6, "Language runtime", (),
        success=SuccessCriterion.COMPILE_HELLO_WORLD,
        binary_kb=98000, resident_kb=3000, server=False,
        entrypoint=("/usr/local/go/bin/go", "run", "/app/hello.go"),
    ),
    _app(
        "python", 0.5, "Language runtime", (),
        success=SuccessCriterion.CONSOLE_OUTPUT,
        binary_kb=4800, resident_kb=2300, server=False,
        entrypoint=("/usr/local/bin/python", "-c", "print('hello')"),
    ),
    _app(
        "openjdk", 0.5, "Language runtime", (),
        success=SuccessCriterion.COMPILE_HELLO_WORLD,
        binary_kb=180000, resident_kb=14000, server=False,
        entrypoint=("/usr/bin/java", "Hello"),
    ),
    _app(
        "rabbitmq", 0.5, "Message broker",
        ("FUTEX", "EPOLL", "EVENTFD", "UNIX", "INET", "PACKET", "PROC_FS",
         "FILE_LOCKING", "TIMERFD", "INOTIFY_USER", "TMPFS",
         "SYSCTL_SYSCALL"),
        process_model=ProcessModel.MULTI_THREADED,
        success=SuccessCriterion.LOG_READY,
        binary_kb=15000, resident_kb=24000,
        entrypoint=("/usr/sbin/rabbitmq-server",),
    ),
    _app(
        "php", 0.4, "Language runtime", (),
        success=SuccessCriterion.CONSOLE_OUTPUT,
        binary_kb=11000, resident_kb=3800, server=False,
        entrypoint=("/usr/local/bin/php", "-r", "echo 'hello';"),
    ),
    _app(
        "wordpress", 0.4, "PHP/mysql blog tool",
        ("FUTEX", "EPOLL", "UNIX", "INET", "PROC_FS", "FILE_LOCKING",
         "TMPFS", "SYSVIPC", "ADVISE_SYSCALLS"),
        process_model=ProcessModel.MULTI_PROCESS,
        binary_kb=13000, resident_kb=6200, fork_at_startup=True,
        entrypoint=("/usr/local/bin/apache2-foreground",),
    ),
    _app(
        "haproxy", 0.4, "Load balancer",
        ("FUTEX", "EPOLL", "EVENTFD", "UNIX", "INET", "PACKET", "PROC_FS",
         "TIMERFD"),
        success=SuccessCriterion.LOG_READY,
        binary_kb=4200, resident_kb=2100,
        entrypoint=("/usr/sbin/haproxy", "-f", "/etc/haproxy/haproxy.cfg"),
    ),
    _app(
        "influxdb", 0.3, "Time series database",
        ("FUTEX", "EPOLL", "UNIX", "INET", "PACKET", "PROC_FS",
         "FILE_LOCKING", "ADVISE_SYSCALLS", "TMPFS", "TIMERFD",
         "MEMBARRIER"),
        binary_kb=52000, resident_kb=18000,
        entrypoint=("/usr/bin/influxd",),
    ),
    _app(
        "elasticsearch", 0.3, "Search engine",
        ("FUTEX", "EPOLL", "EVENTFD", "UNIX", "INET", "PROC_FS",
         "FILE_LOCKING", "ADVISE_SYSCALLS", "TMPFS", "SIGNALFD",
         "INOTIFY_USER", "MEMBARRIER"),
        process_model=ProcessModel.MULTI_THREADED,
        success=SuccessCriterion.HEALTH_CHECK,
        binary_kb=310000, resident_kb=48000,
        entrypoint=("/usr/share/elasticsearch/bin/elasticsearch",),
    ),
)

_BY_NAME = {app.name: app for app in TOP20_APPS}


def get_app(name: str) -> Application:
    """Look up one of the top-20 applications by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def top20_in_popularity_order() -> List[Application]:
    """Table 3 order: by downloads, descending (ties keep table order)."""
    return list(TOP20_APPS)


def lupine_general_option_union() -> FrozenSet[str]:
    """The union of all per-app options: the 19 of ``lupine-general``."""
    union: set = set()
    for app in TOP20_APPS:
        union |= app.required_options
    return frozenset(union)


def cumulative_option_growth() -> List[int]:
    """Figure 5: size of the option union after each app, popularity order."""
    union: set = set()
    growth: List[int] = []
    for app in TOP20_APPS:
        union |= app.required_options
        growth.append(len(union))
    return growth


def total_downloads_billions() -> float:
    return sum(app.downloads_billions for app in TOP20_APPS)
