"""The application model.

An :class:`Application` is everything the Lupine pipeline needs to know about
a workload: the container image it ships in, the kernel options it requires
beyond ``lupine-base``, the syscalls it issues (used by the manifest
generator and by the unikernel compatibility checks), its process model, and
how to tell a successful boot from a failed one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Tuple


class ProcessModel(enum.Enum):
    """How many processes/threads the application uses at runtime."""

    SINGLE_PROCESS = "single-process"
    MULTI_THREADED = "multi-threaded"
    MULTI_PROCESS = "multi-process"

    @property
    def fits_unikernel(self) -> bool:
        """True if the app satisfies the single-process unikernel restriction."""
        return self is not ProcessModel.MULTI_PROCESS


class SuccessCriterion(enum.Enum):
    """How the paper judged each application as 'running' (Section 4.1)."""

    CONSOLE_OUTPUT = "console-output"
    QUERY_RESPONSE = "query-response"
    HEALTH_CHECK = "health-check"
    LOG_READY = "log-ready"
    COMPILE_HELLO_WORLD = "compile-hello-world"


@dataclass(frozen=True)
class Application:
    """A cloud application as characterized for the Lupine evaluation.

    ``required_options`` are the Kconfig options the app needs *on top of*
    lupine-base (Table 3's rightmost column is ``len(required_options)``).
    ``syscalls`` is the set the app issues at runtime; the manifest generator
    derives option requirements from it.  ``binary_size_kb`` and
    ``resident_kb`` drive the memory-footprint simulation; resident pages are
    a subset of the binary because Linux loads binaries lazily (Section 4.4).
    """

    name: str
    description: str
    downloads_billions: float
    required_options: FrozenSet[str]
    syscalls: FrozenSet[str]
    facilities: FrozenSet[str] = frozenset()
    process_model: ProcessModel = ProcessModel.SINGLE_PROCESS
    success_criterion: SuccessCriterion = SuccessCriterion.QUERY_RESPONSE
    binary_size_kb: int = 2048
    resident_kb: int = 800
    uses_fork_at_startup: bool = False
    env: Tuple[Tuple[str, str], ...] = ()
    entrypoint: Tuple[str, ...] = ()
    needs_network: bool = True
    needs_procfs: bool = False

    def __post_init__(self) -> None:
        if not self.entrypoint:
            object.__setattr__(self, "entrypoint", (f"/usr/bin/{self.name}",))

    @property
    def option_count(self) -> int:
        """Table 3's '# options atop lupine-base' figure for this app."""
        return len(self.required_options)

    def requires(self, option_name: str) -> bool:
        return option_name in self.required_options
