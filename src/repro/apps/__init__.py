"""Application models: the top-20 Docker Hub applications of Table 3.

Each application carries the knowledge the paper's manual derivation process
produced: which configuration options it needs beyond ``lupine-base``, which
system calls it issues, its process model (single- vs multi-process), and a
success criterion used to judge a boot (Section 4.1).
"""

from repro.apps.app import Application, ProcessModel, SuccessCriterion
from repro.apps.registry import (
    TOP20_APPS,
    get_app,
    lupine_general_option_union,
    top20_in_popularity_order,
)

__all__ = [
    "Application",
    "ProcessModel",
    "SuccessCriterion",
    "TOP20_APPS",
    "get_app",
    "lupine_general_option_union",
    "top20_in_popularity_order",
]
