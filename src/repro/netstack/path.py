"""Per-packet network path cost model.

A packet traversing the simulated Linux stack costs a base amount for the
IP/TCP processing plus a per-hook surcharge for every configured-in subsystem
that attaches to the packet path.  The surcharges reproduce, in aggregate,
the 20-33% application throughput advantage of Lupine over microVM
(Table 4): microVM's general-purpose configuration keeps all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Mapping

#: Base cost of IP+TCP processing for one packet (simulated ns).
BASE_PACKET_NS = 550.0

#: Extra per-packet cost for each configured-in hook subsystem.
PACKET_HOOK_NS: Mapping[str, float] = {
    "NETFILTER": 73.0,
    "NF_CONNTRACK": 139.0,
    "NF_TABLES": 23.0,
    "IP_NF_IPTABLES": 35.0,
    "NET_SCHED": 54.0,
    "SECURITY_SELINUX": 69.0,
    "SECURITY_APPARMOR": 27.0,
    "MEMCG": 42.0,
    "AUDIT": 19.0,
    "NETPRIO_CGROUP": 16.0,
    "BRIDGE_NETFILTER": 23.0,
    "IPV6": 27.0,
}

#: Extra work hooks do on connection-establishment packets relative to
#: steady-state ones (conntrack entry creation vs lookup).
CONNECTION_HOOK_FACTOR = 1.0

#: Loopback/virtio device overhead per packet.
DEVICE_NS = 140.0


@dataclass(frozen=True)
class NetworkPath:
    """Per-packet costs for one kernel configuration."""

    base_ns: float
    hook_ns: float
    device_ns: float = DEVICE_NS
    work_factor: float = 1.0

    @classmethod
    def for_options(
        cls,
        enabled_options: Iterable[str],
        size_optimized: bool = False,
    ) -> "NetworkPath":
        enabled: FrozenSet[str] = frozenset(enabled_options)
        if "INET" not in enabled:
            raise ValueError("network path requires CONFIG_INET")
        hook = sum(
            cost for option, cost in PACKET_HOOK_NS.items() if option in enabled
        )
        return cls(
            base_ns=BASE_PACKET_NS,
            hook_ns=hook,
            work_factor=1.10 if size_optimized else 1.0,
        )

    def packet_ns(self, payload_bytes: int = 0) -> float:
        """Cost of one packet through the stack (payload copy included)."""
        copy_ns = payload_bytes / 12.0
        return (self.base_ns + self.hook_ns + self.device_ns) * self.work_factor + copy_ns

    def connection_packet_ns(self) -> float:
        """Cost of one handshake packet (hooks do extra work on new flows)."""
        return (
            self.base_ns + self.hook_ns * CONNECTION_HOOK_FACTOR + self.device_ns
        ) * self.work_factor

    def round_trip_ns(self, packets_each_way: int = 1) -> float:
        return 2.0 * packets_each_way * self.packet_ns()
