"""Network stack substrate: per-packet path costs derived from kernel config.

The paper's application results (Table 4) are dominated by how much work the
guest kernel does per packet: a general-purpose microVM kernel runs netfilter
hooks, connection tracking, qdisc scheduling, LSM socket hooks and cgroup
accounting on every packet, none of which a specialized Lupine kernel
compiles in.
"""

from repro.netstack.path import NetworkPath, PACKET_HOOK_NS

__all__ = ["NetworkPath", "PACKET_HOOK_NS"]
