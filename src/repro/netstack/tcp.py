"""A small TCP state machine and connection-tracking table.

This is the mechanism underneath two of the paper's results:

- **nginx-conn vs nginx-sess** (Table 4): connection-based workloads pay
  the full SYN/SYN-ACK/ACK handshake and teardown per request, and on a
  microVM-configured kernel every handshake also creates a conntrack entry;
- **OSv "drops connections"**: a stack that cannot keep up with connection
  churn sheds SYNs -- modelled here as listen-backlog overflow.

The state machine implements the RFC 793 transitions the workloads
exercise (LISTEN -> SYN_RCVD -> ESTABLISHED -> FIN_WAIT/CLOSE), charges
per-packet costs through a :class:`~repro.netstack.path.NetworkPath`, and
keeps real bookkeeping (ports, backlogs, a capacity-bounded conntrack
table with LRU eviction) so tests can probe behaviour, not just cost.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.netstack.path import NetworkPath
from repro.simcore.clock import ScheduledEvent, VirtualClock

#: 2MSL: how long an actively-closed connection lingers in TIME_WAIT
#: before its port is reusable (RFC 793's 2 * maximum segment lifetime;
#: Linux uses 60 s).  Expiry is driven by the stack's virtual clock --
#: a deadline armed at close() fires when enough simulated time passes.
TIME_WAIT_2MSL_NS = 60e9


class TcpError(RuntimeError):
    """Protocol-violation errors (connecting to a closed port, etc.)."""


class TcpState(enum.Enum):
    LISTEN = "LISTEN"
    SYN_RECEIVED = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    CLOSE_WAIT = "CLOSE_WAIT"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"
    CLOSED = "CLOSED"


#: Four-tuple identifying a connection (local port, peer host, peer port).
FlowKey = Tuple[int, str, int]


@dataclass
class Connection:
    """One TCP connection endpoint on the simulated host."""

    key: FlowKey
    state: TcpState
    segments_in: int = 0
    segments_out: int = 0
    #: The armed 2MSL deadline while in TIME_WAIT (cleared on expiry).
    time_wait_timer: Optional[ScheduledEvent] = None

    @property
    def established(self) -> bool:
        return self.state is TcpState.ESTABLISHED


class ConntrackTable:
    """A netfilter-style connection tracking table with LRU eviction.

    Only instantiated when the kernel config includes ``NF_CONNTRACK`` --
    a Lupine kernel has no table at all, which is exactly why its
    connection path is cheaper.
    """

    def __init__(self, max_entries: int = 1024):
        if max_entries < 1:
            raise ValueError("conntrack table needs at least one slot")
        self.max_entries = max_entries
        self._entries: "OrderedDict[FlowKey, TcpState]" = OrderedDict()
        self.insertions = 0
        self.evictions = 0
        self.lookups = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: FlowKey) -> bool:
        return key in self._entries

    def track_new(self, key: FlowKey) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        if len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = TcpState.SYN_RECEIVED
        self.insertions += 1

    def update(self, key: FlowKey, state: TcpState) -> None:
        if key in self._entries:
            self._entries[key] = state
            self._entries.move_to_end(key)

    def lookup(self, key: FlowKey) -> Optional[TcpState]:
        self.lookups += 1
        state = self._entries.get(key)
        if state is not None:
            self._entries.move_to_end(key)
        return state

    def drop(self, key: FlowKey) -> None:
        self._entries.pop(key, None)


@dataclass
class TcpStack:
    """The host's TCP endpoint: listeners, connections, cost accounting."""

    path: NetworkPath
    conntrack: Optional[ConntrackTable] = None
    backlog: int = 128
    clock: VirtualClock = field(default_factory=VirtualClock)
    _listeners: Dict[int, int] = field(default_factory=dict)  # port->pending
    _connections: Dict[FlowKey, Connection] = field(default_factory=dict)
    syns_dropped: int = 0
    time_wait_expired: int = 0

    @property
    def clock_ns(self) -> float:
        """Simulated nanoseconds accumulated on this stack's clock."""
        return self.clock.now_ns

    @clock_ns.setter
    def clock_ns(self, value: float) -> None:
        self.clock.jump_to(value)

    # -- server side --------------------------------------------------------

    def listen(self, port: int, backlog: Optional[int] = None) -> None:
        if port in self._listeners:
            raise TcpError(f"port {port} already listening")
        self._listeners[port] = 0
        if backlog is not None:
            self.backlog = backlog

    def _charge_packet(self, connection_setup: bool) -> None:
        if connection_setup:
            self.clock.advance(self.path.connection_packet_ns())
        else:
            self.clock.advance(self.path.packet_ns())

    def on_syn(self, port: int, peer: str, peer_port: int) -> Optional[Connection]:
        """An inbound SYN: reply SYN-ACK or drop/RST.

        Returns the half-open connection, or None if the SYN was shed
        (backlog full -- the OSv failure mode under ab).
        """
        self._charge_packet(connection_setup=True)
        if port not in self._listeners:
            # RST costs an outbound packet.
            self._charge_packet(connection_setup=False)
            raise TcpError(f"connection refused: port {port} not listening")
        if self._listeners[port] >= self.backlog:
            self.syns_dropped += 1
            return None
        key: FlowKey = (port, peer, peer_port)
        connection = Connection(key=key, state=TcpState.SYN_RECEIVED)
        self._connections[key] = connection
        self._listeners[port] += 1
        if self.conntrack is not None:
            self.conntrack.track_new(key)
        self._charge_packet(connection_setup=True)  # SYN-ACK out
        return connection

    def on_ack(self, connection: Connection) -> Connection:
        """The handshake's final ACK: connection becomes ESTABLISHED."""
        if connection.state is not TcpState.SYN_RECEIVED:
            raise TcpError(f"unexpected ACK in {connection.state.value}")
        self._charge_packet(connection_setup=True)
        connection.state = TcpState.ESTABLISHED
        self._listeners[connection.key[0]] -= 1
        if self.conntrack is not None:
            self.conntrack.update(connection.key, TcpState.ESTABLISHED)
        return connection

    def accept_connection(self, port: int, peer: str,
                          peer_port: int) -> Optional[Connection]:
        """Convenience: full three-way handshake."""
        connection = self.on_syn(port, peer, peer_port)
        if connection is None:
            return None
        return self.on_ack(connection)

    # -- data transfer ---------------------------------------------------------

    def receive_segment(self, connection: Connection,
                        payload_bytes: int = 0) -> None:
        self._require_established(connection)
        if self.conntrack is not None:
            self.conntrack.lookup(connection.key)
        self.clock.advance(self.path.packet_ns(payload_bytes))
        connection.segments_in += 1

    def send_segment(self, connection: Connection,
                     payload_bytes: int = 0) -> None:
        self._require_established(connection)
        if self.conntrack is not None:
            self.conntrack.lookup(connection.key)
        self.clock.advance(self.path.packet_ns(payload_bytes))
        connection.segments_out += 1

    # -- teardown -----------------------------------------------------------------

    def close(self, connection: Connection) -> None:
        """Active close: FIN -> (peer FIN-ACK) -> TIME_WAIT.

        The 2MSL timer is armed on the stack's virtual clock: once
        simulated time moves :data:`TIME_WAIT_2MSL_NS` past the close --
        through workload charges, a guest's boot, or an explicit
        ``clock.advance`` -- the connection expires by itself, with no
        ``reap_time_wait()`` call.
        """
        self._require_established(connection)
        connection.state = TcpState.FIN_WAIT_1
        self._charge_packet(connection_setup=False)  # FIN out
        self._charge_packet(connection_setup=False)  # FIN-ACK in
        connection.state = TcpState.TIME_WAIT
        connection.time_wait_timer = self.clock.call_after(
            TIME_WAIT_2MSL_NS, lambda: self._expire_time_wait(connection)
        )
        if self.conntrack is not None:
            self.conntrack.update(connection.key, TcpState.TIME_WAIT)

    def on_fin(self, connection: Connection) -> None:
        """Passive close: peer's FIN -> CLOSE_WAIT -> LAST_ACK -> CLOSED."""
        self._require_established(connection)
        connection.state = TcpState.CLOSE_WAIT
        self._charge_packet(connection_setup=False)
        connection.state = TcpState.LAST_ACK
        self._charge_packet(connection_setup=False)
        connection.state = TcpState.CLOSED
        self._reap(connection)

    def reap_time_wait(self) -> int:
        """Expire all TIME_WAIT connections immediately.

        The 2MSL timer normally fires off the virtual clock (see
        :meth:`close`); this is the administrative fast-path -- e.g. a
        stack teardown -- and the pre-virtual-time compatibility surface.
        Cancels the pending deadlines it preempts.
        """
        reaped = 0
        for connection in list(self._connections.values()):
            if connection.state is TcpState.TIME_WAIT:
                self._expire_time_wait(connection)
                reaped += 1
        return reaped

    def _expire_time_wait(self, connection: Connection) -> None:
        """The 2MSL deadline: TIME_WAIT -> CLOSED, entry reaped."""
        if connection.state is not TcpState.TIME_WAIT:
            return
        if connection.time_wait_timer is not None:
            connection.time_wait_timer.cancel()
            connection.time_wait_timer = None
        connection.state = TcpState.CLOSED
        self.time_wait_expired += 1
        self._reap(connection)

    # -- queries ---------------------------------------------------------------------

    def connection_count(self, state: Optional[TcpState] = None) -> int:
        if state is None:
            return len(self._connections)
        return sum(
            1 for c in self._connections.values() if c.state is state
        )

    # -- internals ---------------------------------------------------------------------

    def _require_established(self, connection: Connection) -> None:
        if connection.state is not TcpState.ESTABLISHED:
            raise TcpError(
                f"operation requires ESTABLISHED, got "
                f"{connection.state.value}"
            )

    def _reap(self, connection: Connection) -> None:
        self._connections.pop(connection.key, None)
        if self.conntrack is not None:
            self.conntrack.drop(connection.key)


def stack_for_config(enabled_options, backlog: int = 128,
                     conntrack_entries: int = 1024,
                     clock: Optional[VirtualClock] = None) -> TcpStack:
    """Build a TcpStack matching a kernel configuration.

    *clock* binds the stack to an existing timeline (a guest's clock);
    omitted, the stack keeps a private clock, as standalone tests do.
    """
    path = NetworkPath.for_options(enabled_options)
    conntrack = None
    if "NF_CONNTRACK" in set(enabled_options):
        conntrack = ConntrackTable(max_entries=conntrack_entries)
    return TcpStack(
        path=path, conntrack=conntrack, backlog=backlog,
        clock=clock if clock is not None else VirtualClock(),
    )
