"""The deterministic span tracer.

A :class:`Tracer` records a tree of named spans -- one
:class:`SpanRecord` per ``with tracer.span("name")`` block -- with two
clocks per span:

- a **host clock** (:class:`HostClock`, ``time.perf_counter``): real wall
  time, for profiling where a run actually spends its time;
- a **simulated clock** (:class:`SimClock`): a monotonic counter the
  simulators advance explicitly (e.g. the boot simulator advances it by
  each phase's modelled duration), so traces also carry the
  *deterministic* time the models computed.

Spans nest per thread (the experiment harness runs spans concurrently on
a thread pool; each pool thread keeps its own stack), and every record
carries a global sequence index plus its parent's index, so the full tree
is reconstructible from the flat event list -- which is exactly how the
Chrome-trace exporter (:mod:`repro.observe.export`) ships it.

Determinism: span *structure* (names, nesting, per-thread order,
attributes) is a pure function of the traced code path.  ``span_tree()``
projects records onto that structure, so two identical runs compare equal
even though host timestamps differ; with a :class:`TickClock` the full
records (timestamps included) are bit-identical.

The process-wide instance is :data:`repro.observe.TRACER`; library code
uses the module-level :func:`span` / :func:`traced` conveniences so call
sites stay one line.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
)

from contextlib import contextmanager

if TYPE_CHECKING:  # pragma: no cover -- typing only
    from repro.simcore.clock import VirtualClock


class HostClock:
    """Monotonic host time in microseconds (``time.perf_counter``)."""

    def now_us(self) -> float:
        return time.perf_counter() * 1e6


class TickClock:
    """A deterministic clock: advances a fixed step per reading.

    Used by tests and the chaos harness (and available to any caller
    wanting bit-identical traces): with a ``TickClock`` two identical
    runs produce identical timestamps, not just identical span trees.
    Thread-safe so it can stand in for the host clock under a concurrent
    harness (readings are then interleaving-dependent but never torn).
    """

    def __init__(self, step_us: float = 1.0) -> None:
        self.step_us = step_us
        self._lock = threading.Lock()
        self._now = 0.0

    def now_us(self) -> float:
        with self._lock:
            self._now += self.step_us
            return self._now


class SimClock:
    """The simulated-time axis: a millisecond view over a virtual clock.

    Historically this was its own ms counter; it is now a unit-adapting
    view over a :class:`repro.simcore.clock.VirtualClock` (the single
    time authority), so spans recorded while a guest is active carry that
    guest's timeline.  A ``SimClock()`` with no argument owns a private
    clock -- ad-hoc ``Tracer()`` instances stay isolated.

    Simulators no longer call :meth:`advance` directly (the
    ``tools/lint_time.py`` gate forbids it outside simcore/observe);
    they advance :func:`repro.simcore.context.current_clock`.
    """

    def __init__(self, clock: Optional["VirtualClock"] = None) -> None:
        if clock is None:
            from repro.simcore.clock import VirtualClock

            clock = VirtualClock()
        self._clock = clock

    def _target(self) -> "VirtualClock":
        return self._clock

    @property
    def now_ms(self) -> float:
        return self._target().now_ms

    def advance(self, ms: float) -> float:
        """Advance simulated time by *ms* (>= 0), returning the new now."""
        if ms < 0:
            raise ValueError(f"simulated time cannot go backwards ({ms} ms)")
        return self._target().advance_ms(ms)

    def reset(self) -> None:
        self._target().reset()


class ActiveSimClock(SimClock):
    """The process tracer's sim axis: a view over the *active* clock.

    Delegates every reading to
    :func:`repro.simcore.context.current_clock`: outside a guest scope
    that is the process default clock (the old global counter); inside
    ``Guest.boot()``/``serve()`` it is that guest's own clock, so traces
    line up with per-guest virtual time.
    """

    def __init__(self) -> None:  # noqa: super().__init__ -- owns no clock
        pass

    def _target(self) -> "VirtualClock":
        from repro.simcore.context import current_clock

        return current_clock()


@dataclass
class SpanRecord:
    """One finished span."""

    name: str
    category: str
    index: int                      # global sequence number (creation order)
    parent_index: Optional[int]     # enclosing span on the same thread
    thread_id: int
    depth: int                      # nesting depth on its thread (0 = root)
    start_us: float = 0.0
    duration_us: float = 0.0
    sim_start_ms: float = 0.0
    sim_duration_ms: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)

    def set_attr(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute while the span is live."""
        self.attrs[key] = value


class Tracer:
    """Records nested spans (see module docstring)."""

    def __init__(self, clock: Optional[HostClock] = None,
                 sim: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else HostClock()
        self.sim = sim if sim is not None else SimClock()
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._stacks = threading.local()

    # -- recording ---------------------------------------------------------

    def _stack(self) -> List[SpanRecord]:
        stack = getattr(self._stacks, "value", None)
        if stack is None:
            stack = []
            self._stacks.value = stack
        return stack

    @contextmanager
    def span(self, name: str, category: str = "repro",
             **attrs: Any) -> Iterator[SpanRecord]:
        """Record a span around the ``with`` body.

        Keyword arguments become span attributes; the yielded record
        accepts more via :meth:`SpanRecord.set_attr` while live.
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            record = SpanRecord(
                name=name,
                category=category,
                index=len(self._records),
                parent_index=parent.index if parent is not None else None,
                thread_id=threading.get_ident(),
                depth=len(stack),
                attrs=dict(attrs),
            )
            self._records.append(record)
        record.start_us = self.clock.now_us()
        record.sim_start_ms = self.sim.now_ms
        stack.append(record)
        try:
            yield record
        finally:
            stack.pop()
            record.duration_us = max(
                0.0, self.clock.now_us() - record.start_us
            )
            record.sim_duration_ms = max(
                0.0, self.sim.now_ms - record.sim_start_ms
            )

    def traced(self, name: Optional[str] = None,
               category: str = "repro") -> Callable:
        """Decorator form of :meth:`span` (default name: the function's)."""

        def decorate(fn: Callable) -> Callable:
            span_name = name if name is not None else fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(span_name, category=category):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    # -- reading -----------------------------------------------------------

    def mark(self) -> int:
        """A watermark: pass to :meth:`records_since` to scope one run."""
        with self._lock:
            return len(self._records)

    def records(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._records)

    def records_since(self, mark: int) -> List[SpanRecord]:
        """Spans recorded (started) at or after *mark*."""
        with self._lock:
            return list(self._records[mark:])

    def span_tree(self, records: Optional[List[SpanRecord]] = None
                  ) -> List[Dict[str, Any]]:
        """The deterministic structural projection of recorded spans.

        Returns a forest of ``{"name", "category", "attrs", "children"}``
        nodes (no timestamps, no thread ids): identical code paths yield
        identical trees, which is what the determinism tests compare.
        """
        if records is None:
            records = self.records()
        nodes = {
            record.index: {
                "name": record.name,
                "category": record.category,
                "attrs": dict(record.attrs),
                "children": [],
            }
            for record in records
        }
        roots: List[Dict[str, Any]] = []
        for record in records:          # creation order => stable ordering
            node = nodes[record.index]
            parent = (
                nodes.get(record.parent_index)
                if record.parent_index is not None else None
            )
            (parent["children"] if parent is not None else roots).append(node)
        return roots

    def reset(self) -> None:
        """Drop all records and rewind the simulated clock (tests)."""
        with self._lock:
            self._records.clear()
        self.sim.reset()
