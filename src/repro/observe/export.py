"""Exporters and report renderers for traces and metrics.

Two per-run artifacts land next to the run manifest:

- ``trace.json`` -- Chrome trace-event format (a ``traceEvents`` array of
  complete ``"ph": "X"`` events), loadable as-is in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Span structure
  (``index``/``parent`` and the simulated clock) rides in each event's
  ``args``, so the exact span tree is reconstructible from the file.
- ``metrics.json`` -- the :class:`~repro.observe.metrics.MetricsRegistry`
  snapshot (counters, gauges, histograms).

The same module renders the ``repro-lupine trace`` report: a top-N
self-time table (time in a span minus time in its children, aggregated by
span name) and a per-experiment phase breakdown, both computed from the
``trace.json`` on disk so the report works on any archived run.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Sequence

from repro.core.atomicio import atomic_write_text
from repro.observe.metrics import MetricsRegistry
from repro.observe.tracer import SpanRecord

TRACE_NAME = "trace.json"
METRICS_NAME = "metrics.json"


# -- writing ----------------------------------------------------------------

def chrome_trace(records: Sequence[SpanRecord],
                 process_name: str = "repro-harness") -> Dict[str, Any]:
    """*records* as a Chrome trace-event document (see module docstring)."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    # Compact thread ids: Perfetto tracks sort better as small integers,
    # and compaction removes the host's arbitrary thread handles.
    tids: Dict[int, int] = {}
    for record in records:
        tids.setdefault(record.thread_id, len(tids))
    for record in records:
        args = {
            "index": record.index,
            "parent": record.parent_index,
            "sim_start_ms": record.sim_start_ms,
            "sim_duration_ms": record.sim_duration_ms,
        }
        args.update(record.attrs)
        events.append(
            {
                "name": record.name,
                "cat": record.category,
                "ph": "X",
                "ts": record.start_us,
                "dur": record.duration_us,
                "pid": 1,
                "tid": tids[record.thread_id],
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_run_artifacts(
    output_dir: pathlib.Path,
    records: Sequence[SpanRecord],
    registry: MetricsRegistry,
) -> Dict[str, pathlib.Path]:
    """Write ``trace.json`` + ``metrics.json`` under *output_dir*."""
    output_dir = pathlib.Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    trace_path = output_dir / TRACE_NAME
    atomic_write_text(
        trace_path,
        json.dumps(chrome_trace(records), indent=2, sort_keys=True) + "\n",
    )
    metrics_path = output_dir / METRICS_NAME
    atomic_write_text(
        metrics_path,
        json.dumps(registry.to_dict(), indent=2, sort_keys=True) + "\n",
    )
    return {"trace": trace_path, "metrics": metrics_path}


# -- reading ----------------------------------------------------------------

def load_trace_events(path: pathlib.Path) -> List[Dict[str, Any]]:
    """The span (``"ph": "X"``) events of a ``trace.json`` file."""
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    events = payload.get("traceEvents", [])
    return [event for event in events if event.get("ph") == "X"]


def load_metrics(path: pathlib.Path) -> Dict[str, Any]:
    return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))


# -- analysis ---------------------------------------------------------------

def self_time_by_name(events: Sequence[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Aggregate self time per span name.

    Self time = a span's duration minus its direct children's durations
    (floored at zero against clock skew).  Returns, per name:
    ``{"count", "total_ms", "self_ms"}``.
    """
    child_time_us: Dict[int, float] = {}
    for event in events:
        parent = event["args"].get("parent")
        if parent is not None:
            child_time_us[parent] = (
                child_time_us.get(parent, 0.0) + float(event.get("dur", 0.0))
            )
    aggregated: Dict[str, Dict[str, float]] = {}
    for event in events:
        index = event["args"].get("index")
        duration_us = float(event.get("dur", 0.0))
        self_us = max(0.0, duration_us - child_time_us.get(index, 0.0))
        row = aggregated.setdefault(
            event["name"], {"count": 0, "total_ms": 0.0, "self_ms": 0.0}
        )
        row["count"] += 1
        row["total_ms"] += duration_us / 1000.0
        row["self_ms"] += self_us / 1000.0
    return aggregated


def top_self_time(events: Sequence[Dict[str, Any]],
                  top_n: int = 15) -> List[Dict[str, Any]]:
    """The *top_n* span names by aggregate self time, descending.

    Ties break on name so the report is deterministic.
    """
    aggregated = self_time_by_name(events)
    ranked = sorted(
        aggregated.items(), key=lambda item: (-item[1]["self_ms"], item[0])
    )
    return [
        {"name": name, **row} for name, row in ranked[:max(0, top_n)]
    ]


def experiment_phase_rows(
    events: Sequence[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Per-experiment phase breakdown rows from harness spans.

    An *experiment span* is any event carrying an ``experiment`` arg at
    depth (emitted by the runner as ``experiment:<name>``); its direct
    children are the phases (fingerprint, cache-lookup, execute, ...).
    Rows are ordered by experiment span index, then phase start.
    """
    experiments = {
        event["args"]["index"]: event
        for event in events
        if "experiment" in event["args"]
    }
    rows: List[Dict[str, Any]] = []
    for index in sorted(experiments):
        parent_event = experiments[index]
        phases = sorted(
            (e for e in events if e["args"].get("parent") == index),
            key=lambda e: e["args"]["index"],
        )
        for phase in phases:
            rows.append(
                {
                    "experiment": parent_event["args"]["experiment"],
                    "phase": phase["name"],
                    "wall_ms": float(phase.get("dur", 0.0)) / 1000.0,
                    "sim_ms": float(
                        phase["args"].get("sim_duration_ms", 0.0)
                    ),
                }
            )
    return rows


def render_trace_report(
    trace_path: pathlib.Path,
    metrics_path: Optional[pathlib.Path] = None,
    top_n: int = 15,
) -> str:
    """The full ``repro-lupine trace`` report as text."""
    from repro.metrics.reporting import Table, render_table

    events = load_trace_events(trace_path)
    sections: List[str] = []

    top = Table(
        title=f"top {top_n} spans by self time",
        headers=["span", "count", "self ms", "total ms"],
    )
    for row in top_self_time(events, top_n):
        top.add_row(row["name"], row["count"],
                    round(row["self_ms"], 3), round(row["total_ms"], 3))
    sections.append(render_table(top))

    phases = Table(
        title="per-experiment phase breakdown",
        headers=["experiment", "phase", "wall ms", "sim ms"],
    )
    for row in experiment_phase_rows(events):
        phases.add_row(row["experiment"], row["phase"],
                       round(row["wall_ms"], 3), round(row["sim_ms"], 3))
    sections.append(render_table(phases))

    if metrics_path is not None and pathlib.Path(metrics_path).is_file():
        metrics = load_metrics(metrics_path)
        counters = Table(title="counters", headers=["name", "value"])
        for name, value in sorted(metrics.get("counters", {}).items()):
            counters.add_row(name, value)
        sections.append(render_table(counters))
    return "\n\n".join(sections)
