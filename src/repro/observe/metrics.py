"""The metrics registry: counters, gauges, fixed-bucket histograms.

Instruments are created on first use (``METRICS.counter("x").inc()``) and
live for the process, like the kernel build cache they instrument.  All
three kinds are thread-safe -- the harness publishes into them from a
thread pool -- and all serialize to plain JSON (:meth:`MetricsRegistry
.to_dict`), sorted by name, so ``metrics.json`` is byte-stable for a
given set of observations.

Histograms use **fixed, inclusive upper-bound buckets** declared at
creation: an observation lands in the first bucket whose bound is
``>= value`` (a value exactly on a boundary belongs to that boundary's
bucket), and values above the last bound land in the implicit overflow
bucket, serialized with bound ``null`` (+inf).  Fixed boundaries make
histograms from different runs directly comparable, which is what the
regression checker (:mod:`repro.observe.regress`) needs.

Re-declaring an instrument with a conflicting kind (or a histogram with
different buckets) raises -- silent redefinition would corrupt
cross-run comparisons.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default histogram boundaries for millisecond durations.
DEFAULT_MS_BUCKETS: Tuple[float, ...] = (
    1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0,
)

#: Default histogram boundaries for kilobyte sizes.
DEFAULT_KB_BUCKETS: Tuple[float, ...] = (
    64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
)


class Counter:
    """A monotonically increasing integer."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value (last write wins)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram (inclusive upper bounds; see module doc)."""

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        if not buckets:
            raise ValueError(f"histogram {name}: needs at least one bucket")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name}: bucket bounds must be strictly increasing"
            )
        self.name = name
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)   # +1: overflow (+inf)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.bounds)                 # overflow by default
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def bucket_counts(self) -> List[Tuple[Optional[float], int]]:
        """``(upper_bound, count)`` pairs; the final bound is None (+inf)."""
        with self._lock:
            bounds: List[Optional[float]] = list(self.bounds)
            bounds.append(None)
            return list(zip(bounds, list(self._counts)))

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "buckets": [
                    [bound, count]
                    for bound, count in zip(
                        list(self.bounds) + [None], self._counts
                    )
                ],
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }


class MetricsRegistry:
    """Name -> instrument registry (create-on-first-use)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, own: Dict[str, Any]) -> None:
        for kind, table in (("counter", self._counters),
                            ("gauge", self._gauges),
                            ("histogram", self._histograms)):
            if table is not own and name in table:
                raise ValueError(f"metric {name!r} already exists as a {kind}")

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._check_free(name, self._counters)
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._check_free(name, self._gauges)
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_MS_BUCKETS) -> Histogram:
        with self._lock:
            existing = self._histograms.get(name)
            if existing is not None:
                if existing.bounds != tuple(float(b) for b in buckets):
                    raise ValueError(
                        f"histogram {name!r} re-declared with different "
                        "buckets"
                    )
                return existing
            self._check_free(name, self._histograms)
            self._histograms[name] = Histogram(name, buckets)
            return self._histograms[name]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot: the ``metrics.json`` payload."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "gauges": {
                name: gauges[name].value for name in sorted(gauges)
            },
            "histograms": {
                name: histograms[name].to_dict()
                for name in sorted(histograms)
            },
        }

    def reset(self) -> None:
        """Drop every instrument (test isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
