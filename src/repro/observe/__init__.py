"""Structured observability: span tracing, metrics, exporters, perf gate.

The paper's whole evaluation is measurement; this package is how the
reproduction measures *itself*.  Four pieces:

- :mod:`repro.observe.tracer` -- a deterministic span tracer (context
  manager / decorator, nested per-thread spans, host + simulated clocks);
- :mod:`repro.observe.metrics` -- counters, gauges and fixed-bucket
  histograms the caches, resolver and runner publish into;
- :mod:`repro.observe.export` -- per-run ``trace.json`` (Chrome
  trace-event format, loadable in Perfetto) and ``metrics.json``, plus
  the ``repro-lupine trace`` report renderers;
- :mod:`repro.observe.regress` -- the baseline/regression gate CI runs.

Library code publishes through the process-wide :data:`TRACER` and
:data:`METRICS` via the one-line conveniences::

    from repro.observe import METRICS, span

    with span("kbuild.build", category="kbuild", options=n):
        ...
    METRICS.counter("buildcache.misses").inc()

Span-name conventions and the full API are documented in
``docs/OBSERVABILITY.md``.
"""

from typing import Any, Callable, Iterator, Optional

from contextlib import contextmanager

from repro.observe.metrics import (
    DEFAULT_KB_BUCKETS,
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observe.tracer import (
    ActiveSimClock,
    HostClock,
    SimClock,
    SpanRecord,
    TickClock,
    Tracer,
)

#: The process-wide tracer every instrumented layer records into.  Its
#: simulated-time axis is a view over the *active* virtual clock
#: (:func:`repro.simcore.context.current_clock`): the process default
#: clock outside guest scopes, a guest's own clock inside its lifecycle.
TRACER = Tracer(sim=ActiveSimClock())

#: The process-wide metrics registry (counters/gauges/histograms).
METRICS = MetricsRegistry()


@contextmanager
def span(name: str, category: str = "repro",
         **attrs: Any) -> Iterator[SpanRecord]:
    """``TRACER.span(...)`` -- the one-line call-site convenience."""
    with TRACER.span(name, category=category, **attrs) as record:
        yield record


def traced(name: Optional[str] = None, category: str = "repro") -> Callable:
    """``TRACER.traced(...)`` -- decorator convenience."""
    return TRACER.traced(name, category=category)


def reset_observability() -> None:
    """Reset the global tracer and metrics registry (test isolation)."""
    TRACER.reset()
    METRICS.reset()


__all__ = [
    "ActiveSimClock",
    "Counter",
    "DEFAULT_KB_BUCKETS",
    "DEFAULT_MS_BUCKETS",
    "Gauge",
    "Histogram",
    "HostClock",
    "METRICS",
    "MetricsRegistry",
    "SimClock",
    "SpanRecord",
    "TRACER",
    "TickClock",
    "Tracer",
    "reset_observability",
    "span",
    "traced",
]
