"""The perf regression gate: diff two runs' metrics + manifests.

``python -m repro.observe.regress BASELINE CURRENT`` compares two harness
runs and exits nonzero when the current run regressed past a threshold.
``BASELINE``/``CURRENT`` are run output directories (containing
``metrics.json`` and optionally ``run_manifest.json``) or paths to the
``metrics.json`` files themselves.

What gates (threshold ``t``, default 0.10; all comparisons are strict
``>``, so a run **exactly at** the threshold passes):

- **cost counters** (``*.misses``, ``*.performed``,
  ``kconfig.resolutions``, and the resolver work counters
  ``kconfig.resolve.visited_options*`` / ``kconfig.expr.evals*``): fail
  when current > baseline * (1 + t).
  These are deterministic, so they gate across machines -- a jump means
  a cache stopped hitting or a hot path started re-doing work.
- **digests** (the metrics document's ``digests`` section: manifest
  digest identities published by the benchmarks): fail on **any**
  inequality.  A digest is not a quantity -- a one-bit drift means the
  simulated behaviour changed, so the threshold never applies.
- **timings** (manifest ``total_wall_ms`` and per-experiment
  ``wall_ms``): fail when current > baseline * (1 + t) *and* the
  absolute slowdown exceeds ``--min-ms`` (default 5 ms, absorbing
  scheduler noise on sub-millisecond experiments).  Wall time is
  machine-dependent: gate timings only between runs on comparable
  hardware, or pass ``--no-timings`` (as CI does against the checked-in
  baseline).

Counters that *shrink* and non-cost counters are reported informationally
but never fail the gate.  Metrics present on only one side are skipped:
the baseline defines the contract, so adding instrumentation never breaks
an old baseline.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.observe.export import METRICS_NAME

MANIFEST_NAME = "run_manifest.json"

#: Counter name patterns whose *growth* is a cost regression.
COST_COUNTER_SUFFIXES: Tuple[str, ...] = (".misses", ".performed")
COST_COUNTER_NAMES: Tuple[str, ...] = ()
#: Prefix-matched cost counters: the resolver work counters, both the
#: bare process-wide names and the per-scenario variants bench-resolve
#: emits (e.g. ``kconfig.resolve.visited_options.warm_delta``).
COST_COUNTER_PREFIXES: Tuple[str, ...] = (
    "kconfig.resolutions",
    "kconfig.resolve.visited_options",
    "kconfig.resolve.cache_misses",
    "kconfig.expr.evals",
)


def is_cost_counter(name: str) -> bool:
    return (
        name.endswith(COST_COUNTER_SUFFIXES)
        or name in COST_COUNTER_NAMES
        or name.startswith(COST_COUNTER_PREFIXES)
    )


@dataclass
class Delta:
    """One compared quantity (or identity, for digests)."""

    kind: str          # "counter" | "timing" | "digest"
    name: str
    baseline: Any      # float for counters/timings, str for digests
    current: Any
    regression: bool

    @property
    def ratio(self) -> float:
        if self.kind == "digest":
            return 1.0 if self.baseline == self.current else float("inf")
        if self.baseline == 0:
            return float("inf") if self.current > 0 else 1.0
        return self.current / self.baseline


@dataclass
class RegressionReport:
    """Everything one comparison produced."""

    threshold: float
    deltas: List[Delta] = field(default_factory=list)

    @property
    def regressions(self) -> List[Delta]:
        return [delta for delta in self.deltas if delta.regression]

    @property
    def passed(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"regression gate: threshold {self.threshold:.0%} "
            f"({len(self.deltas)} compared, "
            f"{len(self.regressions)} regressed)"
        ]
        for delta in self.deltas:
            flag = "REGRESSED" if delta.regression else "ok"
            if delta.kind == "digest":
                outcome = ("match" if delta.baseline == delta.current
                           else f"{delta.baseline} -> {delta.current}")
                lines.append(
                    f"  [{flag:>9}] {delta.kind:<7} {delta.name}: {outcome}"
                )
                continue
            lines.append(
                f"  [{flag:>9}] {delta.kind:<7} {delta.name}: "
                f"{delta.baseline:g} -> {delta.current:g} "
                f"(x{delta.ratio:.3f})"
            )
        return "\n".join(lines)


def _exceeds(baseline: float, current: float, threshold: float) -> bool:
    """Strict comparison: exactly-at-threshold is NOT a regression."""
    return current > baseline * (1.0 + threshold)


def compare_runs(
    baseline_metrics: Dict[str, Any],
    current_metrics: Dict[str, Any],
    baseline_manifest: Optional[Dict[str, Any]] = None,
    current_manifest: Optional[Dict[str, Any]] = None,
    threshold: float = 0.10,
    min_ms: float = 5.0,
    timings: bool = True,
) -> RegressionReport:
    """Compare two runs (see module docstring for the gate semantics)."""
    report = RegressionReport(threshold=threshold)

    baseline_counters = baseline_metrics.get("counters", {})
    current_counters = current_metrics.get("counters", {})
    for name in sorted(baseline_counters):
        if name not in current_counters:
            continue
        base, cur = baseline_counters[name], current_counters[name]
        regressed = is_cost_counter(name) and _exceeds(base, cur, threshold)
        report.deltas.append(
            Delta("counter", name, float(base), float(cur), regressed)
        )

    # Digest identities: exact equality, no threshold.  Skipped when only
    # one side has them, like counters (the baseline is the contract).
    baseline_digests = baseline_metrics.get("digests", {})
    current_digests = current_metrics.get("digests", {})
    for name in sorted(baseline_digests):
        if name not in current_digests:
            continue
        base_digest = str(baseline_digests[name])
        cur_digest = str(current_digests[name])
        report.deltas.append(
            Delta("digest", name, base_digest, cur_digest,
                  base_digest != cur_digest)
        )

    if timings and baseline_manifest and current_manifest:
        base_total = float(baseline_manifest.get("total_wall_ms", 0.0))
        cur_total = float(current_manifest.get("total_wall_ms", 0.0))
        report.deltas.append(
            Delta(
                "timing", "total_wall_ms", base_total, cur_total,
                _exceeds(base_total, cur_total, threshold)
                and (cur_total - base_total) > min_ms,
            )
        )
        base_by_name = {
            entry["name"]: float(entry.get("wall_ms", 0.0))
            for entry in baseline_manifest.get("experiments", [])
        }
        for entry in current_manifest.get("experiments", []):
            name = entry["name"]
            if name not in base_by_name:
                continue
            base, cur = base_by_name[name], float(entry.get("wall_ms", 0.0))
            report.deltas.append(
                Delta(
                    "timing", f"experiment:{name}", base, cur,
                    _exceeds(base, cur, threshold) and (cur - base) > min_ms,
                )
            )
    return report


def _load_run(path: pathlib.Path) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]]]:
    """``(metrics, manifest-or-None)`` for a run directory or metrics file."""
    path = pathlib.Path(path)
    if path.is_dir():
        metrics_path = path / METRICS_NAME
        manifest_path = path / MANIFEST_NAME
    else:
        metrics_path = path
        manifest_path = path.parent / MANIFEST_NAME
    metrics = json.loads(metrics_path.read_text(encoding="utf-8"))
    manifest = None
    if manifest_path.is_file():
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    return metrics, manifest


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.observe.regress",
        description="diff two harness runs; exit 1 past the threshold",
    )
    parser.add_argument("baseline",
                        help="baseline run dir or metrics.json path")
    parser.add_argument("current",
                        help="current run dir or metrics.json path")
    parser.add_argument("--threshold", type=float, default=0.10,
                        metavar="FRACTION",
                        help="allowed relative growth (default 0.10 = 10%%)")
    parser.add_argument("--min-ms", type=float, default=5.0, metavar="MS",
                        help="ignore absolute timing deltas below MS")
    parser.add_argument("--no-timings", action="store_true",
                        help="gate only deterministic counters "
                             "(cross-machine comparisons)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        baseline_metrics, baseline_manifest = _load_run(args.baseline)
        current_metrics, current_manifest = _load_run(args.current)
    except (OSError, ValueError) as error:
        print(f"regress: cannot load runs: {error}", file=sys.stderr)
        return 2
    report = compare_runs(
        baseline_metrics,
        current_metrics,
        baseline_manifest=baseline_manifest,
        current_manifest=current_manifest,
        threshold=args.threshold,
        min_ms=args.min_ms,
        timings=not args.no_timings,
    )
    print(report.render())
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
