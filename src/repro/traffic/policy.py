"""Warm-pool / keepalive policies for the traffic-driven fleet.

The operator knob the serving layer exists to study: how long to keep a
booted guest around waiting for the next request.  Scale-to-zero makes
cold boots (the paper's Fig 7 cost) appear in the latency tail on every
traffic trough; a fixed pre-warmed pool buys the tail back with
guest-seconds.  Policies are frozen declarative objects evaluated as
virtual-time events by the router's worker programs -- an idle timeout
is a ``yield deadline`` on the worker's own clock, never wall time.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class WarmPoolPolicy:
    """Keepalive/capacity policy for one serving run.

    - ``idle_timeout_s``: scale-to-zero timer -- an idle warm guest
      retires after this long without a request (``None``: keep alive
      forever);
    - ``min_warm``: per-app floor of live guests the idle timeout may
      never retire below;
    - ``max_per_app`` / ``max_total``: capacity ceilings -- arrivals
      beyond them queue (FIFO per app) instead of cold-booting;
    - ``pre_warm``: guests per app booted at virtual time zero, before
      any traffic.
    """

    name: str
    idle_timeout_s: Optional[float] = 1.0
    min_warm: int = 0
    max_per_app: int = 8
    max_total: int = 1000
    pre_warm: int = 0

    def __post_init__(self) -> None:
        if self.idle_timeout_s is not None and self.idle_timeout_s <= 0.0:
            raise ValueError("idle_timeout_s must be positive (or None)")
        if self.min_warm < 0 or self.pre_warm < 0:
            raise ValueError("pool floors cannot be negative")
        if self.max_per_app < 1 or self.max_total < 1:
            raise ValueError("pool ceilings must be at least 1")

    @property
    def idle_timeout_ns(self) -> Optional[float]:
        if self.idle_timeout_s is None:
            return None
        return self.idle_timeout_s * 1e9

    def with_overrides(self, **overrides: object) -> "WarmPoolPolicy":
        """A copy with selected fields replaced (CLI knobs)."""
        return dataclasses.replace(self, **overrides)

    def to_manifest(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "idle_timeout_s": self.idle_timeout_s,
            "min_warm": self.min_warm,
            "max_per_app": self.max_per_app,
            "max_total": self.max_total,
            "pre_warm": self.pre_warm,
        }


#: Serverless-style: nothing pre-warmed, aggressive idle timeout -- every
#: traffic trough retires the fleet, every ramp cold-boots it again.
SCALE_TO_ZERO = WarmPoolPolicy(
    name="scale-to-zero", idle_timeout_s=0.25, min_warm=0, pre_warm=0,
    max_per_app=16, max_total=1000,
)

#: Provisioned: two guests per app booted up front and pinned alive; the
#: remaining capacity still scales with demand.
FIXED_POOL = WarmPoolPolicy(
    name="fixed-pool", idle_timeout_s=None, min_warm=2, pre_warm=2,
    max_per_app=16, max_total=1000,
)

_NAMED: Dict[str, WarmPoolPolicy] = {
    SCALE_TO_ZERO.name: SCALE_TO_ZERO,
    FIXED_POOL.name: FIXED_POOL,
}


def named_policy(name: str) -> WarmPoolPolicy:
    """Look up a preset policy by name (CLI surface)."""
    try:
        return _NAMED[name]
    except KeyError:
        known = ", ".join(sorted(_NAMED))
        raise ValueError(f"unknown warm-pool policy {name!r}; known: {known}")


def policy_names() -> list:
    return sorted(_NAMED)
