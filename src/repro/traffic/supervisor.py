"""The self-healing control plane: watchdogs, restarts, quarantine.

The paper's graceful-degradation story is that a Lupine guest is just a
Linux process -- the host can kill, restart, and respawn it cheaply.
This module is that story at fleet scale: a :class:`Supervisor` runs as
one more :class:`~repro.simcore.eventcore.EventCore` program (its own
clock, its own deadlines on the one global heap) and reacts to guest
failures the router observes:

- **Watchdogs.**  A hung guest (the ``guest.hang`` fault site) parks
  with its request in flight; the supervisor arms a virtual-time
  watchdog deadline and, when it fires, kicks the guest awake into its
  kill path.  Nothing polls -- the watchdog is an event like any other.
- **Restarts with exponential backoff.**  Every guest failure schedules
  a restart probe at ``restart_backoff_s * backoff_multiplier**(n-1)``
  (capped at ``max_backoff_s``, ``n`` = the app's consecutive-failure
  streak).  When the probe fires, the router cold-boots a replacement
  through the full ``GuestSpec -> build -> boot`` path -- but only if
  the app still has queued work, capacity, and no quarantine.
- **Crash-loop quarantine.**  ``crash_loop_threshold`` failures inside
  ``crash_loop_window_s`` -- or that many *consecutive* failures at any
  spacing, so a persistent failure whose backoff outgrows the window
  still converges -- quarantine the app for ``quarantine_s``: its
  backlog fails, its pool tears down, and new arrivals shed until the
  lift event fires.
- **Circuit breakers.**  Per-app :class:`CircuitBreaker` admission
  (closed -> open on windowed error rate -> half-open single probe on a
  cooldown timer -> closed) so a failing app degrades to fast shedding
  instead of queue collapse.

Everything is driven by virtual-time events and deterministic state, so
a faulted serving run is exactly as replayable as a fault-free one --
the ``chaos-serve`` gate's contract (see ``docs/RESILIENCE.md``).
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Tuple

from repro.simcore.eventcore import PARK, EventCore, EventCoreError


@dataclass(frozen=True)
class ResiliencePolicy:
    """Failure-handling knobs for one serving run (manifest-canonical).

    - ``watchdog_s``: how long a hung guest may stall before the
      supervisor kills it and re-dispatches its request;
    - ``retry_budget``: failed attempts a request may retry past the
      first (budget exhausted => the request counts as an error);
    - ``restart_backoff_s`` / ``backoff_multiplier`` / ``max_backoff_s``:
      exponential restart-probe schedule per consecutive failure;
    - ``crash_loop_threshold`` / ``crash_loop_window_s`` /
      ``quarantine_s``: K failures in a window quarantine the app;
    - ``breaker_*``: per-app circuit breaker (windowed error-rate trip,
      cooldown to half-open, one probe);
    - ``shed_queue_depth``: per-app backlog bound past which arrivals
      are shed -- a request queued that deep has already missed any
      deadline worth keeping, so reject it up front.
    """

    name: str = "default"
    watchdog_s: float = 0.5
    retry_budget: int = 2
    restart_backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 2.0
    crash_loop_threshold: int = 8
    crash_loop_window_s: float = 2.0
    quarantine_s: float = 5.0
    breaker_window: int = 32
    breaker_min_samples: int = 16
    breaker_threshold: float = 0.5
    breaker_cooldown_s: float = 1.0
    shed_queue_depth: int = 256

    def __post_init__(self) -> None:
        if self.watchdog_s <= 0.0:
            raise ValueError("watchdog_s must be positive")
        if self.retry_budget < 0:
            raise ValueError("retry_budget cannot be negative")
        if self.restart_backoff_s <= 0.0 or self.max_backoff_s <= 0.0:
            raise ValueError("restart backoffs must be positive")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1.0")
        if self.crash_loop_threshold < 1:
            raise ValueError("crash_loop_threshold must be at least 1")
        if self.crash_loop_window_s <= 0.0 or self.quarantine_s <= 0.0:
            raise ValueError("crash-loop window/quarantine must be positive")
        if self.breaker_window < 1 or self.breaker_min_samples < 1:
            raise ValueError("breaker windows must be at least 1")
        if not 0.0 < self.breaker_threshold <= 1.0:
            raise ValueError("breaker_threshold must be in (0, 1]")
        if self.breaker_cooldown_s <= 0.0:
            raise ValueError("breaker_cooldown_s must be positive")
        if self.shed_queue_depth < 1:
            raise ValueError("shed_queue_depth must be at least 1")

    def with_overrides(self, **overrides: object) -> "ResiliencePolicy":
        """A copy with selected fields replaced (CLI knobs)."""
        return dataclasses.replace(self, **overrides)

    def to_manifest(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "watchdog_s": self.watchdog_s,
            "retry_budget": self.retry_budget,
            "restart_backoff_s": self.restart_backoff_s,
            "backoff_multiplier": self.backoff_multiplier,
            "max_backoff_s": self.max_backoff_s,
            "crash_loop_threshold": self.crash_loop_threshold,
            "crash_loop_window_s": self.crash_loop_window_s,
            "quarantine_s": self.quarantine_s,
            "breaker_window": self.breaker_window,
            "breaker_min_samples": self.breaker_min_samples,
            "breaker_threshold": self.breaker_threshold,
            "breaker_cooldown_s": self.breaker_cooldown_s,
            "shed_queue_depth": self.shed_queue_depth,
        }


#: The default knobs every :class:`~repro.traffic.serve.ServeSpec` gets.
DEFAULT_RESILIENCE = ResiliencePolicy()


class CircuitBreaker:
    """Per-app admission control: ``closed -> open -> half_open -> closed``.

    Outcomes of *settled* requests (completed or failed -- shed requests
    were never attempted) feed a sliding window; once the window holds at
    least ``breaker_min_samples`` outcomes with a failure fraction at or
    above ``breaker_threshold``, the breaker opens and arrivals shed
    immediately.  After ``breaker_cooldown_s`` the next arrival is
    admitted as the half-open *probe*; its outcome closes the breaker or
    re-opens it for another cooldown.  All state is virtual-time and
    deterministic.
    """

    def __init__(self, policy: ResiliencePolicy) -> None:
        self.policy = policy
        self.state = "closed"
        self.opens = 0
        self._outcomes: Deque[bool] = deque(maxlen=policy.breaker_window)
        self._opened_ns = 0.0

    def admit(self, at_ns: float) -> bool:
        """Whether to admit an arrival at ``at_ns`` (may start the probe)."""
        if self.state == "closed":
            return True
        if self.state == "open":
            cooldown_ns = self.policy.breaker_cooldown_s * 1e9
            if at_ns >= self._opened_ns + cooldown_ns:
                self.state = "half_open"
                return True  # the single half-open probe
            return False
        return False  # half_open: the probe is still in flight

    def record(self, failed: bool, at_ns: float) -> None:
        """Feed one settled request outcome (True = it failed)."""
        if self.state == "half_open":
            if failed:
                self._trip(at_ns)
            else:
                self.state = "closed"
                self._outcomes.clear()
            return
        if self.state == "open":
            return  # a straggler settling after the trip
        self._outcomes.append(failed)
        if (len(self._outcomes) >= self.policy.breaker_min_samples
                and (sum(self._outcomes) / len(self._outcomes)
                     >= self.policy.breaker_threshold)):
            self._trip(at_ns)

    def _trip(self, at_ns: float) -> None:
        self.state = "open"
        self.opens += 1
        self._opened_ns = at_ns
        self._outcomes.clear()


class Supervisor:
    """Failure detection and recovery, as one :class:`EventCore` program.

    The supervisor owns a private deadline heap (watchdogs, restart
    probes, quarantine lifts) and mirrors it onto the global event heap:
    it always waits on its earliest pending event (``yield deadline``)
    or parks when it has none, and other programs wake it with
    :meth:`EventCore.kick` only when they insert an event *earlier* than
    the one it is armed on -- a later insert is picked up naturally when
    the armed deadline fires.  That discipline keeps the global order
    exact: a kick supersedes the pending heap entry, so kicking for a
    later event would silently delay an earlier one.
    """

    NAME = "supervisor"

    def __init__(self, core: EventCore, router) -> None:
        self.core = core
        self.router = router
        self.policy: ResiliencePolicy = router.resilience
        self.quarantines = 0
        #: Kicks the supervisor could not deliver because its own runner
        #: was killed by a contained dispatch fault (structured outcome,
        #: never silently swallowed).
        self.notify_failures = 0
        self.stopped = False
        self.dead = False
        self._events: List[Tuple[float, int, str, object]] = []
        self._eseq = itertools.count()
        self._failures: Dict[str, Deque[float]] = {}
        self._streak: Dict[str, int] = {}
        self._quarantined_until: Dict[str, float] = {}
        self._armed_ns: float = math.inf
        self._parked = False
        self._started = False

    def start(self) -> None:
        """Register the supervisor program with the core."""
        self._started = True
        self.core.spawn(self.NAME, self._program())

    def stop(self) -> None:
        """Finalize: pending restart probes become no-ops."""
        self.stopped = True

    # -- router-facing surface ---------------------------------------------

    def quarantined(self, app: str, at_ns: float) -> bool:
        """Whether *app*'s pool is quarantined at virtual instant *at_ns*."""
        until = self._quarantined_until.get(app)
        return until is not None and at_ns < until

    def record_success(self, app: str) -> None:
        """A served request resets the app's consecutive-failure streak."""
        self._streak[app] = 0

    def watch(self, worker, at_ns: float) -> None:
        """Arm a watchdog killing *worker* if it is still hung at deadline."""
        deadline = at_ns + self.policy.watchdog_s * 1e9
        self._push(deadline, "watchdog", worker)

    def record_failure(self, app: str, at_ns: float) -> None:
        """One guest of *app* failed: window it, quarantine or schedule a
        backoff restart probe."""
        window = self._failures.setdefault(app, deque())
        horizon = at_ns - self.policy.crash_loop_window_s * 1e9
        while window and window[0] < horizon:
            window.popleft()
        window.append(at_ns)
        self._streak[app] = self._streak.get(app, 0) + 1
        if self.quarantined(app, at_ns):
            return  # in-flight stragglers of an already-quarantined app
        # Quarantine on K failures inside the window, OR on K
        # *consecutive* failures at any spacing: a persistent failure
        # whose backoff outgrows the window must still converge to
        # quarantine instead of probing forever.
        if (len(window) >= self.policy.crash_loop_threshold
                or self._streak[app] >= self.policy.crash_loop_threshold):
            self._quarantine(app, at_ns)
            return
        self._push(at_ns + self._backoff_ns(app), "restart", app)

    # -- internals ---------------------------------------------------------

    def _backoff_ns(self, app: str) -> float:
        exponent = max(0, self._streak.get(app, 1) - 1)
        try:
            delay_s = min(
                self.policy.restart_backoff_s
                * self.policy.backoff_multiplier ** exponent,
                self.policy.max_backoff_s,
            )
        except OverflowError:
            # A long enough crash streak overflows the float power; the
            # exact value is moot -- it is past the cap either way.
            delay_s = self.policy.max_backoff_s
        return delay_s * 1e9

    def _quarantine(self, app: str, at_ns: float) -> None:
        self.quarantines += 1
        until = at_ns + self.policy.quarantine_s * 1e9
        self._quarantined_until[app] = until
        self._failures[app].clear()
        self.router.flush_app(app, at_ns)
        self._push(until, "quarantine_lift", app)

    def _push(self, at_ns: float, kind: str, payload: object) -> None:
        heapq.heappush(
            self._events, (float(at_ns), next(self._eseq), kind, payload)
        )
        self._notify(float(at_ns))

    def _notify(self, at_ns: float) -> None:
        if self.dead or not self._started:
            return
        if self._parked or at_ns < self._armed_ns:
            try:
                self.core.kick(self.NAME, at_ns)
            except EventCoreError:
                # The supervisor's own runner was killed by a contained
                # eventcore.dispatch fault; finalize mops up hung guests.
                self.dead = True
                self.notify_failures += 1
                return
            self._armed_ns = at_ns
            self._parked = False

    def _process(self, now_ns: float) -> None:
        while self._events and self._events[0][0] <= now_ns:
            at_ns, _, kind, payload = heapq.heappop(self._events)
            if kind == "watchdog":
                self.router.watchdog_fire(payload, at_ns)
            elif kind == "restart":
                if not self.stopped:
                    self.router.restart(payload, at_ns)
            else:  # quarantine_lift
                app = payload
                self._quarantined_until.pop(app, None)
                self._failures.setdefault(app, deque()).clear()
                self._streak[app] = 0

    def _program(self):
        clock = self.core.clock_for(self.NAME)
        while True:
            self._process(clock.now_ns)
            if self._events:
                self._armed_ns = self._events[0][0]
                self._parked = False
                yield self._armed_ns
            else:
                self._armed_ns = math.inf
                self._parked = True
                yield PARK
            self._parked = False
