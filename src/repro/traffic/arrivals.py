"""Seeded open-loop arrival generators for the traffic-driven fleet.

The paper's throughput and boot-time results (Figs 7/9/10) become an
operator tradeoff only when boot cost lands inside a *request latency
distribution* -- which requires open-loop traffic: arrivals happen when
the trace says they happen, whether or not a guest is warm.  This module
produces those traces:

- :func:`poisson_trace` -- constant-rate memoryless arrivals;
- :func:`diurnal_trace` -- a nonhomogeneous Poisson process whose rate
  follows a raised-cosine day/night curve (peaks spawn guests, troughs
  idle them out -- the scale-to-zero churn that makes cold boots appear
  in the tail);
- :func:`bursty_trace` -- an on/off modulated process (burst storms).

Every generator is a pure function of ``(spec, seed)``: seeds are folded
through :class:`random.Random` with *string* seeding (SHA-512 based in
CPython), so the sequence is independent of ``PYTHONHASHSEED``.  The app
of each arrival is drawn from a seeded Zipf over the curated serving
profiles (:func:`zipf_app_mix`), most-popular-first -- the MultiK-style
"many specialized kernels, skewed demand" mix.

:class:`ArrivalSource` adapts a trace to the global event heap: it arms
each next arrival as a deadline on the *arrivals clock* (obtained from
``EventCore.clock_for``), so ``clock.next_deadline_ns()`` always agrees
with the router's idea of when the next request lands -- the property
``tests/test_traffic.py`` pins.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

#: Virtual nanoseconds per trace second.
_NS = 1e9


@dataclass(frozen=True)
class TraceSpec:
    """The declarative recipe for one arrival trace (manifest-canonical).

    ``kind`` selects the generator; fields irrelevant to a kind stay at
    their defaults and are omitted from :meth:`to_manifest`.  Use the
    :func:`poisson_trace` / :func:`diurnal_trace` / :func:`bursty_trace`
    constructors rather than instantiating directly.
    """

    kind: str
    requests: int
    mean_rps: float
    #: Diurnal: day/night period and modulation depth (rate swings
    #: between ``mean*(1-amplitude)`` and ``mean*(1+amplitude)``).
    period_s: float = 60.0
    amplitude: float = 0.95
    #: Bursty: on/off phase lengths and their rates.
    on_s: float = 1.0
    off_s: float = 4.0
    on_rps: float = 0.0
    off_rps: float = 0.0
    #: Zipf skew of the app mix over the curated serving profiles.
    zipf_s: float = 1.1

    def to_manifest(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "kind": self.kind,
            "requests": self.requests,
            "zipf_s": self.zipf_s,
        }
        if self.kind in ("poisson", "diurnal"):
            doc["mean_rps"] = self.mean_rps
        if self.kind == "diurnal":
            doc["period_s"] = self.period_s
            doc["amplitude"] = self.amplitude
        if self.kind == "bursty":
            doc["on_s"] = self.on_s
            doc["off_s"] = self.off_s
            doc["on_rps"] = self.on_rps
            doc["off_rps"] = self.off_rps
        return doc


def poisson_trace(requests: int, mean_rps: float,
                  zipf_s: float = 1.1) -> TraceSpec:
    """Constant-rate memoryless arrivals."""
    return TraceSpec(kind="poisson", requests=requests, mean_rps=mean_rps,
                     zipf_s=zipf_s)


def diurnal_trace(requests: int, mean_rps: float, period_s: float = 60.0,
                  amplitude: float = 0.95, zipf_s: float = 1.1) -> TraceSpec:
    """Raised-cosine day/night arrivals (starts at the trough)."""
    if not 0.0 <= amplitude <= 1.0:
        raise ValueError("diurnal amplitude must be within [0, 1]")
    return TraceSpec(kind="diurnal", requests=requests, mean_rps=mean_rps,
                     period_s=period_s, amplitude=amplitude, zipf_s=zipf_s)


def bursty_trace(requests: int, on_rps: float, off_rps: float,
                 on_s: float = 1.0, off_s: float = 4.0,
                 zipf_s: float = 1.1) -> TraceSpec:
    """On/off modulated arrivals (burst storms separated by lulls)."""
    if off_rps > on_rps:
        raise ValueError("bursty traces need on_rps >= off_rps")
    return TraceSpec(kind="bursty", requests=requests, mean_rps=0.0,
                     on_s=on_s, off_s=off_s, on_rps=on_rps, off_rps=off_rps,
                     zipf_s=zipf_s)


def _times_rng(seed: int) -> random.Random:
    # String seeding hashes via SHA-512 in CPython -- deterministic and
    # independent of PYTHONHASHSEED (tuple seeds are not).
    return random.Random(f"traffic.arrivals:{seed}")


def _mix_rng(seed: int) -> random.Random:
    return random.Random(f"traffic.mix:{seed}")


def arrival_times_ns(spec: TraceSpec, seed: int) -> Iterator[float]:
    """The trace's arrival instants in virtual ns, strictly in order."""
    rng = _times_rng(seed)
    if spec.kind == "poisson":
        yield from _homogeneous(rng, spec.requests, spec.mean_rps)
    elif spec.kind == "diurnal":
        yield from _thinned(
            rng, spec.requests,
            max_rate=spec.mean_rps * (1.0 + spec.amplitude),
            rate_at=lambda t: spec.mean_rps * (
                1.0 - spec.amplitude * math.cos(
                    2.0 * math.pi * t / spec.period_s
                )
            ),
        )
    elif spec.kind == "bursty":
        cycle = spec.on_s + spec.off_s
        yield from _thinned(
            rng, spec.requests,
            max_rate=spec.on_rps,
            rate_at=lambda t: (
                spec.on_rps if (t % cycle) < spec.on_s else spec.off_rps
            ),
        )
    else:
        raise ValueError(f"unknown trace kind {spec.kind!r}")


def _homogeneous(rng: random.Random, requests: int,
                 rate: float) -> Iterator[float]:
    if rate <= 0.0:
        raise ValueError("arrival rate must be positive")
    t = 0.0
    for _ in range(requests):
        t += rng.expovariate(rate)
        yield t * _NS


def _thinned(rng: random.Random, requests: int, max_rate: float,
             rate_at) -> Iterator[float]:
    """Nonhomogeneous Poisson by thinning against the envelope rate."""
    if max_rate <= 0.0:
        raise ValueError("peak arrival rate must be positive")
    t = 0.0
    emitted = 0
    while emitted < requests:
        t += rng.expovariate(max_rate)
        if rng.random() * max_rate <= rate_at(t):
            emitted += 1
            yield t * _NS


def zipf_app_mix(apps: Sequence[str], spec: TraceSpec,
                 seed: int) -> Iterator[str]:
    """Per-arrival app draws: seeded Zipf over *apps* (rank = position).

    *apps* must already be most-popular-first (the router passes the
    curated serving profiles in registry popularity order); rank ``k``
    gets weight ``1 / (k+1)**zipf_s``.
    """
    if not apps:
        raise ValueError("the app mix needs at least one app")
    rng = _mix_rng(seed)
    weights = [1.0 / (rank + 1) ** spec.zipf_s for rank in range(len(apps))]
    while True:
        yield rng.choices(apps, weights=weights, k=1)[0]


@dataclass(frozen=True)
class Arrival:
    """One request arrival: who it is for and when it lands."""

    index: int
    app: str
    arrival_ns: float


class ArrivalSource:
    """Arms each next arrival as a deadline on the arrivals clock.

    One instance per serving run.  The arrivals program alternates
    :meth:`arm_next` (draw the next ``(time, app)`` and ``call_at`` it
    on the arrivals clock) with a ``yield`` of that deadline; the core
    fast-forwards the clock there, the armed event fires, and
    :meth:`take` hands the delivered :class:`Arrival` to the router.
    Arming through the clock keeps ``clock.next_deadline_ns()`` equal to
    :attr:`next_arrival_ns` -- the agreement property the tests pin.

    A fault hang on the arrival path advances the arrivals clock, which
    may push ``now`` past upcoming trace instants; those arrivals are
    delivered immediately (clamped to ``now``), counted in
    :attr:`clamped`, deterministically.
    """

    def __init__(self, spec: TraceSpec, seed: int, clock,
                 apps: Sequence[str]) -> None:
        self.spec = spec
        self.clock = clock
        self._times = arrival_times_ns(spec, seed)
        self._mix = zipf_app_mix(apps, spec, seed)
        self._index = 0
        self._delivered: Optional[Arrival] = None
        self.next_arrival_ns: Optional[float] = None
        self.clamped = 0

    def arm_next(self) -> Optional[float]:
        """Arm the next arrival; returns its deadline (None: trace done)."""
        t = next(self._times, None)
        if t is None:
            self.next_arrival_ns = None
            return None
        arrival = Arrival(index=self._index, app=next(self._mix),
                          arrival_ns=max(t, self.clock.now_ns))
        self._index += 1
        if arrival.arrival_ns > t:
            self.clamped += 1
        self.next_arrival_ns = arrival.arrival_ns
        if arrival.arrival_ns > self.clock.now_ns:
            self.clock.call_at(
                arrival.arrival_ns, lambda: self._deliver(arrival)
            )
        else:
            self._deliver(arrival)
        return arrival.arrival_ns

    def take(self) -> Arrival:
        """The arrival whose armed deadline just fired."""
        arrival = self._delivered
        if arrival is None:
            raise RuntimeError("no delivered arrival pending")
        self._delivered = None
        return arrival

    def _deliver(self, arrival: Arrival) -> None:
        self._delivered = arrival


def curated_apps() -> List[str]:
    """The serving-profile apps, most-popular-first (the Zipf ranks)."""
    from repro.apps.registry import top20_in_popularity_order
    from repro.core.orchestrator import serving_profile

    return [
        app.name for app in top20_in_popularity_order()
        if serving_profile(app.name) is not None
    ]
