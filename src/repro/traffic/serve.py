"""One traffic-driven serving run: trace in, latency + availability out.

:func:`run_serving` wires the pieces together on a fresh
:class:`~repro.simcore.eventcore.EventCore`:

1. the router pre-warms whatever the policy asks for, and the
   supervisor registers as one more program on the core (watchdogs,
   restart probes, and quarantine lifts are just deadlines on the one
   global heap);
2. the *arrivals program* walks the trace, arming each arrival on the
   arrivals clock and dispatching it through the router inside the
   ``traffic.arrival`` fault site (an injected fault drops the request,
   deterministically; a fault hang delays every subsequent arrival);
3. ``core.run()`` drains the heap to quiescence -- all traffic settled,
   all idle timeouts and watchdogs resolved, every surviving worker
   parked;
4. the router retires the survivors and the core runs once more, so
   guest-seconds cover each worker's full life.

The outcome is a :class:`ServingReport` whose canonical manifest -- and
therefore SHA-256 digest -- is a pure function of the
:class:`ServeSpec`: same spec, same bytes, under either warm-pool
policy **and under any installed fault schedule** (the plane's call
counters are reset at run entry, so fault decisions are counted per
run).  That is the determinism contract ``bench-serve --check`` and the
``chaos-serve`` gate assert.  Execution counters (events dispatched,
parks/kicks, contained failures) stay *outside* the manifest, exactly
like ``FleetSimulation``.

Latency percentiles are **conditional on success**: failed, shed, and
dropped requests contribute to the availability section (error rate,
shed rate, retries, restarts, goodput), never to the latency
distribution.  Request conservation --
``arrivals == completed + failed + shed + dropped`` -- is checked at
the end of every run.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.orchestrator import KernelOrchestrator, KernelPolicy
from repro.simcore.eventcore import EventCore
from repro.traffic.arrivals import ArrivalSource, TraceSpec, curated_apps
from repro.traffic.policy import WarmPoolPolicy
from repro.traffic.router import Router
from repro.traffic.supervisor import (
    DEFAULT_RESILIENCE,
    ResiliencePolicy,
    Supervisor,
)

#: Serving-report manifest format (documented in EXPERIMENTS.md).
#: v2: resilience policy + availability section, latency conditional on
#: success, ``guests.failed``.
SERVE_SCHEMA_VERSION = 2

#: File ``fleet-serve`` writes the report manifest to.
SERVE_REPORT_NAME = "serve_report.json"


@dataclass(frozen=True)
class ServeSpec:
    """Everything one serving run depends on (the digest's input)."""

    trace: TraceSpec
    policy: WarmPoolPolicy
    seed: int = 0
    kernel_policy: KernelPolicy = KernelPolicy.GENERAL
    kml: bool = True
    resilience: ResiliencePolicy = DEFAULT_RESILIENCE
    #: Attach usage recorders to every serving guest and carry the
    #: per-app merged traces (and a ``usage`` manifest section) in the
    #: report.  Off by default: recording never perturbs timing, but the
    #: extra manifest section would change pinned digests.
    record_usage: bool = False


@dataclass
class ServingReport:
    """The deterministic outcome of one :func:`run_serving` run."""

    spec: ServeSpec
    arrivals: int = 0
    served: int = 0
    failed: int = 0
    shed: int = 0
    dropped: int = 0
    clamped: int = 0
    retries: int = 0
    restarts: int = 0
    guest_crashes: int = 0
    guest_hangs: int = 0
    boot_failures: int = 0
    watchdog_kills: int = 0
    quarantines: int = 0
    breaker_opens: int = 0
    failed_reasons: Dict[str, int] = field(default_factory=dict)
    shed_reasons: Dict[str, int] = field(default_factory=dict)
    goodput_rps: float = 0.0
    cold_starts: int = 0
    latency_ms: Dict[str, float] = field(default_factory=dict)
    queue_high_water: int = 0
    queued: int = 0
    guests_spawned: int = 0
    guests_retired: int = 0
    guests_failed: int = 0
    peak_live: int = 0
    guest_seconds: float = 0.0
    per_app: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Per-app merged usage traces; populated only when the spec asked
    #: for recording (``spec.record_usage``).
    usage_by_app: Dict[str, object] = field(default_factory=dict)
    #: Execution counters (EventCoreStats), deliberately manifest-external.
    eventcore_stats: Optional[object] = None

    @property
    def cold_start_fraction(self) -> float:
        return self.cold_starts / self.served if self.served else 0.0

    @property
    def error_rate(self) -> float:
        """Failed requests as a fraction of delivered arrivals."""
        return self.failed / self.arrivals if self.arrivals else 0.0

    @property
    def shed_rate(self) -> float:
        """Shed requests as a fraction of delivered arrivals."""
        return self.shed / self.arrivals if self.arrivals else 0.0

    def manifest(self) -> Dict[str, object]:
        """The canonical JSON-able manifest (digest input).

        The ``usage`` section exists only when the spec recorded usage,
        so default-spec digests are byte-identical with or without this
        feature compiled in.
        """
        manifest: Dict[str, object] = {
            "schema_version": SERVE_SCHEMA_VERSION,
            "trace": self.spec.trace.to_manifest(),
            "policy": self.spec.policy.to_manifest(),
            "resilience": self.spec.resilience.to_manifest(),
            "seed": self.spec.seed,
            "kernel_policy": self.spec.kernel_policy.value,
            "kml": self.spec.kml,
            "served": self.served,
            "dropped": self.dropped,
            "clamped": self.clamped,
            "cold_starts": self.cold_starts,
            "cold_start_fraction": self.cold_start_fraction,
            "latency_ms": self.latency_ms,
            "availability": {
                "arrivals": self.arrivals,
                "completed": self.served,
                "failed": self.failed,
                "shed": self.shed,
                "dropped": self.dropped,
                "error_rate": self.error_rate,
                "shed_rate": self.shed_rate,
                "retries": self.retries,
                "restarts": self.restarts,
                "guest_crashes": self.guest_crashes,
                "guest_hangs": self.guest_hangs,
                "boot_failures": self.boot_failures,
                "watchdog_kills": self.watchdog_kills,
                "quarantines": self.quarantines,
                "breaker_opens": self.breaker_opens,
                "failed_reasons": {
                    k: self.failed_reasons[k]
                    for k in sorted(self.failed_reasons)
                },
                "shed_reasons": {
                    k: self.shed_reasons[k]
                    for k in sorted(self.shed_reasons)
                },
                "goodput_rps": self.goodput_rps,
            },
            "queue": {
                "high_water": self.queue_high_water,
                "queued_requests": self.queued,
            },
            "guests": {
                "spawned": self.guests_spawned,
                "retired": self.guests_retired,
                "failed": self.guests_failed,
                "peak_live": self.peak_live,
                "guest_seconds": self.guest_seconds,
            },
            "per_app": self.per_app,
        }
        if self.spec.record_usage:
            manifest["usage"] = {
                app: trace.as_dict()
                for app, trace in sorted(self.usage_by_app.items())
            }
        return manifest

    @property
    def manifest_digest(self) -> str:
        """SHA-256 over the canonical manifest encoding."""
        encoded = json.dumps(
            self.manifest(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    def render(self) -> str:
        """Human-readable run summary (the CLI surface)."""
        lines = [
            f"serving run: {self.spec.trace.kind} trace, "
            f"{self.spec.trace.requests} requests, "
            f"policy {self.spec.policy.name}, seed {self.spec.seed}",
            f"  served        : {self.served} "
            f"(failed {self.failed}, shed {self.shed}, "
            f"dropped {self.dropped}, queued {self.queued})",
            f"  availability  : error rate {self.error_rate:.4%}, "
            f"shed rate {self.shed_rate:.4%}, "
            f"goodput {self.goodput_rps:.1f} rps",
            f"  recovery      : {self.retries} retries, "
            f"{self.restarts} restarts, "
            f"{self.guest_crashes} crashes, {self.guest_hangs} hangs, "
            f"{self.boot_failures} boot failures, "
            f"{self.watchdog_kills} watchdog kills, "
            f"{self.quarantines} quarantines, "
            f"{self.breaker_opens} breaker opens",
            f"  latency ms    : p50 {self.latency_ms.get('p50', 0.0):.3f}  "
            f"p99 {self.latency_ms.get('p99', 0.0):.3f}  "
            f"p999 {self.latency_ms.get('p999', 0.0):.3f}  "
            f"max {self.latency_ms.get('max', 0.0):.3f}  "
            f"(conditional on success)",
            f"  cold starts   : {self.cold_starts} "
            f"({self.cold_start_fraction:.2%} of served)",
            f"  queue depth   : high water {self.queue_high_water}",
            f"  guests        : {self.guests_spawned} spawned, "
            f"{self.guests_retired} retired, {self.guests_failed} failed, "
            f"peak live {self.peak_live}",
            f"  guest-seconds : {self.guest_seconds:.3f}",
            f"  manifest      : sha256 {self.manifest_digest[:16]}...",
        ]
        return "\n".join(lines)


def percentile_ns(sorted_samples: List[float], q: float) -> float:
    """Nearest-rank percentile over an ascending sample list."""
    if not sorted_samples:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_samples)))
    return sorted_samples[rank - 1]


def _arrivals_program(source: ArrivalSource, router: Router):
    from repro.faults import FaultInjected, fault_site

    while True:
        deadline = source.arm_next()
        if deadline is None:
            return
        yield deadline
        arrival = source.take()
        try:
            with fault_site("traffic.arrival"):
                router.dispatch(arrival)
        except FaultInjected:
            router.drop(arrival)


def run_serving_many(specs: List[ServeSpec],
                     jobs: int = 1) -> List[ServingReport]:
    """Execute whole serving runs across worker processes; reports in order.

    Serving parallelism is **run-level**: each :class:`ServeSpec` is an
    independent deterministic run (a policy sweep, a seed sweep), so
    whole runs fan out across processes and merge by position, with each
    worker's counter deltas folded back into this process's registry.
    A *single* run never shards: the router's global coupling --
    ``max_total`` admission, ``peak_live`` and the queue high-water mark
    are time-maxima over cross-app sums, all in the manifest -- makes a
    run's manifest irreproducible from independently-executed app
    slices (see ``docs/SERVING.md``).
    """
    from repro.harness.shardpool import execute_serving_runs

    return execute_serving_runs(list(specs), jobs)


def run_serving(spec: ServeSpec) -> ServingReport:
    """Execute one traffic-driven serving run; fully deterministic.

    Deterministic *under faults* too: if a fault plane is installed, its
    per-site call counters are rewound at entry, so the n-th fault
    decision of this run is the n-th decision of any rerun of the same
    spec -- whether the runs share a process, a worker pool, or nothing.
    """
    from repro.faults import active_plane

    plane = active_plane()
    if plane is not None:
        plane.reset_counters()
    core = EventCore()
    orchestrator = KernelOrchestrator(policy=spec.kernel_policy,
                                      kml=spec.kml)
    apps = curated_apps()
    router = Router(core=core, orchestrator=orchestrator,
                    policy=spec.policy, apps=apps,
                    resilience=spec.resilience,
                    record_usage=spec.record_usage)
    supervisor = Supervisor(core=core, router=router)
    router.supervisor = supervisor
    core.on_failure = router.on_runner_failure
    supervisor.start()
    router.pre_warm()
    source = ArrivalSource(spec.trace, spec.seed,
                           core.clock_for("arrivals"), apps)
    core.spawn("arrivals", _arrivals_program(source, router))
    core.run()          # to quiescence: traffic settled, timeouts resolved
    router.finalize()   # fail leftover work, retire the parked survivors
    stats = core.run()
    router.check_conservation()
    return _report(spec, source, router, supervisor, stats)


def _report(spec: ServeSpec, source: ArrivalSource, router: Router,
            supervisor: Supervisor, stats) -> ServingReport:
    samples = sorted(s.latency_ns for s in router.samples)
    latency_ms = {
        "p50": percentile_ns(samples, 0.50) / 1e6,
        "p99": percentile_ns(samples, 0.99) / 1e6,
        "p999": percentile_ns(samples, 0.999) / 1e6,
        "max": (samples[-1] / 1e6) if samples else 0.0,
        "mean": (sum(samples) / len(samples) / 1e6) if samples else 0.0,
    }
    per_app: Dict[str, Dict[str, int]] = {}
    for sample in router.samples:
        entry = per_app.setdefault(
            sample.app, {"requests": 0, "cold_starts": 0, "spawned": 0}
        )
        entry["requests"] += 1
        if sample.cold:
            entry["cold_starts"] += 1
    for worker in router.workers:
        per_app.setdefault(
            worker.app, {"requests": 0, "cold_starts": 0, "spawned": 0}
        )["spawned"] += 1
    # Goodput: completed requests over the span traffic actually covered
    # (the arrivals clock's final instant -- deterministic, virtual).
    horizon_s = source.clock.now_ns / 1e9
    goodput = (len(router.samples) / horizon_s) if horizon_s > 0 else 0.0
    report = ServingReport(
        spec=spec,
        arrivals=router.arrivals,
        served=len(router.samples),
        failed=router.failed,
        shed=router.shed,
        dropped=router.dropped,
        clamped=source.clamped,
        retries=router.retries,
        restarts=router.restarts,
        guest_crashes=router.guest_crashes,
        guest_hangs=router.guest_hangs,
        boot_failures=router.boot_failures,
        watchdog_kills=router.watchdog_kills,
        quarantines=supervisor.quarantines,
        breaker_opens=sum(b.opens for b in router.breakers.values()),
        failed_reasons=dict(router.failed_reasons),
        shed_reasons=dict(router.shed_reasons),
        goodput_rps=round(goodput, 6),
        cold_starts=router.cold_starts,
        latency_ms=latency_ms,
        queue_high_water=router.queue_high_water,
        queued=router.queued,
        guests_spawned=router.spawned,
        guests_retired=router.retired_count,
        guests_failed=router.failed_workers,
        peak_live=router.peak_live,
        guest_seconds=round(router.guest_seconds, 9),
        per_app={app: per_app[app] for app in sorted(per_app)},
        usage_by_app=(
            router.usage_by_app() if spec.record_usage else {}
        ),
        eventcore_stats=stats,
    )
    _publish_metrics(report)
    return report


def _publish_metrics(report: ServingReport) -> None:
    from repro.observe import METRICS

    METRICS.counter("traffic.requests_served").inc(report.served)
    METRICS.counter("traffic.requests_failed").inc(report.failed)
    METRICS.counter("traffic.requests_shed").inc(report.shed)
    METRICS.counter("traffic.requests_dropped").inc(report.dropped)
    METRICS.counter("traffic.requests_queued").inc(report.queued)
    METRICS.counter("traffic.retries").inc(report.retries)
    METRICS.counter("traffic.restarts").inc(report.restarts)
    METRICS.counter("traffic.guest_crashes").inc(report.guest_crashes)
    METRICS.counter("traffic.guest_hangs").inc(report.guest_hangs)
    METRICS.counter("traffic.boot_failures").inc(report.boot_failures)
    METRICS.counter("traffic.watchdog_kills").inc(report.watchdog_kills)
    METRICS.counter("traffic.quarantines").inc(report.quarantines)
    METRICS.counter("traffic.breaker_opens").inc(report.breaker_opens)
    METRICS.counter("traffic.cold_starts").inc(report.cold_starts)
    METRICS.counter("traffic.guests_spawned").inc(report.guests_spawned)
    METRICS.counter("traffic.guests_retired").inc(report.guests_retired)
    METRICS.counter("traffic.guests_failed").inc(report.guests_failed)
    METRICS.gauge("traffic.queue_high_water").set(
        float(report.queue_high_water)
    )
    METRICS.gauge("traffic.guest_seconds").set(report.guest_seconds)
    histogram = METRICS.histogram("traffic.request_latency_ms")
    for key in ("p50", "p99", "p999"):
        histogram.observe(report.latency_ms.get(key, 0.0))
