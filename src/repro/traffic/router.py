"""The request router: warm-pool dispatch, cold boots, failure recovery.

One :class:`Router` per serving run.  Each arrival goes to the warm pool
of its app (guests are per-app, so the kernel variant is implied by the
run's :class:`~repro.core.orchestrator.KernelPolicy` through
``KernelOrchestrator.variant_for``); on a miss the router cold-boots a
fresh guest through the full ``GuestSpec -> build -> boot`` pipeline --
the paper's Fig 7 boot cost, landing inside that request's latency --
and at capacity the arrival queues FIFO behind its app.

Workers are :class:`EventCore` programs.  An idle worker enters the
app's warm pool (LIFO, for keepalive locality) and either arms its idle
timeout as a virtual deadline or yields ``PARK``; the router wakes it
with :meth:`EventCore.kick` when traffic lands.  A timed-out worker
retires -- full ``shutdown`` -- unless the policy's ``min_warm`` floor
pins it, in which case it parks until kicked.  All of it is virtual-time
events on the one global heap; nothing polls.

Failure model (PR 9).  The serving path itself can now break, through
three seeded :func:`~repro.faults.plane.fault_site` sites evaluated on
the guest's own clock:

- ``guest.boot_fail`` -- the cold boot fails (the paper's
  corrupted-image case): the worker dies before serving anything;
- ``guest.crash`` -- the guest dies mid-request: its in-flight request
  and inbox fail over;
- ``guest.hang`` -- the request stalls: the worker parks with the
  request in flight until the supervisor's watchdog deadline kills it.

Every failed request is re-dispatched up to the
:class:`~repro.traffic.supervisor.ResiliencePolicy` retry budget (warm
pool or backlog only -- replacement *capacity* comes from the
supervisor's backoff-timed restart probes, or from fresh arrivals), then
counts as an error.  Arrivals shed instead of queueing when the app is
quarantined, its circuit breaker is open, or its backlog exceeds the
shed bound.  Each request settles in **exactly one** terminal
disposition -- completed, failed, shed, or dropped -- which is the
request-conservation identity the hypothesis tests pin:
``arrivals == completed + failed + shed + dropped``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.simcore.eventcore import PARK, EventCore, drain_deadlines
from repro.traffic.arrivals import Arrival
from repro.traffic.policy import WarmPoolPolicy
from repro.traffic.supervisor import (
    DEFAULT_RESILIENCE,
    CircuitBreaker,
    ResiliencePolicy,
    Supervisor,
)


class ServingInvariantError(RuntimeError):
    """A request-conservation invariant broke (always a bug, never load)."""


@dataclass(eq=False)  # identity semantics: each request settles once
class Request:
    """One admitted arrival's mutable serving state."""

    arrival: Arrival
    #: Failed delivery attempts so far (retry budget is judged on this).
    failures: int = 0
    #: Terminal outcome: "completed" | "failed" | "shed" (set exactly once).
    disposition: Optional[str] = None


@dataclass(eq=False)  # identity semantics: pool membership is per-object
class GuestWorker:
    """One serving guest: lifecycle state the router tracks around it."""

    name: str
    app: str
    guest: object
    #: Virtual instant the worker was spawned (arrival time for cold
    #: boots, zero for pre-warmed workers).
    spawn_ns: float
    #: Whether the first request this worker serves is a cold start.
    cold_pending: bool
    inbox: Deque[Request] = field(default_factory=deque)
    #: The request being attempted (or stalled on, for a hung worker).
    current: Optional[Request] = None
    boot_ms: float = 0.0
    served: int = 0
    retiring: bool = False
    retired: bool = False
    #: Killed by a failure (crash/hang/boot_fail) rather than retired.
    failed: bool = False
    #: Stalled on an injected hang, awaiting the watchdog.
    hung: bool = False
    retire_ns: Optional[float] = None


@dataclass(frozen=True)
class LatencySample:
    """One served request's outcome."""

    index: int
    app: str
    latency_ns: float
    cold: bool


class Router:
    """Dispatches arrivals across warm pools, cold boots, and queues."""

    def __init__(self, core: EventCore, orchestrator, policy: WarmPoolPolicy,
                 apps: List[str],
                 resilience: ResiliencePolicy = DEFAULT_RESILIENCE,
                 record_usage: bool = False) -> None:
        self.core = core
        self.orchestrator = orchestrator
        self.policy = policy
        self.resilience = resilience
        self.record_usage = record_usage
        self.apps = list(apps)
        self.pools: Dict[str, List[GuestWorker]] = {a: [] for a in self.apps}
        self.backlog: Dict[str, Deque[Request]] = {
            a: deque() for a in self.apps
        }
        self.live: Dict[str, int] = {a: 0 for a in self.apps}
        self.total_live = 0
        self.peak_live = 0
        self.workers: List[GuestWorker] = []
        self.samples: List[LatencySample] = []
        self.breakers: Dict[str, CircuitBreaker] = {
            a: CircuitBreaker(resilience) for a in self.apps
        }
        #: Wired by :func:`~repro.traffic.serve.run_serving`; the router
        #: never heals itself -- detection/restart policy lives there.
        self.supervisor: Optional[Supervisor] = None
        self.arrivals = 0
        self.cold_starts = 0
        self.queued = 0
        self.queue_high_water = 0
        self.dropped = 0
        self.failed = 0
        self.shed = 0
        self.retries = 0
        self.restarts = 0
        self.guest_crashes = 0
        self.guest_hangs = 0
        self.boot_failures = 0
        self.watchdog_kills = 0
        self.failed_reasons: Dict[str, int] = {}
        self.shed_reasons: Dict[str, int] = {}
        self._finalizing = False
        self._by_name: Dict[str, GuestWorker] = {}
        self._profiles = {a: self._profile(a) for a in self.apps}

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, arrival: Arrival) -> None:
        """Route one arrival: warm hit, cold boot, capacity queue, or shed."""
        self.arrivals += 1
        self._route(Request(arrival=arrival), arrival.arrival_ns, fresh=True)

    def drop(self, arrival: Arrival) -> None:
        """An arrival the fault plane failed: counted, never served."""
        self.arrivals += 1
        self.dropped += 1

    def next_arrival_hint(self, source) -> Optional[float]:
        """The router's idea of the next arrival: what the source armed."""
        return source.next_arrival_ns

    def pre_warm(self) -> None:
        """Spawn the policy's pre-warmed workers per app at virtual zero."""
        for app in self.apps:
            for _ in range(min(self.policy.pre_warm,
                               self.policy.max_per_app)):
                if self.total_live >= self.policy.max_total:
                    return
                self._spawn(app, start_ns=0.0, first=None)

    def finalize(self) -> None:
        """After quiescence: fail leftover work, retire every live worker.

        ``EventCore.run()`` returned, so every live worker is parked (or
        floor-pinned); anything still queued can never be served -- fail
        it -- then mark the survivors retiring and wake them so their
        programs run the shutdown path, then ``run()`` the core again.
        A hung worker is normally killed by its watchdog before the heap
        empties; if the supervisor itself died (a contained dispatch
        fault), the finalize kick resumes it into the kill path.
        """
        self._finalizing = True
        if self.supervisor is not None:
            self.supervisor.stop()
        for app in self.apps:
            backlog = self.backlog[app]
            while backlog:
                request = backlog.popleft()
                self._fail(request, "unserved", request.arrival.arrival_ns)
        for worker in self.workers:
            if worker.retired:
                continue
            worker.retiring = True
            self.core.kick(worker.name, worker.guest.clock.now_ns)

    # -- routing core ------------------------------------------------------

    def _route(self, request: Request, at_ns: float, fresh: bool) -> None:
        app = request.arrival.app
        if self.supervisor is not None and self.supervisor.quarantined(
                app, at_ns):
            self._shed(request, "quarantine", at_ns)
            return
        if fresh and not self.breakers[app].admit(at_ns):
            self._shed(request, "breaker", at_ns)
            return
        pool = self.pools[app]
        while pool:
            worker = pool.pop()  # LIFO: most-recently-idle first
            if worker.retired:
                continue  # killed while pooled (contained dispatch fault)
            worker.inbox.append(request)
            self.core.kick(worker.name, at_ns)
            return
        if fresh and self._can_spawn(app):
            self._spawn(app, start_ns=at_ns, first=request)
            return
        if self._finalizing:
            # Nothing will drain a backlog after quiescence: settle now.
            self._fail(request, "unserved", at_ns)
            return
        if len(self.backlog[app]) >= self.resilience.shed_queue_depth:
            self._shed(request, "queue_depth", at_ns)
            return
        self.backlog[app].append(request)
        self.queued += 1
        depth = sum(len(q) for q in self.backlog.values())
        if depth > self.queue_high_water:
            self.queue_high_water = depth

    def _retry_or_fail(self, request: Request, at_ns: float) -> None:
        """One delivery attempt failed: re-dispatch inside the retry
        budget (warm pool or backlog only -- never a direct cold boot;
        replacement capacity is the supervisor's call)."""
        request.failures += 1
        if request.failures > self.resilience.retry_budget:
            self._fail(request, "retries_exhausted", at_ns)
            return
        app = request.arrival.app
        if self.supervisor is not None and self.supervisor.quarantined(
                app, at_ns):
            self._fail(request, "quarantined", at_ns)
            return
        self.retries += 1
        self._route(request, at_ns, fresh=False)

    # -- terminal dispositions --------------------------------------------

    def _settle(self, request: Request, disposition: str) -> None:
        if request.disposition is not None:
            raise ServingInvariantError(
                f"request {request.arrival.index} settling twice: "
                f"{request.disposition} then {disposition}"
            )
        request.disposition = disposition

    def _complete(self, request: Request, at_ns: float) -> None:
        self._settle(request, "completed")
        app = request.arrival.app
        self.breakers[app].record(False, at_ns)
        if self.supervisor is not None:
            self.supervisor.record_success(app)

    def _fail(self, request: Request, reason: str, at_ns: float) -> None:
        self._settle(request, "failed")
        self.failed += 1
        self.failed_reasons[reason] = self.failed_reasons.get(reason, 0) + 1
        self.breakers[request.arrival.app].record(True, at_ns)

    def _shed(self, request: Request, reason: str, at_ns: float) -> None:
        self._settle(request, "shed")
        self.shed += 1
        self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1

    # -- supervisor-facing surface ----------------------------------------

    def restart(self, app: str, at_ns: float) -> None:
        """A backoff restart probe fired: boot replacement capacity, but
        only if the app still has queued work, room, and no quarantine."""
        if self.supervisor is not None and self.supervisor.quarantined(
                app, at_ns):
            return
        if not self.backlog[app] or not self._can_spawn(app):
            return
        self.restarts += 1
        self._spawn(app, start_ns=at_ns, first=None, cold=True)

    def watchdog_fire(self, worker: GuestWorker, at_ns: float) -> None:
        """The watchdog deadline hit: kill *worker* if it is still hung."""
        if worker.retired or not worker.hung:
            return
        self.watchdog_kills += 1
        self.core.kick(worker.name, at_ns)

    def flush_app(self, app: str, at_ns: float) -> None:
        """Quarantine teardown: fail the backlog, retire the app's pool."""
        backlog = self.backlog[app]
        while backlog:
            self._fail(backlog.popleft(), "quarantined", at_ns)
        for worker in self.workers:
            if worker.app != app or worker.retired or worker.retiring:
                continue
            worker.retiring = True
            if worker.hung:
                continue  # the watchdog owns hung workers
            self.core.kick(worker.name, at_ns)

    def on_runner_failure(self, name: str, error: BaseException) -> None:
        """:class:`EventCore` contained a dispatch fault in runner *name*.

        Worker programs convert ``guest.*`` faults to structured
        outcomes themselves; this backstop reconciles router state when
        a generic ``eventcore.dispatch`` fault kills a runner outright.
        """
        if self.supervisor is not None and name == Supervisor.NAME:
            self.supervisor.dead = True
            return
        worker = self._by_name.get(name)
        if worker is None or worker.retired:
            return  # the arrivals program, or an already-settled worker
        self._fail_worker(worker, "crash", worker.guest.clock.now_ns)

    # -- worker lifecycle --------------------------------------------------

    def _can_spawn(self, app: str) -> bool:
        return (self.live[app] < self.policy.max_per_app
                and self.total_live < self.policy.max_total)

    def _spawn(self, app: str, start_ns: float, first: Optional[Request],
               cold: Optional[bool] = None) -> None:
        from repro.apps.registry import get_app
        from repro.simcore.guest import Guest, GuestSpec

        application = get_app(app)
        index = len(self.workers)
        spec = GuestSpec(
            name=f"serve-{app}-{index:05d}",
            variant=self.orchestrator.variant_for(application),
            app=app,
            full_image=True,
        )
        guest = Guest(
            spec,
            clock=self.core.clock_for(spec.name),
            unikernel=self.orchestrator.unikernel_for(application),
        )
        worker = GuestWorker(
            name=spec.name, app=app, guest=guest, spawn_ns=start_ns,
            cold_pending=(first is not None) if cold is None else cold,
        )
        if first is not None:
            worker.inbox.append(first)
        self.workers.append(worker)
        self._by_name[spec.name] = worker
        self.live[app] += 1
        self.total_live += 1
        if self.total_live > self.peak_live:
            self.peak_live = self.total_live
        self.core.spawn(spec.name, self._worker_program(worker),
                        start_ns=start_ns)

    def _worker_program(self, worker: GuestWorker):
        from repro.faults import FaultInjected, fault_site

        guest = worker.guest
        guest.build()
        if self.record_usage:
            from repro.syscall.usage import UsageTrace

            # Attach the recorder to the freshly-built engine; a serving
            # guest binds/listens on the inet stack from boot, so that
            # facility is part of its observed usage regardless of
            # whether a request ever lands.
            guest.engine.usage = UsageTrace(owner=worker.name)
            guest.engine.usage.record_facility("socket:inet")
        yield None  # BUILT at the spawn instant; boot is the next stage
        try:
            with fault_site("guest.boot_fail"):
                worker.boot_ms = guest.boot().total_ms
        except FaultInjected:
            # The corrupted-image case: this guest never serves.
            self._fail_worker(worker, "boot_fail", guest.clock.now_ns)
            return
        yield None
        while True:
            request = self._take_work(worker)
            if request is not None:
                worker.current = request
                outcome = self._attempt(worker, request)
                if outcome == "served":
                    worker.current = None
                    yield None
                    continue
                if outcome == "hang":
                    self.guest_hangs += 1
                    worker.hung = True
                    if self.supervisor is not None:
                        self.supervisor.watch(worker, guest.clock.now_ns)
                    yield PARK
                    # Only the watchdog (or finalize, if the supervisor
                    # died) wakes a hung worker: it is killed here.
                    worker.hung = False
                    self._fail_worker(worker, "hang", guest.clock.now_ns)
                    return
                self._fail_worker(worker, "crash", guest.clock.now_ns)
                return
            if worker.retiring:
                self._leave_pool(worker)
                break
            self._enter_pool(worker)
            timeout_ns = self.policy.idle_timeout_ns
            if timeout_ns is None:
                yield PARK  # keepalive forever: only a kick wakes us
                continue
            yield guest.clock.now_ns + timeout_ns
            if worker.inbox or worker.retiring:
                continue  # kicked awake with work (or into retirement)
            # The idle timeout genuinely expired: scale to zero, unless
            # the policy floor pins this worker warm.
            if self.live[worker.app] - 1 >= self.policy.min_warm:
                self._leave_pool(worker)
                break
            yield PARK
        yield from drain_deadlines(guest.clock)
        guest.shutdown()
        self._on_retired(worker)

    def _attempt(self, worker: GuestWorker, request: Request) -> str:
        """One serve attempt under the guest fault sites.

        Narrow by design: only :class:`FaultInjected` converts to a
        structured outcome ("hang"/"crash"); anything else propagates to
        the core's containment (the satellite audit's no-broad-except
        rule).
        """
        from repro.faults import FaultInjected, fault_site

        try:
            with fault_site("guest.hang"):
                with fault_site("guest.crash"):
                    self._serve_one(worker, request)
        except FaultInjected as error:
            return "hang" if error.site == "guest.hang" else "crash"
        return "served"

    def _fail_worker(self, worker: GuestWorker, reason: str,
                     at_ns: float) -> None:
        """Tear down a failed worker and fail over its queued requests."""
        if worker.retired:
            return
        if reason == "crash":
            self.guest_crashes += 1
        elif reason == "boot_fail":
            self.boot_failures += 1
        self._leave_pool(worker)
        worker.failed = True
        worker.retired = True
        worker.retire_ns = at_ns
        self.live[worker.app] -= 1
        self.total_live -= 1
        victims: List[Request] = []
        if worker.current is not None:
            victims.append(worker.current)
            worker.current = None
        victims.extend(worker.inbox)
        worker.inbox.clear()
        # Quarantine decisions happen before fail-over so the victims
        # see the post-failure world (a freshly-quarantined app fails
        # its retries instead of re-queueing them).
        if self.supervisor is not None:
            self.supervisor.record_failure(worker.app, at_ns)
        for request in victims:
            self._retry_or_fail(request, at_ns)

    def _take_work(self, worker: GuestWorker) -> Optional[Request]:
        if worker.inbox:
            return worker.inbox.popleft()
        backlog = self.backlog[worker.app]
        if backlog:
            return backlog.popleft()
        return None

    def _serve_one(self, worker: GuestWorker, request: Request) -> None:
        guest = worker.guest
        cold = worker.cold_pending
        worker.cold_pending = False
        guest.serve(self._profiles[worker.app], 1)
        worker.served += 1
        if cold:
            self.cold_starts += 1
        arrival = request.arrival
        self.samples.append(LatencySample(
            index=arrival.index,
            app=arrival.app,
            latency_ns=guest.clock.now_ns - arrival.arrival_ns,
            cold=cold,
        ))
        self._complete(request, guest.clock.now_ns)

    def _enter_pool(self, worker: GuestWorker) -> None:
        self.pools[worker.app].append(worker)

    def _leave_pool(self, worker: GuestWorker) -> None:
        pool = self.pools[worker.app]
        if worker in pool:
            pool.remove(worker)

    def _on_retired(self, worker: GuestWorker) -> None:
        worker.retired = True
        worker.retire_ns = worker.guest.clock.now_ns
        self.live[worker.app] -= 1
        self.total_live -= 1

    # -- accounting --------------------------------------------------------

    @property
    def completed(self) -> int:
        return len(self.samples)

    @property
    def spawned(self) -> int:
        return len(self.workers)

    @property
    def retired_count(self) -> int:
        return sum(1 for worker in self.workers
                   if worker.retired and not worker.failed)

    @property
    def failed_workers(self) -> int:
        return sum(1 for worker in self.workers if worker.failed)

    @property
    def guest_seconds(self) -> float:
        """Booted-guest lifetime paid across the run, in virtual seconds."""
        total = 0.0
        for worker in self.workers:
            end = (worker.retire_ns if worker.retire_ns is not None
                   else worker.guest.clock.now_ns)
            total += max(0.0, end - worker.spawn_ns)
        return total / 1e9

    def usage_by_app(self) -> Dict[str, object]:
        """Per-app usage merged across every worker ever spawned.

        Only meaningful when the router was built with
        ``record_usage=True``; each app's traces fold order-insensitively
        (:meth:`UsageTrace.merge`), so the result is a pure function of
        the run, not of worker retirement order.  This is the fleet-scale
        recording half of the Loupe loop: the merged traces feed
        :mod:`repro.kconfig.derive`.
        """
        from repro.syscall.usage import UsageTrace

        merged: Dict[str, UsageTrace] = {}
        for worker in self.workers:
            engine = getattr(worker.guest, "engine", None)
            usage = getattr(engine, "usage", None)
            if usage is None or not usage:
                continue
            merged.setdefault(
                worker.app, UsageTrace(owner=worker.app)
            ).merge(usage)
        return {app: merged[app] for app in sorted(merged)}

    def check_conservation(self) -> None:
        """Assert the request-conservation identity (bug-trap, not load)."""
        settled = self.completed + self.failed + self.shed + self.dropped
        if settled != self.arrivals:
            raise ServingInvariantError(
                f"request conservation broke: {self.arrivals} arrivals != "
                f"{self.completed} completed + {self.failed} failed + "
                f"{self.shed} shed + {self.dropped} dropped"
            )

    @staticmethod
    def _profile(app: str):
        from repro.core.orchestrator import serving_profile

        profile = serving_profile(app)
        if profile is None:
            raise ValueError(f"app {app!r} has no serving profile")
        return profile
