"""The request router: warm-pool dispatch, cold boots, capacity queueing.

One :class:`Router` per serving run.  Each arrival goes to the warm pool
of its app (guests are per-app, so the kernel variant is implied by the
run's :class:`~repro.core.orchestrator.KernelPolicy` through
``KernelOrchestrator.variant_for``); on a miss the router cold-boots a
fresh guest through the full ``GuestSpec -> build -> boot`` pipeline --
the paper's Fig 7 boot cost, landing inside that request's latency --
and at capacity the arrival queues FIFO behind its app.

Workers are :class:`EventCore` programs.  An idle worker enters the
app's warm pool (LIFO, for keepalive locality) and either arms its idle
timeout as a virtual deadline or yields ``PARK``; the router wakes it
with :meth:`EventCore.kick` when traffic lands.  A timed-out worker
retires -- full ``shutdown`` -- unless the policy's ``min_warm`` floor
pins it, in which case it parks until kicked.  All of it is virtual-time
events on the one global heap; nothing polls.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.simcore.eventcore import PARK, EventCore, drain_deadlines
from repro.traffic.arrivals import Arrival
from repro.traffic.policy import WarmPoolPolicy


@dataclass(eq=False)  # identity semantics: pool membership is per-object
class GuestWorker:
    """One serving guest: lifecycle state the router tracks around it."""

    name: str
    app: str
    guest: object
    #: Virtual instant the worker was spawned (arrival time for cold
    #: boots, zero for pre-warmed workers).
    spawn_ns: float
    #: Whether the first request this worker serves is a cold start.
    cold_pending: bool
    inbox: Deque[Arrival] = field(default_factory=deque)
    boot_ms: float = 0.0
    served: int = 0
    retiring: bool = False
    retired: bool = False
    retire_ns: Optional[float] = None


@dataclass(frozen=True)
class LatencySample:
    """One served request's outcome."""

    index: int
    app: str
    latency_ns: float
    cold: bool


class Router:
    """Dispatches arrivals across warm pools, cold boots, and queues."""

    def __init__(self, core: EventCore, orchestrator, policy: WarmPoolPolicy,
                 apps: List[str]) -> None:
        self.core = core
        self.orchestrator = orchestrator
        self.policy = policy
        self.apps = list(apps)
        self.pools: Dict[str, List[GuestWorker]] = {a: [] for a in self.apps}
        self.backlog: Dict[str, Deque[Arrival]] = {
            a: deque() for a in self.apps
        }
        self.live: Dict[str, int] = {a: 0 for a in self.apps}
        self.total_live = 0
        self.peak_live = 0
        self.workers: List[GuestWorker] = []
        self.samples: List[LatencySample] = []
        self.cold_starts = 0
        self.queued = 0
        self.queue_high_water = 0
        self.dropped = 0
        self._profiles = {a: self._profile(a) for a in self.apps}

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, arrival: Arrival) -> None:
        """Route one arrival: warm hit, cold boot, or capacity queue."""
        pool = self.pools[arrival.app]
        if pool:
            worker = pool.pop()  # LIFO: most-recently-idle first
            worker.inbox.append(arrival)
            self.core.kick(worker.name, arrival.arrival_ns)
            return
        if self._can_spawn(arrival.app):
            self._spawn(arrival.app, start_ns=arrival.arrival_ns,
                        first=arrival)
            return
        self.backlog[arrival.app].append(arrival)
        self.queued += 1
        depth = sum(len(q) for q in self.backlog.values())
        if depth > self.queue_high_water:
            self.queue_high_water = depth

    def drop(self, arrival: Arrival) -> None:
        """An arrival the fault plane failed: counted, never served."""
        self.dropped += 1

    def next_arrival_hint(self, source) -> Optional[float]:
        """The router's idea of the next arrival: what the source armed."""
        return source.next_arrival_ns

    def pre_warm(self) -> None:
        """Spawn the policy's pre-warmed workers per app at virtual zero."""
        for app in self.apps:
            for _ in range(min(self.policy.pre_warm,
                               self.policy.max_per_app)):
                if self.total_live >= self.policy.max_total:
                    return
                self._spawn(app, start_ns=0.0, first=None)

    def finalize(self) -> None:
        """After quiescence: retire every still-live worker.

        ``EventCore.run()`` returned, so every live worker is parked (or
        floor-pinned); mark them retiring and wake them so their
        programs run the shutdown path, then ``run()`` the core again.
        """
        for worker in self.workers:
            if worker.retired:
                continue
            worker.retiring = True
            self.core.kick(worker.name, worker.guest.clock.now_ns)

    # -- worker lifecycle --------------------------------------------------

    def _can_spawn(self, app: str) -> bool:
        return (self.live[app] < self.policy.max_per_app
                and self.total_live < self.policy.max_total)

    def _spawn(self, app: str, start_ns: float,
               first: Optional[Arrival]) -> None:
        from repro.apps.registry import get_app
        from repro.simcore.guest import Guest, GuestSpec

        application = get_app(app)
        index = len(self.workers)
        spec = GuestSpec(
            name=f"serve-{app}-{index:05d}",
            variant=self.orchestrator.variant_for(application),
            app=app,
            full_image=True,
        )
        guest = Guest(
            spec,
            clock=self.core.clock_for(spec.name),
            unikernel=self.orchestrator.unikernel_for(application),
        )
        worker = GuestWorker(
            name=spec.name, app=app, guest=guest, spawn_ns=start_ns,
            cold_pending=first is not None,
        )
        if first is not None:
            worker.inbox.append(first)
            self.cold_starts += 1
        self.workers.append(worker)
        self.live[app] += 1
        self.total_live += 1
        if self.total_live > self.peak_live:
            self.peak_live = self.total_live
        self.core.spawn(spec.name, self._worker_program(worker),
                        start_ns=start_ns)

    def _worker_program(self, worker: GuestWorker):
        guest = worker.guest
        guest.build()
        yield None  # BUILT at the spawn instant; boot is the next stage
        worker.boot_ms = guest.boot().total_ms
        yield None
        while True:
            arrival = self._take_work(worker)
            if arrival is not None:
                self._serve_one(worker, arrival)
                yield None
                continue
            if worker.retiring:
                self._leave_pool(worker)
                break
            self._enter_pool(worker)
            timeout_ns = self.policy.idle_timeout_ns
            if timeout_ns is None:
                yield PARK  # keepalive forever: only a kick wakes us
                continue
            yield guest.clock.now_ns + timeout_ns
            if worker.inbox or worker.retiring:
                continue  # kicked awake with work (or into retirement)
            # The idle timeout genuinely expired: scale to zero, unless
            # the policy floor pins this worker warm.
            if self.live[worker.app] - 1 >= self.policy.min_warm:
                self._leave_pool(worker)
                break
            yield PARK
        yield from drain_deadlines(guest.clock)
        guest.shutdown()
        self._on_retired(worker)

    def _take_work(self, worker: GuestWorker) -> Optional[Arrival]:
        if worker.inbox:
            return worker.inbox.popleft()
        backlog = self.backlog[worker.app]
        if backlog:
            return backlog.popleft()
        return None

    def _serve_one(self, worker: GuestWorker, arrival: Arrival) -> None:
        guest = worker.guest
        cold = worker.cold_pending
        worker.cold_pending = False
        guest.serve(self._profiles[worker.app], 1)
        worker.served += 1
        self.samples.append(LatencySample(
            index=arrival.index,
            app=arrival.app,
            latency_ns=guest.clock.now_ns - arrival.arrival_ns,
            cold=cold,
        ))

    def _enter_pool(self, worker: GuestWorker) -> None:
        self.pools[worker.app].append(worker)

    def _leave_pool(self, worker: GuestWorker) -> None:
        pool = self.pools[worker.app]
        if worker in pool:
            pool.remove(worker)

    def _on_retired(self, worker: GuestWorker) -> None:
        worker.retired = True
        worker.retire_ns = worker.guest.clock.now_ns
        self.live[worker.app] -= 1
        self.total_live -= 1

    # -- accounting --------------------------------------------------------

    @property
    def spawned(self) -> int:
        return len(self.workers)

    @property
    def retired_count(self) -> int:
        return sum(1 for worker in self.workers if worker.retired)

    @property
    def guest_seconds(self) -> float:
        """Booted-guest lifetime paid across the run, in virtual seconds."""
        total = 0.0
        for worker in self.workers:
            end = (worker.retire_ns if worker.retire_ns is not None
                   else worker.guest.clock.now_ns)
            total += max(0.0, end - worker.spawn_ns)
        return total / 1e9

    @staticmethod
    def _profile(app: str):
        from repro.core.orchestrator import serving_profile

        profile = serving_profile(app)
        if profile is None:
            raise ValueError(f"app {app!r} has no serving profile")
        return profile
