"""The ``bench-serve`` microbenchmark: traffic-driven serving, counted.

Runs the canonical serving scenario -- a seeded diurnal trace of
:data:`SERVE_REQUESTS` requests against a 1000-guest fleet capacity --
once per warm-pool policy, and reports the deterministic work counters
plus the latency/cold-start shape of each run:

- ``serve_scale_to_zero`` -- the serverless deployment: every traffic
  trough retires the fleet past the idle timeout, every ramp cold-boots
  it again through the full ``GuestSpec -> build -> boot`` pipeline, so
  the paper's Fig 7 boot cost lands inside the latency tail;
- ``serve_fixed_pool`` -- the provisioned deployment: pre-warmed,
  keepalive-forever pools buy the tail back with guest-seconds.
- ``serve_chaos_scale_to_zero`` -- the churn deployment again, under the
  stock serving fault schedule (seeded guest crash/hang/boot-fail plus
  arrival faults): the self-healing control plane must recover --
  nonzero restarts and retries, error rate below the injected fault
  mass -- and still digest byte-identically on rerun.

Every scenario runs **twice**; the manifest digest of the rerun must be
byte-identical to the first run's, which is the serving determinism
contract (same :class:`~repro.traffic.serve.ServeSpec`, same bytes).
Both digests land in the result's dedicated ``digests`` section (they
are identities, not monotonic counts), where the ``regress`` gate pins
them -- by exact equality -- against the checked-in snapshot at
``benchmarks/baseline/BENCH_serve.json``.  Digests are hash-seed
independent (all config-option float folds iterate sorted), so no
``PYTHONHASHSEED`` pin is needed.

Nothing reported is wall-clock: boot/resolver work are counter deltas,
latency percentiles are virtual-time, and throughput is requests per
TickClock second (one fixed step per tracer clock reading -- a
machine-independent proxy for host work).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Callable, Dict, List

from repro.observe import METRICS, TRACER

#: File the benchmark JSON is written to, next to the run manifest.
BENCH_SERVE_NAME = "BENCH_serve.json"

#: The canonical trace: requests served per run (acceptance floor 100k).
SERVE_REQUESTS = 100_000

#: Mean arrival rate and diurnal shape.  One period is 1.6 virtual
#: seconds with full-depth troughs (amplitude 1.0), so a 100-second run
#: crosses ~62 troughs; each one outlives the scale-to-zero idle timeout
#: and retires the warm pools, which is what makes the fleet cold-boot
#: more than 1000 guests over the run.
SERVE_MEAN_RPS = 1000
SERVE_PERIOD_S = 1.6
SERVE_AMPLITUDE = 1.0

#: The PRNG seed arrivals and the app mix are drawn from.
SERVE_SEED = 2020  # EuroSys '20

_WORK_COUNTERS = (
    "boot.boots",
    "vmm.guest_checks",
    "kconfig.resolutions",
    "eventcore.events_dispatched",
    "eventcore.guests_fast_forwarded",
    "eventcore.kicks",
    "eventcore.parks",
)


def canonical_trace(requests: int = SERVE_REQUESTS):
    """The benchmark's diurnal trace (also the ``fleet-serve`` default)."""
    from repro.traffic.arrivals import diurnal_trace

    return diurnal_trace(
        requests=requests,
        mean_rps=SERVE_MEAN_RPS,
        period_s=SERVE_PERIOD_S,
        amplitude=SERVE_AMPLITUDE,
    )


def _measure(fn: Callable[[], None]) -> Dict[str, int]:
    """Run *fn* and return the work-counter deltas it caused."""
    before = {name: METRICS.counter(name).value for name in _WORK_COUNTERS}
    fn()
    return {
        name: METRICS.counter(name).value - before[name]
        for name in _WORK_COUNTERS
    }


def run_bench() -> Dict[str, Any]:
    """Run all scenarios (twice each) and return the result document."""
    import contextlib

    from repro import faults
    from repro.core.buildcache import BUILD_CACHE
    from repro.kconfig.rescache import RESOLUTION_CACHE
    from repro.observe.tracer import TickClock
    from repro.traffic.chaos import SERVE_CHAOS_SEED, default_serving_schedule
    from repro.traffic.policy import FIXED_POOL, SCALE_TO_ZERO
    from repro.traffic.serve import ServeSpec, run_serving

    # Start cold so the counters are history-independent: the same bench
    # numbers whether run standalone or after a full experiment sweep.
    BUILD_CACHE.reset()
    RESOLUTION_CACHE.reset()

    trace = canonical_trace()
    scenarios = [
        ("serve_scale_to_zero", SCALE_TO_ZERO, False),
        ("serve_fixed_pool", FIXED_POOL, False),
        ("serve_chaos_scale_to_zero", SCALE_TO_ZERO, True),
    ]
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    digests: Dict[str, str] = {}
    host_clock = TRACER.clock
    tick = TickClock(step_us=1000.0)
    TRACER.clock = tick
    try:
        for section, policy, chaos in scenarios:
            spec = ServeSpec(trace=trace, policy=policy, seed=SERVE_SEED)
            plane = (
                faults.activated(default_serving_schedule(SERVE_CHAOS_SEED))
                if chaos else contextlib.nullcontext()
            )
            with plane:
                box: List[Any] = []
                tick_before = tick._now
                deltas = _measure(lambda: box.append(run_serving(spec)))
                tick_elapsed_s = (tick._now - tick_before) / 1e6
                report = box[0]
                # The determinism contract: the same spec must reproduce
                # the manifest byte-for-byte -- including every fault
                # decision when a schedule is active -- so run it again
                # and record both digests (check_result asserts they
                # match).
                rerun = run_serving(spec)
            digests[f"serve.manifest_digest48.{section}"] = (
                report.manifest_digest[:12]
            )
            digests[f"serve.manifest_digest48.{section}.rerun"] = (
                rerun.manifest_digest[:12]
            )
            counters.update({
                f"{metric}.{section}": value
                for metric, value in deltas.items()
            })
            gauges[f"serve.requests.{section}"] = float(report.served)
            gauges[f"serve.dropped.{section}"] = float(report.dropped)
            gauges[f"serve.failed.{section}"] = float(report.failed)
            gauges[f"serve.shed.{section}"] = float(report.shed)
            gauges[f"serve.retries.{section}"] = float(report.retries)
            gauges[f"serve.restarts.{section}"] = float(report.restarts)
            gauges[f"serve.guests_failed.{section}"] = float(
                report.guests_failed
            )
            gauges[f"serve.error_rate.{section}"] = round(
                report.error_rate, 6
            )
            gauges[f"serve.cold_start_fraction.{section}"] = round(
                report.cold_start_fraction, 6
            )
            gauges[f"serve.latency_p50_ms.{section}"] = report.latency_ms[
                "p50"
            ]
            gauges[f"serve.latency_p99_ms.{section}"] = report.latency_ms[
                "p99"
            ]
            gauges[f"serve.latency_p999_ms.{section}"] = report.latency_ms[
                "p999"
            ]
            gauges[f"serve.queue_high_water.{section}"] = float(
                report.queue_high_water
            )
            gauges[f"serve.guests_spawned.{section}"] = float(
                report.guests_spawned
            )
            gauges[f"serve.peak_live.{section}"] = float(report.peak_live)
            gauges[f"serve.guest_seconds.{section}"] = round(
                report.guest_seconds, 3
            )
            gauges[f"serve.requests_per_tick_sec.{section}"] = round(
                report.served / tick_elapsed_s, 2
            )
    finally:
        TRACER.clock = host_clock
    return {"counters": counters, "gauges": gauges, "digests": digests,
            "histograms": {}}


def check_result(result: Dict[str, Any]) -> List[str]:
    """Return acceptance-criterion violations ([] when the result passes)."""
    counters = result.get("counters", {})
    gauges = result.get("gauges", {})
    digests = result.get("digests", {})
    failures: List[str] = []
    sections = ("serve_scale_to_zero", "serve_fixed_pool",
                "serve_chaos_scale_to_zero")
    for section in sections:
        served = gauges.get(f"serve.requests.{section}", 0.0)
        if section != "serve_chaos_scale_to_zero" and served < SERVE_REQUESTS:
            failures.append(
                f"{section} served only {served:g} requests; the canonical "
                f"trace must deliver >= {SERVE_REQUESTS}"
            )
        first = digests.get(f"serve.manifest_digest48.{section}", "")
        rerun = digests.get(f"serve.manifest_digest48.{section}.rerun", "?")
        if not first:
            failures.append(f"{section} manifest digest missing")
        if first != rerun:
            failures.append(
                f"{section} is not deterministic: rerun manifest digest48 "
                f"{rerun} != {first or '?'}"
            )
        p50 = gauges.get(f"serve.latency_p50_ms.{section}", 0.0)
        p99 = gauges.get(f"serve.latency_p99_ms.{section}", 0.0)
        p999 = gauges.get(f"serve.latency_p999_ms.{section}", 0.0)
        if not 0.0 < p50 <= p99 <= p999:
            failures.append(
                f"{section} latency percentiles disordered: "
                f"p50 {p50:g} / p99 {p99:g} / p999 {p999:g} ms"
            )
    spawned = gauges.get("serve.guests_spawned.serve_scale_to_zero", 0.0)
    if spawned < 1000:
        failures.append(
            f"scale-to-zero cold-booted only {spawned:g} guests over the "
            "trace; the churn scenario must exceed 1000"
        )
    cold = gauges.get("serve.cold_start_fraction.serve_scale_to_zero", 0.0)
    if cold <= 0.0:
        failures.append(
            "scale-to-zero reported a zero cold-start fraction; boots "
            "must appear in the served traffic"
        )
    warm_cold = gauges.get("serve.cold_start_fraction.serve_fixed_pool", 0.0)
    if warm_cold >= cold:
        failures.append(
            f"fixed-pool cold-start fraction {warm_cold:g} is not below "
            f"scale-to-zero's {cold:g}; pre-warming must absorb boots"
        )
    tail_cold = gauges.get("serve.latency_p999_ms.serve_scale_to_zero", 0.0)
    tail_warm = gauges.get("serve.latency_p999_ms.serve_fixed_pool", 0.0)
    if tail_warm >= tail_cold:
        failures.append(
            f"fixed-pool p999 {tail_warm:g} ms is not below scale-to-zero's "
            f"{tail_cold:g} ms; the warm pool must buy the tail back"
        )
    if counters.get("eventcore.kicks.serve_scale_to_zero", 0) <= 0:
        failures.append(
            "scale-to-zero recorded no EventCore kicks; dispatch cannot "
            "have woken pooled workers"
        )
    # The zero-fault scenarios must show no availability events at all
    # (installed or not, an idle fault plane is invisible) ...
    for section in ("serve_scale_to_zero", "serve_fixed_pool"):
        for metric in ("failed", "shed", "retries", "restarts",
                       "guests_failed"):
            value = gauges.get(f"serve.{metric}.{section}", 0.0)
            if value != 0.0:
                failures.append(
                    f"{section} reported {metric} = {value:g} with no fault "
                    "schedule active; the zero-fault path regressed"
                )
    # ... while the faulted scenario must show the control plane healing:
    # nonzero recovery work, request conservation, and an error rate
    # below the injected per-attempt fault mass.
    from repro.traffic.chaos import SERVE_CHAOS_RATES

    chaos = "serve_chaos_scale_to_zero"
    if gauges.get(f"serve.restarts.{chaos}", 0.0) <= 0.0:
        failures.append(
            "chaos scenario recorded no supervisor restarts; guest "
            "failures cannot have been healed"
        )
    if gauges.get(f"serve.retries.{chaos}", 0.0) <= 0.0:
        failures.append(
            "chaos scenario recorded no retries; failed requests cannot "
            "have been re-dispatched"
        )
    fault_mass = sum(SERVE_CHAOS_RATES.values())
    error_rate = gauges.get(f"serve.error_rate.{chaos}", 1.0)
    if error_rate >= fault_mass:
        failures.append(
            f"chaos error rate {error_rate:g} is not below the injected "
            f"fault mass {fault_mass:g}; retries/restarts failed to absorb "
            "the injected failures"
        )
    accounted = (
        gauges.get(f"serve.requests.{chaos}", 0.0)
        + gauges.get(f"serve.failed.{chaos}", 0.0)
        + gauges.get(f"serve.shed.{chaos}", 0.0)
        + gauges.get(f"serve.dropped.{chaos}", 0.0)
    )
    if accounted != SERVE_REQUESTS:
        failures.append(
            f"chaos scenario lost requests: served + failed + shed + "
            f"dropped = {accounted:g} != {SERVE_REQUESTS} arrivals"
        )
    return failures


def write_result(result: Dict[str, Any], path: pathlib.Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def render_summary(result: Dict[str, Any]) -> str:
    """Human-readable scenario table for the CLI."""
    gauges = result["gauges"]
    digests = result.get("digests", {})
    sections = sorted(
        key[len("serve.requests."):]
        for key in gauges if key.startswith("serve.requests.")
    )
    lines = [
        f"{'scenario':<22} {'served':>7} {'spawned':>8} {'cold%':>7} "
        f"{'p50ms':>7} {'p999ms':>8} {'guest-s':>9}"
    ]
    for section in sections:
        lines.append(
            f"{section:<22} "
            f"{int(gauges[f'serve.requests.{section}']):>7} "
            f"{int(gauges[f'serve.guests_spawned.{section}']):>8} "
            f"{gauges[f'serve.cold_start_fraction.{section}']:>7.3%} "
            f"{gauges[f'serve.latency_p50_ms.{section}']:>7.3f} "
            f"{gauges[f'serve.latency_p999_ms.{section}']:>8.3f} "
            f"{gauges[f'serve.guest_seconds.{section}']:>9.1f}"
        )
    for section in sections:
        first = digests[f"serve.manifest_digest48.{section}"]
        rerun = digests[f"serve.manifest_digest48.{section}.rerun"]
        lines.append(
            f"{section} manifest digest48: {first} "
            f"(rerun matches: {first == rerun})"
        )
    return "\n".join(lines)
