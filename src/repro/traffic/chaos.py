"""The serving chaos harness behind ``repro-lupine chaos-serve``.

Runs the canonical serving bench under a seeded guest-fault schedule and
asserts the serving plane's resilience invariants:

1. **Determinism under faults.**  The same ``(ServeSpec, fault seed)``
   produces a byte-identical serving-report manifest digest on every
   rerun -- :func:`~repro.traffic.serve.run_serving` rewinds the
   plane's call counters at entry, so the n-th fault decision of a run
   is the n-th decision of any rerun, whatever ran before it.
2. **Fan-out equivalence.**  The ``--policy all`` sweep through
   :func:`~repro.traffic.serve.run_serving_many` at any ``--jobs``
   produces the same digests as the sequential sweep (worker processes
   inherit the installed plane across the ``fork`` and reset it per
   run).
3. **Zero-fault transparency.**  An installed plane with *no* scheduled
   faults changes nothing: digests match the committed
   ``BENCH_serve.json`` baseline (canonical trace), or a plain
   no-plane run (custom ``--requests``).
4. **Recovery, not collapse.**  The faulted scale-to-zero run must show
   the control plane working: nonzero restarts and retries, with the
   error rate bounded by the per-attempt fault mass -- the retry
   budget is supposed to keep errors *well below* the injection rate.

Everything is virtual-time and seeded; the gate is wired into
``tools/check.sh`` next to the harness chaos gate.  See
``docs/RESILIENCE.md`` ("Fleet-scale failure model").
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import faults
from repro.faults.plane import FaultPlane

#: The stock seed for the serving fault schedule (CLI default).
SERVE_CHAOS_SEED = 77

#: Per-attempt injection probabilities of the stock schedule.  Their sum
#: bounds the error rate a collapsed control plane would show; the
#: recovery invariant requires the *observed* error rate to stay below
#: it (retries + restarts must absorb nearly all injected failures).
SERVE_CHAOS_RATES = {
    "guest.crash": 0.004,
    "guest.hang": 0.0015,
    "guest.boot_fail": 0.02,
    "traffic.arrival": 0.0005,
}


def default_serving_schedule(seed: int) -> FaultPlane:
    """The stock serving chaos schedule: every serving-path site.

    Probabilities are moderate on purpose: the fleet should *recover*
    (retries and restarts, not errors) while every failure mode --
    mid-request crash, watchdog-killed hang, corrupted-image boot
    failure, dropped arrival -- appears many times over the canonical
    100k-request trace.  Every decision is deterministic in
    ``(seed, site, scope, call)``.
    """
    plane = FaultPlane(seed=seed)
    plane.configure("guest.crash",
                    probability=SERVE_CHAOS_RATES["guest.crash"],
                    message="injected guest crash mid-request")
    plane.configure("guest.hang",
                    probability=SERVE_CHAOS_RATES["guest.hang"],
                    message="injected guest hang (watchdog bait)")
    plane.configure("guest.boot_fail",
                    probability=SERVE_CHAOS_RATES["guest.boot_fail"],
                    message="injected corrupted-image boot failure")
    plane.configure("traffic.arrival",
                    probability=SERVE_CHAOS_RATES["traffic.arrival"],
                    message="injected arrival-path fault")
    return plane


@dataclass
class ChaosServeReport:
    """Everything one ``chaos-serve`` invocation produced."""

    seed: int
    jobs: int
    requests: int
    sections: Dict[str, Dict[str, object]] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [
            f"chaos-serve: seed={self.seed} jobs={self.jobs} "
            f"requests={self.requests}"
        ]
        for name in sorted(self.sections):
            section = self.sections[name]
            lines.append(
                f"  {name:<14}: digest48 {section['digest48']} "
                f"(rerun {section['rerun_matches']}, "
                f"jobs-sweep {section['jobs_matches']}, "
                f"zero-fault {section['zero_fault_matches']})"
            )
            lines.append(
                f"  {'':<14}  restarts {section['restarts']}, "
                f"retries {section['retries']}, "
                f"failed {section['failed']}, shed {section['shed']}, "
                f"dropped {section['dropped']}, "
                f"error rate {section['error_rate']:.4%}"
            )
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        lines.append(
            "  invariants   : " + ("all hold" if self.passed else "VIOLATED")
        )
        return "\n".join(lines)


def _baseline_digests(path: pathlib.Path) -> Dict[str, str]:
    doc = json.loads(path.read_text(encoding="utf-8"))
    return dict(doc.get("digests", {}))


def run_chaos_serve(
    seed: int = SERVE_CHAOS_SEED,
    jobs: int = 2,
    requests: Optional[int] = None,
    runs: int = 2,
    baseline_path: Optional[pathlib.Path] = None,
) -> ChaosServeReport:
    """Run the serving chaos gate (see module docstring).

    With ``requests=None`` the canonical bench trace is used and the
    zero-fault invariant is judged against *baseline_path* (the
    committed ``BENCH_serve.json``); with a custom ``requests`` the
    zero-fault reference is a plain run with no plane installed.
    """
    from repro.traffic.bench import SERVE_REQUESTS, SERVE_SEED, canonical_trace
    from repro.traffic.policy import FIXED_POOL, SCALE_TO_ZERO
    from repro.traffic.serve import ServeSpec, run_serving, run_serving_many

    canonical = requests is None
    trace = canonical_trace(SERVE_REQUESTS if canonical else int(requests))
    policies = (SCALE_TO_ZERO, FIXED_POOL)
    specs = [ServeSpec(trace=trace, policy=policy, seed=SERVE_SEED)
             for policy in policies]
    report = ChaosServeReport(seed=seed, jobs=max(1, int(jobs)),
                              requests=trace.requests)

    baseline: Dict[str, str] = {}
    if canonical and baseline_path is not None:
        path = pathlib.Path(baseline_path)
        if path.exists():
            baseline = _baseline_digests(path)

    # 1. Faulted sequential runs: every rerun must be byte-identical.
    faulted_digests: List[str] = []
    faulted_reports = []
    with faults.activated(default_serving_schedule(seed)):
        for spec in specs:
            digests = [run_serving(spec).manifest_digest]
            first = None
            for _ in range(max(1, int(runs)) - 1):
                first = run_serving(spec)
                digests.append(first.manifest_digest)
            outcome = first if first is not None else run_serving(spec)
            faulted_reports.append(outcome)
            faulted_digests.append(digests[0])
            if len(set(digests)) != 1:
                report.violations.append(
                    f"{spec.policy.name}: faulted reruns diverge: "
                    f"{sorted(d[:12] for d in set(digests))}"
                )
        # 2. The --policy all sweep across worker processes.
        sweep = run_serving_many(specs, jobs=report.jobs)
    sweep_digests = [r.manifest_digest for r in sweep]

    # 3. Zero-fault transparency: an installed-but-empty plane.
    zero_digests: List[str] = []
    with faults.activated(FaultPlane(seed)):
        for spec in specs:
            zero_digests.append(run_serving(spec).manifest_digest)
    reference_digests: List[Optional[str]] = []
    if canonical:
        for spec in specs:
            section = "serve_" + spec.policy.name.replace("-", "_")
            reference_digests.append(
                baseline.get(f"serve.manifest_digest48.{section}")
            )
    else:
        reference_digests = [run_serving(spec).manifest_digest
                             for spec in specs]

    fault_mass = sum(SERVE_CHAOS_RATES.values())
    for spec, outcome, digest, sweep_digest, zero, reference in zip(
            specs, faulted_reports, faulted_digests, sweep_digests,
            zero_digests, reference_digests):
        name = spec.policy.name
        if sweep_digest != digest:
            report.violations.append(
                f"{name}: jobs={report.jobs} sweep digest "
                f"{sweep_digest[:12]} != sequential {digest[:12]}"
            )
        zero_matches = True
        if reference is None:
            if canonical:
                report.violations.append(
                    f"{name}: no baseline digest to judge the zero-fault "
                    f"run against"
                )
                zero_matches = False
        elif not zero.startswith(reference):
            zero_matches = False
            report.violations.append(
                f"{name}: zero-fault digest {zero[:12]} != "
                f"reference {reference[:12]} (an empty plane must be "
                f"invisible)"
            )
        if outcome.error_rate >= fault_mass:
            report.violations.append(
                f"{name}: error rate {outcome.error_rate:.4%} is not below "
                f"the injected fault mass {fault_mass:.4%}; the control "
                f"plane collapsed instead of recovering"
            )
        report.sections[name] = {
            "digest48": digest[:12],
            "rerun_matches": not any(
                v.startswith(f"{name}: faulted reruns")
                for v in report.violations
            ),
            "jobs_matches": sweep_digest == digest,
            "zero_fault_matches": zero_matches,
            "restarts": outcome.restarts,
            "retries": outcome.retries,
            "failed": outcome.failed,
            "shed": outcome.shed,
            "dropped": outcome.dropped,
            "error_rate": outcome.error_rate,
        }
    return report
