"""Traffic-driven fleet serving: open-loop arrivals over the EventCore.

PR 6 gave the fleet one global virtual-time heap
(:class:`~repro.simcore.eventcore.EventCore`); this package drives it
with *traffic* instead of fixed per-guest request counts -- the
Firecracker-study framing of serverless fleets, with MultiK-style
routing across specialized kernels:

- :mod:`repro.traffic.arrivals` -- seeded open-loop traces (Poisson,
  diurnal, bursty) with a Zipf-skewed app mix, armed as deadlines on
  the arrivals clock;
- :mod:`repro.traffic.policy` -- warm-pool/keepalive policies
  (scale-to-zero idle timeout, pool floors/ceilings, pre-warm);
- :mod:`repro.traffic.router` -- warm-pool dispatch, cold boots (full
  Fig 2 + Fig 7 pipeline inside the latency tail), capacity queues,
  retry budgets, per-app circuit breakers, and load shedding;
- :mod:`repro.traffic.supervisor` -- the self-healing control plane:
  watchdog deadlines, exponential-backoff restarts, crash-loop
  quarantine, all as one EventCore program
  (:class:`~repro.traffic.supervisor.Supervisor`), tuned by a
  :class:`~repro.traffic.supervisor.ResiliencePolicy`;
- :mod:`repro.traffic.serve` -- one run end-to-end, producing the
  canonical :class:`~repro.traffic.serve.ServingReport` manifest
  (schema v2: availability + resilience sections);
- :mod:`repro.traffic.chaos` -- the ``chaos-serve`` gate: the stock
  seeded guest-fault schedule plus the rerun/jobs/zero-fault digest
  assertions;
- :mod:`repro.traffic.bench` -- the ``bench-serve`` gate.

Determinism contract: a :class:`~repro.traffic.serve.ServeSpec` fully
determines the report manifest -- same seed, byte-identical digest --
under every policy, with or without an installed fault schedule.
Conservation contract: every arrival settles in exactly one
disposition, ``arrivals == completed + failed + shed + dropped``.
See ``docs/SERVING.md`` and ``docs/RESILIENCE.md``.
"""

from repro.traffic.arrivals import (
    Arrival,
    ArrivalSource,
    TraceSpec,
    bursty_trace,
    curated_apps,
    diurnal_trace,
    poisson_trace,
    zipf_app_mix,
)
from repro.traffic.chaos import (
    SERVE_CHAOS_SEED,
    ChaosServeReport,
    default_serving_schedule,
    run_chaos_serve,
)
from repro.traffic.policy import (
    FIXED_POOL,
    SCALE_TO_ZERO,
    WarmPoolPolicy,
    named_policy,
    policy_names,
)
from repro.traffic.router import (
    GuestWorker,
    LatencySample,
    Request,
    Router,
    ServingInvariantError,
)
from repro.traffic.serve import (
    SERVE_SCHEMA_VERSION,
    ServeSpec,
    ServingReport,
    run_serving,
    run_serving_many,
)
from repro.traffic.supervisor import (
    DEFAULT_RESILIENCE,
    CircuitBreaker,
    ResiliencePolicy,
    Supervisor,
)

__all__ = [
    "Arrival",
    "ArrivalSource",
    "TraceSpec",
    "bursty_trace",
    "curated_apps",
    "diurnal_trace",
    "poisson_trace",
    "zipf_app_mix",
    "SERVE_CHAOS_SEED",
    "ChaosServeReport",
    "default_serving_schedule",
    "run_chaos_serve",
    "FIXED_POOL",
    "SCALE_TO_ZERO",
    "WarmPoolPolicy",
    "named_policy",
    "policy_names",
    "GuestWorker",
    "LatencySample",
    "Request",
    "Router",
    "ServingInvariantError",
    "SERVE_SCHEMA_VERSION",
    "ServeSpec",
    "ServingReport",
    "run_serving",
    "run_serving_many",
    "DEFAULT_RESILIENCE",
    "CircuitBreaker",
    "ResiliencePolicy",
    "Supervisor",
]
