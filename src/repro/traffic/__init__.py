"""Traffic-driven fleet serving: open-loop arrivals over the EventCore.

PR 6 gave the fleet one global virtual-time heap
(:class:`~repro.simcore.eventcore.EventCore`); this package drives it
with *traffic* instead of fixed per-guest request counts -- the
Firecracker-study framing of serverless fleets, with MultiK-style
routing across specialized kernels:

- :mod:`repro.traffic.arrivals` -- seeded open-loop traces (Poisson,
  diurnal, bursty) with a Zipf-skewed app mix, armed as deadlines on
  the arrivals clock;
- :mod:`repro.traffic.policy` -- warm-pool/keepalive policies
  (scale-to-zero idle timeout, pool floors/ceilings, pre-warm);
- :mod:`repro.traffic.router` -- warm-pool dispatch, cold boots (full
  Fig 2 + Fig 7 pipeline inside the latency tail), capacity queues;
- :mod:`repro.traffic.serve` -- one run end-to-end, producing the
  canonical :class:`~repro.traffic.serve.ServingReport` manifest;
- :mod:`repro.traffic.bench` -- the ``bench-serve`` gate.

Determinism contract: a :class:`~repro.traffic.serve.ServeSpec` fully
determines the report manifest -- same seed, byte-identical digest --
under every policy.  See ``docs/SERVING.md``.
"""

from repro.traffic.arrivals import (
    Arrival,
    ArrivalSource,
    TraceSpec,
    bursty_trace,
    curated_apps,
    diurnal_trace,
    poisson_trace,
    zipf_app_mix,
)
from repro.traffic.policy import (
    FIXED_POOL,
    SCALE_TO_ZERO,
    WarmPoolPolicy,
    named_policy,
    policy_names,
)
from repro.traffic.router import GuestWorker, LatencySample, Router
from repro.traffic.serve import (
    SERVE_SCHEMA_VERSION,
    ServeSpec,
    ServingReport,
    run_serving,
)

__all__ = [
    "Arrival",
    "ArrivalSource",
    "TraceSpec",
    "bursty_trace",
    "curated_apps",
    "diurnal_trace",
    "poisson_trace",
    "zipf_app_mix",
    "FIXED_POOL",
    "SCALE_TO_ZERO",
    "WarmPoolPolicy",
    "named_policy",
    "policy_names",
    "GuestWorker",
    "LatencySample",
    "Router",
    "SERVE_SCHEMA_VERSION",
    "ServeSpec",
    "ServingReport",
    "run_serving",
]
