"""The patched musl libc.

The KML libc patch is minimal (Section 3.2): each ``syscall`` instruction at
a call site becomes a same-privilege ``call`` through the entry point the
patched kernel exports via the vsyscall page.  Dynamically linked binaries
just load the patched libc; statically linked binaries must be recompiled
against it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.syscall.cpu import EntryMechanism


class LibcVariant(enum.Enum):
    """Which libc build a root filesystem ships."""

    MUSL = "musl"
    MUSL_KML = "musl-kml"
    GLIBC = "glibc"


@dataclass(frozen=True)
class MuslLibc:
    """A musl libc build, possibly KML-patched."""

    kml_patched: bool = False

    @property
    def variant(self) -> LibcVariant:
        return LibcVariant.MUSL_KML if self.kml_patched else LibcVariant.MUSL

    def entry_mechanism(self, kernel_exports_kml_entry: bool) -> EntryMechanism:
        """How binaries linked against this libc enter the kernel.

        A KML-patched libc on a non-KML kernel falls back to the ``syscall``
        instruction (the vsyscall page does not export the call entry), so
        mixing components degrades gracefully instead of crashing.
        """
        if self.kml_patched and kernel_exports_kml_entry:
            return EntryMechanism.KML_CALL
        return EntryMechanism.SYSCALL

    def can_run_binary(self, statically_linked: bool,
                       recompiled_against_kml: bool = False) -> bool:
        """Whether a binary gets KML entry without modification.

        Dynamic binaries need nothing; static ones must be recompiled
        against the patched libc (Section 3.2).
        """
        if not self.kml_patched:
            return True
        if statically_linked:
            return recompiled_against_kml
        return True
