"""The KML kernel patch.

Applying the patch to a kernel source tree adds the
``CONFIG_KERNEL_MODE_LINUX`` option.  The paper modifies KML so *all*
processes run in kernel mode (upstream KML only elevates executables under
``/trusted``); both behaviours are modelled.

The patch only exists for Linux up to 4.0 ("the most recent available
version for KML", Section 4), and conflicts with ``CONFIG_PARAVIRT`` --
enforced here and by the resolver through the option's dependency
expression ``X86_64 && !PARAVIRT``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kconfig.database import build_linux_tree
from repro.kconfig.model import KconfigTree


class PatchError(RuntimeError):
    """Raised when a patch cannot be applied."""


#: Kernel versions the KML patch applies to cleanly.
KML_SUPPORTED_VERSIONS = ("4.0",)


@dataclass(frozen=True)
class KmlPatch:
    """The Kernel Mode Linux patch.

    ``all_processes_kernel_mode`` is the paper's Lupine modification: the
    single application always runs in ring 0 instead of requiring the
    ``/trusted`` path convention.
    """

    all_processes_kernel_mode: bool = True

    def apply(self, kernel_version: str = "4.0") -> KconfigTree:
        """Apply the patch, returning the patched option tree."""
        if kernel_version not in KML_SUPPORTED_VERSIONS:
            raise PatchError(
                f"KML patch does not apply to Linux {kernel_version}; "
                f"supported: {', '.join(KML_SUPPORTED_VERSIONS)}"
            )
        return build_linux_tree(version=kernel_version, patches=("kml",))

    def runs_in_kernel_mode(self, executable_path: str) -> bool:
        """Would a process started from *executable_path* run in ring 0?"""
        if self.all_processes_kernel_mode:
            return True
        return executable_path.startswith("/trusted/")
