"""Kernel Mode Linux (KML) substrate.

Models the two halves of the paper's syscall-overhead elimination
(Section 3.2): the KML kernel patch (which adds ``CONFIG_KERNEL_MODE_LINUX``
and runs processes in ring 0) and the patched musl libc (which replaces
``syscall`` instructions with same-privilege ``call``s through the
vsyscall-exported entry point).
"""

from repro.kml.libc import LibcVariant, MuslLibc
from repro.kml.patch import KmlPatch, PatchError

__all__ = ["KmlPatch", "LibcVariant", "MuslLibc", "PatchError"]
