"""CPU cost model for kernel entry/exit and per-syscall overheads.

All values are simulated nanoseconds, calibrated so the *ratios* the paper
reports fall out of the mechanism:

- a ``syscall``/``sysret`` pair (ring 3 -> ring 0 -> ring 3) costs
  ``SYSCALL_ENTRY_NS``;
- a KML same-privilege ``call`` costs ``KML_CALL_NS`` -- the only thing KML
  changes (kernel execution paths are identical, Section 3.2);
- the legacy ``int 0x80`` entry is modelled for completeness;
- KPTI adds a CR3 switch + TLB flush per entry *and* exit, reproducing the
  paper's observed 10x null-syscall slowdown (Section 3.1.2);
- per-syscall overheads are charged for configured-in auditing/seccomp, and
  data-path overheads for debug/hardening options on VFS/allocator paths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Mapping

#: Cost of a hardware privilege transition round trip (syscall + sysret).
SYSCALL_ENTRY_NS = 30.0

#: Cost of a same-privilege call/ret used by KML kernel-mode processes
#: (still runs the kernel's syscall prologue: stack switch, register save).
KML_CALL_NS = 17.0

#: Cost of the legacy ``int 0x80`` soft-interrupt entry.
INT80_ENTRY_NS = 110.0

#: Extra cost per kernel entry AND exit when KPTI is active (CR3 write +
#: TLB flush).  Two charges per syscall give the paper's ~10x null-call hit.
KPTI_SWITCH_NS = 145.0

#: Per-syscall overhead of syscall-entry hooks, by config option.
SYSCALL_HOOK_NS: Mapping[str, float] = {
    "AUDITSYSCALL": 6.5,
    "SECCOMP": 2.5,
    "SECCOMP_FILTER": 4.0,
    "FTRACE_SYSCALLS": 1.5,
    "SECURITY": 2.0,
}

#: Per-syscall overhead on data-path syscalls (VFS, allocator), by option.
DATA_PATH_HOOK_NS: Mapping[str, float] = {
    "SLUB_DEBUG": 8.0,
    "DEBUG_LIST": 4.0,
    "DEBUG_SG": 2.0,
    "DEBUG_MUTEXES": 3.0,
    "DEBUG_SPINLOCK": 3.0,
    "DEBUG_PAGEALLOC": 3.5,
    "SECURITY_SELINUX": 5.0,
    "AUDIT": 2.0,
}

#: Direct cost of a thread context switch (same address space), excluding
#: config-dependent overheads and cache-refill effects.
THREAD_SWITCH_NS = 380.0

#: How strongly data-path debug/hardening options inflate a context switch
#: (they instrument the runqueue/stack bookkeeping the switch touches).
SWITCH_HOOK_FACTOR = 5.0

#: Additional cost for switching between different address spaces (CR3 write
#: plus TLB refill amortization).  The paper (Figure 12) finds process
#: switching is *not* slower than thread switching on modern tagged TLBs, so
#: this is nearly zero; lazy TLB handling can even make it slightly cheaper.
ADDRESS_SPACE_SWITCH_NS = -10.0

#: Cost multiplier applied to in-kernel work when compiled with -Os.
OS_SIZE_OPT_SLOWDOWN = 1.10


class EntryMechanism(enum.Enum):
    """How user code enters the kernel for a system call."""

    SYSCALL = "syscall"
    INT80 = "int80"
    KML_CALL = "kml-call"

    @property
    def entry_ns(self) -> float:
        return {
            EntryMechanism.SYSCALL: SYSCALL_ENTRY_NS,
            EntryMechanism.INT80: INT80_ENTRY_NS,
            EntryMechanism.KML_CALL: KML_CALL_NS,
        }[self]

    @property
    def crosses_privilege(self) -> bool:
        return self is not EntryMechanism.KML_CALL


@dataclass(frozen=True)
class CpuCostModel:
    """Aggregated per-configuration CPU costs.

    Built once from a set of enabled options; the dispatch engine then only
    does additions per simulated syscall.
    """

    entry: EntryMechanism
    kpti: bool
    size_optimized: bool
    syscall_hook_ns: float
    data_path_hook_ns: float

    @classmethod
    def for_options(
        cls,
        enabled_options: Iterable[str],
        entry: EntryMechanism = EntryMechanism.SYSCALL,
        kpti: bool = False,
        size_optimized: bool = False,
    ) -> "CpuCostModel":
        enabled: FrozenSet[str] = frozenset(enabled_options)
        hook = sum(
            cost for option, cost in SYSCALL_HOOK_NS.items() if option in enabled
        )
        data = sum(
            cost for option, cost in DATA_PATH_HOOK_NS.items() if option in enabled
        )
        if kpti and "PAGE_TABLE_ISOLATION" not in enabled:
            raise ValueError("KPTI requested but PAGE_TABLE_ISOLATION not enabled")
        return cls(
            entry=entry,
            kpti=kpti,
            size_optimized=size_optimized,
            syscall_hook_ns=hook,
            data_path_hook_ns=data,
        )

    @property
    def kernel_work_factor(self) -> float:
        """Multiplier on in-kernel work (``-Os`` slows kernel paths)."""
        return OS_SIZE_OPT_SLOWDOWN if self.size_optimized else 1.0

    def entry_exit_ns(self) -> float:
        """Cost to get into and out of the kernel for one syscall."""
        cost = self.entry.entry_ns
        if self.kpti and self.entry.crosses_privilege:
            cost += 2.0 * KPTI_SWITCH_NS
        return cost

    def syscall_ns(self, handler_ns: float, data_path: bool) -> float:
        """Total simulated latency of one syscall."""
        work = handler_ns + self.syscall_hook_ns
        if data_path:
            work += self.data_path_hook_ns
        return self.entry_exit_ns() + work * self.kernel_work_factor

    def context_switch_ns(self, same_address_space: bool) -> float:
        """Cost of one scheduler context switch."""
        cost = THREAD_SWITCH_NS + SWITCH_HOOK_FACTOR * self.data_path_hook_ns
        if not same_address_space:
            cost += ADDRESS_SPACE_SWITCH_NS
            if self.kpti:
                cost += KPTI_SWITCH_NS
        return cost * self.kernel_work_factor
