"""System-call substrate.

Models the pieces of the Linux syscall machinery the paper measures:

- :mod:`repro.syscall.table` -- the syscall table, including exactly which
  Kconfig options gate which syscalls (paper Table 1).
- :mod:`repro.syscall.cpu` -- the CPU cost model: privilege-transition
  costs for ``syscall``/``int 0x80``/KML ``call`` entry, KPTI flushes,
  per-syscall mitigation costs.
- :mod:`repro.syscall.dispatch` -- the dispatch engine: resolves a syscall
  against a kernel configuration and charges simulated time.
- :mod:`repro.syscall.lmbench` -- lmbench-style micro-benchmarks (null/read/
  write latency, context switch, select, etc.) used for Figures 9-11 and
  Table 5.
"""

from repro.syscall.cpu import CpuCostModel, EntryMechanism
from repro.syscall.dispatch import SyscallEngine, SyscallError, SyscallNotImplemented
from repro.syscall.table import (
    OPTION_SYSCALLS,
    SYSCALLS,
    Syscall,
    option_for_syscall,
    syscalls_for_option,
)

__all__ = [
    "CpuCostModel",
    "EntryMechanism",
    "OPTION_SYSCALLS",
    "SYSCALLS",
    "Syscall",
    "SyscallEngine",
    "SyscallError",
    "SyscallNotImplemented",
    "option_for_syscall",
    "syscalls_for_option",
]
