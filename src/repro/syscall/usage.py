"""Usage recording: which syscalls and config options a guest exercises.

Loupe (PAPERS.md) showed that *measured* syscall usage beats static
analysis for deciding what an OS layer must support.  A
:class:`UsageTrace` rides on a
:class:`~repro.syscall.dispatch.SyscallEngine` and records,
deterministically, every syscall invoked (with counts), every
config-gated option exercised, and every ENOSYS miss (syscall name ->
missing option) -- including through ``invoke_batch`` closed-form folds,
which attribute usage per distinct name without stepping the loop.

The recorder is pure bookkeeping: attaching one never changes engine
timing, call counters, or manifest digests.  Facilities (socket
families, mounts, kernel crypto) are recorded by the workload layer via
:meth:`UsageTrace.record_facility`, since the engine itself only sees
syscall names.

Traces interchange through the strace format (:mod:`repro.syscall.strace`)
and feed :mod:`repro.kconfig.derive`, which turns an observed usage set
into a concrete kernel configuration.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.syscall.strace import format_trace, parse_trace_events
from repro.syscall.table import SYSCALLS, option_for_syscall

#: Return value recorded for an ENOSYS miss in strace interchange text
#: (``-38`` is the Linux ENOSYS errno; successful calls render ``= 0``).
ENOSYS_RETURN = -38


@dataclass
class UsageTrace:
    """Deterministic record of one guest's syscall/config-option usage.

    ``syscall_counts`` and ``option_counts`` count successful
    invocations (options via the Table 1 gating of each syscall);
    ``misses`` maps syscalls that returned ENOSYS to the option whose
    absence caused it (``None`` for unknown syscalls).  ``facilities``
    holds runtime facilities touched by the workload layer.
    """

    owner: str = ""
    syscall_counts: Dict[str, int] = field(default_factory=dict)
    option_counts: Dict[str, int] = field(default_factory=dict)
    misses: Dict[str, Optional[str]] = field(default_factory=dict)
    facilities: Set[str] = field(default_factory=set)

    # -- recording ---------------------------------------------------------

    def record(self, name: str, option: Optional[str], repeats: int = 1) -> None:
        """Record *repeats* successful invocations of *name*.

        *option* is the syscall's gating option (``None`` for ungated
        syscalls).  ``invoke_batch`` calls this once per distinct name
        with the full repeat count -- attribution without stepping.
        """
        if repeats <= 0:
            return
        self.syscall_counts[name] = self.syscall_counts.get(name, 0) + repeats
        if option is not None:
            self.option_counts[option] = (
                self.option_counts.get(option, 0) + repeats
            )

    def record_miss(self, name: str, missing_option: Optional[str]) -> None:
        """Record an ENOSYS failure of *name* (gated out or unknown)."""
        self.misses[name] = missing_option

    def record_facility(self, facility: str) -> None:
        """Record a touched runtime facility (e.g. ``socket:inet``)."""
        self.facilities.add(facility)

    # -- views -------------------------------------------------------------

    @property
    def syscalls(self) -> FrozenSet[str]:
        """Distinct syscalls observed to succeed."""
        return frozenset(self.syscall_counts)

    @property
    def options(self) -> FrozenSet[str]:
        """Config-gated options exercised by successful syscalls."""
        return frozenset(self.option_counts)

    @property
    def missing_options(self) -> FrozenSet[str]:
        """Options whose absence produced an observed ENOSYS."""
        return frozenset(
            option for option in self.misses.values() if option is not None
        )

    @property
    def call_count(self) -> int:
        return sum(self.syscall_counts.values())

    def __bool__(self) -> bool:
        return bool(self.syscall_counts or self.misses or self.facilities)

    # -- merging -----------------------------------------------------------

    def merge(self, other: "UsageTrace") -> None:
        """Fold *other*'s observations into this trace (order-insensitive)."""
        for name, count in other.syscall_counts.items():
            self.syscall_counts[name] = (
                self.syscall_counts.get(name, 0) + count
            )
        for option, count in other.option_counts.items():
            self.option_counts[option] = (
                self.option_counts.get(option, 0) + count
            )
        for name, option in other.misses.items():
            self.misses.setdefault(name, option)
        self.facilities.update(other.facilities)

    @classmethod
    def merged(
        cls, traces: Iterable["UsageTrace"], owner: str = ""
    ) -> "UsageTrace":
        """Merge many traces (e.g. every worker that served one app)."""
        out = cls(owner=owner)
        for trace in traces:
            out.merge(trace)
        return out

    # -- interchange -------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Canonical (sorted) dict form; the digest is computed over it."""
        return {
            "owner": self.owner,
            "syscalls": dict(sorted(self.syscall_counts.items())),
            "options": dict(sorted(self.option_counts.items())),
            "misses": {
                name: option or ""
                for name, option in sorted(self.misses.items())
            },
            "facilities": sorted(self.facilities),
        }

    def digest(self) -> str:
        """sha256 over the canonical JSON form (hash-seed independent)."""
        payload = json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    def to_strace(self) -> str:
        """Render the usage *set* as strace interchange text.

        One line per distinct successful syscall (``= 0``) in sorted
        order, then one per miss (``= -38``, ENOSYS).  Counts are not
        preserved -- the interchange format carries the exercise set,
        which is all derivation needs.
        """
        events: list = [(name, 0) for name in sorted(self.syscall_counts)]
        events.extend(
            (name, ENOSYS_RETURN) for name in sorted(self.misses)
        )
        return format_trace(events)

    @classmethod
    def from_strace(cls, text: str, owner: str = "") -> "UsageTrace":
        """Rebuild a usage set from strace text captured elsewhere.

        Negative returns are recorded as misses; options are attributed
        through the Table 1 gating.  Unknown syscall names are skipped
        (the parser's non-strict behaviour).
        """
        trace = cls(owner=owner)
        for name, ret in parse_trace_events(text):
            if ret is not None and ret < 0:
                trace.record_miss(name, option_for_syscall(name))
            else:
                trace.record(name, option_for_syscall(name))
        return trace

    def to_manifest(self, entrypoint: Tuple[str, ...] = ()):
        """Export as an :class:`~repro.core.manifest.ApplicationManifest`."""
        from repro.core.manifest import manifest_from_trace

        known_misses = {name for name in self.misses if name in SYSCALLS}
        return manifest_from_trace(
            app_name=self.owner,
            traced_syscalls=self.syscalls | known_misses,
            traced_facilities=sorted(self.facilities),
            entrypoint=entrypoint,
        )
