"""Syscall dispatch: resolve a syscall against a kernel config and charge time.

The :class:`SyscallEngine` is the meeting point of the three things that
determine syscall latency in the paper:

1. which syscalls are compiled in (config gating, Table 1) -- calling a
   compiled-out syscall returns ``ENOSYS``, which is exactly the
   "function not implemented" failure mode used to derive per-app configs;
2. the entry mechanism (``syscall`` vs KML ``call``); and
3. config-dependent per-syscall overheads (audit, seccomp, debug options).

The engine is deterministic: no wall clock; simulated nanoseconds accumulate
on an internal counter.  A small deterministic jitter (derived from the call
sequence number) models measurement noise without breaking reproducibility.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from repro.simcore.clock import VirtualClock
from repro.syscall.cpu import CpuCostModel, EntryMechanism
from repro.syscall.table import SYSCALLS, Syscall
from repro.syscall.usage import UsageTrace


class SyscallError(Exception):
    """Base class for simulated syscall failures."""

    errno_name = "EINVAL"


class SyscallNotImplemented(SyscallError):
    """ENOSYS: the syscall is not compiled into this kernel.

    Carries the gating option so callers (and the manifest-derivation loop
    of Section 4.1) can report *which* option is missing, mirroring error
    messages like "the futex facility returned an unexpected error code".
    """

    errno_name = "ENOSYS"

    def __init__(self, syscall_name: str, missing_option: Optional[str]):
        self.syscall_name = syscall_name
        self.missing_option = missing_option
        hint = (
            f" (enable CONFIG_{missing_option})" if missing_option else ""
        )
        super().__init__(f"{syscall_name}: function not implemented{hint}")


@dataclass
class SyscallResult:
    """Outcome of one simulated syscall."""

    name: str
    latency_ns: float
    value: int = 0


@dataclass
class SyscallEngine:
    """Dispatches simulated syscalls for one kernel instance.

    ``enabled_options`` comes from a resolved config; ``cost_model`` from
    :class:`~repro.syscall.cpu.CpuCostModel`.  The engine counts calls and
    accumulates simulated time, which the lmbench and workload layers read.
    """

    enabled_options: FrozenSet[str]
    cost_model: CpuCostModel
    clock: VirtualClock = field(default_factory=VirtualClock)
    call_count: int = 0
    per_syscall_counts: Dict[str, int] = field(default_factory=dict)
    #: Optional usage recorder (see :mod:`repro.syscall.usage`).  Pure
    #: bookkeeping: attaching one never changes timing or counters.
    usage: Optional[UsageTrace] = None

    @property
    def clock_ns(self) -> float:
        """Simulated nanoseconds accumulated on this engine's clock."""
        return self.clock.now_ns

    @clock_ns.setter
    def clock_ns(self, value: float) -> None:
        # Exact-set semantics: legacy call sites do ``engine.clock_ns = 0.0``
        # and ``engine.clock_ns += x``; ``jump_to`` lands on the exact
        # value (no ``now + (value - now)`` rounding detour).
        self.clock.jump_to(value)

    @classmethod
    def for_config(
        cls,
        enabled_options: Iterable[str],
        entry: EntryMechanism = EntryMechanism.SYSCALL,
        kpti: bool = False,
        size_optimized: bool = False,
        clock: Optional[VirtualClock] = None,
    ) -> "SyscallEngine":
        enabled = frozenset(enabled_options)
        return cls(
            enabled_options=enabled,
            cost_model=CpuCostModel.for_options(
                enabled, entry=entry, kpti=kpti, size_optimized=size_optimized
            ),
            clock=clock if clock is not None else VirtualClock(),
        )

    # -- availability ------------------------------------------------------

    def lookup(self, name: str) -> Syscall:
        """Resolve *name*; raise :class:`SyscallNotImplemented` if gated out."""
        syscall = SYSCALLS.get(name)
        if syscall is None:
            raise SyscallNotImplemented(name, None)
        if syscall.option is not None and syscall.option not in self.enabled_options:
            raise SyscallNotImplemented(name, syscall.option)
        return syscall

    def supports(self, name: str) -> bool:
        try:
            self.lookup(name)
        except SyscallNotImplemented:
            return False
        return True

    def _lookup_recorded(self, name: str) -> Syscall:
        """``lookup`` that reports ENOSYS misses to the usage recorder.

        Only invocation paths use this; ``supports`` probes stay
        unrecorded (a capability check is not an exercised syscall).
        """
        try:
            return self.lookup(name)
        except SyscallNotImplemented as exc:
            if self.usage is not None:
                self.usage.record_miss(exc.syscall_name, exc.missing_option)
            raise

    # -- invocation --------------------------------------------------------

    def invoke(self, name: str, work_ns: float = 0.0) -> SyscallResult:
        """Invoke syscall *name*, charging entry + handler + *work_ns*.

        *work_ns* models data-dependent handler work (e.g. copied bytes).
        """
        syscall = self._lookup_recorded(name)
        latency = self.cost_model.syscall_ns(
            syscall.handler_ns + work_ns, syscall.data_path
        )
        latency += self._jitter()
        self.clock.advance(latency)
        self.call_count += 1
        self.per_syscall_counts[name] = self.per_syscall_counts.get(name, 0) + 1
        if self.usage is not None:
            self.usage.record(name, syscall.option)
        return SyscallResult(name=name, latency_ns=latency)

    def latency_ns(self, name: str, work_ns: float = 0.0) -> float:
        """Latency of *name* without mutating engine state (no jitter)."""
        syscall = self.lookup(name)
        return self.cost_model.syscall_ns(
            syscall.handler_ns + work_ns, syscall.data_path
        )

    def cpu_work(self, duration_ns: float) -> None:
        """Charge userspace CPU time (busy-wait loops in Figure 10)."""
        if duration_ns < 0:
            raise ValueError("cannot perform negative work")
        self.clock.advance(duration_ns)

    def invoke_batch(self, names: Sequence[str], work_ns: float,
                     repeats: int) -> float:
        """Drive ``repeats`` rounds of ``invoke(name) for name in names``
        followed by ``cpu_work(work_ns)``, bit-for-bit equivalent to the
        stepped calls but without per-call dispatch overhead.

        The per-call cost is closed-form: base latency is a pure function
        of the syscall, and the deterministic jitter a pure function of
        the call sequence number with period 1000 (``c * 2654435761 mod
        1000``).  The full addend series therefore repeats every
        ``lcm(len(names), 1000) / len(names)`` rounds, so one period is
        materialized and the fold replayed from it.  The fold itself must
        stay element-wise -- IEEE-754 addition is not associative, and
        golden parity requires the exact same additions in the exact same
        order as the stepped loop -- but it runs over a local float with
        precomputed addends, which is what makes ``LinuxServerStack.run``
        cheap at fleet scale.

        Returns the new ``clock_ns``.  Raises
        :class:`SyscallNotImplemented` (before charging anything) if any
        name is config-gated; callers needing the stepped loop's
        partial-charge semantics must fall back to per-call ``invoke``.
        """
        if repeats < 0:
            raise ValueError("cannot run a negative number of rounds")
        if work_ns < 0:
            raise ValueError("cannot perform negative work")
        syscalls = [self._lookup_recorded(name) for name in names]
        if repeats == 0:
            return self.clock_ns
        bases = [
            self.cost_model.syscall_ns(s.handler_ns, s.data_path)
            for s in syscalls
        ]
        entry_ns = self.cost_model.entry.entry_ns
        stride = len(names)
        # Distinct jitter phases recur after period(stride) rounds.
        period = 1000 // math.gcd(stride, 1000) if stride else 1
        period = min(period, repeats)
        start_count = self.call_count
        addends: List[float] = []
        for round_index in range(period):
            count = start_count + round_index * stride
            for base in bases:
                phase = (count * 2654435761) % 1000
                # Same expression *and association* as invoke()+_jitter():
                # float multiplication is no more associative than
                # addition.
                addends.append(
                    base + ((phase / 1000.0) - 0.5) * 0.03 * entry_ns
                )
                count += 1
            addends.append(work_ns)
        clock = self.clock_ns
        full_periods, tail_rounds = divmod(repeats, period)
        for _ in range(full_periods):
            for addend in addends:
                clock += addend
        for addend in addends[: tail_rounds * (stride + 1)]:
            clock += addend
        self.clock.advance_to(clock)
        self.call_count += repeats * stride
        for name in names:
            self.per_syscall_counts[name] = (
                self.per_syscall_counts.get(name, 0) + repeats
            )
        if self.usage is not None:
            # Closed-form attribution: one record per position with the
            # full repeat count -- no stepping, same totals as the loop.
            for name, syscall in zip(names, syscalls):
                self.usage.record(name, syscall.option, repeats)
        return clock

    def _jitter(self) -> float:
        # +/-1.5% deterministic jitter keyed on the call sequence number.
        phase = (self.call_count * 2654435761) % 1000
        return ((phase / 1000.0) - 0.5) * 0.03 * self.cost_model.entry.entry_ns

    # -- reporting ---------------------------------------------------------

    def reset_clock(self) -> None:
        self.clock.jump_to(0.0)
        self.call_count = 0
        self.per_syscall_counts.clear()
