"""Syscall dispatch: resolve a syscall against a kernel config and charge time.

The :class:`SyscallEngine` is the meeting point of the three things that
determine syscall latency in the paper:

1. which syscalls are compiled in (config gating, Table 1) -- calling a
   compiled-out syscall returns ``ENOSYS``, which is exactly the
   "function not implemented" failure mode used to derive per-app configs;
2. the entry mechanism (``syscall`` vs KML ``call``); and
3. config-dependent per-syscall overheads (audit, seccomp, debug options).

The engine is deterministic: no wall clock; simulated nanoseconds accumulate
on an internal counter.  A small deterministic jitter (derived from the call
sequence number) models measurement noise without breaking reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional

from repro.syscall.cpu import CpuCostModel, EntryMechanism
from repro.syscall.table import SYSCALLS, Syscall


class SyscallError(Exception):
    """Base class for simulated syscall failures."""

    errno_name = "EINVAL"


class SyscallNotImplemented(SyscallError):
    """ENOSYS: the syscall is not compiled into this kernel.

    Carries the gating option so callers (and the manifest-derivation loop
    of Section 4.1) can report *which* option is missing, mirroring error
    messages like "the futex facility returned an unexpected error code".
    """

    errno_name = "ENOSYS"

    def __init__(self, syscall_name: str, missing_option: Optional[str]):
        self.syscall_name = syscall_name
        self.missing_option = missing_option
        hint = (
            f" (enable CONFIG_{missing_option})" if missing_option else ""
        )
        super().__init__(f"{syscall_name}: function not implemented{hint}")


@dataclass
class SyscallResult:
    """Outcome of one simulated syscall."""

    name: str
    latency_ns: float
    value: int = 0


@dataclass
class SyscallEngine:
    """Dispatches simulated syscalls for one kernel instance.

    ``enabled_options`` comes from a resolved config; ``cost_model`` from
    :class:`~repro.syscall.cpu.CpuCostModel`.  The engine counts calls and
    accumulates simulated time, which the lmbench and workload layers read.
    """

    enabled_options: FrozenSet[str]
    cost_model: CpuCostModel
    clock_ns: float = 0.0
    call_count: int = 0
    per_syscall_counts: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def for_config(
        cls,
        enabled_options: Iterable[str],
        entry: EntryMechanism = EntryMechanism.SYSCALL,
        kpti: bool = False,
        size_optimized: bool = False,
    ) -> "SyscallEngine":
        enabled = frozenset(enabled_options)
        return cls(
            enabled_options=enabled,
            cost_model=CpuCostModel.for_options(
                enabled, entry=entry, kpti=kpti, size_optimized=size_optimized
            ),
        )

    # -- availability ------------------------------------------------------

    def lookup(self, name: str) -> Syscall:
        """Resolve *name*; raise :class:`SyscallNotImplemented` if gated out."""
        syscall = SYSCALLS.get(name)
        if syscall is None:
            raise SyscallNotImplemented(name, None)
        if syscall.option is not None and syscall.option not in self.enabled_options:
            raise SyscallNotImplemented(name, syscall.option)
        return syscall

    def supports(self, name: str) -> bool:
        try:
            self.lookup(name)
        except SyscallNotImplemented:
            return False
        return True

    # -- invocation --------------------------------------------------------

    def invoke(self, name: str, work_ns: float = 0.0) -> SyscallResult:
        """Invoke syscall *name*, charging entry + handler + *work_ns*.

        *work_ns* models data-dependent handler work (e.g. copied bytes).
        """
        syscall = self.lookup(name)
        latency = self.cost_model.syscall_ns(
            syscall.handler_ns + work_ns, syscall.data_path
        )
        latency += self._jitter()
        self.clock_ns += latency
        self.call_count += 1
        self.per_syscall_counts[name] = self.per_syscall_counts.get(name, 0) + 1
        return SyscallResult(name=name, latency_ns=latency)

    def latency_ns(self, name: str, work_ns: float = 0.0) -> float:
        """Latency of *name* without mutating engine state (no jitter)."""
        syscall = self.lookup(name)
        return self.cost_model.syscall_ns(
            syscall.handler_ns + work_ns, syscall.data_path
        )

    def cpu_work(self, duration_ns: float) -> None:
        """Charge userspace CPU time (busy-wait loops in Figure 10)."""
        if duration_ns < 0:
            raise ValueError("cannot perform negative work")
        self.clock_ns += duration_ns

    def _jitter(self) -> float:
        # +/-1.5% deterministic jitter keyed on the call sequence number.
        phase = (self.call_count * 2654435761) % 1000
        return ((phase / 1000.0) - 0.5) * 0.03 * self.cost_model.entry.entry_ns

    # -- reporting ---------------------------------------------------------

    def reset_clock(self) -> None:
        self.clock_ns = 0.0
        self.call_count = 0
        self.per_syscall_counts.clear()
