"""lmbench-style micro-benchmarks over the simulated kernel.

Implements the measurements of Figure 9 (null/read/write latency), Figure 10
(KML amortization), and the full suite of Appendix A Table 5 (process
latencies, context switching, local communication, file & VM latencies,
bandwidths).  Each benchmark runs the workload's real syscall sequence
through a :class:`~repro.syscall.dispatch.SyscallEngine`, so configuration
effects (gating, hooks, KML entry, KPTI, -Os) show up organically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.syscall.dispatch import SyscallEngine

#: Memory copy bandwidth of the simulated machine (bytes per simulated ns).
MEM_COPY_BYTES_PER_NS = 12.0

#: Cache refill cost per KiB of working set after a context switch.
CACHE_REFILL_NS_PER_KB = 9.0

#: Per-process runqueue crowding cost once more processes than cache room.
CROWDING_NS_PER_PROC = 3.0

_DEFAULT_ITERATIONS = 200


@dataclass
class LatencyResult:
    """A single lmbench latency figure, in microseconds."""

    name: str
    microseconds: float

    def __str__(self) -> str:
        return f"{self.name}: {self.microseconds:.4f} us"


@dataclass
class LmbenchReport:
    """The full lmbench suite output for one system (Table 5 layout)."""

    system: str
    latencies_us: Dict[str, float] = field(default_factory=dict)
    bandwidths_mb_s: Dict[str, float] = field(default_factory=dict)

    def row(self, name: str) -> float:
        if name in self.latencies_us:
            return self.latencies_us[name]
        return self.bandwidths_mb_s[name]


def _mean_latency_us(engine: SyscallEngine, names, work_ns=0.0,
                     iterations: int = _DEFAULT_ITERATIONS) -> float:
    """Average latency (us) of issuing each syscall in *names* per iteration."""
    start_clock, start_calls = engine.clock_ns, engine.call_count
    for _ in range(iterations):
        for name in names:
            engine.invoke(name, work_ns=work_ns)
    elapsed = engine.clock_ns - start_clock
    return elapsed / iterations / 1000.0


# -- Figure 9 ---------------------------------------------------------------

def null_latency_us(engine: SyscallEngine) -> float:
    """The lmbench 'null' syscall test (getppid)."""
    return _mean_latency_us(engine, ["getppid"])


def read_latency_us(engine: SyscallEngine) -> float:
    """read of one byte from /dev/zero."""
    return _mean_latency_us(engine, ["read"])


def write_latency_us(engine: SyscallEngine) -> float:
    """write of one byte to /dev/null."""
    return _mean_latency_us(engine, ["write"])


# -- Figure 10 ---------------------------------------------------------------

#: Simulated cost of one busy-wait loop iteration (ns).
BUSY_WAIT_ITERATION_NS = 1.5


def null_with_busywait_us(engine: SyscallEngine, busy_iterations: int,
                          iterations: int = _DEFAULT_ITERATIONS) -> float:
    """Mean time (us) of one getppid + *busy_iterations* of CPU work.

    This is the paper's Figure 10 microbenchmark: as the busy work grows,
    the KML entry-cost saving is amortized away.
    """
    start = engine.clock_ns
    for _ in range(iterations):
        engine.invoke("getppid")
        engine.cpu_work(busy_iterations * BUSY_WAIT_ITERATION_NS)
    return (engine.clock_ns - start) / iterations / 1000.0


def kml_improvement(kml_engine: SyscallEngine, nokml_engine: SyscallEngine,
                    busy_iterations: int) -> float:
    """Fractional KML latency improvement at a given busy-wait length."""
    kml = null_with_busywait_us(kml_engine, busy_iterations)
    nokml = null_with_busywait_us(nokml_engine, busy_iterations)
    return 1.0 - (kml / nokml)


# -- context switching (Table 5 middle section) ------------------------------

def context_switch_us(engine: SyscallEngine, processes: int, size_kb: int,
                      same_address_space: bool = False) -> float:
    """lmbench lat_ctx: *processes* passing a token, each touching size_kb.

    Cost per switch = scheduler switch cost + cache refill of the working
    set (partial: with few processes some cache survives) + crowding.
    """
    if processes < 2:
        raise ValueError("lat_ctx needs at least 2 processes")
    switch = engine.cost_model.context_switch_ns(same_address_space)
    # With 2 processes half the working set survives in cache; with many,
    # nearly none does.
    survival = max(0.0, 1.0 - processes / 16.0)
    refill = size_kb * CACHE_REFILL_NS_PER_KB * (1.0 - survival)
    crowding = CROWDING_NS_PER_PROC * processes
    return (switch + refill + crowding) / 1000.0


# -- local communication ------------------------------------------------------

def pipe_latency_us(engine: SyscallEngine) -> float:
    """Round-trip of a 1-byte token through a pipe between two processes."""
    write = engine.latency_ns("write")
    read = engine.latency_ns("read")
    switch = engine.cost_model.context_switch_ns(same_address_space=False)
    return 2.0 * (write + read + switch) / 2.0 / 1000.0


def af_unix_latency_us(engine: SyscallEngine) -> float:
    send = engine.latency_ns("sendto", work_ns=40.0)
    recv = engine.latency_ns("recvfrom", work_ns=40.0)
    switch = engine.cost_model.context_switch_ns(same_address_space=False)
    return (send + recv + switch) / 1000.0


def udp_latency_us(engine: SyscallEngine, stack_ns: float) -> float:
    """UDP round trip over loopback; *stack_ns* is the per-packet net path."""
    send = engine.latency_ns("sendto", work_ns=60.0)
    recv = engine.latency_ns("recvfrom", work_ns=60.0)
    switch = engine.cost_model.context_switch_ns(same_address_space=False)
    return (send + recv + 2.0 * stack_ns + switch) / 1000.0


def tcp_latency_us(engine: SyscallEngine, stack_ns: float) -> float:
    send = engine.latency_ns("write", work_ns=80.0)
    recv = engine.latency_ns("read", work_ns=80.0)
    switch = engine.cost_model.context_switch_ns(same_address_space=False)
    return (send + recv + 2.0 * (stack_ns * 1.25) + switch) / 1000.0


def tcp_connect_latency_us(engine: SyscallEngine, stack_ns: float) -> float:
    """TCP connection establishment (3-way handshake = 3 stack traversals)."""
    connect = engine.latency_ns("connect")
    accept = engine.latency_ns("accept")
    close = engine.latency_ns("close")
    return (connect + accept + close + 3.0 * stack_ns * 1.6) / 1000.0


# -- process tests -------------------------------------------------------------

def fork_latency_us(engine: SyscallEngine) -> float:
    return (engine.latency_ns("fork") + engine.latency_ns("exit")
            + engine.latency_ns("wait4")) / 1000.0 * 18.0


def exec_latency_us(engine: SyscallEngine) -> float:
    return fork_latency_us(engine) + engine.latency_ns("execve") / 1000.0 * 25.0


def sh_latency_us(engine: SyscallEngine) -> float:
    # /bin/sh -c doubles the fork+exec and adds shell startup parsing.
    return 2.1 * exec_latency_us(engine) + 45.0


def sig_install_us(engine: SyscallEngine) -> float:
    return _mean_latency_us(engine, ["rt_sigaction"])


def sig_handle_us(engine: SyscallEngine) -> float:
    kill = engine.latency_ns("kill")
    sigreturn = engine.latency_ns("rt_sigreturn")
    delivery = engine.cost_model.entry_exit_ns() * 2.0
    return (kill + sigreturn + delivery) / 1000.0


def select_tcp_us(engine: SyscallEngine, fds: int = 100) -> float:
    return (engine.latency_ns("select", work_ns=9.0 * fds)) / 1000.0


def stat_latency_us(engine: SyscallEngine) -> float:
    return _mean_latency_us(engine, ["stat"], work_ns=120.0)


def open_close_latency_us(engine: SyscallEngine) -> float:
    return _mean_latency_us(engine, ["open", "close"], work_ns=110.0)


# -- file & VM ------------------------------------------------------------------

def file_create_us(engine: SyscallEngine, size_kb: int) -> float:
    create = engine.latency_ns("creat", work_ns=400.0)
    writes = size_kb * 1024.0 / MEM_COPY_BYTES_PER_NS
    write_calls = max(1, size_kb // 4)
    per_write = engine.latency_ns("write", work_ns=90.0)
    close = engine.latency_ns("close")
    return (create + writes + write_calls * per_write + close) / 1000.0


def file_delete_us(engine: SyscallEngine, size_kb: int) -> float:
    return (engine.latency_ns("unlink", work_ns=250.0 + 10.0 * size_kb)) / 1000.0


def mmap_latency_us(engine: SyscallEngine, size_mb: int = 8) -> float:
    per_page = 75.0  # page-table population per 4 KiB page
    pages = size_mb * 256
    return (engine.latency_ns("mmap") + pages * per_page) / 1000.0


def prot_fault_us(engine: SyscallEngine) -> float:
    return (engine.cost_model.entry_exit_ns() + 180.0) / 1000.0


def page_fault_us(engine: SyscallEngine) -> float:
    fault = engine.cost_model.entry_exit_ns() + 45.0
    if engine.cost_model.data_path_hook_ns:
        fault += engine.cost_model.data_path_hook_ns
    return fault / 1000.0


# -- bandwidths -------------------------------------------------------------------

def _stream_bandwidth_mb_s(engine: SyscallEngine, syscall_pair, chunk_kb: int,
                           copy_passes: float) -> float:
    """Bandwidth of a read/write style loop moving chunk_kb per iteration."""
    chunk_bytes = chunk_kb * 1024.0
    copy_ns = copy_passes * chunk_bytes / MEM_COPY_BYTES_PER_NS
    syscall_ns = sum(
        engine.latency_ns(name, work_ns=engine.cost_model.data_path_hook_ns
                          * (chunk_kb / 4.0))
        for name in syscall_pair
    )
    total_ns = copy_ns + syscall_ns
    return chunk_bytes / total_ns * 1000.0  # bytes/ns -> MB/s


def pipe_bandwidth_mb_s(engine: SyscallEngine) -> float:
    return _stream_bandwidth_mb_s(engine, ("write", "read"), 64, 2.0)


def af_unix_bandwidth_mb_s(engine: SyscallEngine) -> float:
    return _stream_bandwidth_mb_s(engine, ("sendto", "recvfrom"), 64, 1.8)


def tcp_bandwidth_mb_s(engine: SyscallEngine, stack_ns: float) -> float:
    chunk_bytes = 64 * 1024.0
    copy_ns = 2.0 * chunk_bytes / MEM_COPY_BYTES_PER_NS
    packets = chunk_bytes / 1448.0
    net_ns = packets * stack_ns * 0.35  # segmentation offload amortizes
    sys_ns = engine.latency_ns("write") + engine.latency_ns("read")
    return chunk_bytes / (copy_ns + net_ns + sys_ns) * 1000.0


def file_reread_mb_s(engine: SyscallEngine) -> float:
    return _stream_bandwidth_mb_s(engine, ("read",), 64, 1.7)


def mmap_reread_mb_s(engine: SyscallEngine) -> float:
    return MEM_COPY_BYTES_PER_NS * 1000.0 * 1.35


def bcopy_mb_s(engine: SyscallEngine, hand: bool = False) -> float:
    factor = 0.75 if hand else 1.05
    return MEM_COPY_BYTES_PER_NS * 1000.0 * factor


def mem_read_mb_s(engine: SyscallEngine) -> float:
    return MEM_COPY_BYTES_PER_NS * 1000.0 * 1.28


def mem_write_mb_s(engine: SyscallEngine) -> float:
    return MEM_COPY_BYTES_PER_NS * 1000.0 * 1.01


# -- full suite --------------------------------------------------------------------

def run_suite(engine: SyscallEngine, system: str,
              net_stack_ns: float) -> LmbenchReport:
    """Run the full Table 5 suite against one simulated kernel."""
    report = LmbenchReport(system=system)
    lat = report.latencies_us
    lat["null call"] = null_latency_us(engine)
    lat["null I/O"] = 0.5 * (read_latency_us(engine) + write_latency_us(engine))
    lat["stat"] = stat_latency_us(engine)
    lat["open clos"] = open_close_latency_us(engine)
    lat["slct TCP"] = select_tcp_us(engine)
    lat["sig inst"] = sig_install_us(engine)
    lat["sig hndl"] = sig_handle_us(engine)
    lat["fork proc"] = fork_latency_us(engine)
    lat["exec proc"] = exec_latency_us(engine)
    lat["sh proc"] = sh_latency_us(engine)
    for procs, size in ((2, 0), (2, 16), (2, 64), (8, 16), (8, 64), (16, 16),
                        (16, 64)):
        lat[f"{procs}p/{size}K ctxsw"] = context_switch_us(engine, procs, size)
    lat["Pipe"] = pipe_latency_us(engine)
    lat["AF UNIX"] = af_unix_latency_us(engine)
    lat["UDP"] = udp_latency_us(engine, net_stack_ns)
    lat["TCP"] = tcp_latency_us(engine, net_stack_ns)
    lat["TCP conn"] = tcp_connect_latency_us(engine, net_stack_ns)
    lat["0K Create"] = file_create_us(engine, 0)
    lat["0K Delete"] = file_delete_us(engine, 0)
    lat["10K Create"] = file_create_us(engine, 10)
    lat["10K Delete"] = file_delete_us(engine, 10)
    lat["Mmap Latency"] = mmap_latency_us(engine)
    lat["Prot Fault"] = prot_fault_us(engine)
    lat["Page Fault"] = page_fault_us(engine)
    lat["100fd selct"] = select_tcp_us(engine, fds=100) * 0.8
    bw = report.bandwidths_mb_s
    bw["Pipe"] = pipe_bandwidth_mb_s(engine)
    bw["AF UNIX"] = af_unix_bandwidth_mb_s(engine)
    bw["TCP"] = tcp_bandwidth_mb_s(engine, net_stack_ns)
    bw["File reread"] = file_reread_mb_s(engine)
    bw["Mmap reread"] = mmap_reread_mb_s(engine)
    bw["Bcopy (libc)"] = bcopy_mb_s(engine)
    bw["Bcopy (hand)"] = bcopy_mb_s(engine, hand=True)
    bw["Mem read"] = mem_read_mb_s(engine)
    bw["Mem write"] = mem_write_mb_s(engine)
    return report
