"""The Linux 4.0 syscall table with Kconfig gating.

Reproduces the paper's Table 1: the configuration options that compile
individual system calls in or out of the kernel.  Syscalls without a gating
option are always present.  Handler costs are simulated nanoseconds of
in-kernel *CPU* work, excluding entry/exit (charged by the CPU model),
config-dependent overheads (charged by the dispatch engine), and time
blocked on devices (charged by :mod:`repro.block` for storage and
:mod:`repro.netstack` for the wire).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple


@dataclass(frozen=True)
class Syscall:
    """One system call.

    ``data_path`` marks syscalls that traverse the VFS/allocator data path
    and therefore pay the data-path overhead of debug/hardening options
    (e.g. ``SLUB_DEBUG``, ``DEBUG_LIST``) when those are configured in.
    """

    name: str
    number: int
    handler_ns: float
    option: Optional[str] = None
    data_path: bool = False
    blocking: bool = False


#: Paper Table 1 verbatim: option -> syscalls enabled by it.
OPTION_SYSCALLS: Dict[str, Tuple[str, ...]] = {
    "ADVISE_SYSCALLS": ("madvise", "fadvise64"),
    "AIO": ("io_setup", "io_destroy", "io_submit", "io_cancel", "io_getevents"),
    "BPF_SYSCALL": ("bpf",),
    "EPOLL": ("epoll_ctl", "epoll_create", "epoll_create1", "epoll_wait",
              "epoll_pwait"),
    "EVENTFD": ("eventfd", "eventfd2"),
    "FANOTIFY": ("fanotify_init", "fanotify_mark"),
    "FHANDLE": ("open_by_handle_at", "name_to_handle_at"),
    "FILE_LOCKING": ("flock",),
    "FUTEX": ("futex", "set_robust_list", "get_robust_list"),
    "INOTIFY_USER": ("inotify_init", "inotify_init1", "inotify_add_watch",
                     "inotify_rm_watch"),
    "SIGNALFD": ("signalfd", "signalfd4"),
    "TIMERFD": ("timerfd_create", "timerfd_gettime", "timerfd_settime"),
    # Beyond Table 1: other option-gated syscall families the evaluation
    # touches (postgres needs SYSVIPC, Section 4.1).
    "SYSVIPC": ("shmget", "shmat", "shmdt", "shmctl", "semget", "semop",
                "semctl", "msgget", "msgsnd", "msgrcv", "msgctl"),
    "POSIX_MQUEUE": ("mq_open", "mq_unlink", "mq_timedsend",
                     "mq_timedreceive", "mq_notify", "mq_getsetattr"),
    "MEMBARRIER": ("membarrier",),
    "SYSCTL_SYSCALL": ("_sysctl",),
    "KEXEC": ("kexec_load", "kexec_file_load"),
    "USERFAULTFD": ("userfaultfd",),
    "SWAP": ("swapon", "swapoff"),
    "MODULES": ("init_module", "finit_module", "delete_module"),
    "CHECKPOINT_RESTORE": ("kcmp",),
}

_SYSCALL_OPTION: Dict[str, str] = {
    syscall: option
    for option, syscalls in OPTION_SYSCALLS.items()
    for syscall in syscalls
}

# (name, number, handler_ns, data_path, blocking). Numbers follow the x86_64
# ABI where the call exists there; family extensions use the kernel's values.
_TABLE_ROWS = (
    ("read", 0, 9.0, True, True),
    ("write", 1, 7.0, True, True),
    ("open", 2, 55.0, True, False),
    ("close", 3, 18.0, True, False),
    ("stat", 4, 32.0, True, False),
    ("fstat", 5, 16.0, True, False),
    ("lstat", 6, 33.0, True, False),
    ("poll", 7, 45.0, False, True),
    ("lseek", 8, 6.0, False, False),
    ("mmap", 9, 95.0, True, False),
    ("mprotect", 10, 60.0, True, False),
    ("munmap", 11, 70.0, True, False),
    ("brk", 12, 40.0, True, False),
    ("rt_sigaction", 13, 12.0, False, False),
    ("rt_sigprocmask", 14, 10.0, False, False),
    ("rt_sigreturn", 15, 25.0, False, False),
    ("ioctl", 16, 30.0, False, False),
    ("pread64", 17, 11.0, True, True),
    ("pwrite64", 18, 9.0, True, True),
    ("readv", 19, 14.0, True, True),
    ("writev", 20, 12.0, True, True),
    ("access", 21, 40.0, True, False),
    ("pipe", 22, 80.0, True, False),
    ("select", 23, 50.0, False, True),
    ("sched_yield", 24, 20.0, False, False),
    ("mremap", 25, 85.0, True, False),
    ("msync", 26, 50.0, True, True),
    ("mincore", 27, 30.0, False, False),
    ("madvise", 28, 35.0, True, False),
    ("shmget", 29, 70.0, False, False),
    ("shmat", 30, 75.0, False, False),
    ("shmctl", 31, 45.0, False, False),
    ("dup", 32, 15.0, False, False),
    ("dup2", 33, 18.0, False, False),
    ("pause", 34, 15.0, False, True),
    ("nanosleep", 35, 45.0, False, True),
    ("getitimer", 36, 15.0, False, False),
    ("alarm", 37, 15.0, False, False),
    ("setitimer", 38, 20.0, False, False),
    ("getpid", 39, 2.0, False, False),
    ("sendfile", 40, 60.0, True, True),
    ("socket", 41, 110.0, False, False),
    ("connect", 42, 250.0, False, True),
    ("accept", 43, 220.0, False, True),
    ("sendto", 44, 95.0, True, True),
    ("recvfrom", 45, 90.0, True, True),
    ("sendmsg", 46, 100.0, True, True),
    ("recvmsg", 47, 95.0, True, True),
    ("shutdown", 48, 40.0, False, False),
    ("bind", 49, 60.0, False, False),
    ("listen", 50, 35.0, False, False),
    ("getsockname", 51, 20.0, False, False),
    ("getpeername", 52, 20.0, False, False),
    ("socketpair", 53, 120.0, False, False),
    ("setsockopt", 54, 25.0, False, False),
    ("getsockopt", 55, 22.0, False, False),
    ("clone", 56, 1400.0, True, False),
    ("fork", 57, 1600.0, True, False),
    ("vfork", 58, 900.0, True, False),
    ("execve", 59, 5200.0, True, False),
    ("exit", 60, 300.0, False, False),
    ("wait4", 61, 120.0, False, True),
    ("kill", 62, 40.0, False, False),
    ("uname", 63, 8.0, False, False),
    ("semget", 64, 60.0, False, False),
    ("semop", 65, 45.0, False, True),
    ("semctl", 66, 40.0, False, False),
    ("shmdt", 67, 55.0, False, False),
    ("msgget", 68, 55.0, False, False),
    ("msgsnd", 69, 60.0, False, True),
    ("msgrcv", 70, 60.0, False, True),
    ("msgctl", 71, 40.0, False, False),
    ("fcntl", 72, 14.0, False, False),
    ("flock", 73, 35.0, True, True),
    ("fsync", 74, 200.0, True, True),
    ("fdatasync", 75, 160.0, True, True),
    ("truncate", 76, 60.0, True, False),
    ("ftruncate", 77, 45.0, True, False),
    ("getdents", 78, 70.0, True, False),
    ("getcwd", 79, 25.0, False, False),
    ("chdir", 80, 35.0, True, False),
    ("fchdir", 81, 20.0, False, False),
    ("rename", 82, 90.0, True, False),
    ("mkdir", 83, 85.0, True, False),
    ("rmdir", 84, 80.0, True, False),
    ("creat", 85, 95.0, True, False),
    ("link", 86, 80.0, True, False),
    ("unlink", 87, 75.0, True, False),
    ("symlink", 88, 80.0, True, False),
    ("readlink", 89, 35.0, True, False),
    ("chmod", 90, 45.0, True, False),
    ("fchmod", 91, 30.0, False, False),
    ("chown", 92, 45.0, True, False),
    ("fchown", 93, 30.0, False, False),
    ("umask", 95, 6.0, False, False),
    ("gettimeofday", 96, 15.0, False, False),
    ("getrlimit", 97, 10.0, False, False),
    ("getrusage", 98, 25.0, False, False),
    ("sysinfo", 99, 30.0, False, False),
    ("times", 100, 12.0, False, False),
    ("ptrace", 101, 150.0, False, False),
    ("getuid", 102, 2.0, False, False),
    ("syslog", 103, 60.0, False, False),
    ("getgid", 104, 2.0, False, False),
    ("setuid", 105, 25.0, False, False),
    ("setgid", 106, 25.0, False, False),
    ("geteuid", 107, 2.0, False, False),
    ("getegid", 108, 2.0, False, False),
    ("getppid", 110, 2.0, False, False),
    ("setsid", 112, 35.0, False, False),
    ("setreuid", 113, 25.0, False, False),
    ("setregid", 114, 25.0, False, False),
    ("getgroups", 115, 10.0, False, False),
    ("setgroups", 116, 20.0, False, False),
    ("setresuid", 117, 25.0, False, False),
    ("getresuid", 118, 8.0, False, False),
    ("setresgid", 119, 25.0, False, False),
    ("getresgid", 120, 8.0, False, False),
    ("capget", 125, 20.0, False, False),
    ("capset", 126, 25.0, False, False),
    ("sigaltstack", 131, 15.0, False, False),
    ("mknod", 133, 85.0, True, False),
    ("personality", 135, 8.0, False, False),
    ("statfs", 137, 40.0, True, False),
    ("fstatfs", 138, 30.0, False, False),
    ("getpriority", 140, 12.0, False, False),
    ("setpriority", 141, 15.0, False, False),
    ("sched_setparam", 142, 25.0, False, False),
    ("sched_getparam", 143, 15.0, False, False),
    ("sched_setscheduler", 144, 30.0, False, False),
    ("sched_getscheduler", 145, 12.0, False, False),
    ("sched_get_priority_max", 146, 6.0, False, False),
    ("sched_get_priority_min", 147, 6.0, False, False),
    ("mlock", 149, 70.0, True, False),
    ("munlock", 150, 55.0, True, False),
    ("mlockall", 151, 90.0, True, False),
    ("munlockall", 152, 70.0, True, False),
    ("prctl", 157, 20.0, False, False),
    ("arch_prctl", 158, 10.0, False, False),
    ("setrlimit", 160, 15.0, False, False),
    ("chroot", 161, 40.0, True, False),
    ("sync", 162, 300.0, True, True),
    ("mount", 165, 450.0, True, False),
    ("umount2", 166, 350.0, True, False),
    ("swapon", 167, 500.0, True, False),
    ("swapoff", 168, 600.0, True, False),
    ("reboot", 169, 1000.0, False, False),
    ("sethostname", 170, 15.0, False, False),
    ("setdomainname", 171, 15.0, False, False),
    ("init_module", 175, 5000.0, False, False),
    ("delete_module", 176, 2000.0, False, False),
    ("kexec_load", 246, 3000.0, False, False),
    ("gettid", 186, 2.0, False, False),
    ("readahead", 187, 50.0, True, False),
    ("setxattr", 188, 60.0, True, False),
    ("getxattr", 191, 45.0, True, False),
    ("listxattr", 194, 45.0, True, False),
    ("removexattr", 197, 55.0, True, False),
    ("tkill", 200, 35.0, False, False),
    ("time", 201, 4.0, False, False),
    ("futex", 202, 28.0, False, True),
    ("sched_setaffinity", 203, 30.0, False, False),
    ("sched_getaffinity", 204, 15.0, False, False),
    ("io_setup", 206, 120.0, False, False),
    ("io_destroy", 207, 100.0, False, False),
    ("io_getevents", 208, 60.0, False, True),
    ("io_submit", 209, 80.0, True, True),
    ("io_cancel", 210, 50.0, False, False),
    ("epoll_create", 213, 90.0, False, False),
    ("getdents64", 217, 70.0, True, False),
    ("set_tid_address", 218, 6.0, False, False),
    ("restart_syscall", 219, 10.0, False, False),
    ("semtimedop", 220, 50.0, False, True),
    ("fadvise64", 221, 30.0, True, False),
    ("timer_create", 222, 45.0, False, False),
    ("timer_settime", 223, 30.0, False, False),
    ("timer_gettime", 224, 20.0, False, False),
    ("timer_getoverrun", 225, 12.0, False, False),
    ("timer_delete", 226, 30.0, False, False),
    ("clock_settime", 227, 25.0, False, False),
    ("clock_gettime", 228, 12.0, False, False),
    ("clock_getres", 229, 8.0, False, False),
    ("clock_nanosleep", 230, 45.0, False, True),
    ("exit_group", 231, 350.0, False, False),
    ("epoll_wait", 232, 35.0, False, True),
    ("epoll_ctl", 233, 30.0, False, False),
    ("tgkill", 234, 35.0, False, False),
    ("utimes", 235, 40.0, True, False),
    ("mbind", 237, 60.0, False, False),
    ("set_mempolicy", 238, 40.0, False, False),
    ("get_mempolicy", 239, 30.0, False, False),
    ("mq_open", 240, 90.0, False, False),
    ("mq_unlink", 241, 70.0, False, False),
    ("mq_timedsend", 242, 60.0, False, True),
    ("mq_timedreceive", 243, 60.0, False, True),
    ("mq_notify", 244, 40.0, False, False),
    ("mq_getsetattr", 245, 25.0, False, False),
    ("waitid", 247, 110.0, False, True),
    ("inotify_init", 253, 70.0, False, False),
    ("inotify_add_watch", 254, 50.0, False, False),
    ("inotify_rm_watch", 255, 40.0, False, False),
    ("openat", 257, 58.0, True, False),
    ("mkdirat", 258, 85.0, True, False),
    ("mknodat", 259, 85.0, True, False),
    ("fchownat", 260, 45.0, True, False),
    ("newfstatat", 262, 34.0, True, False),
    ("unlinkat", 263, 75.0, True, False),
    ("renameat", 264, 90.0, True, False),
    ("linkat", 265, 80.0, True, False),
    ("symlinkat", 266, 80.0, True, False),
    ("readlinkat", 267, 35.0, True, False),
    ("fchmodat", 268, 45.0, True, False),
    ("faccessat", 269, 40.0, True, False),
    ("pselect6", 270, 55.0, False, True),
    ("ppoll", 271, 50.0, False, True),
    ("set_robust_list", 273, 8.0, False, False),
    ("get_robust_list", 274, 8.0, False, False),
    ("splice", 275, 70.0, True, True),
    ("tee", 276, 50.0, True, False),
    ("sync_file_range", 277, 90.0, True, True),
    ("vmsplice", 278, 65.0, True, False),
    ("utimensat", 280, 40.0, True, False),
    ("epoll_pwait", 281, 38.0, False, True),
    ("signalfd", 282, 55.0, False, False),
    ("timerfd_create", 283, 60.0, False, False),
    ("eventfd", 284, 45.0, False, False),
    ("fallocate", 285, 120.0, True, False),
    ("timerfd_settime", 286, 30.0, False, False),
    ("timerfd_gettime", 287, 18.0, False, False),
    ("accept4", 288, 225.0, False, True),
    ("signalfd4", 289, 55.0, False, False),
    ("eventfd2", 290, 45.0, False, False),
    ("epoll_create1", 291, 85.0, False, False),
    ("dup3", 292, 20.0, False, False),
    ("pipe2", 293, 82.0, True, False),
    ("inotify_init1", 294, 68.0, False, False),
    ("preadv", 295, 15.0, True, True),
    ("pwritev", 296, 13.0, True, True),
    ("rt_tgsigqueueinfo", 297, 30.0, False, False),
    ("perf_event_open", 298, 300.0, False, False),
    ("recvmmsg", 299, 120.0, True, True),
    ("fanotify_init", 300, 80.0, False, False),
    ("fanotify_mark", 301, 55.0, False, False),
    ("prlimit64", 302, 18.0, False, False),
    ("name_to_handle_at", 303, 50.0, True, False),
    ("open_by_handle_at", 304, 60.0, True, False),
    ("clock_adjtime", 305, 30.0, False, False),
    ("syncfs", 306, 250.0, True, True),
    ("sendmmsg", 307, 110.0, True, True),
    ("getcpu", 309, 8.0, False, False),
    ("kcmp", 312, 25.0, False, False),
    ("finit_module", 313, 4500.0, False, False),
    ("sched_setattr", 314, 30.0, False, False),
    ("sched_getattr", 315, 20.0, False, False),
    ("renameat2", 316, 92.0, True, False),
    ("seccomp", 317, 80.0, False, False),
    ("getrandom", 318, 60.0, False, False),
    ("memfd_create", 319, 90.0, True, False),
    ("kexec_file_load", 320, 3000.0, False, False),
    ("bpf", 321, 150.0, False, False),
    ("execveat", 322, 5200.0, True, False),
    ("membarrier", 324, 35.0, False, False),
    ("mlock2", 325, 72.0, True, False),
    ("_sysctl", 156, 50.0, False, False),
    ("userfaultfd", 323, 95.0, False, False),
)


def _build_table() -> Dict[str, Syscall]:
    table: Dict[str, Syscall] = {}
    for name, number, handler_ns, data_path, blocking in _TABLE_ROWS:
        table[name] = Syscall(
            name=name,
            number=number,
            handler_ns=handler_ns,
            option=_SYSCALL_OPTION.get(name),
            data_path=data_path,
            blocking=blocking,
        )
    # Option-gated syscalls that the rows above don't cover explicitly get a
    # family-default entry so every Table 1 syscall resolves.
    next_number = 400
    for option, names in OPTION_SYSCALLS.items():
        for name in names:
            if name not in table:
                table[name] = Syscall(
                    name=name,
                    number=next_number,
                    handler_ns=40.0,
                    option=option,
                    data_path=False,
                    blocking=False,
                )
                next_number += 1
    return table


#: The full syscall table, keyed by syscall name.
SYSCALLS: Dict[str, Syscall] = _build_table()


def option_for_syscall(name: str) -> Optional[str]:
    """The Kconfig option gating *name*, or ``None`` if always present."""
    syscall = SYSCALLS.get(name)
    return syscall.option if syscall else None


def syscalls_for_option(option: str) -> Tuple[str, ...]:
    """The syscalls enabled by *option* (empty if it gates none)."""
    return OPTION_SYSCALLS.get(option, ())


def gated_syscalls() -> FrozenSet[str]:
    """All syscalls that some config option gates."""
    return frozenset(_SYSCALL_OPTION)


def available_syscalls(enabled_options) -> FrozenSet[str]:
    """Syscall names available under a given set of enabled options."""
    enabled = set(enabled_options)
    return frozenset(
        name
        for name, syscall in SYSCALLS.items()
        if syscall.option is None or syscall.option in enabled
    )
